// Codec frontier (DESIGN.md §16): compression ratio vs throughput for every
// registered checkpoint codec over real data-plane payloads — actual engine
// checkpoint sections (model + controller state harvested from a raw-codec
// Save), serialized micro-batch rows, raw numeric column bytes and raw
// dictionary-code bytes. Emits results/BENCH_codec_frontier.json via
// DDUP_BENCH_JSON_DIR with one row per (payload, codec) cell: encoded size,
// ratio, and compress/decompress MB/s. Every cell's round trip is verified
// bit-exact before it is timed.
//
// Build & run:  ./build/bench/bench_codec_frontier
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "bench/harness.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "datagen/datasets.h"
#include "io/checkpoint.h"
#include "io/codec.h"
#include "io/serializer.h"

namespace ddup::bench {
namespace {

// Harvests real checkpoint section payloads: train a small engine, save it
// with the raw codec (so the stored bytes ARE the section payloads), read
// the container back and return every section. This is the exact byte
// stream the codec layer sees on a production Save.
std::vector<std::pair<std::string, std::string>> HarvestCheckpointSections(
    const BenchParams& params) {
  api::EngineConfig config;
  config.micro_batch_rows = 200;
  config.controller.detector.bootstrap_iterations =
      params.bootstrap_iterations / 3;
  config.controller.policy.distill.epochs = params.ScaledEpochs(1);
  config.controller.policy.finetune_epochs = params.ScaledEpochs(1);
  config.checkpoint.codec = "raw";
  api::Engine engine(config);

  storage::Table census = datagen::CensusLike(params.rows, params.seed);
  DDUP_CHECK(engine.CreateTable("census", census).ok());
  DDUP_CHECK(engine
                 .AttachModel("census", {"darn",
                                         {{"epochs", "2"},
                                          {"max_bins", "16"},
                                          {"hidden_width", "24"}}})
                 .ok());

  const std::string path = "/tmp/ddup_codec_frontier.ckpt";
  DDUP_CHECK(engine.Save(path).ok());
  auto reader = io::CheckpointReader::FromFile(path);
  DDUP_CHECK_MSG(reader.ok(), reader.status().ToString());
  std::vector<std::pair<std::string, std::string>> sections;
  for (const auto& info : reader.value().Sections()) {
    DDUP_CHECK(info.codec == io::kCodecRaw);
    sections.emplace_back("section_" + info.name,
                          reader.value().Section(info.name).value());
  }
  std::remove(path.c_str());
  return sections;
}

// The non-checkpoint payload kinds: the byte streams the packed accumulator
// and the serializer push through the same transforms.
std::vector<std::pair<std::string, std::string>> SyntheticPayloads(
    const BenchParams& params) {
  storage::Table census = datagen::CensusLike(params.rows, params.seed + 1);
  std::vector<std::pair<std::string, std::string>> payloads;

  io::Serializer batch;
  batch.WriteTable(census);
  payloads.emplace_back("serialized_batch", batch.Take());

  std::string doubles, codes;
  for (int c = 0; c < census.num_columns(); ++c) {
    const storage::Column& column = census.column(c);
    if (column.is_numeric()) {
      const auto& v = column.numeric_values();
      const size_t at = doubles.size();
      doubles.resize(at + v.size() * sizeof(double));
      std::memcpy(doubles.data() + at, v.data(), v.size() * sizeof(double));
    } else {
      const auto& v = column.codes();
      const size_t at = codes.size();
      codes.resize(at + v.size() * sizeof(int32_t));
      std::memcpy(codes.data() + at, v.data(), v.size() * sizeof(int32_t));
    }
  }
  payloads.emplace_back("numeric_column_bytes", std::move(doubles));
  payloads.emplace_back("categorical_code_bytes", std::move(codes));
  return payloads;
}

double MbPerSecond(size_t bytes, int iterations, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) * iterations / seconds / (1024.0 * 1024.0);
}

}  // namespace
}  // namespace ddup::bench

int main() {
  using namespace ddup;
  const bench::BenchParams params = bench::BenchParams::FromEnv();
  std::printf("codec frontier: ratio vs throughput per (payload, codec)\n");

  std::vector<std::pair<std::string, std::string>> payloads =
      bench::HarvestCheckpointSections(params);
  for (auto& p : bench::SyntheticPayloads(params)) {
    payloads.push_back(std::move(p));
  }

  bench::BenchJsonEmitter json("codec_frontier", params);
  json.SetParam("codecs",
                static_cast<int64_t>(io::RegisteredCodecNames().size()));
  json.SetParam("payloads", static_cast<int64_t>(payloads.size()));

  double lz_best_section_ratio = 0.0;
  std::printf("  %-28s %-8s %12s %8s %12s %12s\n", "payload", "codec", "bytes",
              "ratio", "comp MB/s", "decomp MB/s");
  for (const auto& [payload_name, payload] : payloads) {
    for (const std::string& codec_name : io::RegisteredCodecNames()) {
      const io::Codec* codec = io::FindCodecByName(codec_name);
      DDUP_CHECK(codec != nullptr);

      // Correctness first: the cell must round-trip bit-exactly.
      std::string encoded;
      codec->Compress(payload, &encoded);
      std::string decoded;
      Status status = codec->Decompress(encoded, payload.size(), &decoded);
      DDUP_CHECK_MSG(status.ok(), status.ToString());
      DDUP_CHECK(decoded == payload);

      // Size the iteration count to the payload so small cells still get a
      // measurable window (~32 MiB of traffic per direction, >=4 iters).
      const int iterations =
          payload.empty()
              ? 1
              : static_cast<int>(
                    std::max<size_t>(4, (32u << 20) / payload.size()));
      Stopwatch compress_timer;
      for (int i = 0; i < iterations; ++i) {
        encoded.clear();
        codec->Compress(payload, &encoded);
      }
      const double compress_seconds = compress_timer.ElapsedSeconds();
      Stopwatch decompress_timer;
      for (int i = 0; i < iterations; ++i) {
        decoded.clear();
        status = codec->Decompress(encoded, payload.size(), &decoded);
      }
      const double decompress_seconds = decompress_timer.ElapsedSeconds();
      DDUP_CHECK(status.ok() && decoded == payload);

      const double ratio =
          encoded.empty()
              ? 1.0
              : static_cast<double>(payload.size()) /
                    static_cast<double>(encoded.size());
      const double compress_mb_s =
          bench::MbPerSecond(payload.size(), iterations, compress_seconds);
      const double decompress_mb_s =
          bench::MbPerSecond(payload.size(), iterations, decompress_seconds);
      if (codec_name == "lz" && payload_name.rfind("section_", 0) == 0) {
        lz_best_section_ratio = std::max(lz_best_section_ratio, ratio);
      }
      std::printf("  %-28s %-8s %12zu %8.2f %12.1f %12.1f\n",
                  payload_name.c_str(), codec_name.c_str(), payload.size(),
                  ratio, compress_mb_s, decompress_mb_s);
      json.AddRow(bench::JsonObject()
                      .Set("payload", payload_name)
                      .Set("codec", codec_name)
                      .Set("payload_bytes",
                           static_cast<int64_t>(payload.size()))
                      .Set("encoded_bytes",
                           static_cast<int64_t>(encoded.size()))
                      .Set("ratio", ratio)
                      .Set("compress_mb_per_s", compress_mb_s)
                      .Set("decompress_mb_per_s", decompress_mb_s));
    }
  }

  // The headline the data-plane work is judged on: LZ on a real checkpoint
  // section (ISSUE acceptance asks for >=2x).
  json.SetParam("lz_best_checkpoint_section_ratio", lz_best_section_ratio);
  std::printf("  lz best checkpoint-section ratio: %.2fx\n",
              lz_best_section_ratio);
  json.Write();
  return 0;
}
