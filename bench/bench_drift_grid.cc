// Drift grid: every registered detector (core/detector_zoo.h) against every
// named drift scenario (datagen/scenarios.h), scored on FPR / FNR / mean
// detection delay. Extends bench_table4_fpr_fnr from one detector x one
// drift shape to the full matrix, and writes BENCH_drift_grid.json.
//
// Protocol: one model (MDN on the scenario base, the same base for every
// scenario at a fixed seed), one fresh detector per cell, Fit on the base,
// then the stream's batches in order with NO model updates in between — the
// grid isolates detection quality from update policy. Ground truth is the
// stream's per-batch drift labels; a drift episode is a maximal run of
// drifted batches, and its delay is the index of the first alarm inside the
// episode relative to its start (censored at the episode length when the
// detector never fires).
//
// The JSON is timing-free and bit-identical for a fixed seed; extra knob:
// DDUP_DATASET picks the scenario base dataset (default census).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/detector_zoo.h"
#include "datagen/scenarios.h"
#include "models/mdn.h"

namespace ddup::bench {
namespace {

struct CellScore {
  double fpr = 0.0;
  double fnr = 0.0;
  double mean_delay = 0.0;  // batches; episode-length-censored
  int negatives = 0;
  int positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  int episodes = 0;
  int alarms = 0;
};

CellScore Score(const std::vector<bool>& drifted,
                const std::vector<bool>& alarm) {
  CellScore s;
  for (size_t i = 0; i < drifted.size(); ++i) {
    if (drifted[i]) {
      ++s.positives;
      if (!alarm[i]) ++s.false_negatives;
    } else {
      ++s.negatives;
      if (alarm[i]) ++s.false_positives;
    }
    if (alarm[i]) ++s.alarms;
  }
  s.fpr = s.negatives > 0
              ? static_cast<double>(s.false_positives) / s.negatives
              : 0.0;
  s.fnr = s.positives > 0
              ? static_cast<double>(s.false_negatives) / s.positives
              : 0.0;
  // Episodes: maximal runs of drifted batches.
  double delay_sum = 0.0;
  size_t i = 0;
  while (i < drifted.size()) {
    if (!drifted[i]) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < drifted.size() && drifted[i]) ++i;
    const size_t len = i - start;  // episode is [start, start + len)
    size_t delay = len;            // censored when no alarm fires inside
    for (size_t j = start; j < start + len; ++j) {
      if (alarm[j]) {
        delay = j - start;
        break;
      }
    }
    delay_sum += static_cast<double>(delay);
    ++s.episodes;
  }
  s.mean_delay = s.episodes > 0 ? delay_sum / s.episodes : 0.0;
  return s;
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Drift grid",
              "detector zoo x drift scenarios: FPR / FNR / detection delay",
              params);
  const char* env_dataset = std::getenv("DDUP_DATASET");
  const std::string dataset =
      env_dataset != nullptr && env_dataset[0] != '\0' ? env_dataset
                                                       : "census";

  datagen::ScenarioConfig base_config;
  base_config.dataset = dataset;
  base_config.base_rows = params.rows;
  base_config.batch_rows = std::max<int64_t>(64, params.rows / 16);
  base_config.num_batches = 24;
  base_config.onset_batch = 8;
  base_config.seed = params.seed;

  // One model for the whole grid: every scenario at this seed shares the
  // same base table, so train once.
  const storage::Table base =
      datagen::MakeDataset(dataset, params.rows, params.seed);
  const datagen::AqpColumns aqp = datagen::AqpColumnsFor(dataset);
  models::Mdn model(base, aqp.categorical, aqp.numeric, MdnConfigFor(params));

  BenchJsonEmitter json("drift_grid", params);
  const std::vector<std::string> detectors = core::DriftDetectorKinds();
  std::printf("%-17s", "scenario");
  for (const auto& kind : detectors) std::printf(" | %-21s", kind.c_str());
  std::printf("\n%-17s", "");
  for (size_t k = 0; k < detectors.size(); ++k) {
    std::printf(" | %5s %5s %7s", "fpr", "fnr", "delay");
  }
  std::printf("\n");

  for (const auto& scenario : datagen::ScenarioNames()) {
    datagen::ScenarioConfig config = base_config;
    config.scenario = scenario;
    datagen::DriftStream stream = datagen::MakeScenario(config);
    DDUP_CHECK(stream.base.SchemaEquals(base));

    std::printf("%-17s", scenario.c_str());
    for (const auto& kind : detectors) {
      core::DetectorConfig detector_config;
      detector_config.kind = kind;
      detector_config.bootstrap_iterations = params.bootstrap_iterations;
      detector_config.seed = params.seed + 7;
      auto detector = core::MakeDriftDetector(detector_config);
      DDUP_CHECK(detector.ok());
      detector.value()->Fit(model, base);

      std::vector<bool> alarm;
      alarm.reserve(stream.batches.size());
      for (const auto& batch : stream.batches) {
        alarm.push_back(detector.value()->Test(model, batch).is_ood);
      }
      CellScore s = Score(stream.drifted, alarm);
      std::printf(" | %5.2f %5.2f %7.2f", s.fpr, s.fnr, s.mean_delay);
      json.AddRow(JsonObject()
                      .Set("detector", kind)
                      .Set("scenario", scenario)
                      .Set("dataset", dataset)
                      .Set("fpr", s.fpr)
                      .Set("fnr", s.fnr)
                      .Set("mean_delay_batches", s.mean_delay)
                      .Set("negatives", s.negatives)
                      .Set("positives", s.positives)
                      .Set("false_positives", s.false_positives)
                      .Set("false_negatives", s.false_negatives)
                      .Set("episodes", s.episodes)
                      .Set("alarms", s.alarms));
    }
    std::printf("\n");
  }
  json.Write();
  std::printf(
      "\nshape check: sequential detectors (cusum/adwin) trade delay for "
      "sensitivity on gradual/adversarial drift; percolumn_cusum is blind "
      "to the marginal-preserving scenarios (sudden/gradual/recurring) by "
      "construction and fast on append_skew.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
