// Engine concurrency baseline: N tables x M client threads of mixed
// Ingest/Estimate traffic, once against the async engine (background DDUp
// update workers, snapshot serving) and once against the synchronous
// engine (updates inline in Ingest). Reports ingest latency percentiles
// and estimate QPS — split into estimates served while the target table
// had an update in flight vs idle — so the serving-while-updating claim
// of DESIGN.md §11 is a measured number, and the next perf PR has a
// concurrency baseline to beat.
//
// Backpressure is engine-side (DESIGN.md §15): async runs bound the
// per-table backlog (EngineConfig::max_backlog_batches) under the "shed"
// admission policy, so an over-eager client gets a typed
// [admission:shed] RESOURCE_EXHAUSTED refusal instead of growing the
// queue without bound. Clients here just Ingest and count the sheds —
// the PR 5 pattern of polling TableReport::backlog_batches before every
// ingest is gone (that field is advisory now).
//
// --cluster: runs the same mixed workload against the sharded serving
// layer (serving::Cluster) at each shard count in DDUP_BENCH_SHARDS and
// writes BENCH_cluster_throughput.json — estimate QPS and ingest
// latency vs shard count, the tentpole artifact of DESIGN.md §15.
//
// Environment knobs (defaults in parentheses):
//   DDUP_BENCH_TABLES  (4)   tables, one model each
//   DDUP_BENCH_CLIENTS (4)   client threads
//   DDUP_BENCH_SECONDS (6)   measured wall time per engine mode
//   DDUP_BENCH_WORKERS (2)   background update workers in async mode
//                            (per shard under --cluster)
//   DDUP_BENCH_SHARDS  (1,2,4) shard counts swept under --cluster
//   DDUP_ROWS          (4000 via BenchParams) base rows per table
//   DDUP_EPOCH_SCALE / DDUP_BOOTSTRAP / DDUP_SEED — as in every bench
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "serving/admission.h"
#include "serving/cluster.h"
#include "workload/query.h"

namespace {

using ddup::Rng;
using ddup::api::Engine;
using ddup::api::EngineConfig;
using ddup::api::EstimateRequest;
using ddup::api::ModelSpec;
using ddup::api::TableServingState;
using ddup::serving::Cluster;
using ddup::serving::ClusterConfig;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int64_t parsed = std::atoll(v);
  return parsed > 0 ? parsed : fallback;
}

// Comma-separated positive ints, e.g. DDUP_BENCH_SHARDS=1,2,4.
std::vector<int> EnvIntList(const char* name, std::vector<int> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  std::vector<int> out;
  for (const char* p = v; *p != '\0';) {
    char* end = nullptr;
    long parsed = std::strtol(p, &end, 10);
    if (end == p) break;
    if (parsed > 0) out.push_back(static_cast<int>(parsed));
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? fallback : out;
}

ddup::storage::Table MakeConditional(double m0, double m1, int64_t n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes;
  std::vector<double> y;
  for (int64_t i = 0; i < n; ++i) {
    int k = rng.Bernoulli(0.5) ? 1 : 0;
    codes.push_back(static_cast<int32_t>(k));
    y.push_back(std::clamp(rng.Normal(k == 0 ? m0 : m1, 3.0), 0.0, 100.0));
  }
  ddup::storage::Table t("cond");
  t.AddColumn(ddup::storage::Column::Categorical("x", codes, {"k0", "k1"}));
  t.AddColumn(ddup::storage::Column::Numeric("y", y));
  return t;
}

ddup::workload::Query AqpRangeQuery(double lo, double hi) {
  ddup::workload::Query q;
  ddup::workload::Predicate eq;
  eq.column = 0;
  eq.op = ddup::workload::CompareOp::kEq;
  eq.value = 0.0;
  ddup::workload::Predicate ge;
  ge.column = 1;
  ge.op = ddup::workload::CompareOp::kGe;
  ge.value = lo;
  ddup::workload::Predicate le;
  le.column = 1;
  le.op = ddup::workload::CompareOp::kLe;
  le.value = hi;
  q.predicates = {eq, ge, le};
  return q;
}

struct ClientStats {
  std::vector<double> ingest_ms;
  std::vector<double> estimate_ms;
  int64_t estimates_total = 0;
  int64_t estimates_during_update = 0;
  int64_t rows_ingested = 0;
  int64_t ingests_shed = 0;  // typed [admission:shed] refusals observed
  int64_t errors = 0;
};

struct ModeResult {
  double seconds = 0.0;
  ClientStats merged;
  int64_t updates_completed = 0;
  int64_t snapshot_publishes = 0;
  double queue_seconds = 0.0;
  int64_t rows_total = 0;
  int64_t sheds_reported = 0;  // engine-side counter, cross-checks merged
};

// The engine configuration every mode derives from. Async modes move
// backpressure engine-side: a bounded per-table backlog under the "shed"
// policy refuses ingests once 2 batches per worker are already queued —
// the same watermark the retired caller-side Report poll used.
EngineConfig MakeEngineConfig(const ddup::bench::BenchParams& params,
                              int update_workers) {
  EngineConfig config;
  config.micro_batch_rows = std::clamp<int64_t>(params.rows / 8, 32, 512);
  config.update_workers = update_workers;
  if (update_workers > 0) {
    config.max_backlog_batches = 2 * update_workers;
    config.admission_policy = "shed";
  }
  config.controller.detector.bootstrap_iterations =
      params.bootstrap_iterations;
  config.controller.policy.distill.epochs = params.ScaledEpochs(4);
  config.controller.policy.finetune_epochs = params.ScaledEpochs(2);
  config.controller.seed = params.seed;
  return config;
}

// One frontend end to end: build N tables, run M clients for `seconds`,
// flush, aggregate. Frontend is api::Engine or serving::Cluster — the two
// expose the same surface (CreateTable/AttachModel/Ingest/Estimate/Report/
// FlushAll), the cluster just routes each call to the owning shard.
// `serialize_clients` models the synchronous engine's single-threaded
// contract: estimates read the live model that Ingest trains in place, so
// multi-client callers must serialize per-table access themselves — which
// is precisely the contention the async engine's snapshot serving removes.
template <typename Frontend>
ModeResult RunTraffic(Frontend& frontend,
                      const ddup::bench::BenchParams& params,
                      const EngineConfig& config, int64_t tables,
                      int64_t clients, double seconds,
                      bool serialize_clients) {
  ModelSpec spec{"mdn",
                 {{"num_components", "6"},
                  {"hidden_width", "32"},
                  {"epochs", std::to_string(params.ScaledEpochs(6))},
                  {"seed", std::to_string(params.seed)}}};
  std::vector<std::string> names;
  for (int64_t t = 0; t < tables; ++t) {
    names.push_back("t" + std::to_string(t));
    ddup::storage::Table base = MakeConditional(
        25, 75, params.rows, params.seed + static_cast<uint64_t>(t));
    DDUP_CHECK(frontend.CreateTable(names.back(), base).ok());
    ddup::Status st = frontend.AttachModel(names.back(), spec);
    DDUP_CHECK_MSG(st.ok(), st.ToString());
  }

  const int64_t chunk_rows = std::max<int64_t>(16, config.micro_batch_rows / 2);
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::mutex> sync_locks(
      serialize_clients ? static_cast<size_t>(tables) : 0);
  auto sync_guard = [&](size_t table_index) {
    return sync_locks.empty()
               ? std::unique_lock<std::mutex>()
               : std::unique_lock<std::mutex>(sync_locks[table_index]);
  };
  std::atomic<bool> stop{false};
  ddup::Stopwatch wall;
  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientStats& mine = stats[static_cast<size_t>(c)];
      Rng rng(params.seed + 1000 + static_cast<uint64_t>(c));
      int64_t op = 0;
      while (!stop.load(std::memory_order_acquire)) {
        size_t table_index = static_cast<size_t>((c + op) % tables);
        const std::string& table = names[table_index];
        if (op % 8 == 0) {
          // Mostly-IND chunk into this client's rotating table. No
          // caller-side throttle: the engine's admission policy bounds the
          // backlog, and an over-limit ingest comes back as a typed shed
          // the client counts and retries later (next rotation).
          ddup::storage::Table chunk = MakeConditional(
              25, 75, chunk_rows,
              params.seed + 5000 + static_cast<uint64_t>(c * 1000 + op));
          ddup::Stopwatch timer;
          auto guard = sync_guard(table_index);
          auto result = frontend.Ingest(table, chunk);
          mine.ingest_ms.push_back(timer.ElapsedMillis());
          if (result.ok()) {
            mine.rows_ingested += chunk.num_rows();
          } else if (ddup::serving::IsAdmissionShed(result.status())) {
            mine.ingests_shed += 1;
          } else {
            mine.errors += 1;
          }
        } else {
          bool updating = false;
          auto report = frontend.Report(table);
          if (report.ok()) {
            updating =
                report.value().state != TableServingState::kServing;
          }
          double lo = rng.Uniform(0.0, 40.0);
          EstimateRequest request;
          request.kind = EstimateRequest::Kind::kAqp;
          request.table = table;
          request.queries.Add(AqpRangeQuery(lo, lo + 40.0));
          ddup::Stopwatch timer;
          {
            auto guard = sync_guard(table_index);
            auto est = frontend.Estimate(request);
            mine.estimate_ms.push_back(timer.ElapsedMillis());
            if (est.ok() && est.value().answers.size() == 1 &&
                std::isfinite(est.value().answers[0])) {
              mine.estimates_total += 1;
              if (updating) mine.estimates_during_update += 1;
            } else {
              mine.errors += 1;
            }
          }
        }
        ++op;
      }
    });
  }
  while (wall.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  double measured = wall.ElapsedSeconds();
  auto sweep = frontend.FlushAll();
  DDUP_CHECK_MSG(sweep.ok(), sweep.status().ToString());

  ModeResult out;
  out.seconds = measured;
  for (const auto& s : stats) {
    out.merged.ingest_ms.insert(out.merged.ingest_ms.end(),
                                s.ingest_ms.begin(), s.ingest_ms.end());
    out.merged.estimate_ms.insert(out.merged.estimate_ms.end(),
                                  s.estimate_ms.begin(),
                                  s.estimate_ms.end());
    out.merged.estimates_total += s.estimates_total;
    out.merged.estimates_during_update += s.estimates_during_update;
    out.merged.rows_ingested += s.rows_ingested;
    out.merged.ingests_shed += s.ingests_shed;
    out.merged.errors += s.errors;
  }
  for (const auto& name : names) {
    auto report = frontend.Report(name);
    DDUP_CHECK(report.ok());
    out.updates_completed += report.value().insertions;
    out.snapshot_publishes += report.value().snapshot_publishes;
    out.queue_seconds += report.value().queue_seconds;
    out.rows_total += report.value().rows;
    out.sheds_reported += report.value().sheds;
  }
  return out;
}

ModeResult RunEngineMode(const ddup::bench::BenchParams& params,
                         int update_workers, int64_t tables, int64_t clients,
                         double seconds) {
  EngineConfig config = MakeEngineConfig(params, update_workers);
  Engine engine(config);
  return RunTraffic(engine, params, config, tables, clients, seconds,
                    /*serialize_clients=*/update_workers == 0);
}

ModeResult RunClusterMode(const ddup::bench::BenchParams& params, int shards,
                          int update_workers, int64_t tables, int64_t clients,
                          double seconds) {
  ClusterConfig config;
  config.shards = shards;
  config.engine = MakeEngineConfig(params, update_workers);
  Cluster cluster(config);
  return RunTraffic(cluster, params, config.engine, tables, clients, seconds,
                    /*serialize_clients=*/update_workers == 0);
}

double Pct(std::vector<double> v, double p) {
  return v.empty() ? 0.0 : ddup::Percentile(std::move(v), p);
}

double EstimateQps(const ModeResult& r) {
  return r.seconds > 0
             ? static_cast<double>(r.merged.estimates_total) / r.seconds
             : 0.0;
}

void PrintMode(const char* label, const ModeResult& r) {
  std::printf("%-8s ingest n=%-6zu p50=%7.3f p99=%8.3f max=%9.3f ms\n", label,
              r.merged.ingest_ms.size(), Pct(r.merged.ingest_ms, 50),
              Pct(r.merged.ingest_ms, 99),
              r.merged.ingest_ms.empty()
                  ? 0.0
                  : *std::max_element(r.merged.ingest_ms.begin(),
                                      r.merged.ingest_ms.end()));
  std::printf(
      "         estimate n=%-6zu p50=%7.3f p99=%8.3f ms  qps=%8.1f "
      "(during update: n=%lld)\n",
      r.merged.estimate_ms.size(), Pct(r.merged.estimate_ms, 50),
      Pct(r.merged.estimate_ms, 99), EstimateQps(r),
      static_cast<long long>(r.merged.estimates_during_update));
  std::printf(
      "         updates=%lld publishes=%lld queue_wait=%.3fs rows=%lld "
      "shed=%lld errors=%lld\n",
      static_cast<long long>(r.updates_completed),
      static_cast<long long>(r.snapshot_publishes), r.queue_seconds,
      static_cast<long long>(r.rows_total),
      static_cast<long long>(r.merged.ingests_shed),
      static_cast<long long>(r.merged.errors));
}

// The shard-count sweep behind BENCH_cluster_throughput.json: the same
// traffic at every shard count, one JSON row each.
int RunClusterSweep(const ddup::bench::BenchParams& params,
                    const std::vector<int>& shard_counts, int workers,
                    int64_t tables, int64_t clients, double seconds) {
  ddup::bench::BenchJsonEmitter emitter("cluster_throughput", params);
  emitter.SetParam("tables", tables)
      .SetParam("clients", clients)
      .SetParam("update_workers", workers)
      .SetParam("seconds", seconds)
      .SetParam("admission_policy", workers > 0 ? "shed" : "block")
      .SetParam("max_backlog_batches",
                workers > 0 ? int64_t{2} * workers : int64_t{0})
      // Header "shards" (stamped 1 by the emitter for single-engine
      // benches) records the largest cluster in this sweep; each row
      // carries its own count.
      .SetParam("shards",
                *std::max_element(shard_counts.begin(), shard_counts.end()));
  int64_t errors = 0;
  for (int shards : shard_counts) {
    std::printf("-- cluster: %d shard%s x %d update worker%s --------------\n",
                shards, shards == 1 ? "" : "s", workers,
                workers == 1 ? "" : "s");
    ModeResult r =
        RunClusterMode(params, shards, workers, tables, clients, seconds);
    std::string label = "shards=" + std::to_string(shards);
    PrintMode(label.c_str(), r);
    if (r.merged.ingests_shed != r.sheds_reported) {
      std::printf("         WARNING client sheds %lld != engine sheds %lld\n",
                  static_cast<long long>(r.merged.ingests_shed),
                  static_cast<long long>(r.sheds_reported));
    }
    errors += r.merged.errors;
    ddup::bench::JsonObject row;
    row.Set("shards", shards)
        .Set("estimate_qps", EstimateQps(r))
        .Set("estimates_total", r.merged.estimates_total)
        .Set("estimates_during_update", r.merged.estimates_during_update)
        .Set("estimate_p50_ms", Pct(r.merged.estimate_ms, 50))
        .Set("estimate_p99_ms", Pct(r.merged.estimate_ms, 99))
        .Set("ingests", static_cast<int64_t>(r.merged.ingest_ms.size()))
        .Set("ingest_p50_ms", Pct(r.merged.ingest_ms, 50))
        .Set("ingest_p99_ms", Pct(r.merged.ingest_ms, 99))
        .Set("rows_ingested", r.merged.rows_ingested)
        .Set("ingests_shed", r.merged.ingests_shed)
        .Set("sheds_reported", r.sheds_reported)
        .Set("updates_completed", r.updates_completed)
        .Set("snapshot_publishes", r.snapshot_publishes)
        .Set("queue_seconds", r.queue_seconds)
        .Set("rows_total", r.rows_total)
        .Set("seconds", r.seconds)
        .Set("errors", r.merged.errors);
    emitter.AddRow(std::move(row));
  }
  emitter.Write();
  if (errors > 0) {
    std::printf("bench_engine_throughput --cluster: FAILED (client errors)\n");
    return 1;
  }
  std::printf("bench_engine_throughput --cluster: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool cluster_mode =
      argc > 1 && std::strcmp(argv[1], "--cluster") == 0;
  ddup::bench::BenchParams params = ddup::bench::BenchParams::FromEnv();
  const int64_t tables = EnvInt("DDUP_BENCH_TABLES", 4);
  const int64_t clients = EnvInt("DDUP_BENCH_CLIENTS", 4);
  const double seconds =
      static_cast<double>(EnvInt("DDUP_BENCH_SECONDS", 6));
  const int workers = static_cast<int>(EnvInt("DDUP_BENCH_WORKERS", 2));

  std::printf(
      "==============================================================\n");
  if (cluster_mode) {
    std::printf(
        "Cluster throughput — sharded serving layer (DESIGN.md §15)\n");
  } else {
    std::printf(
        "Engine throughput — mixed Ingest/Estimate under live updates\n");
  }
  std::printf("tables=%lld clients=%lld update_workers=%d seconds=%.0f "
              "rows=%lld epoch_scale=%.2f bootstrap=%d\n",
              static_cast<long long>(tables), static_cast<long long>(clients),
              workers, seconds, static_cast<long long>(params.rows),
              params.epoch_scale, params.bootstrap_iterations);
  std::printf(
      "==============================================================\n");

  if (cluster_mode) {
    const std::vector<int> shard_counts =
        EnvIntList("DDUP_BENCH_SHARDS", {1, 2, 4});
    return RunClusterSweep(params, shard_counts, workers, tables, clients,
                           seconds);
  }

  std::printf(
      "-- async: background update workers, snapshot serving --------\n");
  ModeResult async_result =
      RunEngineMode(params, workers, tables, clients, seconds);
  PrintMode("async", async_result);

  std::printf(
      "-- sync: updates inline in Ingest (pre-concurrency engine) ---\n");
  ModeResult sync_result = RunEngineMode(params, 0, tables, clients, seconds);
  PrintMode("sync", sync_result);

  bool served_while_updating = async_result.merged.estimates_during_update > 0;
  std::printf(
      "async served %lld estimates while an update was in flight (%s); "
      "ingest p99 %0.3f ms vs sync %0.3f ms\n",
      static_cast<long long>(async_result.merged.estimates_during_update),
      served_while_updating ? "nonzero: serving continues during updates"
                            : "none observed at this scale",
      async_result.merged.ingest_ms.empty()
          ? 0.0
          : ddup::Percentile(async_result.merged.ingest_ms, 99),
      sync_result.merged.ingest_ms.empty()
          ? 0.0
          : ddup::Percentile(sync_result.merged.ingest_ms, 99));
  if (async_result.merged.errors + sync_result.merged.errors > 0) {
    std::printf("bench_engine_throughput: FAILED (client errors)\n");
    return 1;
  }
  std::printf("bench_engine_throughput: OK\n");
  return 0;
}
