// Engine concurrency baseline: N tables x M client threads of mixed
// Ingest/Estimate traffic, once against the async engine (background DDUp
// update workers, snapshot serving) and once against the synchronous
// engine (updates inline in Ingest). Reports ingest latency percentiles
// and estimate QPS — split into estimates served while the target table
// had an update in flight vs idle — so the serving-while-updating claim
// of DESIGN.md §11 is a measured number, and the next perf PR has a
// concurrency baseline to beat.
//
// Environment knobs (defaults in parentheses):
//   DDUP_BENCH_TABLES  (4)   tables, one model each
//   DDUP_BENCH_CLIENTS (4)   client threads
//   DDUP_BENCH_SECONDS (6)   measured wall time per engine mode
//   DDUP_BENCH_WORKERS (2)   background update workers in async mode
//   DDUP_ROWS          (4000 via BenchParams) base rows per table
//   DDUP_EPOCH_SCALE / DDUP_BOOTSTRAP / DDUP_SEED — as in every bench
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "workload/query.h"

namespace {

using ddup::Rng;
using ddup::api::Engine;
using ddup::api::EngineConfig;
using ddup::api::ModelSpec;
using ddup::api::TableServingState;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int64_t parsed = std::atoll(v);
  return parsed > 0 ? parsed : fallback;
}

ddup::storage::Table MakeConditional(double m0, double m1, int64_t n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes;
  std::vector<double> y;
  for (int64_t i = 0; i < n; ++i) {
    int k = rng.Bernoulli(0.5) ? 1 : 0;
    codes.push_back(static_cast<int32_t>(k));
    y.push_back(std::clamp(rng.Normal(k == 0 ? m0 : m1, 3.0), 0.0, 100.0));
  }
  ddup::storage::Table t("cond");
  t.AddColumn(ddup::storage::Column::Categorical("x", codes, {"k0", "k1"}));
  t.AddColumn(ddup::storage::Column::Numeric("y", y));
  return t;
}

ddup::workload::Query AqpRangeQuery(double lo, double hi) {
  ddup::workload::Query q;
  ddup::workload::Predicate eq;
  eq.column = 0;
  eq.op = ddup::workload::CompareOp::kEq;
  eq.value = 0.0;
  ddup::workload::Predicate ge;
  ge.column = 1;
  ge.op = ddup::workload::CompareOp::kGe;
  ge.value = lo;
  ddup::workload::Predicate le;
  le.column = 1;
  le.op = ddup::workload::CompareOp::kLe;
  le.value = hi;
  q.predicates = {eq, ge, le};
  return q;
}

struct ClientStats {
  std::vector<double> ingest_ms;
  std::vector<double> estimate_ms;
  int64_t estimates_total = 0;
  int64_t estimates_during_update = 0;
  int64_t rows_ingested = 0;
  int64_t ingests_throttled = 0;
  int64_t errors = 0;
};

struct ModeResult {
  double seconds = 0.0;
  ClientStats merged;
  int64_t updates_completed = 0;
  int64_t snapshot_publishes = 0;
  double queue_seconds = 0.0;
  int64_t rows_total = 0;
};

// One engine mode end to end: build N tables, run M clients for
// `seconds`, flush, aggregate.
ModeResult RunMode(const ddup::bench::BenchParams& params, int update_workers,
                   int64_t tables, int64_t clients, double seconds) {
  EngineConfig config;
  config.micro_batch_rows =
      std::clamp<int64_t>(params.rows / 8, 32, 512);
  config.update_workers = update_workers;
  config.controller.detector.bootstrap_iterations =
      params.bootstrap_iterations;
  config.controller.policy.distill.epochs = params.ScaledEpochs(4);
  config.controller.policy.finetune_epochs = params.ScaledEpochs(2);
  config.controller.seed = params.seed;
  Engine engine(config);

  ModelSpec spec{"mdn",
                 {{"num_components", "6"},
                  {"hidden_width", "32"},
                  {"epochs", std::to_string(params.ScaledEpochs(6))},
                  {"seed", std::to_string(params.seed)}}};
  std::vector<std::string> names;
  for (int64_t t = 0; t < tables; ++t) {
    names.push_back("t" + std::to_string(t));
    ddup::storage::Table base = MakeConditional(
        25, 75, params.rows, params.seed + static_cast<uint64_t>(t));
    DDUP_CHECK(engine.CreateTable(names.back(), base).ok());
    ddup::Status st = engine.AttachModel(names.back(), spec);
    DDUP_CHECK_MSG(st.ok(), st.ToString());
  }

  const int64_t chunk_rows = std::max<int64_t>(16, config.micro_batch_rows / 2);
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  // The synchronous engine's contract is single-threaded: estimates read
  // the live model that Ingest trains in place, so multi-client callers
  // must serialize access themselves. These per-table locks model that
  // caller-side cost — which is precisely the contention the async
  // engine's snapshot serving removes (async mode leaves them unused).
  std::vector<std::mutex> sync_locks(
      update_workers > 0 ? 0 : static_cast<size_t>(tables));
  auto sync_guard = [&](size_t table_index) {
    return sync_locks.empty()
               ? std::unique_lock<std::mutex>()
               : std::unique_lock<std::mutex>(sync_locks[table_index]);
  };
  std::atomic<bool> stop{false};
  ddup::Stopwatch wall;
  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientStats& mine = stats[static_cast<size_t>(c)];
      Rng rng(params.seed + 1000 + static_cast<uint64_t>(c));
      int64_t op = 0;
      while (!stop.load(std::memory_order_acquire)) {
        size_t table_index = static_cast<size_t>((c + op) % tables);
        const std::string& table = names[table_index];
        if (op % 8 == 0) {
          // Client-side backpressure: an open-loop ingest storm would grow
          // the update backlog without bound (clients can enqueue batches
          // far faster than a worker trains on them), so real clients —
          // and this bench — watch IngestResult::backlog_batches and back
          // off once the strand is saturated.
          auto report = engine.Report(table);
          if (report.ok() &&
              report.value().backlog_batches >=
                  2 * std::max(1, update_workers)) {
            mine.ingests_throttled += 1;
          } else {
            // Mostly-IND chunk into this client's rotating table.
            ddup::storage::Table chunk = MakeConditional(
                25, 75, chunk_rows,
                params.seed + 5000 + static_cast<uint64_t>(c * 1000 + op));
            ddup::Stopwatch timer;
            auto guard = sync_guard(table_index);
            auto result = engine.Ingest(table, chunk);
            mine.ingest_ms.push_back(timer.ElapsedMillis());
            if (result.ok()) {
              mine.rows_ingested += chunk.num_rows();
            } else {
              mine.errors += 1;
            }
          }
        } else {
          bool updating = false;
          auto report = engine.Report(table);
          if (report.ok()) {
            updating =
                report.value().state != TableServingState::kServing;
          }
          double lo = rng.Uniform(0.0, 40.0);
          ddup::Stopwatch timer;
          {
            auto guard = sync_guard(table_index);
            auto est =
                engine.EstimateAqp(table, AqpRangeQuery(lo, lo + 40.0));
            mine.estimate_ms.push_back(timer.ElapsedMillis());
            if (est.ok() && std::isfinite(est.value())) {
              mine.estimates_total += 1;
              if (updating) mine.estimates_during_update += 1;
            } else {
              mine.errors += 1;
            }
          }
        }
        ++op;
      }
    });
  }
  while (wall.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  double measured = wall.ElapsedSeconds();
  auto sweep = engine.FlushAll();
  DDUP_CHECK_MSG(sweep.ok(), sweep.status().ToString());

  ModeResult out;
  out.seconds = measured;
  for (const auto& s : stats) {
    out.merged.ingest_ms.insert(out.merged.ingest_ms.end(),
                                s.ingest_ms.begin(), s.ingest_ms.end());
    out.merged.estimate_ms.insert(out.merged.estimate_ms.end(),
                                  s.estimate_ms.begin(),
                                  s.estimate_ms.end());
    out.merged.estimates_total += s.estimates_total;
    out.merged.estimates_during_update += s.estimates_during_update;
    out.merged.rows_ingested += s.rows_ingested;
    out.merged.ingests_throttled += s.ingests_throttled;
    out.merged.errors += s.errors;
  }
  for (const auto& name : names) {
    auto report = engine.Report(name);
    DDUP_CHECK(report.ok());
    out.updates_completed += report.value().insertions;
    out.snapshot_publishes += report.value().snapshot_publishes;
    out.queue_seconds += report.value().queue_seconds;
    out.rows_total += report.value().rows;
  }
  return out;
}

void PrintMode(const char* label, const ModeResult& r) {
  auto pct = [](std::vector<double> v, double p) {
    return v.empty() ? 0.0 : ddup::Percentile(std::move(v), p);
  };
  double est_qps =
      r.seconds > 0 ? static_cast<double>(r.merged.estimates_total) / r.seconds
                    : 0.0;
  std::printf("%-6s ingest n=%-6zu p50=%7.3f p99=%8.3f max=%9.3f ms\n", label,
              r.merged.ingest_ms.size(), pct(r.merged.ingest_ms, 50),
              pct(r.merged.ingest_ms, 99),
              r.merged.ingest_ms.empty()
                  ? 0.0
                  : *std::max_element(r.merged.ingest_ms.begin(),
                                      r.merged.ingest_ms.end()));
  std::printf(
      "       estimate n=%-6zu p50=%7.3f p99=%8.3f ms  qps=%8.1f "
      "(during update: n=%lld)\n",
      r.merged.estimate_ms.size(), pct(r.merged.estimate_ms, 50),
      pct(r.merged.estimate_ms, 99), est_qps,
      static_cast<long long>(r.merged.estimates_during_update));
  std::printf(
      "       updates=%lld publishes=%lld queue_wait=%.3fs rows=%lld "
      "throttled=%lld errors=%lld\n",
      static_cast<long long>(r.updates_completed),
      static_cast<long long>(r.snapshot_publishes), r.queue_seconds,
      static_cast<long long>(r.rows_total),
      static_cast<long long>(r.merged.ingests_throttled),
      static_cast<long long>(r.merged.errors));
}

}  // namespace

int main() {
  ddup::bench::BenchParams params = ddup::bench::BenchParams::FromEnv();
  const int64_t tables = EnvInt("DDUP_BENCH_TABLES", 4);
  const int64_t clients = EnvInt("DDUP_BENCH_CLIENTS", 4);
  const double seconds =
      static_cast<double>(EnvInt("DDUP_BENCH_SECONDS", 6));
  const int workers = static_cast<int>(EnvInt("DDUP_BENCH_WORKERS", 2));

  std::printf(
      "==============================================================\n");
  std::printf(
      "Engine throughput — mixed Ingest/Estimate under live updates\n");
  std::printf("tables=%lld clients=%lld update_workers=%d seconds=%.0f "
              "rows=%lld epoch_scale=%.2f bootstrap=%d\n",
              static_cast<long long>(tables), static_cast<long long>(clients),
              workers, seconds, static_cast<long long>(params.rows),
              params.epoch_scale, params.bootstrap_iterations);
  std::printf(
      "==============================================================\n");

  std::printf(
      "-- async: background update workers, snapshot serving --------\n");
  ModeResult async_result =
      RunMode(params, workers, tables, clients, seconds);
  PrintMode("async", async_result);

  std::printf(
      "-- sync: updates inline in Ingest (pre-concurrency engine) ---\n");
  ModeResult sync_result = RunMode(params, 0, tables, clients, seconds);
  PrintMode("sync", sync_result);

  bool served_while_updating = async_result.merged.estimates_during_update > 0;
  std::printf(
      "async served %lld estimates while an update was in flight (%s); "
      "ingest p99 %0.3f ms vs sync %0.3f ms\n",
      static_cast<long long>(async_result.merged.estimates_during_update),
      served_while_updating ? "nonzero: serving continues during updates"
                            : "none observed at this scale",
      async_result.merged.ingest_ms.empty()
          ? 0.0
          : ddup::Percentile(async_result.merged.ingest_ms, 99),
      sync_result.merged.ingest_ms.empty()
          ? 0.0
          : ddup::Percentile(sync_result.merged.ingest_ms, 99));
  if (async_result.merged.errors + sync_result.merged.errors > 0) {
    std::printf("bench_engine_throughput: FAILED (client errors)\n");
    return 1;
  }
  std::printf("bench_engine_throughput: OK\n");
  return 0;
}
