// Estimate-path throughput for the batched execution engines (DESIGN.md
// §13): QPS of the scalar convenience path vs the "reference" and
// "vectorized" EstimatorEngines, across batch sizes x reader threads, on
// the DARN cardinality path (the GEMM-heavy one the PR 7 acceptance
// criterion targets: vectorized >= 3x scalar at batch >= 32, one thread)
// and the MDN AQP path (per-category mixture reuse). Every cell reports
// the MatrixPool counter deltas so the zero-alloc claim of the vectorized
// path is a printed number, and the JSON header carries the kernel variant
// and its 256x256 GFLOP/s so throughput is comparable across hosts.
//
// The reader-thread axis exercises the lock-free serving contract: all
// threads estimate against one immutable model with no shared mutable
// state, so cells should scale with available cores (on the 1-core CI
// container the multi-thread rows simply document the absence of a lock,
// not a speedup).
//
// Environment knobs (defaults in parentheses):
//   DDUP_BENCH_ESTIMATES (1536) target estimates per cell (rounded up to
//                               a whole number of batches per thread)
//   DDUP_BENCH_MAX_THREADS (4)  reader-thread axis: 1,2,..,max (powers of 2)
//   DDUP_ROWS / DDUP_QUERIES / DDUP_EPOCH_SCALE / DDUP_SEED — as in every
//   bench (BenchParams).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "exec/estimator_engine.h"
#include "models/darn.h"
#include "models/mdn.h"
#include "nn/pool.h"
#include "workload/query.h"

namespace {

using ddup::Rng;
using ddup::Status;
using ddup::bench::BenchJsonEmitter;
using ddup::bench::BenchParams;
using ddup::bench::DatasetBundle;
using ddup::bench::JsonObject;
using ddup::bench::KernelStats;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  int64_t parsed = std::atoll(v);
  return parsed > 0 ? parsed : fallback;
}

// One measured cell: `threads` readers each run `batches_per_thread`
// batches of size `batch_size` through `run_batch` (signature: thread
// index, batch index -> void). Returns wall seconds across the whole cell.
double TimeCell(int threads, int batches_per_thread,
                const std::function<void(int, int)>& run_batch) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  ddup::Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int b = 0; b < batches_per_thread; ++b) run_batch(t, b);
    });
  }
  sw.Restart();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return sw.ElapsedSeconds();
}

struct Mode {
  std::string name;
  // Estimate queries[first..first+count) into out[0..count).
  std::function<void(const std::vector<ddup::workload::Query>&, size_t first,
                     size_t count, std::vector<double>*)>
      run;
};

struct CellResult {
  double qps = 0.0;
  ddup::nn::MatrixPool::Counters pool{};
};

CellResult RunCell(const Mode& mode,
                   const std::vector<ddup::workload::Query>& queries,
                   int batch_size, int threads, int64_t target_estimates) {
  const int batches_per_thread = static_cast<int>(
      std::max<int64_t>(1, (target_estimates + static_cast<int64_t>(threads) *
                                                   batch_size - 1) /
                               (static_cast<int64_t>(threads) * batch_size)));
  // Warm the pool (and any lazily-built per-model caches) outside the timer,
  // once per participating thread count.
  {
    std::vector<double> out;
    mode.run(queries, 0, static_cast<size_t>(batch_size), &out);
  }
  ddup::nn::MatrixPool::Counters before =
      ddup::nn::MatrixPool::AggregateCounters();
  double seconds =
      TimeCell(threads, batches_per_thread, [&](int t, int b) {
        std::vector<double> out;
        // Rotate the window so cells do not all hammer the same prefix.
        size_t first = (static_cast<size_t>(t) * 131 +
                        static_cast<size_t>(b) * batch_size) %
                       queries.size();
        mode.run(queries, first, static_cast<size_t>(batch_size), &out);
      });
  ddup::nn::MatrixPool::Counters after =
      ddup::nn::MatrixPool::AggregateCounters();
  CellResult r;
  int64_t total = static_cast<int64_t>(batches_per_thread) * threads *
                  batch_size;
  r.qps = total / seconds;
  r.pool.acquires = after.acquires - before.acquires;
  r.pool.reuses = after.reuses - before.reuses;
  r.pool.heap_allocs = after.heap_allocs - before.heap_allocs;
  r.pool.releases = after.releases - before.releases;
  return r;
}

// Copies the [first, first+count) window (wrapping) into a fresh batch.
ddup::workload::QueryBatch Window(
    const std::vector<ddup::workload::Query>& queries, size_t first,
    size_t count) {
  ddup::workload::QueryBatch batch;
  for (size_t i = 0; i < count; ++i)
    batch.Add(queries[(first + i) % queries.size()]);
  return batch;
}

void MustOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "estimate failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

template <typename ScalarFn, typename EngineFn>
std::vector<Mode> BuildModes(ScalarFn scalar, EngineFn engine_call) {
  std::vector<Mode> modes;
  modes.push_back(
      {"scalar", [scalar](const std::vector<ddup::workload::Query>& qs,
                          size_t first, size_t count,
                          std::vector<double>* out) {
         out->resize(count);
         for (size_t i = 0; i < count; ++i) {
           auto r = scalar(qs[(first + i) % qs.size()]);
           if (!r.ok()) MustOk(r.status());
           (*out)[i] = r.value();
         }
       }});
  for (const std::string& name : ddup::exec::RegisteredEstimatorEngines()) {
    const ddup::exec::EstimatorEngine* e = ddup::exec::FindEstimatorEngine(name);
    modes.push_back(
        {name, [e, engine_call](const std::vector<ddup::workload::Query>& qs,
                                size_t first, size_t count,
                                std::vector<double>* out) {
           MustOk(engine_call(*e, Window(qs, first, count), out));
         }});
  }
  return modes;
}

void RunGrid(BenchJsonEmitter& json, const std::string& model,
             const std::string& task, const std::vector<Mode>& modes,
             const std::vector<ddup::workload::Query>& queries,
             const std::vector<int>& batch_sizes,
             const std::vector<int>& thread_counts, int64_t target_estimates,
             double* out_speedup_b32_t1) {
  std::printf("\n[%s %s] %zu queries, %lld estimates/cell\n", model.c_str(),
              task.c_str(), queries.size(),
              static_cast<long long>(target_estimates));
  std::printf("%-11s %6s %8s | %12s %10s %11s\n", "mode", "batch", "threads",
              "qps", "heapallocs", "pool-reuse");
  double scalar_b32_t1 = 0.0;
  for (const Mode& mode : modes) {
    for (int batch_size : batch_sizes) {
      for (int threads : thread_counts) {
        CellResult r =
            RunCell(mode, queries, batch_size, threads, target_estimates);
        double reuse = r.pool.acquires > 0
                           ? 100.0 * r.pool.reuses / r.pool.acquires
                           : 0.0;
        std::printf("%-11s %6d %8d | %12.0f %10lld %10.1f%%\n",
                    mode.name.c_str(), batch_size, threads, r.qps,
                    static_cast<long long>(r.pool.heap_allocs), reuse);
        if (mode.name == "scalar" && batch_size == 32 && threads == 1)
          scalar_b32_t1 = r.qps;
        if (mode.name == "vectorized" && batch_size == 32 && threads == 1 &&
            out_speedup_b32_t1 != nullptr && scalar_b32_t1 > 0.0)
          *out_speedup_b32_t1 = r.qps / scalar_b32_t1;
        json.AddRow(JsonObject()
                        .Set("model", model)
                        .Set("task", task)
                        .Set("mode", mode.name)
                        .Set("batch_size", batch_size)
                        .Set("threads", threads)
                        .Set("qps", r.qps)
                        .Set("pool_acquires",
                             static_cast<int64_t>(r.pool.acquires))
                        .Set("pool_reuses",
                             static_cast<int64_t>(r.pool.reuses))
                        .Set("pool_heap_allocs",
                             static_cast<int64_t>(r.pool.heap_allocs))
                        .Set("pool_releases",
                             static_cast<int64_t>(r.pool.releases)));
      }
    }
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  ddup::bench::PrintBanner(
      "estimate_batch",
      "estimate QPS: scalar vs reference vs vectorized engines", params);
  const int64_t target_estimates = EnvInt("DDUP_BENCH_ESTIMATES", 1536);
  const int max_threads =
      static_cast<int>(EnvInt("DDUP_BENCH_MAX_THREADS", 4));
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  const std::vector<int> batch_sizes = {1, 8, 32, 128};

  KernelStats ks = ddup::bench::MeasureKernelStats();
  std::printf("kernel=%s gemm256=%.2f GFLOP/s\n", ks.kernel,
              ks.gemm256_gflops);

  DatasetBundle bundle = ddup::bench::MakeBundle("census", params);
  BenchJsonEmitter json("estimate_batch", params);
  json.SetParam("kernel", std::string(ks.kernel));
  json.SetParam("gemm256_gflops", ks.gemm256_gflops);
  json.SetParam("estimates_per_cell", target_estimates);

  // DARN cardinality: the GEMM-heavy path the acceptance criterion targets.
  double darn_speedup = 0.0;
  {
    ddup::models::Darn darn(bundle.base, ddup::bench::DarnConfigFor(params));
    Rng qrng(params.seed + 61);
    auto queries = ddup::bench::NaruCountQueries(bundle, params, qrng);
    const ddup::core::CardinalityEstimator& card = darn;
    auto modes = BuildModes(
        [&card](const ddup::workload::Query& q) {
          return card.TryEstimateCardinality(q);
        },
        [&card](const ddup::exec::EstimatorEngine& e,
                const ddup::workload::QueryBatch& batch,
                std::vector<double>* out) {
          return e.EstimateCardinalityBatch(card, batch, out);
        });
    RunGrid(json, "darn", "cardinality", modes, queries, batch_sizes,
            thread_counts, target_estimates, &darn_speedup);
  }

  // MDN AQP: cheap per query; the batched win is per-category mixture reuse.
  {
    ddup::models::Mdn mdn(bundle.base, bundle.aqp.categorical,
                          bundle.aqp.numeric,
                          ddup::bench::MdnConfigFor(params));
    Rng qrng(params.seed + 62);
    auto queries = ddup::bench::AqpCountQueries(bundle, params, qrng);
    const ddup::core::AqpEstimator& aqp = mdn;
    const ddup::storage::Table& schema = bundle.base;
    auto modes = BuildModes(
        [&aqp, &schema](const ddup::workload::Query& q) {
          return aqp.TryEstimateAqp(q, schema);
        },
        [&aqp, &schema](const ddup::exec::EstimatorEngine& e,
                        const ddup::workload::QueryBatch& batch,
                        std::vector<double>* out) {
          return e.EstimateAqpBatch(aqp, schema, batch, out);
        });
    RunGrid(json, "mdn", "aqp_count", modes, queries, batch_sizes,
            thread_counts, target_estimates, nullptr);
  }

  json.SetParam("darn_vectorized_speedup_b32_t1", darn_speedup);
  json.Write();
  std::printf(
      "\nDARN vectorized/scalar speedup @ batch=32, 1 thread: %.2fx "
      "(acceptance floor: 3x)\n",
      darn_speedup);
  std::printf(
      "shape check: vectorized qps grows with batch size and holds "
      "heapallocs at 0 once warm; scalar flat across batch sizes.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
