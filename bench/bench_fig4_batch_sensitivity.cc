// Reproduces paper Figure 4: FPR/FNR of the detector as a function of the
// online batch size. Expected shape: both error rates collapse to ~0 once
// the batch size passes a low threshold.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/detector.h"
#include "storage/sampling.h"
#include "storage/transforms.h"

namespace ddup::bench {
namespace {

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 4", "detector FPR/FNR vs online batch size (MDN, census)",
              params);
  DatasetBundle bundle = MakeBundle("census", params);
  models::Mdn mdn(bundle.base, bundle.aqp.categorical, bundle.aqp.numeric,
                  MdnConfigFor(params));

  core::DetectorConfig config;
  config.bootstrap_iterations = params.bootstrap_iterations;
  config.new_sample_fraction = 1.0;  // use the whole batch: size is the knob
  config.min_sample_rows = 1;
  config.seed = params.seed + 13;
  core::OodDetector detector(config);
  detector.Fit(mdn, bundle.base);

  Rng rng(params.seed + 15);
  storage::Table ind_set = storage::SampleFraction(bundle.base, rng, 0.5);
  storage::Table ood_set =
      storage::PermuteJointDistribution(bundle.base, rng);

  constexpr int kBatches = 60;
  std::printf("%10s | %6s | %6s\n", "batch_size", "FPR", "FNR");
  for (int64_t batch_size : {1, 5, 10, 50, 100, 500, 1000, 2000}) {
    int fp = 0, fn = 0;
    for (int i = 0; i < kBatches; ++i) {
      storage::Table ind_b = storage::SampleRows(
          ind_set, rng, std::min<int64_t>(batch_size, ind_set.num_rows()));
      if (detector.Test(mdn, ind_b).is_ood) ++fp;
      storage::Table ood_b = storage::SampleRows(
          ood_set, rng, std::min<int64_t>(batch_size, ood_set.num_rows()));
      if (!detector.Test(mdn, ood_b).is_ood) ++fn;
    }
    std::printf("%10lld | %6.2f | %6.2f\n", static_cast<long long>(batch_size),
                static_cast<double>(fp) / kBatches,
                static_cast<double>(fn) / kBatches);
  }
  std::printf(
      "\nshape check: error rates high for 1-10 row batches, near zero "
      "beyond a few hundred rows (paper Fig. 4).\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
