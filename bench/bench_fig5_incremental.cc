// Reproduces paper Figure 5: median q-error across 5 consecutive OOD
// insertion batches (the 20% permuted sample split into 5 chunks), for
// DDUp / baseline / stale / retrain, MDN and DARN. Expected shape: DDUp
// hugs the retrain curve; baseline drifts upward immediately.
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

template <typename ModelT, typename MakeFn, typename EstimateFn>
void RunSeries(const DatasetBundle& bundle, const BenchParams& params,
               const std::vector<workload::Query>& queries, MakeFn make,
               EstimateFn estimate) {
  auto chunks = storage::SplitIntoBatches(bundle.ood_batch, 5);

  auto ddup_model = make();
  core::DdupController controller(ddup_model.get(), bundle.base,
                                  ControllerConfigFor(params));
  auto baseline = make();
  auto stale = make();
  auto retrain = make();
  core::DistillConfig distill = DistillConfigFor(params);

  storage::Table accumulated = bundle.base;
  std::printf("  %-9s %8s %9s %9s %9s\n", "step", "DDUp", "baseline", "stale",
              "retrain");
  // Step 0: base model accuracy against the base ground truth.
  {
    auto truth = workload::ExecuteAll(accumulated, queries);
    double med =
        workload::Summarize(QErrors(estimate(*stale, queries), truth)).median;
    std::printf("  %-9d %8.2f %9.2f %9.2f %9.2f\n", 0, med, med, med, med);
  }
  for (size_t step = 0; step < chunks.size(); ++step) {
    const storage::Table& chunk = chunks[step];
    MustInsert(controller, chunk);
    baseline->AbsorbMetadata(chunk);
    baseline->FineTune(chunk, kBaselineLrMultiplier * distill.learning_rate,
                       distill.epochs);
    accumulated.Append(chunk);
    retrain->RetrainFromScratch(accumulated);

    auto truth = workload::ExecuteAll(accumulated, queries);
    std::printf("  %-9zu %8.2f %9.2f %9.2f %9.2f\n", step + 1,
                workload::Summarize(QErrors(estimate(*ddup_model, queries),
                                            truth)).median,
                workload::Summarize(QErrors(estimate(*baseline, queries),
                                            truth)).median,
                workload::Summarize(QErrors(estimate(*stale, queries), truth))
                    .median,
                workload::Summarize(QErrors(estimate(*retrain, queries),
                                            truth)).median);
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 5", "median q-error over 5 incremental OOD updates",
              params);
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    std::printf("\n%s [MDN]\n", name.c_str());
    {
      Rng qrng(params.seed + 79);
      auto queries = AqpCountQueries(bundle, params, qrng);
      auto make = [&]() {
        return std::make_unique<models::Mdn>(bundle.base,
                                             bundle.aqp.categorical,
                                             bundle.aqp.numeric,
                                             MdnConfigFor(params));
      };
      auto estimate = [&](const models::Mdn& m,
                          const std::vector<workload::Query>& qs) {
        return EstimateAll(m, qs, bundle.base);
      };
      RunSeries<models::Mdn>(bundle, params, queries, make, estimate);
    }
    std::printf("%s [DARN]\n", name.c_str());
    {
      Rng qrng(params.seed + 83);
      auto queries = NaruCountQueries(bundle, params, qrng);
      auto make = [&]() {
        return std::make_unique<models::Darn>(bundle.base,
                                              DarnConfigFor(params));
      };
      auto estimate = [&](const models::Darn& m,
                          const std::vector<workload::Query>& qs) {
        return EstimateAll(m, qs);
      };
      RunSeries<models::Darn>(bundle, params, queries, make, estimate);
    }
  }
  std::printf(
      "\nshape check: DDUp stays near retrain across steps; baseline "
      "rises after the first OOD chunk; stale degrades as truth drifts.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
