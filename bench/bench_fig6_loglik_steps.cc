// Reproduces paper Figure 6: goodness-of-fit (average log-likelihood over a
// mixed sample of historical and new data) across 5 consecutive OOD update
// steps. Expected shape: DDUp ~ retrain stay high; baseline decays step by
// step (progressive forgetting); stale drops once and flatlines.
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"

namespace ddup::bench {
namespace {

// Average of log-likelihood on an old-data sample and a new-data sample,
// matching §5.3.1's unweighted average.
template <typename ModelT>
double MixedLogLik(const ModelT& model, const storage::Table& old_sample,
                   const storage::Table& new_sample) {
  return 0.5 * (model.AverageLogLikelihood(old_sample) +
                model.AverageLogLikelihood(new_sample));
}

template <typename ModelT, typename MakeFn>
void RunSeries(const DatasetBundle& bundle, const BenchParams& params,
               MakeFn make) {
  auto chunks = storage::SplitIntoBatches(bundle.ood_batch, 5);
  auto ddup_model = make();
  core::DdupController controller(ddup_model.get(), bundle.base,
                                  ControllerConfigFor(params));
  auto baseline = make();
  auto stale = make();
  auto retrain = make();
  core::DistillConfig distill = DistillConfigFor(params);

  Rng rng(params.seed + 89);
  storage::Table accumulated = bundle.base;
  std::printf("  %-5s %9s %9s %9s %9s\n", "step", "DDUp", "baseline", "stale",
              "retrain");
  for (size_t step = 0; step < chunks.size(); ++step) {
    const storage::Table& chunk = chunks[step];
    MustInsert(controller, chunk);
    baseline->AbsorbMetadata(chunk);
    baseline->FineTune(chunk, kBaselineLrMultiplier * distill.learning_rate,
                       distill.epochs);
    accumulated.Append(chunk);
    retrain->RetrainFromScratch(accumulated);

    storage::Table old_sample =
        storage::SampleFraction(bundle.base, rng, 0.1);
    storage::Table new_sample = chunk;
    std::printf("  %-5zu %9.3f %9.3f %9.3f %9.3f\n", step + 1,
                MixedLogLik(*ddup_model, old_sample, new_sample),
                MixedLogLik(*baseline, old_sample, new_sample),
                MixedLogLik(*stale, old_sample, new_sample),
                MixedLogLik(*retrain, old_sample, new_sample));
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 6", "avg log-likelihood (old+new mix) over 5 updates",
              params);
  {
    DatasetBundle bundle = MakeBundle("census", params);
    std::printf("\ncensus [MDN]\n");
    auto make = [&]() {
      return std::make_unique<models::Mdn>(bundle.base, bundle.aqp.categorical,
                                           bundle.aqp.numeric,
                                           MdnConfigFor(params));
    };
    RunSeries<models::Mdn>(bundle, params, make);
  }
  {
    DatasetBundle bundle = MakeBundle("forest", params);
    std::printf("\nforest [DARN]\n");
    auto make = [&]() {
      return std::make_unique<models::Darn>(bundle.base,
                                            DarnConfigFor(params));
    };
    RunSeries<models::Darn>(bundle, params, make);
  }
  std::printf(
      "\nshape check: DDUp tracks retrain; baseline's likelihood decreases "
      "monotonically; stale stays at its post-drift level.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
