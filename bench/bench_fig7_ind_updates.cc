// Reproduces paper Figure 7: the same 5-step incremental protocol as
// Figure 5 but with IN-distribution batches (no permutation). Expected
// shape: all approaches — including plain fine-tuning — stay close to
// retrain, because there is nothing to forget.
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 7", "median q-error over 5 incremental IND updates",
              params);
  DatasetBundle bundle = MakeBundle("census", params);
  auto chunks = storage::SplitIntoBatches(bundle.ind_batch, 5);

  Rng qrng(params.seed + 97);
  auto queries = AqpCountQueries(bundle, params, qrng);

  auto make = [&]() {
    return std::make_unique<models::Mdn>(bundle.base, bundle.aqp.categorical,
                                         bundle.aqp.numeric,
                                         MdnConfigFor(params));
  };
  auto ddup_model = make();
  core::DdupController controller(ddup_model.get(), bundle.base,
                                  ControllerConfigFor(params));
  auto baseline = make();
  auto stale = make();
  auto retrain = make();
  core::DistillConfig distill = DistillConfigFor(params);

  storage::Table accumulated = bundle.base;
  std::printf("census [MDN, IND batches]\n");
  std::printf("  %-5s %6s %8s %9s %9s %9s\n", "step", "ood?", "DDUp",
              "baseline", "stale", "retrain");
  for (size_t step = 0; step < chunks.size(); ++step) {
    const storage::Table& chunk = chunks[step];
    core::InsertionReport report = MustInsert(controller, chunk);
    baseline->AbsorbMetadata(chunk);
    baseline->FineTune(chunk, kBaselineLrMultiplier * distill.learning_rate,
                       distill.epochs);
    accumulated.Append(chunk);
    retrain->RetrainFromScratch(accumulated);

    auto truth = workload::ExecuteAll(accumulated, queries);
    auto med = [&](const models::Mdn& m) {
      return workload::Summarize(
                 QErrors(EstimateAll(m, queries, bundle.base), truth))
          .median;
    };
    std::printf("  %-5zu %6s %8.2f %9.2f %9.2f %9.2f\n", step + 1,
                report.test.is_ood ? "yes" : "no", med(*ddup_model),
                med(*baseline), med(*stale), med(*retrain));
  }
  std::printf(
      "\nshape check: the detector does NOT fire (ood? == no) and all four "
      "curves stay within a small band of each other.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
