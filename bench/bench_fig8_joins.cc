// Reproduces paper Figure 8: DDUp on 3-table joins (JOB-like and TPCH-like
// star schemas), inserting the fact table's 5 time-ordered partitions. The
// new data at step t is (new fact partition) ⋈ dims (§4.5). CE uses the
// DARN, AQP uses the MDN; the NeuroCard-style "fast-retrain" policy
// (light retrain on a sample of the full join) is included. Expected shape:
// IMDB drifts, so DDUp signals OOD and beats fine-tune/stale; on TPCH the
// MDN's template columns are stationary, so no update triggers and all
// approaches coincide (paper Fig. 8d).
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace ddup::bench {
namespace {

struct JoinSetup {
  std::string name;
  datagen::StarDataset star;
  storage::Table base_join;                 // partition 0 joined with dims
  std::vector<storage::Table> update_joins;  // partitions 1..4 joined
  std::string aqp_cat, aqp_num;
};

JoinSetup MakeJoinSetup(const std::string& name, const BenchParams& params) {
  JoinSetup s;
  s.name = name;
  s.star = name == "imdb" ? datagen::ImdbLike(params.rows, params.seed + 101)
                          : datagen::TpchLike(params.rows, params.seed + 103);
  auto parts = storage::SplitIntoBatches(s.star.fact, 5);
  s.base_join = s.star.JoinWithFact(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    s.update_joins.push_back(s.star.JoinWithFact(parts[i]));
  }
  auto cols = datagen::JoinAqpColumnsFor(name);
  s.aqp_cat = cols.first;
  s.aqp_num = cols.second;
  return s;
}

// Median q-error per step for the four policies; Estimate is a callable on
// (model, queries).
template <typename ModelT, typename MakeFn, typename EstimateFn>
void RunJoinSeries(const JoinSetup& setup, const BenchParams& params,
                   const std::vector<workload::Query>& queries, MakeFn make,
                   EstimateFn estimate) {
  auto ddup_model = make(setup.base_join);
  core::DdupController controller(ddup_model.get(), setup.base_join,
                                  ControllerConfigFor(params));
  auto baseline = make(setup.base_join);
  auto stale = make(setup.base_join);
  auto fast_retrain = make(setup.base_join);
  core::DistillConfig distill = DistillConfigFor(params);

  Rng rng(params.seed + 107);
  storage::Table accumulated = setup.base_join;
  std::printf("  %-5s %6s %8s %9s %9s %13s\n", "step", "ood?", "DDUp",
              "finetune", "stale", "fast-retrain");
  for (size_t step = 0; step < setup.update_joins.size(); ++step) {
    const storage::Table& batch = setup.update_joins[step];
    core::InsertionReport report = MustInsert(controller, batch);
    baseline->AbsorbMetadata(batch);
    baseline->FineTune(batch, kBaselineLrMultiplier * distill.learning_rate,
                       distill.epochs);
    accumulated.Append(batch);
    // NeuroCard-style fast retrain: light retrain over a sample of the full
    // join (the paper uses 1%; scaled up for our smaller tables).
    double fraction =
        std::min(1.0, 2000.0 / static_cast<double>(accumulated.num_rows()));
    storage::Table join_sample =
        storage::SampleFraction(accumulated, rng, fraction);
    fast_retrain->RetrainFromScratch(join_sample);
    // Weights come from the sample, but the cardinality metadata (NeuroCard
    // keeps the true join size) must reflect the full join.
    fast_retrain->ResetMetadata();
    fast_retrain->AbsorbMetadata(accumulated);

    auto truth = workload::ExecuteAll(accumulated, queries);
    auto med = [&](const ModelT& m) {
      return workload::Summarize(QErrors(estimate(m, queries), truth)).median;
    };
    std::printf("  %-5zu %6s %8.2f %9.2f %9.2f %13.2f\n", step + 1,
                report.test.is_ood ? "yes" : "no", med(*ddup_model),
                med(*baseline), med(*stale), med(*fast_retrain));
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 8", "3-table joins: CE (DARN) and AQP (MDN) over 5 "
              "fact partitions", params);
  for (const std::string& name : {std::string("imdb"), std::string("tpch")}) {
    JoinSetup setup = MakeJoinSetup(name, params);

    std::printf("\n%s [CE, DARN]\n", name.c_str());
    {
      Rng qrng(params.seed + 109);
      workload::NaruWorkloadConfig wconfig;
      wconfig.min_filters = 2;
      wconfig.max_filters = std::min(5, setup.base_join.num_columns());
      auto queries = workload::GenerateNonEmptyNaruQueries(
          setup.base_join, wconfig, params.num_queries, qrng);
      auto make = [&](const storage::Table& data) {
        return std::make_unique<models::Darn>(data, DarnConfigFor(params));
      };
      auto estimate = [&](const models::Darn& m,
                          const std::vector<workload::Query>& qs) {
        return EstimateAll(m, qs);
      };
      RunJoinSeries<models::Darn>(setup, params, queries, make, estimate);
    }

    std::printf("%s [AQP COUNT, MDN]\n", name.c_str());
    {
      Rng qrng(params.seed + 113);
      workload::AqpWorkloadConfig wconfig;
      wconfig.categorical_column = setup.aqp_cat;
      wconfig.numeric_column = setup.aqp_num;
      auto queries = workload::GenerateNonEmptyAqpQueries(
          setup.base_join, wconfig, params.num_queries, qrng);
      auto make = [&](const storage::Table& data) {
        return std::make_unique<models::Mdn>(data, setup.aqp_cat,
                                             setup.aqp_num,
                                             MdnConfigFor(params));
      };
      auto estimate = [&](const models::Mdn& m,
                          const std::vector<workload::Query>& qs) {
        return EstimateAll(m, qs, setup.base_join);
      };
      RunJoinSeries<models::Mdn>(setup, params, queries, make, estimate);
    }
  }
  std::printf(
      "\nshape check: IMDB signals OOD each step and DDUp beats "
      "finetune/stale; TPCH [MDN] signals no OOD and the policies "
      "coincide (paper Fig. 8d).\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
