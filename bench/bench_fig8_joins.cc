// Reproduces paper Figure 8 on the engine-level join path: DDUp on 3-table
// joins (JOB-like and TPCH-like star schemas), inserting the fact table's 5
// time-ordered partitions through api::Engine (detect -> update per step)
// and answering multi-table COUNT queries through the api::QueryRouter —
// per-table model estimates combined under both registered join combiners
// ("join-uniformity" and "fanout-scaling", api/router.h) and scored against
// exact join counts. Expected shape: IMDB drifts (later partitions OOD), so
// the served model tracks the stream; the combiner columns isolate how much
// error the independence/containment assumptions add on top of the
// single-table estimates. Emits BENCH_fig8_joins.json.
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/router.h"
#include "bench/harness.h"
#include "models/darn.h"
#include "storage/sampling.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/join_query.h"
#include "workload/metrics.h"

namespace ddup::bench {
namespace {

struct JoinSetup {
  std::string name;
  datagen::StarDataset star;
  std::vector<storage::Table> fact_parts;  // 5 time-ordered partitions
  // Engine table names: fact_parts stream into "fact"; dims are static.
  std::vector<std::string> dim_names;
  std::vector<workload::JoinEdge> edges;
};

JoinSetup MakeJoinSetup(const std::string& name, const BenchParams& params) {
  JoinSetup s;
  s.name = name;
  s.star = name == "imdb" ? datagen::ImdbLike(params.rows, params.seed + 101)
                          : datagen::TpchLike(params.rows, params.seed + 103);
  s.fact_parts = storage::SplitIntoBatches(s.star.fact, 5);
  // Translate the chain's join steps into router edges: step i joins some
  // already-joined table's `first` column with dims[i]'s `second` column.
  for (size_t i = 0; i < s.star.dims.size(); ++i) {
    s.dim_names.push_back("dim" + std::to_string(i));
  }
  for (size_t i = 0; i < s.star.join_keys.size(); ++i) {
    const auto& [left_col, right_col] = s.star.join_keys[i];
    workload::JoinEdge edge;
    edge.left_table = "fact";
    for (size_t d = 0; d < i; ++d) {
      if (s.star.dims[d].ColumnIndex(left_col) >= 0) {
        edge.left_table = s.dim_names[d];
      }
    }
    edge.left_column = left_col;
    edge.right_table = s.dim_names[i];
    edge.right_column = right_col;
    s.edges.push_back(edge);
  }
  return s;
}

// The fact-table DARN, sized like DarnConfigFor but spelled as registry
// options so the engine's ModelFactory builds (and snapshots) it.
api::ModelSpec DarnSpecFor(const BenchParams& params) {
  models::DarnConfig config = DarnConfigFor(params);
  return {"darn",
          {{"hidden_width", std::to_string(config.hidden_width)},
           {"max_bins", std::to_string(config.max_bins)},
           {"epochs", std::to_string(config.epochs)},
           {"batch_size", std::to_string(config.batch_size)},
           {"progressive_samples", std::to_string(config.progressive_samples)},
           {"seed", std::to_string(config.seed)}}};
}

// Lifts single-table fact queries into join queries over the full chain.
workload::JoinQueryBatch LiftToJoins(const std::vector<workload::Query>& qs,
                                     const JoinSetup& setup) {
  workload::JoinQueryBatch batch;
  for (const workload::Query& q : qs) {
    workload::JoinQuery jq;
    jq.joins = setup.edges;
    for (const workload::Predicate& p : q.predicates) {
      workload::BoundPredicate bp;
      bp.table = "fact";
      bp.predicate = p;
      jq.predicates.push_back(bp);
    }
    batch.Add(jq);
  }
  return batch;
}

// Exact join counts: materialize fact ⋈ dims and re-run the fact predicates
// against it (fact columns keep their names through the hash join).
std::vector<double> ExactJoinCounts(const storage::Table& joined,
                                    const storage::Table& fact_schema,
                                    const std::vector<workload::Query>& qs) {
  std::vector<workload::Query> remapped = qs;
  for (workload::Query& q : remapped) {
    for (workload::Predicate& p : q.predicates) {
      p.column = joined.ColumnIndex(fact_schema.column(p.column).name());
    }
  }
  return workload::ExecuteAll(joined, remapped);
}

void RunSchema(const JoinSetup& setup, const BenchParams& params,
               BenchJsonEmitter& emitter) {
  api::EngineConfig config;
  config.controller = ControllerConfigFor(params);
  // One DDUp step per fact partition: buffer the whole partition, flush once.
  config.micro_batch_rows = static_cast<int64_t>(params.rows) + 1;

  api::Engine engine(config);
  DDUP_CHECK(engine.CreateTable("fact", setup.fact_parts[0]).ok());
  for (size_t d = 0; d < setup.star.dims.size(); ++d) {
    DDUP_CHECK(engine.CreateTable(setup.dim_names[d], setup.star.dims[d]).ok());
  }
  // Only the predicated table needs a model; the dims enter the combiners
  // through their exact stats snapshots (rows + NDV) alone.
  DDUP_CHECK(engine.AttachModel("fact", DarnSpecFor(params)).ok());

  Rng qrng(params.seed + 109);
  workload::NaruWorkloadConfig wconfig;
  wconfig.min_filters = 1;
  wconfig.max_filters = std::min(3, setup.fact_parts[0].num_columns());
  auto queries = workload::GenerateNonEmptyNaruQueries(
      setup.fact_parts[0], wconfig, params.num_queries, qrng);
  workload::JoinQueryBatch join_batch = LiftToJoins(queries, setup);
  workload::JoinQuery unpredicated;
  unpredicated.joins = setup.edges;

  api::QueryRouter router(&engine);
  storage::Table accumulated = setup.fact_parts[0];
  std::printf("  %-5s %6s | %-16s %8s %8s %8s | %12s %12s\n", "step", "ood?",
              "combiner", "med-q", "p95-q", "max-q", "exact-join",
              "est-join");
  for (size_t step = 0; step < setup.fact_parts.size(); ++step) {
    bool ood = false;
    if (step > 0) {
      auto ingest = engine.Ingest("fact", setup.fact_parts[step]);
      DDUP_CHECK_MSG(ingest.ok(), ingest.status().message().c_str());
      auto flushed = engine.Flush("fact");
      DDUP_CHECK_MSG(flushed.ok(), flushed.status().message().c_str());
      DDUP_CHECK(flushed.value().reports.size() == 1);
      ood = flushed.value().reports[0].test.is_ood;
      accumulated.Append(setup.fact_parts[step]);
    }

    storage::Table joined = setup.star.JoinWithFact(accumulated);
    std::vector<double> truths =
        ExactJoinCounts(joined, setup.star.fact, queries);
    const double exact_join = static_cast<double>(joined.num_rows());

    for (const std::string& combiner : api::RegisteredJoinCombiners()) {
      auto estimates = router.EstimateCardinalityBatch(join_batch, combiner);
      DDUP_CHECK_MSG(estimates.ok(), estimates.status().message().c_str());
      auto unpred = router.EstimateCardinality(unpredicated, combiner);
      DDUP_CHECK_MSG(unpred.ok(), unpred.status().message().c_str());

      // Score only queries whose exact join count is positive (the q-error
      // is undefined at zero); report how many were dropped.
      std::vector<double> est_scored, truth_scored;
      for (size_t i = 0; i < truths.size(); ++i) {
        if (truths[i] > 0.0) {
          est_scored.push_back(estimates.value()[i]);
          truth_scored.push_back(truths[i]);
        }
      }
      workload::ErrorSummary summary =
          workload::Summarize(QErrors(est_scored, truth_scored));
      std::printf("  %-5zu %6s | %-16s %8.2f %8.2f %8.2f | %12.0f %12.1f\n",
                  step, ood ? "yes" : "no", combiner.c_str(), summary.median,
                  summary.p95, summary.max, exact_join, unpred.value());

      JsonObject row;
      row.Set("schema", setup.name)
          .Set("step", static_cast<int64_t>(step))
          .Set("ood", ood)
          .Set("combiner", combiner)
          .Set("queries_scored", static_cast<int64_t>(truth_scored.size()))
          .Set("queries_total", static_cast<int64_t>(truths.size()))
          .Set("median_qerror", summary.median)
          .Set("p95_qerror", summary.p95)
          .Set("max_qerror", summary.max)
          .Set("exact_join_rows", exact_join)
          .Set("estimated_join_rows", unpred.value());
      emitter.AddRow(std::move(row));
    }
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 8",
              "3-table joins through Engine + QueryRouter: DARN on the fact "
              "stream, exact dim stats, both join combiners vs exact counts",
              params);
  BenchJsonEmitter emitter("fig8_joins", params);
  emitter.SetParam("combiners", "join-uniformity,fanout-scaling")
      .SetParam("fact_partitions", static_cast<int64_t>(5));
  for (const std::string& name : {std::string("imdb"), std::string("tpch")}) {
    std::printf("\n%s [join COUNT via router]\n", name.c_str());
    JoinSetup setup = MakeJoinSetup(name, params);
    RunSchema(setup, params, emitter);
  }
  emitter.Write();
  std::printf(
      "\nshape check: IMDB signals OOD on later partitions (the served DARN "
      "keeps tracking the stream); both combiners agree on the clean-FK "
      "unpredicated join size, and their per-query q-errors isolate the "
      "combination assumptions on top of the single-table estimates.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
