// Reproduces paper Figure 9: the distillation ablation. "AggTrain" drops the
// teacher term of Eq. 5 and simply trains a fresh base-config model on
// (transfer set ∪ new batch). Expected shape: DDUp's 95th-percentile
// q-error beats AggTrain on every dataset — the teacher's knowledge matters
// beyond the raw old-data sample.
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Figure 9", "effect of distillation: DDUp vs AggTrain (95th "
              "q-error)", params);
  std::printf("%-8s %-5s | %10s %10s\n", "dataset", "model", "DDUp",
              "AggTrain");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    Rng rng(params.seed + 127);
    storage::Table transfer = storage::SampleFraction(bundle.base, rng, 0.10);
    storage::Table agg_data = Union(transfer, bundle.ood_batch);

    {
      Rng qrng(params.seed + 131);
      auto queries = AqpCountQueries(bundle, params, qrng);
      auto truth_after = workload::ExecuteAll(after, queries);
      Approaches<models::Mdn> a = RunApproaches<models::Mdn>(bundle, bundle.ood_batch, params);
      // AggTrain: same architecture/config, trained only on transfer ∪ new;
      // metadata still tracks the full table (it is cheap and exact).
      models::Mdn agg(agg_data, bundle.aqp.categorical, bundle.aqp.numeric,
                      MdnConfigFor(params));
      agg.ResetMetadata();
      agg.AbsorbMetadata(after);
      double ddup_p95 = workload::Summarize(
                            QErrors(EstimateAll(*a.ddup, queries, bundle.base),
                                    truth_after))
                            .p95;
      double agg_p95 = workload::Summarize(
                           QErrors(EstimateAll(agg, queries, bundle.base),
                                   truth_after))
                           .p95;
      std::printf("%-8s %-5s | %10.2f %10.2f\n", name.c_str(), "mdn", ddup_p95,
                  agg_p95);
    }
    {
      Rng qrng(params.seed + 137);
      auto queries = NaruCountQueries(bundle, params, qrng);
      auto truth_after = workload::ExecuteAll(after, queries);
      Approaches<models::Darn> a = RunApproaches<models::Darn>(bundle, bundle.ood_batch, params);
      models::Darn agg(agg_data, DarnConfigFor(params));
      agg.ResetMetadata();
      agg.AbsorbMetadata(after);
      double ddup_p95 =
          workload::Summarize(QErrors(EstimateAll(*a.ddup, queries),
                                      truth_after))
              .p95;
      double agg_p95 = workload::Summarize(
                           QErrors(EstimateAll(agg, queries), truth_after))
                           .p95;
      std::printf("%-8s %-5s | %10.2f %10.2f\n", name.c_str(), "darn",
                  ddup_p95, agg_p95);
    }
  }
  std::printf(
      "\nshape check: DDUp <= AggTrain on the 95th percentile — the "
      "distilled teacher adds information the transfer set alone lacks.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
