// Model-level microbenchmarks (google-benchmark): per-query inference and
// per-batch detection costs of the learned components. Not a paper artifact.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/harness.h"
#include "core/detector.h"
#include "models/spn.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

struct Shared {
  BenchParams params;
  DatasetBundle bundle;
  std::unique_ptr<models::Mdn> mdn;
  std::unique_ptr<models::Darn> darn;
  std::unique_ptr<models::Tvae> tvae;
  std::unique_ptr<models::Spn> spn;
  std::vector<workload::Query> aqp_queries;
  std::vector<workload::Query> naru_queries;

  Shared() : params(BenchParams::FromEnv()), bundle(MakeBundle("census", params)) {
    params.rows = 2000;  // inference benches need less data
    bundle = MakeBundle("census", params);
    mdn = std::make_unique<models::Mdn>(bundle.base, bundle.aqp.categorical,
                                        bundle.aqp.numeric,
                                        MdnConfigFor(params));
    darn = std::make_unique<models::Darn>(bundle.base, DarnConfigFor(params));
    tvae = std::make_unique<models::Tvae>(bundle.base, TvaeConfigFor(params));
    spn = std::make_unique<models::Spn>(bundle.base, models::SpnConfig{});
    Rng rng(params.seed);
    aqp_queries = AqpCountQueries(bundle, params, rng);
    naru_queries = NaruCountQueries(bundle, params, rng);
  }
};

Shared& shared() {
  static Shared* s = new Shared();
  return *s;
}

void BM_MdnEstimateAqp(benchmark::State& state) {
  Shared& s = shared();
  size_t i = 0;
  for (auto _ : state) {
    double v = s.mdn->EstimateAqp(s.aqp_queries[i % s.aqp_queries.size()],
                                  s.bundle.base);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_MdnEstimateAqp);

void BM_DarnEstimateCardinality(benchmark::State& state) {
  Shared& s = shared();
  size_t i = 0;
  for (auto _ : state) {
    double v =
        s.darn->EstimateCardinality(s.naru_queries[i % s.naru_queries.size()]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_DarnEstimateCardinality);

void BM_SpnEstimateCardinality(benchmark::State& state) {
  Shared& s = shared();
  size_t i = 0;
  for (auto _ : state) {
    double v =
        s.spn->EstimateCardinality(s.naru_queries[i % s.naru_queries.size()]);
    benchmark::DoNotOptimize(v);
    ++i;
  }
}
BENCHMARK(BM_SpnEstimateCardinality);

void BM_TvaeSample256(benchmark::State& state) {
  Shared& s = shared();
  Rng rng(7);
  for (auto _ : state) {
    auto t = s.tvae->Sample(256, rng);
    benchmark::DoNotOptimize(t.num_rows());
  }
}
BENCHMARK(BM_TvaeSample256);

void BM_DetectorOnlineTest(benchmark::State& state) {
  Shared& s = shared();
  core::DetectorConfig config;
  config.bootstrap_iterations = 64;
  core::OodDetector detector(config);
  detector.Fit(*s.mdn, s.bundle.base);
  for (auto _ : state) {
    auto res = detector.Test(*s.mdn, s.bundle.ood_batch);
    benchmark::DoNotOptimize(res.statistic);
  }
}
BENCHMARK(BM_DetectorOnlineTest);

void BM_ExactScanGroundTruth(benchmark::State& state) {
  Shared& s = shared();
  size_t i = 0;
  for (auto _ : state) {
    auto r = workload::Execute(s.bundle.base,
                               s.naru_queries[i % s.naru_queries.size()]);
    benchmark::DoNotOptimize(r.value);
    ++i;
  }
}
BENCHMARK(BM_ExactScanGroundTruth);

}  // namespace
}  // namespace ddup::bench

BENCHMARK_MAIN();
