// Substrate microbenchmarks (google-benchmark): the tensor/autodiff kernels
// every learned component sits on. Not a paper artifact; used to track the
// cost model of the NN substrate. items_per_second on the matmul benches is
// FLOP/s (2*n^3 per iteration); the 256 point is the ROADMAP reference.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/kernels.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/pool.h"

namespace ddup::nn {
namespace {

void BM_MatMulValue(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Randn(rng, n, n);
  Matrix b = Matrix::Randn(rng, n, n);
  for (auto _ : state) {
    Matrix c = MatMulValue(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_MatMulValue)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The allocation-free path the ops actually use: GEMM into a caller buffer.
void BM_GemmInto(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix a = Matrix::Randn(rng, n, n);
  Matrix b = Matrix::Randn(rng, n, n);
  Matrix c(n, n);
  for (auto _ : state) {
    GemmInto(a, b, /*accumulate=*/false, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
  state.SetLabel(GemmKernelName());
}
BENCHMARK(BM_GemmInto)->Arg(64)->Arg(128)->Arg(256);

// Fused relu(x*W + b) forward vs. the unfused three-node graph.
void BM_AffineReluForward(benchmark::State& state) {
  Rng rng(2);
  Variable x = Constant(Matrix::Randn(rng, 128, 64));
  Variable w = Parameter(Matrix::Randn(rng, 64, 64));
  Variable b = Parameter(Matrix::Randn(rng, 1, 64));
  for (auto _ : state) {
    Variable y = AffineRelu(x, w, b);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_AffineReluForward);

void BM_UnfusedLinearReluForward(benchmark::State& state) {
  Rng rng(2);
  Variable x = Constant(Matrix::Randn(rng, 128, 64));
  Variable w = Parameter(Matrix::Randn(rng, 64, 64));
  Variable b = Parameter(Matrix::Randn(rng, 1, 64));
  for (auto _ : state) {
    Variable y = Relu(Add(MatMul(x, w), b));
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_UnfusedLinearReluForward);

void BM_SoftmaxForward(benchmark::State& state) {
  Rng rng(2);
  Variable x = Constant(Matrix::Randn(rng, 256, 64));
  for (auto _ : state) {
    Variable y = Softmax(x);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_SoftmaxForward);

// Full training step over an MLP; reports the MatrixPool behavior per step
// (heap_allocs_per_iter ~ 0 once the pool is warm).
void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(3);
  Mlp mlp({64, 64, 64, 8}, rng);
  std::vector<Variable> params;
  mlp.CollectParameters(&params);
  Variable x = Constant(Matrix::Randn(rng, 128, 64));
  MatrixPool::Counters before = MatrixPool::AggregateCounters();
  for (auto _ : state) {
    for (auto& p : params) p.ZeroGrad();
    Variable loss = Mean(Square(mlp.Forward(x)));
    Backward(loss);
    benchmark::DoNotOptimize(params[0].grad().data());
  }
  MatrixPool::Counters after = MatrixPool::AggregateCounters();
  double iters = static_cast<double>(state.iterations());
  state.counters["heap_allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(after.heap_allocs - before.heap_allocs) / iters);
  state.counters["pool_acquires_per_iter"] = benchmark::Counter(
      static_cast<double>(after.acquires - before.acquires) / iters);
}
BENCHMARK(BM_MlpForwardBackward);

void BM_AdamStep(benchmark::State& state) {
  Rng rng(4);
  std::vector<Variable> params;
  for (int i = 0; i < 8; ++i) {
    params.push_back(Parameter(Matrix::Randn(rng, 64, 64)));
  }
  Adam opt(params, 1e-3);
  // Seed gradients once; Step reads whatever is there.
  Variable loss = Mean(Square(MatMul(params[0], params[1])));
  Backward(loss);
  for (auto _ : state) {
    opt.Step();
  }
}
BENCHMARK(BM_AdamStep);

void BM_EmbeddingGather(benchmark::State& state) {
  Rng rng(5);
  Variable table = Parameter(Matrix::Randn(rng, 512, 64));
  std::vector<int> idx(256);
  for (size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<int>(rng.UniformInt(0, 511));
  }
  for (auto _ : state) {
    Variable g = Rows(table, idx);
    benchmark::DoNotOptimize(g.value().data());
  }
}
BENCHMARK(BM_EmbeddingGather);

}  // namespace
}  // namespace ddup::nn

BENCHMARK_MAIN();
