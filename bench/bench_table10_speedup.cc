// Reproduces paper Table 10: DDUp's update-time speed-up over retraining
// from scratch, for two update sizes (sp1 = 20% of the base table, sp2 = 5%).
// Expected shape: speed-ups > 1 everywhere and larger for the smaller
// update (the paper reports up to ~9x, and ~18x for late join partitions).
#include <cstdio>

#include "bench/harness.h"
#include "storage/transforms.h"

namespace ddup::bench {
namespace {

template <typename RunFn>
void Row(const std::string& dataset, const std::string& model,
         const DatasetBundle& bundle, const BenchParams& params, RunFn run) {
  Rng rng(params.seed + 139);
  storage::Table sp1 = bundle.ood_batch;  // 20%
  storage::Table sp2 = storage::OutOfDistributionSample(bundle.base, rng, 0.05);
  auto a1 = run(bundle, sp1, params);
  auto a2 = run(bundle, sp2, params);
  std::printf("%-8s %-5s | %6.1fx (%6.2fs vs %6.2fs) | %6.1fx (%6.2fs vs "
              "%6.2fs)\n",
              dataset.c_str(), model.c_str(),
              a1.retrain_seconds / std::max(1e-9, a1.ddup_seconds),
              a1.ddup_seconds, a1.retrain_seconds,
              a2.retrain_seconds / std::max(1e-9, a2.ddup_seconds),
              a2.ddup_seconds, a2.retrain_seconds);
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 10", "DDUp speed-up over retrain (sp1=20%, sp2=5%)",
              params);
  std::printf("%-8s %-5s | %28s | %28s\n", "dataset", "model",
              "sp1: speedup (ddup vs retrain)", "sp2");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    Row(name, "mdn", bundle, params,
        [](const DatasetBundle& b, const storage::Table& batch,
           const BenchParams& p) { return RunApproaches<models::Mdn>(b, batch, p); });
    Row(name, "darn", bundle, params,
        [](const DatasetBundle& b, const storage::Table& batch,
           const BenchParams& p) { return RunApproaches<models::Darn>(b, batch, p); });
    Row(name, "tvae", bundle, params,
        [](const DatasetBundle& b, const storage::Table& batch,
           const BenchParams& p) { return RunApproaches<models::Tvae>(b, batch, p); });
  }
  std::printf(
      "\nshape check: every speed-up > 1x and sp2 (smaller update) gives a "
      "larger speed-up than sp1.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
