// Reproduces paper Table 11: OOD-detection cost, split into the offline
// phase (bootstrapping the sampling distribution; amortized, runs before
// insertions) and the online phase (one two-sample test per insertion).
// Expected shape: online time orders of magnitude below offline time.
#include <cstdio>

#include "bench/harness.h"
#include "common/stopwatch.h"
#include "core/detector.h"

namespace ddup::bench {
namespace {

template <typename ModelT>
void Row(const std::string& dataset, const std::string& model_name,
         const ModelT& model, const DatasetBundle& bundle,
         const BenchParams& params) {
  core::DetectorConfig config;
  config.bootstrap_iterations = params.bootstrap_iterations;
  config.seed = params.seed + 149;
  core::OodDetector detector(config);
  Stopwatch offline;
  detector.Fit(model, bundle.base);
  double off_s = offline.ElapsedSeconds();
  Stopwatch online;
  detector.Test(model, bundle.ood_batch);
  double on_s = online.ElapsedSeconds();
  std::printf("%-8s %-5s | %10.3f | %10.4f | %8.1fx\n", dataset.c_str(),
              model_name.c_str(), off_s, on_s, off_s / std::max(1e-9, on_s));
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 11", "detection overhead: offline vs online seconds",
              params);
  std::printf("%-8s %-5s | %10s | %10s | %9s\n", "dataset", "model",
              "offline(s)", "online(s)", "off/on");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    models::Mdn mdn(bundle.base, bundle.aqp.categorical, bundle.aqp.numeric,
                    MdnConfigFor(params));
    Row(name, "mdn", mdn, bundle, params);
    models::Darn darn(bundle.base, DarnConfigFor(params));
    Row(name, "darn", darn, bundle, params);
    models::Tvae tvae(bundle.base, TvaeConfigFor(params));
    Row(name, "tvae", tvae, bundle, params);
  }
  std::printf(
      "\nshape check: the online test is interactive (milliseconds-scale) "
      "while the offline bootstrap dominates, as in the paper.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
