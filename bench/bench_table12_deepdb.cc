// Reproduces paper Table 12: the non-NN reference point. DeepDB-style SPN
// with its native cheap insert-update vs retraining it from scratch, against
// DARN+DDUp, on CE q-error after a 20% OOD insertion. Expected shape: the
// SPN's update degrades relative to its retrain; DDUp(DARN) keeps M0-level
// accuracy.
#include <cstdio>

#include "bench/harness.h"
#include "models/spn.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

workload::ErrorSummary SpnErrors(const models::Spn& spn,
                                 const std::vector<workload::Query>& queries,
                                 const std::vector<double>& truth) {
  std::vector<double> est;
  est.reserve(queries.size());
  for (const auto& q : queries) est.push_back(spn.EstimateCardinality(q));
  return workload::Summarize(QErrors(est, truth));
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 12", "DeepDB-style SPN updates vs DDUp(DARN)", params);
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    Rng qrng(params.seed + 151);
    auto queries = NaruCountQueries(bundle, params, qrng);
    auto truth_before = workload::ExecuteAll(bundle.base, queries);
    auto truth_after = workload::ExecuteAll(after, queries);

    models::SpnConfig spn_config;
    models::Spn spn(bundle.base, spn_config);
    auto spn_m0 = SpnErrors(spn, queries, truth_before);
    spn.Update(bundle.ood_batch);  // DeepDB's native cheap update
    auto spn_updated = SpnErrors(spn, queries, truth_after);
    models::Spn spn_retrained(bundle.base, spn_config);
    spn_retrained.Rebuild(after);
    auto spn_retrain = SpnErrors(spn_retrained, queries, truth_after);

    Approaches<models::Darn> a = RunApproaches<models::Darn>(bundle, bundle.ood_batch, params);
    auto darn_m0 = workload::Summarize(
        QErrors(EstimateAll(*a.m0, queries), truth_before));
    auto darn_ddup = workload::Summarize(
        QErrors(EstimateAll(*a.ddup, queries), truth_after));

    std::printf("\n%s%20s %9s %9s %10s\n", name.c_str(), "median", "95th",
                "99th", "max");
    std::printf("%s\n", FormatRow("spn-M0", spn_m0).c_str());
    std::printf("%s\n", FormatRow("spn-upd", spn_updated).c_str());
    std::printf("%s\n", FormatRow("spn-retr", spn_retrain).c_str());
    std::printf("%s\n", FormatRow("darn-M0", darn_m0).c_str());
    std::printf("%s\n", FormatRow("darn-DDUp", darn_ddup).c_str());
  }
  std::printf(
      "\nshape check: spn-upd worse than spn-retr (its update cannot "
      "restructure); darn-DDUp stays at darn-M0 levels and beats spn-upd "
      "at the tail.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
