// Reproduces paper Table 2: average log-likelihood (MDN, DARN) and ELBO
// (TVAE) of (a) a fresh sample of the training data, (b) an IND 20% sample
// of a straight copy, and (c) an OOD 20% sample of the permuted copy.
// Expected shape: S_old ~= IND, OOD clearly worse (lower log-likelihood /
// higher ELBO), with DBEst++/MDN showing the smallest gap (§5.2.1).
#include <cstdio>

#include "bench/harness.h"
#include "storage/sampling.h"

namespace ddup::bench {
namespace {

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 2", "loss/log-likelihood signals for Sold / IND / OOD",
              params);
  std::printf("%-8s | %28s | %28s | %28s\n", "dataset", "MDN (loglik)",
              "DARN (loglik)", "TVAE (ELBO)");
  std::printf("%-8s | %9s %9s %8s | %9s %9s %8s | %9s %9s %8s\n", "", "Sold",
              "IND", "OOD", "Sold", "IND", "OOD", "Sold", "IND", "OOD");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    Rng rng(params.seed + 3);
    storage::Table s_old = storage::SampleFraction(bundle.base, rng, 0.2);

    models::Mdn mdn(bundle.base, bundle.aqp.categorical, bundle.aqp.numeric,
                    MdnConfigFor(params));
    models::Darn darn(bundle.base, DarnConfigFor(params));
    models::Tvae tvae(bundle.base, TvaeConfigFor(params));

    std::printf(
        "%-8s | %9.3f %9.3f %8.3f | %9.3f %9.3f %8.3f | %9.3f %9.3f %8.3f\n",
        name.c_str(), mdn.AverageLogLikelihood(s_old),
        mdn.AverageLogLikelihood(bundle.ind_batch),
        mdn.AverageLogLikelihood(bundle.ood_batch),
        darn.AverageLogLikelihood(s_old),
        darn.AverageLogLikelihood(bundle.ind_batch),
        darn.AverageLogLikelihood(bundle.ood_batch), tvae.Elbo(s_old),
        tvae.Elbo(bundle.ind_batch), tvae.Elbo(bundle.ood_batch));
  }
  std::printf(
      "\nshape check: Sold ~= IND for every model; OOD loglik lower / ELBO "
      "higher.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
