// Reproduces paper Table 3: the bootstrapped two-sample test internals —
// bootstrap mean, threshold (2 * std), and the observed test statistic for
// IND and OOD batches, per model per dataset. Expected shape: IND statistic
// below threshold, OOD statistic orders of magnitude above it.
#include <cstdio>

#include "bench/harness.h"
#include "core/detector.h"

namespace ddup::bench {
namespace {

void Row(const std::string& dataset, const std::string& model_name,
         const core::LossModel& model, const DatasetBundle& bundle,
         const BenchParams& params) {
  core::DetectorConfig config;
  config.bootstrap_iterations = params.bootstrap_iterations;
  config.seed = params.seed + 5;
  core::OodDetector detector(config);
  detector.Fit(model, bundle.base);
  auto ind = detector.Test(model, bundle.ind_batch);
  auto ood = detector.Test(model, bundle.ood_batch);
  std::printf("%-8s %-5s | %10.4f %10.4f | %10.4f %-3s | %12.4f %-3s\n",
              dataset.c_str(), model_name.c_str(), detector.bootstrap_mean(),
              ind.threshold, ind.statistic, ind.is_ood ? "OOD" : "ind",
              ood.statistic, ood.is_ood ? "OOD" : "ind");
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 3", "two-sample test statistics vs thresholds", params);
  std::printf("%-8s %-5s | %10s %10s | %14s | %16s\n", "dataset", "model",
              "bs-mean", "threshold", "IND stat", "OOD stat");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    models::Mdn mdn(bundle.base, bundle.aqp.categorical, bundle.aqp.numeric,
                    MdnConfigFor(params));
    Row(name, "mdn", mdn, bundle, params);
    models::Darn darn(bundle.base, DarnConfigFor(params));
    Row(name, "darn", darn, bundle, params);
    models::Tvae tvae(bundle.base, TvaeConfigFor(params));
    Row(name, "tvae", tvae, bundle, params);
  }
  std::printf(
      "\nshape check: IND statistic < threshold; OOD statistic >> "
      "threshold for every model/dataset.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
