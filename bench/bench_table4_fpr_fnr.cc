// Reproduces paper Table 4 (+ the Naru/TVAE zero-rate claim of §5.2.3):
// false-positive and false-negative rates of the OOD detector. The OOD
// test set is built exactly like the paper's: progressively permute columns
// C1, C1..C2, ..., C1..C5, sampling 10% of the table after each perturbation
// — a finer-grained (harder) OOD mix than the all-columns sort.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "core/detector.h"
#include "storage/sampling.h"
#include "storage/transforms.h"

namespace ddup::bench {
namespace {

// `column_order` controls which columns play the role of C1..C5. The paper
// perturbs columns the models actually condition on; a conditional model
// like the MDN is (correctly) blind to drift in columns outside its view,
// so its C1/C2 must be the query-template columns.
storage::Table BuildOodTestSet(const storage::Table& base,
                               const std::vector<int>& column_order,
                               Rng& rng) {
  storage::Table ood;
  size_t max_cols = std::min<size_t>(5, column_order.size());
  std::vector<int> cols;
  for (size_t c = 0; c < max_cols; ++c) {
    cols.push_back(column_order[c]);
    storage::Table permuted =
        storage::PermuteJointDistributionOfColumns(base, cols, rng);
    storage::Table sample = storage::SampleFraction(permuted, rng, 0.10);
    if (ood.num_rows() == 0) {
      ood = sample;
    } else {
      ood.Append(sample);
    }
  }
  return ood;
}

// Template columns first, then the remaining columns in schema order.
std::vector<int> ColumnOrderFor(const DatasetBundle& bundle) {
  std::vector<int> order = {
      bundle.base.ColumnIndex(bundle.aqp.categorical),
      bundle.base.ColumnIndex(bundle.aqp.numeric)};
  for (int c = 0; c < bundle.base.num_columns(); ++c) {
    if (c != order[0] && c != order[1]) order.push_back(c);
  }
  return order;
}

struct Rates {
  double fpr = 0.0, fnr = 0.0;
  int negatives = 0, positives = 0;
};

Rates Measure(const core::LossModel& model, const storage::Table& base,
              const storage::Table& ind_set, const storage::Table& ood_set,
              int64_t batch_size, int num_batches, const BenchParams& params) {
  core::DetectorConfig config;
  config.bootstrap_iterations = params.bootstrap_iterations;
  config.seed = params.seed + 7;
  core::OodDetector detector(config);
  detector.Fit(model, base);

  Rng rng(params.seed + 9);
  Rates r;
  int fp = 0, fn = 0;
  for (int i = 0; i < num_batches; ++i) {
    storage::Table ind_batch = storage::SampleRows(
        ind_set, rng, std::min<int64_t>(batch_size, ind_set.num_rows()));
    ++r.negatives;
    if (detector.Test(model, ind_batch).is_ood) ++fp;
    storage::Table ood_batch = storage::SampleRows(
        ood_set, rng, std::min<int64_t>(batch_size, ood_set.num_rows()));
    ++r.positives;
    if (!detector.Test(model, ood_batch).is_ood) ++fn;
  }
  // Rates over the actual label counts — not num_batches, which only
  // coincides with them because this grid happens to be balanced.
  r.fpr = r.negatives > 0 ? static_cast<double>(fp) / r.negatives : 0.0;
  r.fnr = r.positives > 0 ? static_cast<double>(fn) / r.positives : 0.0;
  return r;
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 4", "detector FPR / FNR (per-column perturbation mix)",
              params);
  constexpr int kBatches = 100;
  constexpr int64_t kBatchSize = 1000;
  BenchJsonEmitter json("table4_fpr_fnr", params);
  std::printf("%-8s | %12s | %12s | %12s\n", "dataset", "MDN fpr/fnr",
              "DARN fpr/fnr", "TVAE fpr/fnr");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    Rng rng(params.seed + 11);
    storage::Table ind_set = storage::SampleFraction(bundle.base, rng, 0.5);
    storage::Table ood_set =
        BuildOodTestSet(bundle.base, ColumnOrderFor(bundle), rng);

    models::Mdn mdn(bundle.base, bundle.aqp.categorical, bundle.aqp.numeric,
                    MdnConfigFor(params));
    Rates m = Measure(mdn, bundle.base, ind_set, ood_set, kBatchSize, kBatches,
                      params);
    models::Darn darn(bundle.base, DarnConfigFor(params));
    Rates d = Measure(darn, bundle.base, ind_set, ood_set, kBatchSize,
                      kBatches, params);
    models::Tvae tvae(bundle.base, TvaeConfigFor(params));
    Rates t = Measure(tvae, bundle.base, ind_set, ood_set, kBatchSize,
                      kBatches, params);
    std::printf("%-8s | %5.2f %5.2f  | %5.2f %5.2f  | %5.2f %5.2f\n",
                name.c_str(), m.fpr, m.fnr, d.fpr, d.fnr, t.fpr, t.fnr);
    const struct { const char* model; const Rates* rates; } rows[] = {
        {"mdn", &m}, {"darn", &d}, {"tvae", &t}};
    for (const auto& row : rows) {
      json.AddRow(JsonObject()
                      .Set("dataset", name)
                      .Set("model", row.model)
                      .Set("fpr", row.rates->fpr)
                      .Set("fnr", row.rates->fnr)
                      .Set("negatives", row.rates->negatives)
                      .Set("positives", row.rates->positives));
    }
  }
  json.Write();
  std::printf(
      "\nshape check: FNR ~ 0 everywhere; FPR small (the paper reports "
      "<= 0.15 for DBEst++ and 0 for Naru/TVAE).\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
