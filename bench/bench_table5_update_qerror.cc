// Reproduces paper Table 5: COUNT q-error (median/95th/99th/max) after
// inserting a 20% permuted (OOD) sample, for the MDN (DBEst++-style) and
// DARN (Naru-style) estimators under M0 / DDUp / baseline / stale / retrain.
// Expected shape: baseline blows up at the tail; DDUp tracks retrain; stale
// sits in between.
#include <cstdio>

#include "bench/harness.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

void EmitRow(BenchJsonEmitter* json, const std::string& dataset,
             const std::string& model, const std::string& approach,
             const workload::ErrorSummary& s) {
  json->AddRow(JsonObject()
                   .Set("dataset", dataset)
                   .Set("model", model)
                   .Set("approach", approach)
                   .Set("median", s.median)
                   .Set("p95", s.p95)
                   .Set("p99", s.p99)
                   .Set("max", s.max)
                   .Set("mean", s.mean));
}

void PrintBlock(const std::string& model_name, const std::string& dataset,
                const std::string& model_key, BenchJsonEmitter* json,
                const std::vector<double>& truth_before,
                const std::vector<double>& truth_after,
                const std::vector<double>& m0, const std::vector<double>& ddup,
                const std::vector<double>& baseline,
                const std::vector<double>& stale,
                const std::vector<double>& retrain) {
  using workload::Summarize;
  std::printf("  [%s]%16s %9s %9s %10s\n", model_name.c_str(), "median",
              "95th", "99th", "max");
  const struct {
    const char* label;
    workload::ErrorSummary summary;
  } rows[] = {{"M0", Summarize(QErrors(m0, truth_before))},
              {"DDUp", Summarize(QErrors(ddup, truth_after))},
              {"baseline", Summarize(QErrors(baseline, truth_after))},
              {"stale", Summarize(QErrors(stale, truth_after))},
              {"retrain", Summarize(QErrors(retrain, truth_after))}};
  for (const auto& row : rows) {
    std::printf("%s\n", FormatRow(row.label, row.summary).c_str());
    EmitRow(json, dataset, model_key, row.label, row.summary);
  }
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 5", "q-error after a 20% OOD insertion", params);
  BenchJsonEmitter json("table5_update_qerror", params);
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    std::printf("\n%s\n", name.c_str());

    {
      Rng qrng(params.seed + 41);
      auto queries = AqpCountQueries(bundle, params, qrng);
      auto truth_before = workload::ExecuteAll(bundle.base, queries);
      auto truth_after = workload::ExecuteAll(after, queries);
      Approaches<models::Mdn> a = RunApproaches<models::Mdn>(bundle, bundle.ood_batch, params);
      PrintBlock("MDN / DBEst++-style", name, "mdn", &json, truth_before,
                 truth_after,
                 EstimateAll(*a.m0, queries, bundle.base),
                 EstimateAll(*a.ddup, queries, bundle.base),
                 EstimateAll(*a.baseline, queries, bundle.base),
                 EstimateAll(*a.stale, queries, bundle.base),
                 EstimateAll(*a.retrain, queries, bundle.base));
    }
    {
      Rng qrng(params.seed + 43);
      auto queries = NaruCountQueries(bundle, params, qrng);
      auto truth_before = workload::ExecuteAll(bundle.base, queries);
      auto truth_after = workload::ExecuteAll(after, queries);
      Approaches<models::Darn> a = RunApproaches<models::Darn>(bundle, bundle.ood_batch, params);
      PrintBlock("DARN / Naru-style", name, "darn", &json, truth_before,
                 truth_after,
                 EstimateAll(*a.m0, queries), EstimateAll(*a.ddup, queries),
                 EstimateAll(*a.baseline, queries),
                 EstimateAll(*a.stale, queries),
                 EstimateAll(*a.retrain, queries));
    }
  }
  json.Write();
  std::printf(
      "\nshape check: DDUp ~= retrain at every percentile; baseline "
      "degrades sharply at 95th/99th; stale worse than DDUp.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
