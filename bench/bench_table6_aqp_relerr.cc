// Reproduces paper Table 6: mean relative error (%) of SUM and AVG
// aggregates for the MDN AQP engine after a 20% OOD insertion, under the
// five approaches. Expected shape: DDUp close to retrain/M0; baseline much
// worse; stale in between.
#include <cstdio>

#include "bench/harness.h"
#include "common/stats.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

std::vector<workload::Query> WithAgg(std::vector<workload::Query> queries,
                                     workload::AggFunc agg) {
  for (auto& q : queries) q.agg = agg;
  return queries;
}

double MeanRelErr(const models::Mdn& model,
                  const std::vector<workload::Query>& queries,
                  const storage::Table& schema,
                  const std::vector<double>& truths) {
  return Mean(RelErrors(EstimateAll(model, queries, schema), truths));
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 6", "mean relative error (%) of SUM / AVG (MDN AQP)",
              params);
  std::printf("%-8s %-4s | %8s %8s %9s %8s %8s\n", "dataset", "agg", "M0",
              "DDUp", "baseline", "stale", "retrain");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    Rng qrng(params.seed + 47);
    auto base_queries = AqpCountQueries(bundle, params, qrng);
    Approaches<models::Mdn> a = RunApproaches<models::Mdn>(bundle, bundle.ood_batch, params);

    for (auto agg : {workload::AggFunc::kSum, workload::AggFunc::kAvg}) {
      auto queries = WithAgg(base_queries, agg);
      auto truth_before = workload::ExecuteAll(bundle.base, queries);
      auto truth_after = workload::ExecuteAll(after, queries);
      std::printf("%-8s %-4s | %8.2f %8.2f %9.2f %8.2f %8.2f\n", name.c_str(),
                  agg == workload::AggFunc::kSum ? "SUM" : "AVG",
                  MeanRelErr(*a.m0, queries, bundle.base, truth_before),
                  MeanRelErr(*a.ddup, queries, bundle.base, truth_after),
                  MeanRelErr(*a.baseline, queries, bundle.base, truth_after),
                  MeanRelErr(*a.stale, queries, bundle.base, truth_after),
                  MeanRelErr(*a.retrain, queries, bundle.base, truth_after));
    }
  }
  std::printf(
      "\nshape check: DDUp within a few points of retrain; baseline the "
      "worst column; AVG errors much smaller than SUM errors.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
