// Reproduces paper Table 7: micro-F1 of a boosted-tree classifier trained on
// (r) real data vs (s) TVAE-synthesized data, evaluated on held-out real
// rows, after a 20% OOD insertion. Expected shape: DDUp's synthetic column
// close to the real column and to retrain's; baseline/stale synthetic
// columns clearly lower.
#include <cstdio>

#include "bench/harness.h"
#include "models/gbdt.h"
#include "storage/sampling.h"

namespace ddup::bench {
namespace {

double TrainAndScore(const storage::Table& train, const storage::Table& test,
                     const std::string& target) {
  models::GbdtConfig config;
  config.num_rounds = 15;
  models::Gbdt clf(config);
  clf.Train(train, target);
  return clf.MicroF1(test);
}

double SynthScore(const models::Tvae& model, int64_t rows,
                  const storage::Table& test, const std::string& target,
                  Rng& rng) {
  storage::Table synth = model.Sample(rows, rng);
  return TrainAndScore(synth, test, target);
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 7", "TVAE data generation: classifier micro-F1 (r|s)",
              params);
  std::printf("%-8s | %11s %11s %11s %11s %11s\n", "dataset", "M0", "DDUp",
              "baseline", "stale", "retrain");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    std::string target = datagen::ClassColumnFor(name);
    storage::Table after = Union(bundle.base, bundle.ood_batch);

    // Hold out 30% of the post-insertion table as the real test set.
    Rng split_rng(params.seed + 71);
    storage::Table shuffled = storage::ShuffleRows(after, split_rng);
    int64_t test_rows = shuffled.num_rows() * 3 / 10;
    storage::Table test = shuffled.Head(test_rows);
    std::vector<int64_t> train_idx;
    for (int64_t r = test_rows; r < shuffled.num_rows(); ++r) {
      train_idx.push_back(r);
    }
    storage::Table train_real = shuffled.TakeRows(train_idx);

    Approaches<models::Tvae> a = RunApproaches<models::Tvae>(bundle, bundle.ood_batch, params);

    Rng srng(params.seed + 73);
    double r_m0 = TrainAndScore(bundle.base, test, target);
    double r_new = TrainAndScore(train_real, test, target);
    int64_t synth_rows = train_real.num_rows();
    std::printf(
        "%-8s | %4.2f | %4.2f  %4.2f | %4.2f  %4.2f | %4.2f  %4.2f | %4.2f  "
        "%4.2f | %4.2f\n",
        name.c_str(), r_m0,
        SynthScore(*a.m0, synth_rows, test, target, srng), r_new,
        SynthScore(*a.ddup, synth_rows, test, target, srng), r_new,
        SynthScore(*a.baseline, synth_rows, test, target, srng), r_new,
        SynthScore(*a.stale, synth_rows, test, target, srng), r_new,
        SynthScore(*a.retrain, synth_rows, test, target, srng));
  }
  std::printf(
      "\ncolumns per approach: synthetic-F1 then real-F1 (real column is "
      "shared by the updated approaches).\n"
      "shape check: DDUp-synthetic ~= retrain-synthetic, both above "
      "baseline/stale synthetic.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
