// Reproduces paper Table 8: forward-transfer (FWT: q-error on queries whose
// ground truth changed) and backward-transfer (BWT: q-error on unchanged
// queries) after a 20% OOD insertion. Expected shape: baseline has good FWT
// but terrible BWT (catastrophic forgetting); stale the reverse
// (intransigence); DDUp balanced.
#include <cstdio>

#include "bench/harness.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

void PrintFwtBwt(const std::string& label, const std::vector<double>& est,
                 const std::vector<double>& truth_after,
                 const workload::FwtBwtSplit& split) {
  auto errors = QErrors(est, truth_after);
  auto fwt = workload::Summarize(workload::Select(errors, split.changed));
  auto bwt = workload::Summarize(workload::Select(errors, split.fixed));
  std::printf("  %-10s | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n",
              label.c_str(), fwt.median, fwt.p95, fwt.p99, bwt.median, bwt.p95,
              bwt.p99);
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 8", "FWT / BWT q-error decomposition (OOD insertion)",
              params);
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    std::printf("\n%s%23s | %28s\n", name.c_str(),
                "FWT (med/95/99)", "BWT (med/95/99)");

    {
      Rng qrng(params.seed + 53);
      auto queries = AqpCountQueries(bundle, params, qrng);
      auto truth_before = workload::ExecuteAll(bundle.base, queries);
      auto truth_after = workload::ExecuteAll(after, queries);
      auto split =
          workload::SplitByGroundTruthChange(truth_before, truth_after);
      std::printf("  [MDN] changed=%zu fixed=%zu\n", split.changed.size(),
                  split.fixed.size());
      Approaches<models::Mdn> a = RunApproaches<models::Mdn>(bundle, bundle.ood_batch, params);
      PrintFwtBwt("DDUp", EstimateAll(*a.ddup, queries, bundle.base),
                  truth_after, split);
      PrintFwtBwt("baseline", EstimateAll(*a.baseline, queries, bundle.base),
                  truth_after, split);
      PrintFwtBwt("stale", EstimateAll(*a.stale, queries, bundle.base),
                  truth_after, split);
    }
    {
      Rng qrng(params.seed + 59);
      auto queries = NaruCountQueries(bundle, params, qrng);
      auto truth_before = workload::ExecuteAll(bundle.base, queries);
      auto truth_after = workload::ExecuteAll(after, queries);
      auto split =
          workload::SplitByGroundTruthChange(truth_before, truth_after);
      std::printf("  [DARN] changed=%zu fixed=%zu\n", split.changed.size(),
                  split.fixed.size());
      Approaches<models::Darn> a = RunApproaches<models::Darn>(bundle, bundle.ood_batch, params);
      PrintFwtBwt("DDUp", EstimateAll(*a.ddup, queries), truth_after, split);
      PrintFwtBwt("baseline", EstimateAll(*a.baseline, queries), truth_after,
                  split);
      PrintFwtBwt("stale", EstimateAll(*a.stale, queries), truth_after, split);
    }
  }
  std::printf(
      "\nshape check: baseline FWT << baseline BWT; stale BWT << stale FWT; "
      "DDUp keeps the two close.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
