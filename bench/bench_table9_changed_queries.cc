// Reproduces paper Table 9: the percentage of time-0 queries whose ground
// truth changes after inserting the 20% sample — context for the FWT/BWT
// numbers of Table 8.
#include <cstdio>

#include "bench/harness.h"
#include "workload/executor.h"

namespace ddup::bench {
namespace {

double ChangedPercent(const storage::Table& before, const storage::Table& after,
                      const std::vector<workload::Query>& queries) {
  auto t0 = workload::ExecuteAll(before, queries);
  auto t1 = workload::ExecuteAll(after, queries);
  auto split = workload::SplitByGroundTruthChange(t0, t1);
  return 100.0 * static_cast<double>(split.changed.size()) /
         static_cast<double>(queries.size());
}

void Run() {
  BenchParams params = BenchParams::FromEnv();
  PrintBanner("Table 9", "% of queries with changed ground truth after insert",
              params);
  std::printf("%-8s | %16s | %16s\n", "dataset", "AQP-template (%)",
              "Naru-style (%)");
  for (const auto& name : datagen::DatasetNames()) {
    DatasetBundle bundle = MakeBundle(name, params);
    storage::Table after = Union(bundle.base, bundle.ood_batch);
    Rng rng1(params.seed + 61), rng2(params.seed + 67);
    auto aqp_queries = AqpCountQueries(bundle, params, rng1);
    auto naru_queries = NaruCountQueries(bundle, params, rng2);
    std::printf("%-8s | %16.1f | %16.1f\n", name.c_str(),
                ChangedPercent(bundle.base, after, aqp_queries),
                ChangedPercent(bundle.base, after, naru_queries));
  }
  std::printf(
      "\nshape check: a substantial fraction (tens of %%) of queries change; "
      "the rest anchor the BWT measurement.\n");
}

}  // namespace
}  // namespace ddup::bench

int main() { ddup::bench::Run(); }
