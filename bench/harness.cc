#include "bench/harness.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/kernels.h"
#include "nn/pool.h"
#include "storage/sampling.h"
#include "storage/transforms.h"
#include "workload/executor.h"

namespace ddup::bench {

namespace {
int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

// ---------------------------------------------------------------------------
// DDUP_CHECKPOINT_DIR warm-start cache (see harness.h).
// ---------------------------------------------------------------------------

// Creates `dir` if missing (single level); false if it cannot be used.
bool EnsureDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0755) == 0;
}

// Every config field participates in the cache key: any knob change (or a
// DDUP_ROWS/DDUP_SEED/DDUP_EPOCH_SCALE override, which feeds the epochs
// below) lands in a different file instead of silently reusing a stale model.
void WriteConfigKey(io::Serializer* key, const models::MdnConfig& c) {
  key->WriteI32(c.num_components);
  key->WriteI32(c.hidden_width);
  key->WriteI32(c.epochs);
  key->WriteI32(c.batch_size);
  key->WriteDouble(c.learning_rate);
  key->WriteU64(c.seed);
}

void WriteConfigKey(io::Serializer* key, const models::DarnConfig& c) {
  key->WriteI32(c.hidden_width);
  key->WriteI32(c.max_bins);
  key->WriteI32(c.epochs);
  key->WriteI32(c.batch_size);
  key->WriteDouble(c.learning_rate);
  key->WriteI32(c.progressive_samples);
  key->WriteU64(c.seed);
}

void WriteConfigKey(io::Serializer* key, const models::TvaeConfig& c) {
  key->WriteI32(c.latent_dim);
  key->WriteI32(c.hidden_width);
  key->WriteI32(c.epochs);
  key->WriteI32(c.batch_size);
  key->WriteDouble(c.learning_rate);
  key->WriteU64(c.seed);
}

// Cache file for the base model of (kind, dataset, bench params, config);
// "" when the cache is disabled or the directory is unusable.
template <typename ConfigT>
std::string BaseModelCachePath(const char* kind, const std::string& dataset,
                               const BenchParams& params,
                               const ConfigT& config) {
  const char* dir = std::getenv("DDUP_CHECKPOINT_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  if (!EnsureDir(dir)) {
    std::printf("  [ckpt] cannot use DDUP_CHECKPOINT_DIR=%s, training cold\n",
                dir);
    return "";
  }
  io::Serializer key;
  key.WriteString(kind);
  key.WriteString(dataset);
  key.WriteI64(params.rows);
  key.WriteU64(params.seed);
  WriteConfigKey(&key, config);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(io::Fnv1a64(key.buffer())));
  return std::string(dir) + "/" + kind + "_" + dataset + "_" + hex + ".ckpt";
}
}  // namespace

BenchParams BenchParams::FromEnv() {
  BenchParams p;
  p.rows = EnvInt("DDUP_ROWS", p.rows);
  p.num_queries = static_cast<int>(EnvInt("DDUP_QUERIES", p.num_queries));
  p.epoch_scale = EnvDouble("DDUP_EPOCH_SCALE", p.epoch_scale);
  p.bootstrap_iterations =
      static_cast<int>(EnvInt("DDUP_BOOTSTRAP", p.bootstrap_iterations));
  p.seed = static_cast<uint64_t>(EnvInt("DDUP_SEED", 42));
  return p;
}

int BenchParams::ScaledEpochs(int epochs) const {
  int scaled = static_cast<int>(std::lround(epochs * epoch_scale));
  return scaled < 1 ? 1 : scaled;
}

KernelStats MeasureKernelStats() {
  static const KernelStats cached = [] {
    KernelStats s;
    s.kernel = nn::GemmKernelName();
    Rng rng(12345);
    const int n = 256;
    nn::Matrix a = nn::Matrix::Randn(rng, n, n);
    nn::Matrix b = nn::Matrix::Randn(rng, n, n);
    nn::Matrix c(n, n);
    nn::GemmInto(a, b, /*accumulate=*/false, &c);  // warm-up
    Stopwatch sw;
    int reps = 0;
    do {
      nn::GemmInto(a, b, /*accumulate=*/false, &c);
      ++reps;
    } while (sw.ElapsedSeconds() < 0.05);
    s.gemm256_gflops = 2.0 * n * n * n * reps / sw.ElapsedSeconds() / 1e9;
    return s;
  }();
  return cached;
}

void PrintPoolCounters(const char* label) {
  static nn::MatrixPool::Counters last;
  nn::MatrixPool::Counters now = nn::MatrixPool::AggregateCounters();
  uint64_t acquires = now.acquires - last.acquires;
  uint64_t reuses = now.reuses - last.reuses;
  uint64_t heap = now.heap_allocs - last.heap_allocs;
  last = now;
  double reuse_rate =
      acquires > 0 ? 100.0 * static_cast<double>(reuses) /
                         static_cast<double>(acquires)
                   : 0.0;
  std::printf(
      "  [pool] %s: acquires=%llu reuse=%.1f%% heap_allocs=%llu\n", label,
      static_cast<unsigned long long>(acquires), reuse_rate,
      static_cast<unsigned long long>(heap));
}

DatasetBundle MakeBundle(const std::string& dataset,
                         const BenchParams& params) {
  DatasetBundle b;
  b.name = dataset;
  b.base = datagen::MakeDataset(dataset, params.rows, params.seed);
  Rng rng(params.seed + 1);
  b.ind_batch = storage::InDistributionSample(b.base, rng, 0.2);
  b.ood_batch = storage::OutOfDistributionSample(b.base, rng, 0.2);
  b.aqp = datagen::AqpColumnsFor(dataset);
  return b;
}

storage::Table Union(const storage::Table& base, const storage::Table& batch) {
  storage::Table all = base;
  all.Append(batch);
  return all;
}

models::MdnConfig MdnConfigFor(const BenchParams& params) {
  models::MdnConfig c;
  c.num_components = 8;
  c.hidden_width = 48;
  c.epochs = params.ScaledEpochs(20);
  c.learning_rate = 5e-3;
  c.seed = params.seed + 11;
  return c;
}

models::DarnConfig DarnConfigFor(const BenchParams& params) {
  models::DarnConfig c;
  c.hidden_width = 64;
  c.max_bins = 64;
  c.epochs = params.ScaledEpochs(16);
  c.learning_rate = 5e-3;
  c.progressive_samples = 32;
  c.seed = params.seed + 13;
  return c;
}

models::TvaeConfig TvaeConfigFor(const BenchParams& params) {
  models::TvaeConfig c;
  c.latent_dim = 8;
  c.hidden_width = 48;
  c.epochs = params.ScaledEpochs(15);
  c.learning_rate = 2e-3;
  c.seed = params.seed + 17;
  return c;
}

core::DistillConfig DistillConfigFor(const BenchParams& params) {
  core::DistillConfig c;
  c.lambda = 0.5;
  c.temperature = 2.0;
  c.epochs = params.ScaledEpochs(12);
  c.learning_rate = 1e-3;
  return c;
}

core::ControllerConfig ControllerConfigFor(const BenchParams& params) {
  core::ControllerConfig c;
  c.detector.bootstrap_iterations = params.bootstrap_iterations;
  c.detector.seed = params.seed + 19;
  c.policy.distill = DistillConfigFor(params);
  c.policy.finetune_epochs = params.ScaledEpochs(3);
  c.policy.transfer_fraction = 0.10;
  c.seed = params.seed + 23;
  return c;
}

std::vector<workload::Query> AqpCountQueries(const DatasetBundle& bundle,
                                             const BenchParams& params,
                                             Rng& rng) {
  workload::AqpWorkloadConfig config;
  config.categorical_column = bundle.aqp.categorical;
  config.numeric_column = bundle.aqp.numeric;
  config.agg = workload::AggFunc::kCount;
  return workload::GenerateNonEmptyAqpQueries(bundle.base, config,
                                              params.num_queries, rng);
}

std::vector<workload::Query> NaruCountQueries(const DatasetBundle& bundle,
                                              const BenchParams& params,
                                              Rng& rng) {
  workload::NaruWorkloadConfig config;
  config.min_filters = 2;
  config.max_filters = std::min(6, bundle.base.num_columns());
  return workload::GenerateNonEmptyNaruQueries(bundle.base, config,
                                               params.num_queries, rng);
}

std::vector<double> EstimateAll(const models::Mdn& model,
                                const std::vector<workload::Query>& queries,
                                const storage::Table& schema) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(model.EstimateAqp(q, schema));
  return out;
}

std::vector<double> EstimateAll(const models::Darn& model,
                                const std::vector<workload::Query>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(model.EstimateCardinality(q));
  return out;
}

std::vector<double> QErrors(const std::vector<double>& estimates,
                            const std::vector<double>& truths) {
  DDUP_CHECK(estimates.size() == truths.size());
  std::vector<double> out;
  out.reserve(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    out.push_back(workload::QError(estimates[i], truths[i]));
  }
  return out;
}

std::vector<double> RelErrors(const std::vector<double>& estimates,
                              const std::vector<double>& truths) {
  DDUP_CHECK(estimates.size() == truths.size());
  std::vector<double> out;
  out.reserve(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (truths[i] == 0.0) continue;
    out.push_back(workload::RelativeErrorPercent(estimates[i], truths[i]));
  }
  return out;
}

namespace {

// Applies the four update approaches to model copies. ModelT must be
// constructible identically from (bundle, config) via `make`. When
// `cache_path` is non-empty, the trained base model is loaded from /saved to
// that checkpoint instead of retraining for every approach: a load restores
// weights, metadata and the RNG stream, so each instance is bit-identical to
// a freshly trained one and all downstream updates reproduce cold-run
// results exactly.
template <typename ModelT, typename MakeFn>
void RunApproaches(const DatasetBundle& bundle, const storage::Table& batch,
                   const BenchParams& params, MakeFn make,
                   const std::string& cache_path,
                   std::unique_ptr<ModelT>* m0, std::unique_ptr<ModelT>* ddup,
                   std::unique_ptr<ModelT>* baseline,
                   std::unique_ptr<ModelT>* stale,
                   std::unique_ptr<ModelT>* retrain, double* ddup_seconds,
                   double* baseline_seconds, double* retrain_seconds) {
  int cache_hits = 0;
  int cold_trainings = 0;
  auto cached_make = [&]() -> std::unique_ptr<ModelT> {
    if (cache_path.empty()) {
      ++cold_trainings;
      return make();
    }
    StatusOr<std::unique_ptr<ModelT>> loaded = ModelT::LoadFromFile(cache_path);
    if (loaded.ok()) {
      ++cache_hits;
      return std::move(loaded).value();
    }
    ++cold_trainings;
    std::unique_ptr<ModelT> model = make();
    Status saved = model->SaveToFile(cache_path);
    if (!saved.ok()) {
      std::printf("  [ckpt] save failed: %s\n", saved.ToString().c_str());
    }
    return model;
  };

  *m0 = cached_make();
  *stale = cached_make();

  Rng rng(params.seed + 31);
  storage::Table transfer = storage::SampleFraction(bundle.base, rng, 0.10);
  core::DistillConfig distill = DistillConfigFor(params);
  // Eq. 5 weighting against the full old-data size (see controller.cc).
  distill.alpha =
      core::ResolveAlpha(distill, bundle.base.num_rows(), batch.num_rows());

  *ddup = cached_make();
  Stopwatch ddup_timer;
  (*ddup)->AbsorbMetadata(batch);
  (*ddup)->DistillUpdate(transfer, batch, distill);
  *ddup_seconds = ddup_timer.ElapsedSeconds();

  *baseline = cached_make();
  Stopwatch baseline_timer;
  (*baseline)->AbsorbMetadata(batch);
  // Paper baseline: SGD on the new data with a smaller learning rate.
  (*baseline)->FineTune(batch, kBaselineLrMultiplier * distill.learning_rate,
                        distill.epochs);
  *baseline_seconds = baseline_timer.ElapsedSeconds();

  *retrain = cached_make();
  Stopwatch retrain_timer;
  (*retrain)->RetrainFromScratch(Union(bundle.base, batch));
  *retrain_seconds = retrain_timer.ElapsedSeconds();

  if (!cache_path.empty()) {
    std::printf("  [ckpt] base-model cache %s: %d warm load(s), %d training(s)\n",
                cache_path.c_str(), cache_hits, cold_trainings);
  }
  PrintPoolCounters("train+update phases");
}

}  // namespace

MdnApproaches RunMdnApproaches(const DatasetBundle& bundle,
                               const storage::Table& batch,
                               const BenchParams& params) {
  MdnApproaches out;
  auto make = [&]() {
    return std::make_unique<models::Mdn>(bundle.base, bundle.aqp.categorical,
                                         bundle.aqp.numeric,
                                         MdnConfigFor(params));
  };
  std::string cache = BaseModelCachePath(models::Mdn::kCheckpointKind,
                                         bundle.name, params,
                                         MdnConfigFor(params));
  RunApproaches<models::Mdn>(bundle, batch, params, make, cache, &out.m0,
                             &out.ddup, &out.baseline, &out.stale, &out.retrain,
                             &out.ddup_seconds, &out.baseline_seconds,
                             &out.retrain_seconds);
  return out;
}

DarnApproaches RunDarnApproaches(const DatasetBundle& bundle,
                                 const storage::Table& batch,
                                 const BenchParams& params) {
  DarnApproaches out;
  auto make = [&]() {
    return std::make_unique<models::Darn>(bundle.base, DarnConfigFor(params));
  };
  std::string cache = BaseModelCachePath(models::Darn::kCheckpointKind,
                                         bundle.name, params,
                                         DarnConfigFor(params));
  RunApproaches<models::Darn>(bundle, batch, params, make, cache, &out.m0,
                              &out.ddup, &out.baseline, &out.stale,
                              &out.retrain, &out.ddup_seconds,
                              &out.baseline_seconds, &out.retrain_seconds);
  return out;
}

TvaeApproaches RunTvaeApproaches(const DatasetBundle& bundle,
                                 const storage::Table& batch,
                                 const BenchParams& params) {
  TvaeApproaches out;
  auto make = [&]() {
    return std::make_unique<models::Tvae>(bundle.base, TvaeConfigFor(params));
  };
  std::string cache = BaseModelCachePath(models::Tvae::kCheckpointKind,
                                         bundle.name, params,
                                         TvaeConfigFor(params));
  RunApproaches<models::Tvae>(bundle, batch, params, make, cache, &out.m0,
                              &out.ddup, &out.baseline, &out.stale,
                              &out.retrain, &out.ddup_seconds,
                              &out.baseline_seconds, &out.retrain_seconds);
  return out;
}

void PrintBanner(const std::string& artifact, const std::string& description,
                 const BenchParams& params) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("rows=%lld queries=%d epoch_scale=%.2f bootstrap=%d seed=%llu\n",
              static_cast<long long>(params.rows), params.num_queries,
              params.epoch_scale, params.bootstrap_iterations,
              static_cast<unsigned long long>(params.seed));
  KernelStats ks = MeasureKernelStats();
  std::printf("kernel=%s gemm256=%.1f GFLOP/s threads=%d\n", ks.kernel,
              ks.gemm256_gflops, ThreadPool::Global().size());
  std::printf("==============================================================\n");
}

std::string FormatRow(const std::string& label,
                      const workload::ErrorSummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-10s %s", label.c_str(),
                workload::FormatSummary(summary).c_str());
  return buf;
}

}  // namespace ddup::bench
