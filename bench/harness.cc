#include "bench/harness.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "api/model_factory.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/kernels.h"
#include "nn/pool.h"
#include "storage/sampling.h"
#include "storage/transforms.h"
#include "workload/executor.h"

namespace ddup::bench {

namespace {
int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

// ---------------------------------------------------------------------------
// DDUP_CHECKPOINT_DIR warm-start cache (see harness.h).
// ---------------------------------------------------------------------------

// Creates `dir` if missing (single level); false if it cannot be used.
bool EnsureDir(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0755) == 0;
}

// Cache file for the base model of (kind, dataset, bench params, options);
// "" when the cache is disabled or the directory is unusable. Every factory
// option participates in the cache key: any knob change (or a
// DDUP_ROWS/DDUP_SEED/DDUP_EPOCH_SCALE override, which feeds the epochs)
// lands in a different file instead of silently reusing a stale model.
std::string BaseModelCachePath(const char* kind, const std::string& dataset,
                               const BenchParams& params,
                               const api::ModelOptions& options) {
  const char* dir = std::getenv("DDUP_CHECKPOINT_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  if (!EnsureDir(dir)) {
    std::printf("  [ckpt] cannot use DDUP_CHECKPOINT_DIR=%s, training cold\n",
                dir);
    return "";
  }
  io::Serializer key;
  key.WriteString(kind);
  key.WriteString(dataset);
  key.WriteI64(params.rows);
  key.WriteU64(params.seed);
  for (const auto& [option, value] : options) {
    key.WriteString(option);
    key.WriteString(value);
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(io::Fnv1a64(key.buffer())));
  return std::string(dir) + "/" + kind + "_" + dataset + "_" + hex + ".ckpt";
}

// Shortest decimal string that round-trips the exact double, so an option
// map rebuilds bit-identical configs through the factory's strtod.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// One line on the cache file's codec footprint: stored vs uncompressed bytes
// across its sections (the container stamps both per section since format
// v2, DESIGN.md §16). Printed when a base model enters or leaves the cache,
// so warm-start runs show what the compressed data plane saves on disk.
void PrintCheckpointFootprint(const char* verb, const std::string& path) {
  StatusOr<io::CheckpointReader> reader = io::CheckpointReader::FromFile(path);
  if (!reader.ok()) return;
  uint64_t stored = 0;
  uint64_t uncompressed = 0;
  for (const auto& info : reader.value().Sections()) {
    stored += info.stored_bytes;
    uncompressed += info.uncompressed_bytes;
  }
  if (stored == 0) return;
  std::printf("  [ckpt] %s %s: %llu bytes on disk, %llu uncompressed (%.2fx)\n",
              verb, path.c_str(), static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(uncompressed),
              static_cast<double>(uncompressed) / static_cast<double>(stored));
}
}  // namespace

BenchParams BenchParams::FromEnv() {
  BenchParams p;
  p.rows = EnvInt("DDUP_ROWS", p.rows);
  p.num_queries = static_cast<int>(EnvInt("DDUP_QUERIES", p.num_queries));
  p.epoch_scale = EnvDouble("DDUP_EPOCH_SCALE", p.epoch_scale);
  p.bootstrap_iterations =
      static_cast<int>(EnvInt("DDUP_BOOTSTRAP", p.bootstrap_iterations));
  p.seed = static_cast<uint64_t>(EnvInt("DDUP_SEED", 42));
  return p;
}

int BenchParams::ScaledEpochs(int epochs) const {
  int scaled = static_cast<int>(std::lround(epochs * epoch_scale));
  return scaled < 1 ? 1 : scaled;
}

KernelStats MeasureKernelStats() {
  static const KernelStats cached = [] {
    KernelStats s;
    s.kernel = nn::GemmKernelName();
    Rng rng(12345);
    const int n = 256;
    nn::Matrix a = nn::Matrix::Randn(rng, n, n);
    nn::Matrix b = nn::Matrix::Randn(rng, n, n);
    nn::Matrix c(n, n);
    nn::GemmInto(a, b, /*accumulate=*/false, &c);  // warm-up
    Stopwatch sw;
    int reps = 0;
    do {
      nn::GemmInto(a, b, /*accumulate=*/false, &c);
      ++reps;
    } while (sw.ElapsedSeconds() < 0.05);
    s.gemm256_gflops = 2.0 * n * n * n * reps / sw.ElapsedSeconds() / 1e9;
    return s;
  }();
  return cached;
}

void PrintPoolCounters(const char* label) {
  static nn::MatrixPool::Counters last;
  nn::MatrixPool::Counters now = nn::MatrixPool::AggregateCounters();
  uint64_t acquires = now.acquires - last.acquires;
  uint64_t reuses = now.reuses - last.reuses;
  uint64_t heap = now.heap_allocs - last.heap_allocs;
  last = now;
  double reuse_rate =
      acquires > 0 ? 100.0 * static_cast<double>(reuses) /
                         static_cast<double>(acquires)
                   : 0.0;
  std::printf(
      "  [pool] %s: acquires=%llu reuse=%.1f%% heap_allocs=%llu\n", label,
      static_cast<unsigned long long>(acquires), reuse_rate,
      static_cast<unsigned long long>(heap));
}

DatasetBundle MakeBundle(const std::string& dataset,
                         const BenchParams& params) {
  DatasetBundle b;
  b.name = dataset;
  b.base = datagen::MakeDataset(dataset, params.rows, params.seed);
  Rng rng(params.seed + 1);
  b.ind_batch = storage::InDistributionSample(b.base, rng, 0.2);
  b.ood_batch = storage::OutOfDistributionSample(b.base, rng, 0.2);
  b.aqp = datagen::AqpColumnsFor(dataset);
  return b;
}

StatusOr<storage::Table> TryUnion(const storage::Table& base,
                                  const storage::Table& batch) {
  DDUP_RETURN_IF_ERROR(storage::CheckSchemaCompatible(base, batch));
  storage::Table all = base;
  all.Append(batch);
  return all;
}

storage::Table Union(const storage::Table& base, const storage::Table& batch) {
  StatusOr<storage::Table> all = TryUnion(base, batch);
  DDUP_CHECK_MSG(all.ok(), all.status().ToString());
  return std::move(all).value();
}

models::MdnConfig MdnConfigFor(const BenchParams& params) {
  models::MdnConfig c;
  c.num_components = 8;
  c.hidden_width = 48;
  c.epochs = params.ScaledEpochs(20);
  c.learning_rate = 5e-3;
  c.seed = params.seed + 11;
  return c;
}

models::DarnConfig DarnConfigFor(const BenchParams& params) {
  models::DarnConfig c;
  c.hidden_width = 64;
  c.max_bins = 64;
  c.epochs = params.ScaledEpochs(16);
  c.learning_rate = 5e-3;
  c.progressive_samples = 32;
  c.seed = params.seed + 13;
  return c;
}

models::TvaeConfig TvaeConfigFor(const BenchParams& params) {
  models::TvaeConfig c;
  c.latent_dim = 8;
  c.hidden_width = 48;
  c.epochs = params.ScaledEpochs(15);
  c.learning_rate = 2e-3;
  c.seed = params.seed + 17;
  return c;
}

core::DistillConfig DistillConfigFor(const BenchParams& params) {
  core::DistillConfig c;
  c.lambda = 0.5;
  c.temperature = 2.0;
  c.epochs = params.ScaledEpochs(12);
  c.learning_rate = 1e-3;
  return c;
}

core::ControllerConfig ControllerConfigFor(const BenchParams& params) {
  core::ControllerConfig c;
  c.detector.bootstrap_iterations = params.bootstrap_iterations;
  c.detector.seed = params.seed + 19;
  c.policy.distill = DistillConfigFor(params);
  c.policy.finetune_epochs = params.ScaledEpochs(3);
  c.policy.transfer_fraction = 0.10;
  c.seed = params.seed + 23;
  return c;
}

std::vector<workload::Query> AqpCountQueries(const DatasetBundle& bundle,
                                             const BenchParams& params,
                                             Rng& rng) {
  workload::AqpWorkloadConfig config;
  config.categorical_column = bundle.aqp.categorical;
  config.numeric_column = bundle.aqp.numeric;
  config.agg = workload::AggFunc::kCount;
  return workload::GenerateNonEmptyAqpQueries(bundle.base, config,
                                              params.num_queries, rng);
}

std::vector<workload::Query> NaruCountQueries(const DatasetBundle& bundle,
                                              const BenchParams& params,
                                              Rng& rng) {
  workload::NaruWorkloadConfig config;
  config.min_filters = 2;
  config.max_filters = std::min(6, bundle.base.num_columns());
  return workload::GenerateNonEmptyNaruQueries(bundle.base, config,
                                               params.num_queries, rng);
}

std::vector<double> EstimateAll(const models::Mdn& model,
                                const std::vector<workload::Query>& queries,
                                const storage::Table& schema) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(model.EstimateAqp(q, schema));
  return out;
}

std::vector<double> EstimateAll(const models::Darn& model,
                                const std::vector<workload::Query>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(model.EstimateCardinality(q));
  return out;
}

std::vector<double> QErrors(const std::vector<double>& estimates,
                            const std::vector<double>& truths) {
  DDUP_CHECK(estimates.size() == truths.size());
  std::vector<double> out;
  out.reserve(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    out.push_back(workload::QError(estimates[i], truths[i]));
  }
  return out;
}

std::vector<double> RelErrors(const std::vector<double>& estimates,
                              const std::vector<double>& truths) {
  DDUP_CHECK(estimates.size() == truths.size());
  std::vector<double> out;
  out.reserve(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    if (truths[i] == 0.0) continue;
    out.push_back(workload::RelativeErrorPercent(estimates[i], truths[i]));
  }
  return out;
}

namespace {

// Bench-sized factory options per model family: the same bundle-derived
// column bindings and BenchParams-scaled config the dedicated Run*Approaches
// wrappers used to hard-code, expressed as api::ModelFactory options so one
// templated protocol serves every registered kind.
template <typename ModelT>
struct FactoryTraits;

template <>
struct FactoryTraits<models::Mdn> {
  static constexpr const char* kKind = models::Mdn::kCheckpointKind;
  static api::ModelOptions Options(const DatasetBundle& bundle,
                                   const BenchParams& params) {
    models::MdnConfig c = MdnConfigFor(params);
    return api::ModelOptions{
        {"categorical", bundle.aqp.categorical},
        {"numeric", bundle.aqp.numeric},
        {"num_components", std::to_string(c.num_components)},
        {"hidden_width", std::to_string(c.hidden_width)},
        {"epochs", std::to_string(c.epochs)},
        {"batch_size", std::to_string(c.batch_size)},
        {"learning_rate", FormatDouble(c.learning_rate)},
        {"seed", std::to_string(c.seed)}};
  }
};

template <>
struct FactoryTraits<models::Darn> {
  static constexpr const char* kKind = models::Darn::kCheckpointKind;
  static api::ModelOptions Options(const DatasetBundle& bundle,
                                   const BenchParams& params) {
    (void)bundle;
    models::DarnConfig c = DarnConfigFor(params);
    return api::ModelOptions{
        {"hidden_width", std::to_string(c.hidden_width)},
        {"max_bins", std::to_string(c.max_bins)},
        {"epochs", std::to_string(c.epochs)},
        {"batch_size", std::to_string(c.batch_size)},
        {"learning_rate", FormatDouble(c.learning_rate)},
        {"progressive_samples", std::to_string(c.progressive_samples)},
        {"seed", std::to_string(c.seed)}};
  }
};

template <>
struct FactoryTraits<models::Tvae> {
  static constexpr const char* kKind = models::Tvae::kCheckpointKind;
  static api::ModelOptions Options(const DatasetBundle& bundle,
                                   const BenchParams& params) {
    (void)bundle;
    models::TvaeConfig c = TvaeConfigFor(params);
    return api::ModelOptions{
        {"latent_dim", std::to_string(c.latent_dim)},
        {"hidden_width", std::to_string(c.hidden_width)},
        {"epochs", std::to_string(c.epochs)},
        {"batch_size", std::to_string(c.batch_size)},
        {"learning_rate", FormatDouble(c.learning_rate)},
        {"seed", std::to_string(c.seed)}};
  }
};

}  // namespace

// Applies the four update approaches to factory-built model instances. When
// the DDUP_CHECKPOINT_DIR cache is usable, the trained base model is loaded
// from / saved to a checkpoint instead of retraining for every approach: a
// load restores weights, metadata and the RNG stream, so each instance is
// bit-identical to a freshly trained one and all downstream updates
// reproduce cold-run results exactly.
template <typename ModelT>
Approaches<ModelT> RunApproaches(const DatasetBundle& bundle,
                                 const storage::Table& batch,
                                 const BenchParams& params) {
  const api::ModelOptions options =
      FactoryTraits<ModelT>::Options(bundle, params);
  const std::string cache_path = BaseModelCachePath(
      FactoryTraits<ModelT>::kKind, bundle.name, params, options);

  int cache_hits = 0;
  int cold_trainings = 0;
  auto make = [&]() -> std::unique_ptr<ModelT> {
    StatusOr<std::unique_ptr<core::UpdatableModel>> model =
        api::ModelFactory::Global().Create(FactoryTraits<ModelT>::kKind,
                                           bundle.base, options);
    DDUP_CHECK_MSG(model.ok(), model.status().ToString());
    // The registered creator for kKind constructs exactly a ModelT.
    return std::unique_ptr<ModelT>(
        static_cast<ModelT*>(model.value().release()));
  };
  auto cached_make = [&]() -> std::unique_ptr<ModelT> {
    if (cache_path.empty()) {
      ++cold_trainings;
      return make();
    }
    StatusOr<std::unique_ptr<ModelT>> loaded = ModelT::LoadFromFile(cache_path);
    if (loaded.ok()) {
      if (++cache_hits == 1) PrintCheckpointFootprint("reusing", cache_path);
      return std::move(loaded).value();
    }
    ++cold_trainings;
    std::unique_ptr<ModelT> model = make();
    Status saved = model->SaveToFile(cache_path);
    if (!saved.ok()) {
      std::printf("  [ckpt] save failed: %s\n", saved.ToString().c_str());
    } else {
      PrintCheckpointFootprint("saved", cache_path);
    }
    return model;
  };

  Approaches<ModelT> out;
  out.m0 = cached_make();
  out.stale = cached_make();

  Rng rng(params.seed + 31);
  storage::Table transfer = storage::SampleFraction(bundle.base, rng, 0.10);
  core::DistillConfig distill = DistillConfigFor(params);
  // Eq. 5 weighting against the full old-data size (see controller.cc).
  distill.alpha =
      core::ResolveAlpha(distill, bundle.base.num_rows(), batch.num_rows());

  out.ddup = cached_make();
  Stopwatch ddup_timer;
  out.ddup->AbsorbMetadata(batch);
  out.ddup->DistillUpdate(transfer, batch, distill);
  out.ddup_seconds = ddup_timer.ElapsedSeconds();

  out.baseline = cached_make();
  Stopwatch baseline_timer;
  out.baseline->AbsorbMetadata(batch);
  // Paper baseline: SGD on the new data with a smaller learning rate.
  out.baseline->FineTune(batch, kBaselineLrMultiplier * distill.learning_rate,
                         distill.epochs);
  out.baseline_seconds = baseline_timer.ElapsedSeconds();

  out.retrain = cached_make();
  Stopwatch retrain_timer;
  out.retrain->RetrainFromScratch(Union(bundle.base, batch));
  out.retrain_seconds = retrain_timer.ElapsedSeconds();

  if (!cache_path.empty()) {
    std::printf("  [ckpt] base-model cache %s: %d warm load(s), %d training(s)\n",
                cache_path.c_str(), cache_hits, cold_trainings);
  }
  PrintPoolCounters("train+update phases");
  return out;
}

template Approaches<models::Mdn> RunApproaches<models::Mdn>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);
template Approaches<models::Darn> RunApproaches<models::Darn>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);
template Approaches<models::Tvae> RunApproaches<models::Tvae>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);

core::InsertionReport MustInsert(core::DdupController& controller,
                                 const storage::Table& batch) {
  StatusOr<core::InsertionReport> report = controller.HandleInsertion(batch);
  DDUP_CHECK_MSG(report.ok(), report.status().ToString());
  return std::move(report).value();
}

void PrintBanner(const std::string& artifact, const std::string& description,
                 const BenchParams& params) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("rows=%lld queries=%d epoch_scale=%.2f bootstrap=%d seed=%llu\n",
              static_cast<long long>(params.rows), params.num_queries,
              params.epoch_scale, params.bootstrap_iterations,
              static_cast<unsigned long long>(params.seed));
  KernelStats ks = MeasureKernelStats();
  std::printf("kernel=%s gemm256=%.1f GFLOP/s threads=%d\n", ks.kernel,
              ks.gemm256_gflops, ThreadPool::Global().size());
  std::printf("==============================================================\n");
}

std::string FormatRow(const std::string& label,
                      const workload::ErrorSummary& summary) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-10s %s", label.c_str(),
                workload::FormatSummary(summary).c_str());
  return buf;
}

// ---------------------------------------------------------------------------
// BENCH_<artifact>.json emitter (see harness.h).
// ---------------------------------------------------------------------------

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char raw : s) {
    auto c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  // JSON has no NaN/Infinity literal; null keeps the file parseable.
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v);
}
}  // namespace

JsonObject& JsonObject::SetEncoded(const std::string& key,
                                   std::string encoded) {
  // Last-writer-wins: overwrite in place so headers never carry duplicate
  // members (the emitter stamps defaults that benches may override).
  for (auto& field : fields_) {
    if (field.first == key) {
      field.second = std::move(encoded);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(encoded));
  return *this;
}

JsonObject& JsonObject::Set(const std::string& key, const std::string& value) {
  return SetEncoded(key, "\"" + JsonEscape(value) + "\"");
}
JsonObject& JsonObject::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}
JsonObject& JsonObject::Set(const std::string& key, double value) {
  return SetEncoded(key, JsonDouble(value));
}
JsonObject& JsonObject::Set(const std::string& key, int64_t value) {
  return SetEncoded(key, std::to_string(value));
}
JsonObject& JsonObject::Set(const std::string& key, int value) {
  return Set(key, static_cast<int64_t>(value));
}
JsonObject& JsonObject::Set(const std::string& key, bool value) {
  return SetEncoded(key, value ? "true" : "false");
}

std::string JsonObject::Render() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

namespace {
// "model name" line from /proc/cpuinfo, or "unknown" (non-Linux hosts,
// restricted containers). Whitespace inside the model string is kept as-is:
// it is an opaque label for humans diffing BENCH files across machines.
std::string HostCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 10, "model name") != 0) continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) break;
    return line.substr(start);
  }
  return "unknown";
}
}  // namespace

BenchJsonEmitter::BenchJsonEmitter(std::string artifact,
                                   const BenchParams& params)
    : artifact_(std::move(artifact)) {
  params_.Set("rows", params.rows)
      .Set("queries", params.num_queries)
      .Set("epoch_scale", params.epoch_scale)
      .Set("bootstrap", params.bootstrap_iterations)
      .Set("seed", static_cast<int64_t>(params.seed))
      // Engine shards serving the bench. Single-engine benches keep the
      // default; cluster benches override via SetParam("shards", n) — Set is
      // last-writer-wins, so the header ends up with exactly one member.
      .Set("shards", 1)
      .Set("host_cores",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Set("host_cpu", HostCpuModel());
}

void BenchJsonEmitter::AddRow(JsonObject row) {
  rows_.push_back(std::move(row));
}

std::string BenchJsonEmitter::Write() const {
  const char* env_dir = std::getenv("DDUP_BENCH_JSON_DIR");
  std::string dir = env_dir != nullptr && env_dir[0] != '\0' ? env_dir : ".";
  if (!EnsureDir(dir)) {
    std::printf("  [json] cannot use DDUP_BENCH_JSON_DIR=%s, skipping\n",
                dir.c_str());
    return "";
  }
  const std::string path = dir + "/BENCH_" + artifact_ + ".json";
  std::string body = "{\n  \"artifact\": \"" + JsonEscape(artifact_) +
                     "\",\n  \"params\": " + params_.Render() +
                     ",\n  \"results\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    body += i > 0 ? ",\n    " : "\n    ";
    body += rows_[i].Render();
  }
  body += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::printf("  [json] cannot open %s for writing, skipping\n",
                path.c_str());
    return "";
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("  [json] wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  return path;
}

}  // namespace ddup::bench
