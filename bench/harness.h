#ifndef DDUP_BENCH_HARNESS_H_
#define DDUP_BENCH_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "datagen/datasets.h"
#include "datagen/star_schema.h"
#include "models/darn.h"
#include "models/mdn.h"
#include "models/tvae.h"
#include "storage/table.h"
#include "workload/generator.h"
#include "workload/metrics.h"

// Shared scaffolding for the paper-reproduction benchmarks: dataset bundles
// (base + 20% IND/OOD update samples, §5.1), bench-sized model configs, and
// the five-approach protocol (M0 / DDUp / baseline / stale / retrain) used
// by Tables 5, 6, 8 and Figures 5-9.
namespace ddup::bench {

// The paper's "baseline" update fine-tunes on the new data with a reduced
// learning rate — but one still large enough to move the weights; that is
// precisely what triggers catastrophic forgetting. We keep it at 2x the
// (conservative) distillation learning rate.
inline constexpr double kBaselineLrMultiplier = 2.0;

// Environment overrides: DDUP_ROWS, DDUP_QUERIES, DDUP_EPOCH_SCALE (float
// multiplier), DDUP_BOOTSTRAP, DDUP_SEED. DDUP_THREADS sizes the shared
// ThreadPool::Global() (read by the pool itself); results are bit-identical
// for any value.
//
// DDUP_CHECKPOINT_DIR points at a warm-start cache directory: the trained
// base model M0 of each (model kind, dataset, config) combination is saved
// there on first use and reloaded on every later use, skipping bootstrap
// training entirely. Because a checkpoint restores weights, metadata AND the
// RNG stream, warm-started runs produce bit-identical tables to cold runs —
// the cache only removes wall time. Delete the directory (or change any
// config knob; the file name is keyed on a config hash) to retrain.
struct BenchParams {
  int64_t rows = 4000;
  int num_queries = 200;
  double epoch_scale = 1.0;
  int bootstrap_iterations = 300;
  uint64_t seed = 42;

  static BenchParams FromEnv();
  int ScaledEpochs(int epochs) const;
};

// Kernel-layer throughput, measured once per process on the same GemmInto
// path the models run on (256x256, the ISSUE/ROADMAP reference shape).
struct KernelStats {
  const char* kernel = "";      // compiled micro-kernel variant
  double gemm256_gflops = 0.0;  // sustained GFLOP/s at 256x256
};
KernelStats MeasureKernelStats();

// One-line MatrixPool counter delta since the last call (or process start):
// total acquires, free-list reuse rate, and heap allocations. Printed by
// RunApproaches after the update phases so every harness bench reports the
// allocation behavior of the run it just timed.
void PrintPoolCounters(const char* label);

// A dataset plus the paper's update samples: "IND" is a 20% random sample of
// a straight copy; "OOD" is a 20% sample of the independently-sorted
// (joint-permuted) copy (§5.1).
struct DatasetBundle {
  std::string name;
  storage::Table base;
  storage::Table ind_batch;
  storage::Table ood_batch;
  datagen::AqpColumns aqp;
};

DatasetBundle MakeBundle(const std::string& dataset, const BenchParams& params);
// The union base + batch (the post-insertion table). Schema-checked: a
// mismatched batch fails as StatusOr (TryUnion) or aborts with the detailed
// mismatch message (Union, for bench code where the schemas are static).
StatusOr<storage::Table> TryUnion(const storage::Table& base,
                                  const storage::Table& batch);
storage::Table Union(const storage::Table& base, const storage::Table& batch);

// Bench-sized model configurations.
models::MdnConfig MdnConfigFor(const BenchParams& params);
models::DarnConfig DarnConfigFor(const BenchParams& params);
models::TvaeConfig TvaeConfigFor(const BenchParams& params);
core::DistillConfig DistillConfigFor(const BenchParams& params);
core::ControllerConfig ControllerConfigFor(const BenchParams& params);

// Query workloads (generated at time 0 against the base table; §5.1.2).
std::vector<workload::Query> AqpCountQueries(const DatasetBundle& bundle,
                                             const BenchParams& params,
                                             Rng& rng);
std::vector<workload::Query> NaruCountQueries(const DatasetBundle& bundle,
                                              const BenchParams& params,
                                              Rng& rng);

// Per-model estimate vectors for a query set.
std::vector<double> EstimateAll(const models::Mdn& model,
                                const std::vector<workload::Query>& queries,
                                const storage::Table& schema);
std::vector<double> EstimateAll(const models::Darn& model,
                                const std::vector<workload::Query>& queries);

// Q-errors of estimates against truths.
std::vector<double> QErrors(const std::vector<double>& estimates,
                            const std::vector<double>& truths);
// Relative errors (%) of estimates against truths.
std::vector<double> RelErrors(const std::vector<double>& estimates,
                              const std::vector<double>& truths);

// ---------------------------------------------------------------------------
// Five-approach protocol (Tables 5/6/8): given a bundle and an update batch,
// produce the post-update models for every approach. The same seeds make the
// base model identical across approaches. One templated path serves every
// model family: instances are built through the api::ModelFactory registry
// (with bench-sized options derived from BenchParams), so a kind registered
// with the factory is automatically benchable.
// ---------------------------------------------------------------------------
template <typename ModelT>
struct Approaches {
  std::unique_ptr<ModelT> m0;        // untouched base model
  std::unique_ptr<ModelT> ddup;      // distillation update
  std::unique_ptr<ModelT> baseline;  // plain fine-tune on new data
  std::unique_ptr<ModelT> stale;     // do nothing
  std::unique_ptr<ModelT> retrain;   // retrain on base+batch
  double ddup_seconds = 0.0;
  double baseline_seconds = 0.0;
  double retrain_seconds = 0.0;
};

// Explicitly instantiated in harness.cc for models::Mdn / Darn / Tvae.
template <typename ModelT>
Approaches<ModelT> RunApproaches(const DatasetBundle& bundle,
                                 const storage::Table& batch,
                                 const BenchParams& params);

extern template Approaches<models::Mdn> RunApproaches<models::Mdn>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);
extern template Approaches<models::Darn> RunApproaches<models::Darn>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);
extern template Approaches<models::Tvae> RunApproaches<models::Tvae>(
    const DatasetBundle&, const storage::Table&, const BenchParams&);

// HandleInsertion for bench streams whose batches are valid by
// construction: aborts with the Status message instead of returning it.
core::InsertionReport MustInsert(core::DdupController& controller,
                                 const storage::Table& batch);

// Output helpers.
void PrintBanner(const std::string& artifact, const std::string& description,
                 const BenchParams& params);
std::string FormatRow(const std::string& label,
                      const workload::ErrorSummary& summary);

// ---------------------------------------------------------------------------
// Machine-readable results: BENCH_<artifact>.json. The emitter collects one
// flat JSON object per result row and writes
//   { "artifact": ..., "params": {...}, "results": [ {...}, ... ] }
// to $DDUP_BENCH_JSON_DIR/BENCH_<artifact>.json (directory created if
// missing; falls back to the working directory when the variable is unset).
// Output is deliberately timestamp- and timing-free where the bench wants
// bit-identical files: doubles render via %.17g (round-trip exact), keys
// keep insertion order, and nothing else is interpolated — a fixed seed
// reproduces the file byte for byte.
// ---------------------------------------------------------------------------
class JsonObject {
 public:
  // Set is last-writer-wins: re-setting an existing key overwrites its value
  // in place (keeping the key's original position) instead of emitting a
  // duplicate member. This is what lets the emitter stamp defaults ("shards":
  // 1) that individual benches override via SetParam without producing JSON
  // that strict parsers reject.
  JsonObject& Set(const std::string& key, const std::string& value);
  JsonObject& Set(const std::string& key, const char* value);
  JsonObject& Set(const std::string& key, double value);
  JsonObject& Set(const std::string& key, int64_t value);
  JsonObject& Set(const std::string& key, int value);
  JsonObject& Set(const std::string& key, bool value);

  // "{"k1":v1,...}" in insertion order.
  std::string Render() const;

 private:
  JsonObject& SetEncoded(const std::string& key, std::string encoded);

  std::vector<std::pair<std::string, std::string>> fields_;  // key -> encoded
};

class BenchJsonEmitter {
 public:
  // The constructor stamps the BenchParams plus the host context every
  // consumer needs to compare numbers across machines: logical core count
  // (std::thread::hardware_concurrency) and the CPU model string from
  // /proc/cpuinfo ("unknown" where unavailable).
  BenchJsonEmitter(std::string artifact, const BenchParams& params);
  // Adds a bench-specific header field under "params" (kernel variant,
  // per-cell workload size, headline speedup...) before Write().
  template <typename T>
  BenchJsonEmitter& SetParam(const std::string& key, T value) {
    params_.Set(key, value);
    return *this;
  }
  void AddRow(JsonObject row);
  // Writes the file and prints its path; returns the path ("" on failure).
  std::string Write() const;

 private:
  std::string artifact_;
  JsonObject params_;
  std::vector<JsonObject> rows_;
};

}  // namespace ddup::bench

#endif  // DDUP_BENCH_HARNESS_H_
