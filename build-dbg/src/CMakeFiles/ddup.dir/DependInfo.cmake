
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ddup.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ddup.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ddup.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ddup.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ddup.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ddup.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/ddup.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/ddup.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/ddup.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/ddup.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/ddup.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/ddup.dir/core/controller.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/CMakeFiles/ddup.dir/core/detector.cc.o" "gcc" "src/CMakeFiles/ddup.dir/core/detector.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/CMakeFiles/ddup.dir/core/policies.cc.o" "gcc" "src/CMakeFiles/ddup.dir/core/policies.cc.o.d"
  "/root/repo/src/datagen/datasets.cc" "src/CMakeFiles/ddup.dir/datagen/datasets.cc.o" "gcc" "src/CMakeFiles/ddup.dir/datagen/datasets.cc.o.d"
  "/root/repo/src/datagen/latent_class.cc" "src/CMakeFiles/ddup.dir/datagen/latent_class.cc.o" "gcc" "src/CMakeFiles/ddup.dir/datagen/latent_class.cc.o.d"
  "/root/repo/src/datagen/star_schema.cc" "src/CMakeFiles/ddup.dir/datagen/star_schema.cc.o" "gcc" "src/CMakeFiles/ddup.dir/datagen/star_schema.cc.o.d"
  "/root/repo/src/models/darn.cc" "src/CMakeFiles/ddup.dir/models/darn.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/darn.cc.o.d"
  "/root/repo/src/models/encoding.cc" "src/CMakeFiles/ddup.dir/models/encoding.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/encoding.cc.o.d"
  "/root/repo/src/models/gbdt.cc" "src/CMakeFiles/ddup.dir/models/gbdt.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/gbdt.cc.o.d"
  "/root/repo/src/models/mdn.cc" "src/CMakeFiles/ddup.dir/models/mdn.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/mdn.cc.o.d"
  "/root/repo/src/models/spn.cc" "src/CMakeFiles/ddup.dir/models/spn.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/spn.cc.o.d"
  "/root/repo/src/models/tvae.cc" "src/CMakeFiles/ddup.dir/models/tvae.cc.o" "gcc" "src/CMakeFiles/ddup.dir/models/tvae.cc.o.d"
  "/root/repo/src/nn/autograd.cc" "src/CMakeFiles/ddup.dir/nn/autograd.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/autograd.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/CMakeFiles/ddup.dir/nn/gradcheck.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/kernels.cc" "src/CMakeFiles/ddup.dir/nn/kernels.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/kernels.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/ddup.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/CMakeFiles/ddup.dir/nn/matrix.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/matrix.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/ddup.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/CMakeFiles/ddup.dir/nn/optim.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/optim.cc.o.d"
  "/root/repo/src/nn/pool.cc" "src/CMakeFiles/ddup.dir/nn/pool.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/pool.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/ddup.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/ddup.dir/nn/serialize.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/ddup.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/ddup.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/join.cc" "src/CMakeFiles/ddup.dir/storage/join.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/join.cc.o.d"
  "/root/repo/src/storage/sampling.cc" "src/CMakeFiles/ddup.dir/storage/sampling.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/sampling.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/ddup.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/transforms.cc" "src/CMakeFiles/ddup.dir/storage/transforms.cc.o" "gcc" "src/CMakeFiles/ddup.dir/storage/transforms.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/CMakeFiles/ddup.dir/workload/executor.cc.o" "gcc" "src/CMakeFiles/ddup.dir/workload/executor.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/ddup.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/ddup.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/ddup.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/ddup.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/CMakeFiles/ddup.dir/workload/query.cc.o" "gcc" "src/CMakeFiles/ddup.dir/workload/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
