file(REMOVE_RECURSE
  "libddup.a"
)
