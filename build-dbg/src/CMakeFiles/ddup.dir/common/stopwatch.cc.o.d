src/CMakeFiles/ddup.dir/common/stopwatch.cc.o: \
 /root/repo/src/common/stopwatch.cc /usr/include/stdc-predef.h \
 /root/repo/src/common/stopwatch.h /usr/include/c++/12/chrono \
 /usr/include/c++/12/bits/chrono.h /usr/include/c++/12/ratio \
 /usr/include/c++/12/type_traits \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h /usr/include/c++/12/cstdint \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /usr/include/c++/12/limits /usr/include/c++/12/ctime /usr/include/time.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/x86_64-linux-gnu/bits/time.h \
 /usr/include/x86_64-linux-gnu/bits/timex.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timeval.h \
 /usr/include/x86_64-linux-gnu/bits/types/clock_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/time_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_tm.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timespec.h \
 /usr/include/x86_64-linux-gnu/bits/endian.h \
 /usr/include/x86_64-linux-gnu/bits/endianness.h \
 /usr/include/x86_64-linux-gnu/bits/types/clockid_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/timer_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_itimerspec.h \
 /usr/include/x86_64-linux-gnu/bits/types/locale_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__locale_t.h \
 /usr/include/c++/12/bits/parse_numbers.h \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/cpp_type_traits.h \
 /usr/include/c++/12/ext/type_traits.h
