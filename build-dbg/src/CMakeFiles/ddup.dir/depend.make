# Empty dependencies file for ddup.
# This may be replaced when dependencies are built.
