file(REMOVE_RECURSE
  "CMakeFiles/controller_test.dir/controller_test.cc.o"
  "CMakeFiles/controller_test.dir/controller_test.cc.o.d"
  "controller_test"
  "controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
