# Empty dependencies file for controller_test.
# This may be replaced when dependencies are built.
