file(REMOVE_RECURSE
  "CMakeFiles/darn_test.dir/darn_test.cc.o"
  "CMakeFiles/darn_test.dir/darn_test.cc.o.d"
  "darn_test"
  "darn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
