# Empty dependencies file for darn_test.
# This may be replaced when dependencies are built.
