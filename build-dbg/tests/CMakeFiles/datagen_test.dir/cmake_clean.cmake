file(REMOVE_RECURSE
  "CMakeFiles/datagen_test.dir/datagen_test.cc.o"
  "CMakeFiles/datagen_test.dir/datagen_test.cc.o.d"
  "datagen_test"
  "datagen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
