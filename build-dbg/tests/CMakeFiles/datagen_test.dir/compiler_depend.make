# Empty compiler generated dependencies file for datagen_test.
# This may be replaced when dependencies are built.
