file(REMOVE_RECURSE
  "CMakeFiles/detector_test.dir/detector_test.cc.o"
  "CMakeFiles/detector_test.dir/detector_test.cc.o.d"
  "detector_test"
  "detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
