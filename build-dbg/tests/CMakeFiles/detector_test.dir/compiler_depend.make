# Empty compiler generated dependencies file for detector_test.
# This may be replaced when dependencies are built.
