file(REMOVE_RECURSE
  "CMakeFiles/encoding_test.dir/encoding_test.cc.o"
  "CMakeFiles/encoding_test.dir/encoding_test.cc.o.d"
  "encoding_test"
  "encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
