# Empty compiler generated dependencies file for encoding_test.
# This may be replaced when dependencies are built.
