file(REMOVE_RECURSE
  "CMakeFiles/mdn_test.dir/mdn_test.cc.o"
  "CMakeFiles/mdn_test.dir/mdn_test.cc.o.d"
  "mdn_test"
  "mdn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
