# Empty dependencies file for mdn_test.
# This may be replaced when dependencies are built.
