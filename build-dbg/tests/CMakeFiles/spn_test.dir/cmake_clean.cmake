file(REMOVE_RECURSE
  "CMakeFiles/spn_test.dir/spn_test.cc.o"
  "CMakeFiles/spn_test.dir/spn_test.cc.o.d"
  "spn_test"
  "spn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
