# Empty compiler generated dependencies file for spn_test.
# This may be replaced when dependencies are built.
