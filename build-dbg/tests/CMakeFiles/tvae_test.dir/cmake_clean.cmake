file(REMOVE_RECURSE
  "CMakeFiles/tvae_test.dir/tvae_test.cc.o"
  "CMakeFiles/tvae_test.dir/tvae_test.cc.o.d"
  "tvae_test"
  "tvae_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvae_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
