# Empty dependencies file for tvae_test.
# This may be replaced when dependencies are built.
