# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-dbg/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build-dbg/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(controller_test "/root/repo/build-dbg/tests/controller_test")
set_tests_properties(controller_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(darn_test "/root/repo/build-dbg/tests/darn_test")
set_tests_properties(darn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build-dbg/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(detector_test "/root/repo/build-dbg/tests/detector_test")
set_tests_properties(detector_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(encoding_test "/root/repo/build-dbg/tests/encoding_test")
set_tests_properties(encoding_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build-dbg/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mdn_test "/root/repo/build-dbg/tests/mdn_test")
set_tests_properties(mdn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build-dbg/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(spn_test "/root/repo/build-dbg/tests/spn_test")
set_tests_properties(spn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build-dbg/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tvae_test "/root/repo/build-dbg/tests/tvae_test")
set_tests_properties(tvae_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build-dbg/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
