// AQP pipeline: a DBEst++-style approximate query processing engine on the
// census-like dataset, kept fresh by DDUp across a stream of insertions.
//
// Shows the full production loop: train M0, answer COUNT/SUM/AVG queries
// without touching the data, ingest batches (some benign, some drifted),
// let DDUp decide fine-tune vs distill, and track accuracy throughout.
//
// Build & run:  ./build/examples/aqp_pipeline
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "datagen/datasets.h"
#include "models/mdn.h"
#include "storage/sampling.h"
#include "storage/transforms.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

using namespace ddup;  // NOLINT: example code

double MedianQError(const models::Mdn& model, const storage::Table& schema,
                    const std::vector<workload::Query>& queries,
                    const storage::Table& truth_table) {
  std::vector<double> errs;
  for (const auto& q : queries) {
    double truth = workload::Execute(truth_table, q).value;
    if (truth == 0.0) continue;
    errs.push_back(workload::QError(model.EstimateAqp(q, schema), truth));
  }
  return workload::Summarize(errs).median;
}

}  // namespace

int main() {
  std::printf("AQP pipeline on census-like data (MDN + DDUp)\n\n");
  storage::Table base = datagen::CensusLike(6000, 7);
  datagen::AqpColumns cols = datagen::AqpColumnsFor("census");

  models::MdnConfig config;
  config.epochs = 20;
  models::Mdn model(base, cols.categorical, cols.numeric, config);

  // A fixed dashboard workload, generated once at deployment time.
  Rng qrng(8);
  workload::AqpWorkloadConfig wconfig;
  wconfig.categorical_column = cols.categorical;
  wconfig.numeric_column = cols.numeric;
  auto queries = workload::GenerateNonEmptyAqpQueries(base, wconfig, 150, qrng);

  // Show a few one-off estimates vs the exact answers.
  std::printf("sample estimates (COUNT):\n");
  for (int i = 0; i < 3; ++i) {
    const auto& q = queries[static_cast<size_t>(i)];
    std::printf("  %-60s est %8.1f truth %8.1f\n",
                q.ToString(base).c_str(), model.EstimateAqp(q, base),
                workload::Execute(base, q).value);
  }

  core::ControllerConfig cc;
  cc.policy.distill.epochs = 10;
  // A dashboard ingesting many small batches affords a stricter significance
  // level (§3.5: false positives only cost update time).
  cc.detector.threshold_sigmas = 3.0;
  core::DdupController controller(&model, base, cc);

  // Stream of insertions: two benign, then a distribution shift, then more
  // data from the shifted distribution.
  Rng stream_rng(9);
  std::vector<std::pair<const char*, storage::Table>> stream;
  stream.emplace_back("ind-1",
                      storage::InDistributionSample(base, stream_rng, 0.08));
  stream.emplace_back("ind-2",
                      storage::InDistributionSample(base, stream_rng, 0.08));
  storage::Table drifted =
      storage::PermuteJointDistribution(base, stream_rng);
  stream.emplace_back("drift-1",
                      storage::SampleFraction(drifted, stream_rng, 0.10));
  stream.emplace_back("drift-2",
                      storage::SampleFraction(drifted, stream_rng, 0.10));

  std::printf("\n%-8s %-8s %-10s %10s %12s\n", "batch", "verdict", "action",
              "stat/thr", "median q-err");
  for (auto& [label, batch] : stream) {
    auto report_or = controller.HandleInsertion(batch);
    DDUP_CHECK_MSG(report_or.ok(), report_or.status().ToString());
    const auto& report = report_or.value();
    double med = MedianQError(model, base, queries, controller.data());
    std::printf("%-8s %-8s %-10s %10.2f %12.2f\n", label,
                report.test.is_ood ? "OOD" : "in-dist",
                core::ActionName(report.action),
                report.test.statistic / report.test.threshold, med);
  }

  std::printf(
      "\nThe drifted batches trigger distillation; accuracy stays close to "
      "the pre-drift level without ever retraining from scratch.\n");
  return 0;
}
