// CE pipeline: a Naru/NeuroCard-style learned cardinality estimator on the
// forest-like dataset, with DDUp keeping it accurate under OOD inserts.
// Compares DDUp side by side with the paper's baseline (plain fine-tuning)
// after a drifted insertion.
//
// Build & run:  ./build/examples/ce_pipeline
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "datagen/datasets.h"
#include "models/darn.h"
#include "storage/transforms.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

using namespace ddup;  // NOLINT: example code

workload::ErrorSummary Evaluate(const models::Darn& model,
                                const std::vector<workload::Query>& queries,
                                const storage::Table& truth_table) {
  std::vector<double> errs;
  for (const auto& q : queries) {
    double truth = workload::Execute(truth_table, q).value;
    if (truth == 0.0) continue;
    errs.push_back(workload::QError(model.EstimateCardinality(q), truth));
  }
  return workload::Summarize(errs);
}

}  // namespace

int main() {
  std::printf("CE pipeline on forest-like data (DARN + DDUp)\n\n");
  storage::Table base = datagen::ForestLike(5000, 11);

  models::DarnConfig config;
  config.epochs = 12;
  config.max_bins = 48;
  models::Darn ddup_model(base, config);
  models::Darn baseline_model(base, config);  // same seed -> identical M0

  Rng qrng(12);
  workload::NaruWorkloadConfig wconfig;
  wconfig.min_filters = 3;
  wconfig.max_filters = 6;
  auto queries =
      workload::GenerateNonEmptyNaruQueries(base, wconfig, 150, qrng);

  auto before = Evaluate(ddup_model, queries, base);
  std::printf("M0 q-error:        median %.2f   95th %.2f   max %.2f\n",
              before.median, before.p95, before.max);

  // One drifted insertion (20% of a joint-permuted copy).
  Rng drift_rng(13);
  storage::Table batch =
      storage::OutOfDistributionSample(base, drift_rng, 0.2);

  core::ControllerConfig cc;
  cc.policy.distill.epochs = 12;
  core::DdupController controller(&ddup_model, base, cc);
  auto report_or = controller.HandleInsertion(batch);
  DDUP_CHECK_MSG(report_or.ok(), report_or.status().ToString());
  const auto& report = report_or.value();
  std::printf("\ninsert verdict: %s (statistic %.2f vs threshold %.2f) -> %s\n",
              report.test.is_ood ? "OOD" : "in-distribution",
              report.test.statistic, report.test.threshold,
              core::ActionName(report.action));

  // The paper's baseline handles the same batch by fine-tuning.
  baseline_model.AbsorbMetadata(batch);
  baseline_model.FineTune(batch, 2e-3, 12);

  storage::Table after = base;
  after.Append(batch);
  auto ddup_sum = Evaluate(ddup_model, queries, after);
  auto base_sum = Evaluate(baseline_model, queries, after);
  std::printf("\nafter the OOD insert (truth = old + new data):\n");
  std::printf("  DDUp      median %6.2f   95th %8.2f   max %8.2f\n",
              ddup_sum.median, ddup_sum.p95, ddup_sum.max);
  std::printf("  baseline  median %6.2f   95th %8.2f   max %8.2f\n",
              base_sum.median, base_sum.p95, base_sum.max);
  std::printf(
      "\nDDUp's distillation keeps the tail (95th/max) in check while the "
      "fine-tuned baseline forgets the historical distribution.\n");
  return 0;
}
