// Checkpoint round trip: the full save → drift → distill-update → save
// lifecycle of a deployed learned component (DESIGN.md §9).
//
// 1. Train a DBEst++-style MDN on base data and save it as model_v0.ckpt.
// 2. Reload it and verify the reload is bit-identical (densities + AQP
//    estimates) — the acceptance bar of the checkpoint subsystem.
// 3. Wire the reloaded model into a DDUp controller, snapshot the controller
//    (detector moments + accumulated data), then resume the snapshot in a
//    second controller — simulating a process restart mid-stream.
// 4. Feed an out-of-distribution batch to the resumed controller: the
//    detector flags the drift and the distillation update runs.
// 5. Save the updated model as model_v1.ckpt — the artifact a serving
//    system would hot-swap in.
//
// Exits non-zero if any reload deviates from the live model.
//
// Build & run:  ./build/examples/checkpoint_roundtrip [checkpoint_dir]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "models/mdn.h"
#include "storage/table.h"

namespace {

using ddup::Rng;
using ddup::storage::Column;
using ddup::storage::Table;

// y | x ~ MoG with the given peak means (all categories share the shape).
Table MogTable(const std::vector<double>& peaks, int64_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> xs;
  std::vector<double> ys;
  std::vector<std::string> labels;
  for (int i = 0; i < 6; ++i) labels.push_back("x" + std::to_string(i));
  for (int64_t r = 0; r < rows; ++r) {
    xs.push_back(static_cast<int32_t>(rng.UniformInt(0, 5)));
    double peak = peaks[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(peaks.size()) - 1))];
    ys.push_back(std::clamp(rng.Normal(peak, 2.5), 0.0, 100.0));
  }
  Table t("mog");
  t.AddColumn(Column::Categorical("x", xs, labels));
  t.AddColumn(Column::Numeric("y", ys));
  return t;
}

// Bit-exact density comparison over a probe grid; returns the number of
// mismatching probes (0 on a faithful reload).
int CompareDensities(const ddup::models::Mdn& live,
                     const ddup::models::Mdn& reloaded) {
  int mismatches = 0;
  for (int cat = 0; cat < 6; ++cat) {
    for (int b = 0; b < 20; ++b) {
      double y = (b + 0.5) * 5.0;
      double a = live.ConditionalDensity(cat, y);
      double c = reloaded.ConditionalDensity(cat, y);
      if (std::memcmp(&a, &c, sizeof(double)) != 0) ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("DDUp checkpoint round trip — save, drift, distill, save\n\n");
  std::string dir = argc > 1 ? argv[1] : "/tmp/ddup_checkpoint_demo";
  std::string mkdir_cmd = "mkdir -p " + dir;
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::printf("cannot create %s\n", dir.c_str());
    return 1;
  }
  std::string v0_path = dir + "/model_v0.ckpt";
  std::string v1_path = dir + "/model_v1.ckpt";
  std::string controller_path = dir + "/controller.ckpt";

  // 1. Train the base model and persist the deployable artifact.
  Table base = MogTable({15, 40, 65}, 3000, 1);
  ddup::models::MdnConfig config;
  config.num_components = 6;
  config.epochs = 10;
  ddup::models::Mdn model(base, "x", "y", config);
  ddup::Status saved = model.SaveToFile(v0_path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved   %s (base model)\n", v0_path.c_str());

  // 2. Reload and verify bit-identity.
  auto reloaded = ddup::models::Mdn::LoadFromFile(v0_path);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  int mismatches = CompareDensities(model, *reloaded.value());
  std::printf("reload  %s: %d/120 density probes differ (%s)\n", v0_path.c_str(),
              mismatches, mismatches == 0 ? "bit-identical" : "MISMATCH");
  if (mismatches != 0) return 1;

  // 3. Run the reloaded model under a controller, snapshot, resume.
  ddup::core::ControllerConfig controller_config;
  controller_config.detector.bootstrap_iterations = 64;
  controller_config.policy.distill.epochs = 6;
  ddup::models::Mdn* live = reloaded.value().get();
  ddup::core::DdupController controller(live, base, controller_config);
  saved = controller.SaveSnapshot(controller_path);
  if (!saved.ok()) {
    std::printf("snapshot failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved   %s (detector moments + %lld accumulated rows)\n",
              controller_path.c_str(),
              static_cast<long long>(controller.data().num_rows()));

  auto resumed = ddup::core::DdupController::Resume(live, controller_config,
                                                    controller_path);
  if (!resumed.ok()) {
    std::printf("resume failed: %s\n", resumed.status().ToString().c_str());
    return 1;
  }
  std::printf("resumed %s without re-running the bootstrap phase\n",
              controller_path.c_str());

  // 4. Drift arrives: an OOD batch from a different mixture.
  Table ood_batch = MogTable({85, 95}, 600, 3);
  auto report_or = resumed.value()->HandleInsertion(ood_batch);
  DDUP_CHECK_MSG(report_or.ok(), report_or.status().ToString());
  const auto& report = report_or.value();
  std::printf(
      "drift   statistic %.4f vs threshold %.4f -> %s (%s, %.2fs update)\n",
      report.test.statistic, report.test.threshold,
      report.test.is_ood ? "OOD" : "in-distribution",
      ddup::core::ActionName(report.action), report.update_seconds);
  if (!report.test.is_ood) {
    std::printf("expected the permuted batch to be flagged OOD\n");
    return 1;
  }

  // 5. Persist the distilled model — the v1 artifact a server would swap in.
  saved = live->SaveToFile(v1_path);
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  auto v1 = ddup::models::Mdn::LoadFromFile(v1_path);
  if (!v1.ok()) {
    std::printf("load failed: %s\n", v1.status().ToString().c_str());
    return 1;
  }
  mismatches = CompareDensities(*live, *v1.value());
  std::printf("saved   %s (distilled update): %d/120 probes differ (%s)\n",
              v1_path.c_str(), mismatches,
              mismatches == 0 ? "bit-identical" : "MISMATCH");
  if (mismatches != 0) return 1;

  std::printf(
      "\nDone. model_v0 -> detect drift -> distill -> model_v1, every reload "
      "bit-exact.\n");
  return 0;
}
