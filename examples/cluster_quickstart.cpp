// Cluster quickstart: the sharded serving layer from README/DESIGN.md §15
// in ~90 lines, verified end to end and registered as a ctest target.
//
//   1. A serving::Cluster consistent-hashes tables across independent
//      engine shards; each shard is an ordinary api::Engine with its own
//      update workers and its own engine-side admission control (bounded
//      per-table backlog + a named policy).
//   2. Ingest routes to the owning shard; overload resolves engine-side
//      (here: "coalesce" merges the pile into one group task instead of
//      growing the queue — no caller-side backlog polling).
//   3. Estimates: single-table requests hit the owning shard; a join
//      query spanning shards fans its per-table subqueries out through the
//      QueryRouter's cross-shard mode.
//   4. Cluster checkpoint: Save quiesces every shard, writes one file per
//      shard plus a manifest (written last); Load restores placement and
//      models bit-identically.
//
// Build & run:  ./build/examples/cluster_quickstart [checkpoint-path]
#include <cstdio>
#include <string>
#include <vector>

#include "serving/cluster.h"
#include "storage/column.h"
#include "storage/table.h"
#include "workload/join_query.h"

namespace {

using ddup::serving::Cluster;
using ddup::serving::ClusterConfig;

bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

ddup::storage::Table Orders(int n) {
  std::vector<double> customer, price;
  for (int i = 0; i < n; ++i) {
    customer.push_back(static_cast<double>(i % 24));
    price.push_back(10.0 * (i % 10));
  }
  ddup::storage::Table t("orders");
  t.AddColumn(ddup::storage::Column::Numeric("o_customer", customer));
  t.AddColumn(ddup::storage::Column::Numeric("o_price", price));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("ddup cluster quickstart — sharded serving layer\n");
  bool all_ok = true;
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/ddup_cluster_quickstart.ckpt");

  // --- A 2-shard cluster with engine-side admission control ----------------
  ClusterConfig config;
  config.shards = 2;
  config.engine.micro_batch_rows = 120;
  config.engine.update_workers = 1;     // async updates per shard
  config.engine.max_backlog_batches = 2;  // bounded per-table backlog
  config.engine.admission_policy = "coalesce";
  Cluster cluster(config);

  std::vector<double> customer_key, customer_nation;
  for (int i = 0; i < 24; ++i) {
    customer_key.push_back(i);
    customer_nation.push_back(i % 6);
  }
  ddup::storage::Table customers("customers");
  customers.AddColumn(ddup::storage::Column::Numeric("c_key", customer_key));
  customers.AddColumn(
      ddup::storage::Column::Numeric("c_nation", customer_nation));

  all_ok &= Check(cluster.CreateTable("orders", Orders(240)).ok(),
                  "create orders");
  all_ok &= Check(cluster.CreateTable("customers", customers).ok(),
                  "create customers");
  std::printf("  orders -> shard %d, customers -> shard %d\n",
              cluster.ShardOf("orders"), cluster.ShardOf("customers"));
  all_ok &= Check(
      cluster
          .AttachModel("orders",
                       {"spn", {{"min_instances_slice", "64"}, {"seed", "7"}}})
          .ok(),
      "attach spn to orders");

  // --- Ingest through the bounded backlog ----------------------------------
  // 4 micro-batches at once against a bound of 2: the coalesce policy
  // merges what does not fit into one group task engine-side — the caller
  // never polls backlog_batches (that field is advisory now).
  all_ok &= Check(cluster.Ingest("orders", Orders(480)).ok(),
                  "ingest 480 rows (coalesced past the backlog bound)");
  all_ok &= Check(cluster.FlushAll().ok(), "flush all shards");
  auto report = cluster.Report("orders");
  all_ok &= Check(report.ok() && report.value().rows == 720,
                  "orders model absorbed 720 rows");

  // --- Estimates: single-table and cross-shard join ------------------------
  ddup::api::EstimateRequest single;
  single.table = "orders";
  ddup::workload::Query cheap;
  ddup::workload::Predicate p;
  p.column = 1;
  p.op = ddup::workload::CompareOp::kLe;
  p.value = 40.0;
  cheap.predicates = {p};
  single.queries.Add(cheap);
  auto single_answer = cluster.Estimate(single);
  all_ok &= Check(single_answer.ok() &&
                      single_answer.value().answers.size() == 1,
                  "single-table estimate on the owning shard");

  ddup::api::EstimateRequest join;
  ddup::workload::JoinQuery q;
  ddup::workload::JoinEdge e;
  e.left_table = "orders";
  e.left_column = "o_customer";
  e.right_table = "customers";
  e.right_column = "c_key";
  q.joins = {e};
  ddup::workload::BoundPredicate bp;
  bp.table = "orders";
  bp.predicate = p;
  q.predicates = {bp};
  join.joins.Add(q);
  auto join_answer = cluster.Estimate(join);
  all_ok &= Check(join_answer.ok() && join_answer.value().answers.size() == 1,
                  "join estimate fans out across shards");

  // --- Cluster checkpoint: quiesce-all, then shard files, manifest last ----
  all_ok &= Check(cluster.Save(path).ok(), "save cluster checkpoint");
  ClusterConfig load_config;
  load_config.engine = config.engine;
  auto restored = Cluster::Load(path, load_config);
  all_ok &= Check(restored.ok(), "load cluster checkpoint");
  if (restored.ok()) {
    auto again = restored.value()->Estimate(join);
    all_ok &= Check(again.ok() &&
                        again.value().answers == join_answer.value().answers,
                    "restored cluster answers bit-identically");
  }
  std::remove(path.c_str());
  for (int s = 0; s < cluster.num_shards(); ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }

  std::printf("%s\n", all_ok ? "ALL OK" : "FAILED");
  return all_ok ? 0 : 1;
}
