// DG pipeline: TVAE-based synthetic data generation (privacy-friendly data
// sharing) with DDUp keeping the generator aligned with evolving data.
// Quality is measured the way the paper does (§5.1.4): train a boosted-tree
// classifier on synthetic rows and score it on held-out real rows.
//
// Build & run:  ./build/examples/dg_pipeline
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "datagen/datasets.h"
#include "models/gbdt.h"
#include "models/tvae.h"
#include "storage/sampling.h"
#include "storage/transforms.h"

namespace {

using namespace ddup;  // NOLINT: example code

double SyntheticDataScore(const models::Tvae& generator, int64_t rows,
                          const storage::Table& holdout,
                          const std::string& target, uint64_t seed) {
  Rng rng(seed);
  storage::Table synth = generator.Sample(rows, rng);
  models::GbdtConfig config;
  config.num_rounds = 15;
  models::Gbdt clf(config);
  clf.Train(synth, target);
  return clf.MicroF1(holdout);
}

}  // namespace

int main() {
  std::printf("DG pipeline on forest-like data (TVAE + GBDT + DDUp)\n\n");
  storage::Table base = datagen::ForestLike(5000, 21);
  const std::string target = datagen::ClassColumnFor("forest");

  models::TvaeConfig config;
  config.epochs = 18;
  models::Tvae generator(base, config);

  // Real held-out rows for scoring (fresh draw from the same process).
  storage::Table holdout = datagen::ForestLike(1500, 22);

  models::GbdtConfig gconfig;
  gconfig.num_rounds = 15;
  models::Gbdt real_clf(gconfig);
  real_clf.Train(base, target);
  std::printf("micro-F1, classifier trained on real data:      %.3f\n",
              real_clf.MicroF1(holdout));
  std::printf("micro-F1, classifier trained on synthetic data: %.3f\n",
              SyntheticDataScore(generator, base.num_rows(), holdout, target,
                                 23));

  // Drifted insertion; DDUp distills the generator.
  core::ControllerConfig cc;
  cc.policy.distill.epochs = 12;
  core::DdupController controller(&generator, base, cc);
  Rng drift_rng(24);
  storage::Table batch =
      storage::OutOfDistributionSample(base, drift_rng, 0.2);
  auto report_or = controller.HandleInsertion(batch);
  DDUP_CHECK_MSG(report_or.ok(), report_or.status().ToString());
  const auto& report = report_or.value();
  std::printf("\ninsert verdict: %s -> %s (ELBO stat %.2f vs thr %.2f)\n",
              report.test.is_ood ? "OOD" : "in-distribution",
              core::ActionName(report.action), report.test.statistic,
              report.test.threshold);

  // Score against the *new* reality: holdout drawn from old + new mix.
  storage::Table new_holdout = storage::SampleFraction(
      controller.data(), drift_rng, 0.25);
  std::printf(
      "micro-F1 on post-drift holdout, synthetic-trained classifier: %.3f\n",
      SyntheticDataScore(generator, controller.data().num_rows(), new_holdout,
                         target, 25));
  std::printf(
      "\nThe distilled generator synthesizes data reflecting both the "
      "historical table and the drifted insertions.\n");
  return 0;
}
