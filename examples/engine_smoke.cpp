// Engine smoke: the full multi-table `ddup::api::Engine` lifecycle at tiny
// sizes, verified end to end. Registered as a ctest target and run by
// scripts/bench_smoke.sh, so the public API path cannot rot silently.
//
//   1. Two tables (census-like and forest-like) with different model kinds
//      behind one engine: "darn" serving cardinality estimates and "mdn"
//      serving AQP estimates, both built through the model factory.
//   2. Micro-batched ingestion: an update stream lands in odd-sized chunks,
//      detection runs per full micro-batch, a Flush pushes the remainder.
//   3. Status surface: unknown tables, unregistered kinds and mismatched
//      schemas come back as recoverable Statuses.
//   4. Save -> Load: the whole engine round-trips through one manifest file
//      and the reloaded engine must reproduce every estimate bit-for-bit.
//
// Build & run:  ./build/examples/engine_smoke [checkpoint_path]
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/datasets.h"
#include "storage/sampling.h"
#include "storage/transforms.h"
#include "workload/generator.h"

namespace {

using ddup::Rng;
using ddup::api::Engine;

bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/ddup_engine_smoke.ckpt");
  std::printf("ddup::Engine smoke — two tables, two model kinds, one file\n");
  bool all_ok = true;

  ddup::api::EngineConfig config;
  config.micro_batch_rows = 100;
  config.controller.detector.bootstrap_iterations = 40;
  Engine engine(config);

  // --- Registry + attach ---------------------------------------------------
  ddup::storage::Table census = ddup::datagen::MakeDataset("census", 500, 7);
  ddup::storage::Table forest = ddup::datagen::MakeDataset("forest", 500, 8);
  all_ok &= Check(engine.CreateTable("census", census).ok(), "create census");
  all_ok &= Check(engine.CreateTable("forest", forest).ok(), "create forest");
  all_ok &= Check(
      engine
          .AttachModel("census", {"darn", {{"epochs", "2"}, {"max_bins", "16"}}})
          .ok(),
      "attach darn to census");
  ddup::datagen::AqpColumns aqp = ddup::datagen::AqpColumnsFor("forest");
  all_ok &= Check(engine
                      .AttachModel("forest", {"mdn",
                                              {{"categorical", aqp.categorical},
                                               {"numeric", aqp.numeric},
                                               {"epochs", "3"}}})
                      .ok(),
                  "attach mdn to forest");

  // --- Status surface ------------------------------------------------------
  all_ok &= Check(!engine.CreateTable("census", census).ok(),
                  "duplicate table rejected");
  all_ok &= Check(!engine.AttachModel("census", {"mdn", {}}).ok(),
                  "second model rejected");
  all_ok &= Check(!engine.AttachModel("nowhere", {"mdn", {}}).ok(),
                  "unknown table rejected");
  all_ok &= Check(!engine.Ingest("nowhere", census).ok(),
                  "ingest into unknown table rejected");
  {
    ddup::storage::Table unknown_kind =
        ddup::datagen::MakeDataset("tpcds", 200, 9);
    ddup::api::EngineConfig probe_config;
    Engine probe(probe_config);
    ddup::Status st = probe.CreateTable("t", unknown_kind);
    st = probe.AttachModel("t", {"made-up-kind", {}});
    all_ok &= Check(!st.ok(), "unregistered model kind rejected");
    std::printf("      %s\n", st.ToString().c_str());
  }
  all_ok &= Check(!engine.Ingest("census", forest).ok(),
                  "schema-mismatched batch rejected");

  // --- Micro-batched ingestion ---------------------------------------------
  Rng rng(11);
  ddup::storage::Table census_update =
      ddup::storage::OutOfDistributionSample(census, rng, 0.5);  // 250 rows
  int64_t flushed = 0;
  for (int64_t at = 0; at < census_update.num_rows(); at += 60) {
    std::vector<int64_t> rows;
    for (int64_t r = at;
         r < census_update.num_rows() && r < at + 60; ++r) {
      rows.push_back(r);
    }
    auto result = engine.Ingest("census", census_update.TakeRows(rows));
    if (!result.ok()) {
      std::printf("  ingest failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    flushed += result.value().rows_flushed;
  }
  // 250 rows in 60-row chunks through a 100-row micro-batch: two full
  // micro-batches flush during ingest, 50 rows remain buffered.
  all_ok &= Check(flushed == 200, "two micro-batches flushed during ingest");
  auto flush = engine.Flush("census");
  all_ok &= Check(flush.ok() && flush.value().rows_flushed == 50,
                  "flush pushes the 50-row remainder");

  ddup::storage::Table forest_update =
      ddup::storage::InDistributionSample(forest, rng, 0.3);
  auto forest_ingest = engine.Ingest("forest", forest_update);
  all_ok &= Check(forest_ingest.ok(), "forest ingest");
  auto sweep = engine.FlushAll();
  all_ok &= Check(sweep.ok(), "flush all");
  // Only "forest" still holds a remainder ("census" was flushed above).
  all_ok &= Check(sweep.ok() && sweep.value().tables_flushed == 1 &&
                      sweep.value().tables_skipped == 1,
                  "flush-all report: one table flushed, one short-circuited");

  // --- Queries through the facade ------------------------------------------
  Rng qrng(23);
  ddup::workload::NaruWorkloadConfig naru;
  naru.min_filters = 2;
  naru.max_filters = 4;
  auto card_queries =
      ddup::workload::GenerateNonEmptyNaruQueries(census, naru, 12, qrng);
  ddup::workload::AqpWorkloadConfig aqp_config;
  aqp_config.categorical_column = aqp.categorical;
  aqp_config.numeric_column = aqp.numeric;
  auto aqp_queries =
      ddup::workload::GenerateNonEmptyAqpQueries(forest, aqp_config, 12, qrng);

  all_ok &= Check(!engine.EstimateAqp("census", card_queries[0]).ok(),
                  "darn table refuses AQP estimates");

  // --- Save -> Load, bit-identical -----------------------------------------
  // A sub-threshold trickle right before the save: the accumulator content
  // must survive the round trip (visible as buffered_rows below).
  auto trickle = engine.Ingest("forest", forest.Head(30));
  all_ok &= Check(trickle.ok() && trickle.value().rows_buffered == 30,
                  "trickle buffered, not flushed");
  if (!Check(engine.Save(path).ok(), "save engine")) return 1;
  auto loaded = Engine::Load(path, config);
  if (!Check(loaded.ok(), "load engine")) return 1;

  // Both engines now hold the exact saved state (the DARN's progressive
  // sampler consumes its RNG stream on every estimate, so the query
  // sequences must start from the same stream position on both sides).
  std::vector<double> before;
  for (const auto& q : card_queries) {
    auto est = engine.EstimateCardinality("census", q);
    if (!est.ok()) return 1;
    before.push_back(est.value());
  }
  for (const auto& q : aqp_queries) {
    auto est = engine.EstimateAqp("forest", q);
    if (!est.ok()) return 1;
    before.push_back(est.value());
  }

  std::vector<double> after;
  for (const auto& q : card_queries) {
    auto est = loaded.value()->EstimateCardinality("census", q);
    if (!est.ok()) return 1;
    after.push_back(est.value());
  }
  for (const auto& q : aqp_queries) {
    auto est = loaded.value()->EstimateAqp("forest", q);
    if (!est.ok()) return 1;
    after.push_back(est.value());
  }
  bool identical = before == after;
  all_ok &= Check(identical, "reloaded estimates bit-identical");

  for (const auto& name : engine.TableNames()) {
    auto a = engine.Report(name);
    auto b = loaded.value()->Report(name);
    if (!a.ok() || !b.ok()) return 1;
    bool same = a.value().rows == b.value().rows &&
                a.value().buffered_rows == b.value().buffered_rows &&
                a.value().insertions == b.value().insertions &&
                a.value().ood_updates == b.value().ood_updates &&
                a.value().bootstrap_mean == b.value().bootstrap_mean &&
                a.value().bootstrap_std == b.value().bootstrap_std;
    all_ok &= Check(same, ("report round-trips for " + name).c_str());
    std::printf(
        "      %-6s model=%-4s rows=%lld buffered=%lld insertions=%lld "
        "ood=%lld finetunes=%lld stale=%lld\n",
        name.c_str(), a.value().model_kind.c_str(),
        static_cast<long long>(a.value().rows),
        static_cast<long long>(a.value().buffered_rows),
        static_cast<long long>(a.value().insertions),
        static_cast<long long>(a.value().ood_updates),
        static_cast<long long>(a.value().finetunes),
        static_cast<long long>(a.value().kept_stale));
  }

  if (!all_ok) {
    std::printf("engine_smoke: FAILED\n");
    return 1;
  }
  std::printf("engine_smoke: OK\n");
  return 0;
}
