// Join pipeline: DDUp over a 3-table star join (§4.5 / Figure 8). The fact
// table arrives in time-ordered partitions whose distribution drifts; each
// insertion's "new data" is the new partition joined with the dimension
// tables. A DARN cardinality estimator is kept fresh by the controller.
//
// Build & run:  ./build/examples/join_pipeline
#include <cstdio>

#include "common/rng.h"
#include "core/controller.h"
#include "datagen/star_schema.h"
#include "models/darn.h"
#include "storage/sampling.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace {

using namespace ddup;  // NOLINT: example code

}  // namespace

int main() {
  std::printf("Join pipeline: JOB-like star schema (title info/company)\n\n");
  datagen::StarDataset star = datagen::ImdbLike(5000, 31);
  auto parts = storage::SplitIntoBatches(star.fact, 5);
  storage::Table base_join = star.JoinWithFact(parts[0]);
  std::printf("base join: %lld rows x %d columns\n",
              static_cast<long long>(base_join.num_rows()),
              base_join.num_columns());

  models::DarnConfig config;
  config.epochs = 12;
  models::Darn model(base_join, config);

  Rng qrng(32);
  workload::NaruWorkloadConfig wconfig;
  wconfig.min_filters = 2;
  wconfig.max_filters = 4;
  auto queries =
      workload::GenerateNonEmptyNaruQueries(base_join, wconfig, 120, qrng);

  core::ControllerConfig cc;
  cc.policy.distill.epochs = 10;
  core::DdupController controller(&model, base_join, cc);

  storage::Table accumulated = base_join;
  std::printf("\n%-6s %-8s %-10s %14s %14s\n", "step", "verdict", "action",
              "median q-err", "update (s)");
  for (size_t step = 1; step < parts.size(); ++step) {
    storage::Table new_data = star.JoinWithFact(parts[step]);
    auto report_or = controller.HandleInsertion(new_data);
    DDUP_CHECK_MSG(report_or.ok(), report_or.status().ToString());
    const auto& report = report_or.value();
    accumulated.Append(new_data);

    std::vector<double> errs;
    for (const auto& q : queries) {
      double truth = workload::Execute(accumulated, q).value;
      if (truth == 0.0) continue;
      errs.push_back(workload::QError(model.EstimateCardinality(q), truth));
    }
    std::printf("%-6zu %-8s %-10s %14.2f %14.2f\n", step,
                report.test.is_ood ? "OOD" : "in-dist",
                core::ActionName(report.action),
                workload::Summarize(errs).median, report.update_seconds);
  }
  std::printf(
      "\nEach drifted partition is detected as OOD and distilled in — the "
      "estimator follows the moving join distribution without full "
      "retrains.\n");
  return 0;
}
