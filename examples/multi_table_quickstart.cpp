// Multi-table quickstart: the engine-level join path from README in ~80
// lines, verified end to end and registered as a ctest target.
//
//   1. A tiny star schema — orders (fact) joined to customers and nations —
//      registered as three engine tables. Only the predicated fact table
//      needs a model; the dimensions enter the join math through their
//      exact stats snapshots (row count + per-column NDV) alone.
//   2. Structured multi-table queries: workload::JoinQuery holds
//      table-qualified predicates plus equi-join edges, and the
//      api::QueryRouter plans them (typed plan errors), fans per-table
//      subqueries out against the serving snapshots, and combines the
//      selectivities under a chosen assumption.
//   3. Both registered combiners on a clean foreign-key join, where each
//      must reproduce the exact join size; then a typed planning error.
//
// Build & run:  ./build/examples/multi_table_quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/router.h"
#include "storage/column.h"
#include "storage/table.h"
#include "workload/join_query.h"

namespace {

using ddup::api::Engine;
using ddup::api::QueryRouter;

bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  std::printf("ddup multi-table quickstart — joins through the router\n");
  bool all_ok = true;

  // --- A star schema behind one engine -------------------------------------
  // 24 customers across 6 nations; 240 orders, each from a known customer.
  std::vector<double> nation_key, customer_key, customer_nation;
  for (int i = 0; i < 6; ++i) nation_key.push_back(i);
  for (int i = 0; i < 24; ++i) {
    customer_key.push_back(i);
    customer_nation.push_back(i % 6);
  }
  std::vector<double> order_customer, order_price;
  for (int i = 0; i < 240; ++i) {
    order_customer.push_back(i % 24);
    order_price.push_back(10.0 * (i % 10));
  }
  ddup::storage::Table nations("nations");
  nations.AddColumn(ddup::storage::Column::Numeric("n_key", nation_key));
  ddup::storage::Table customers("customers");
  customers.AddColumn(ddup::storage::Column::Numeric("c_key", customer_key));
  customers.AddColumn(
      ddup::storage::Column::Numeric("c_nation", customer_nation));
  ddup::storage::Table orders("orders");
  orders.AddColumn(ddup::storage::Column::Numeric("o_customer",
                                                  order_customer));
  orders.AddColumn(ddup::storage::Column::Numeric("o_price", order_price));

  ddup::api::EngineConfig config;
  Engine engine(config);
  all_ok &= Check(engine.CreateTable("orders", orders).ok(), "create orders");
  all_ok &= Check(engine.CreateTable("customers", customers).ok(),
                  "create customers");
  all_ok &=
      Check(engine.CreateTable("nations", nations).ok(), "create nations");
  // The fact table carries the predicates, so it gets a cardinality model.
  all_ok &= Check(
      engine
          .AttachModel("orders",
                       {"spn", {{"min_instances_slice", "64"}, {"seed", "7"}}})
          .ok(),
      "attach spn to orders");

  // --- A structured join query ---------------------------------------------
  // COUNT(orders ⋈ customers ⋈ nations WHERE o_price <= 40): predicates are
  // (table, single-table predicate) pairs, joins are equi-join edges.
  ddup::workload::JoinQuery query;
  query.joins.push_back({"orders", "o_customer", "customers", "c_key"});
  query.joins.push_back({"customers", "c_nation", "nations", "n_key"});
  ddup::workload::BoundPredicate price;
  price.table = "orders";
  price.predicate = {1, ddup::workload::CompareOp::kLe, 40.0};
  query.predicates.push_back(price);

  QueryRouter router(&engine);
  auto plan = router.Plan(query);
  if (!Check(plan.ok(), "plan resolves the join graph")) return 1;
  std::printf("      root=%s tables=%zu edges=%zu subqueries=%zu\n",
              plan.value().root.c_str(), plan.value().tables.size(),
              plan.value().edges.size(), plan.value().subqueries.size());

  // Every foreign key hits a unique dimension key, so with the predicate
  // removed the exact join size is rows(orders) = 240 and both combiners
  // must reproduce it from the stats snapshots alone.
  ddup::workload::JoinQuery unfiltered;
  unfiltered.joins = query.joins;
  for (const std::string& combiner : ddup::api::RegisteredJoinCombiners()) {
    auto estimate = router.EstimateCardinality(unfiltered, combiner);
    if (!Check(estimate.ok(), ("estimate under " + combiner).c_str())) {
      return 1;
    }
    std::printf("      %-16s unfiltered join -> %.1f rows\n", combiner.c_str(),
                estimate.value());
    all_ok &= Check(estimate.value() == 240.0,
                    ("clean-FK join exact under " + combiner).c_str());
  }

  // With the predicate on: 5 of 10 price values pass, and the SPN sees the
  // marginal exactly, so the combined estimate lands on 120.
  auto filtered = router.EstimateCardinality(query);
  if (!Check(filtered.ok(), "filtered join estimate")) return 1;
  std::printf("      filtered join (o_price <= 40) -> %.1f rows\n",
              filtered.value());

  // The same call through the structured engine surface.
  ddup::api::EstimateRequest request;
  request.joins.Add(query);
  auto via_engine = engine.Estimate(request);
  all_ok &= Check(via_engine.ok() &&
                      via_engine.value().answers[0] == filtered.value(),
                  "Engine::Estimate(join shape) matches the router");

  // --- Typed planning errors -----------------------------------------------
  ddup::workload::JoinQuery bad = query;
  bad.joins.push_back({"orders", "o_price", "suppliers", "s_key"});
  auto err = router.EstimateCardinality(bad);
  auto code = ddup::api::PlanErrorFromStatus(err.status());
  all_ok &= Check(!err.ok() && code.has_value() &&
                      code.value() == ddup::api::PlanError::kUnknownTable,
                  "unknown table is a typed plan error");
  std::printf("      %s\n", err.status().ToString().c_str());

  if (!all_ok) {
    std::printf("multi_table_quickstart: FAILED\n");
    return 1;
  }
  std::printf("multi_table_quickstart: OK\n");
  return 0;
}
