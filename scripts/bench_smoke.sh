#!/usr/bin/env bash
# Bench smoke: the kernel micro benches at a few iterations apiece plus one
# end-to-end harness bench at tiny parameters. This is the single source of
# truth for the smoke configuration — CI and developers both run this script,
# so the knobs cannot drift between the workflow file and local runs.
#
# Usage:  scripts/bench_smoke.sh [build_dir]          (default: build)
#
# Knobs (override via environment):
#   DDUP_ROWS / DDUP_QUERIES / DDUP_EPOCH_SCALE / DDUP_BOOTSTRAP — harness size
#   DDUP_CHECKPOINT_DIR — warm-start cache; set it to skip base-model training
#     on repeat runs (results are bit-identical either way, see bench/harness.h)
#   DDUP_BENCH_JSON_DIR — where the BENCH_*.json artifacts land
#     (default: <build_dir>/bench-json; CI uploads this directory)
set -euo pipefail

BUILD_DIR=${1:-build}
if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "bench_smoke: ${BUILD_DIR}/bench not found (build with benchmarks on)" >&2
  exit 1
fi

export DDUP_ROWS=${DDUP_ROWS:-400}
export DDUP_QUERIES=${DDUP_QUERIES:-10}
export DDUP_EPOCH_SCALE=${DDUP_EPOCH_SCALE:-0.1}
export DDUP_BOOTSTRAP=${DDUP_BOOTSTRAP:-20}
export DDUP_BENCH_JSON_DIR=${DDUP_BENCH_JSON_DIR:-${BUILD_DIR}/bench-json}

# Kernel-layer smoke (needs google-benchmark; skipped when the micro benches
# were not built, e.g. offline configures).
if [[ -x "${BUILD_DIR}/bench/bench_micro_tensor" ]]; then
  "${BUILD_DIR}/bench/bench_micro_tensor" \
    --benchmark_filter='MatMulValue|GemmInto|AffineRelu'
else
  echo "bench_smoke: bench_micro_tensor not built, skipping kernel smoke"
fi

# Public-API smoke: the multi-table Engine lifecycle (factory, micro-batched
# ingestion, Status surface, Save->Load bit-identity). Also a ctest target;
# running it here keeps the smoke script exercising the whole public surface.
if [[ -x "${BUILD_DIR}/examples/engine_smoke" ]]; then
  "${BUILD_DIR}/examples/engine_smoke" "${BUILD_DIR}/engine_smoke.ckpt"
else
  echo "bench_smoke: engine_smoke not built, skipping engine smoke"
fi

# Concurrency smoke: the async Engine (background update workers, snapshot
# serving) vs the synchronous engine under a short mixed Ingest/Estimate
# load. Tiny knobs — the full-size run is the concurrency baseline in
# ROADMAP.md; this only proves the path end to end.
if [[ -x "${BUILD_DIR}/bench/bench_engine_throughput" ]]; then
  DDUP_BENCH_TABLES=${DDUP_BENCH_TABLES:-2} \
  DDUP_BENCH_CLIENTS=${DDUP_BENCH_CLIENTS:-2} \
  DDUP_BENCH_SECONDS=${DDUP_BENCH_SECONDS:-2} \
  DDUP_BENCH_WORKERS=${DDUP_BENCH_WORKERS:-2} \
    "${BUILD_DIR}/bench/bench_engine_throughput"
else
  echo "bench_smoke: bench_engine_throughput not built, skipping"
fi

# Cluster smoke: the same mixed workload against the sharded serving layer
# (serving::Cluster) at 1 and 2 shards, engine-side shed admission. Writes
# BENCH_cluster_throughput.json — estimate QPS vs shard count; the
# committed full-size sweep lives in results/.
if [[ -x "${BUILD_DIR}/bench/bench_engine_throughput" ]]; then
  DDUP_BENCH_TABLES=${DDUP_BENCH_TABLES:-2} \
  DDUP_BENCH_CLIENTS=${DDUP_BENCH_CLIENTS:-2} \
  DDUP_BENCH_SECONDS=${DDUP_BENCH_SECONDS:-2} \
  DDUP_BENCH_WORKERS=${DDUP_BENCH_WORKERS:-1} \
  DDUP_BENCH_SHARDS=${DDUP_BENCH_SHARDS:-1,2} \
    "${BUILD_DIR}/bench/bench_engine_throughput" --cluster
else
  echo "bench_smoke: cluster bench not built, skipping"
fi

# Codec frontier smoke: every registered checkpoint codec against real
# data-plane payloads (checkpoint sections harvested from an actual engine
# Save, serialized batches, raw column bytes). Verifies every round trip
# bit-exactly and writes BENCH_codec_frontier.json (ratio + MB/s per cell);
# the committed full-size run lives in results/.
"${BUILD_DIR}/bench/bench_codec_frontier"

# Drift grid smoke: every detector in the zoo against every named drift
# scenario, scored on FPR / FNR / detection delay; writes
# BENCH_drift_grid.json (bit-identical for a fixed seed).
"${BUILD_DIR}/bench/bench_drift_grid"

# Estimate-engine smoke: scalar vs reference vs vectorized estimate QPS over
# batch size x reader threads; writes BENCH_estimate_batch.json. Tiny grid —
# the committed full-size run lives next to DESIGN.md §13.
DDUP_BENCH_ESTIMATES=${DDUP_BENCH_ESTIMATES:-64} \
DDUP_BENCH_MAX_THREADS=${DDUP_BENCH_MAX_THREADS:-2} \
  "${BUILD_DIR}/bench/bench_estimate_batch"

# End-to-end harness smoke: trains, detects, distills and prints the q-error
# table at tiny size. Exercises the full model/detector/update stack.
"${BUILD_DIR}/bench/bench_table5_update_qerror"
echo "bench_smoke: OK"
