#include "api/engine.h"

#include <numeric>
#include <utility>

#include "io/checkpoint.h"
#include "io/serializer.h"

namespace ddup::api {

namespace {

constexpr uint32_t kManifestVersion = 1;
constexpr const char* kManifestSection = "engine";

// Section names for the per-table payloads. Table names may contain any
// character except the separator we pick here; Save rejects offenders.
std::string ModelSection(const std::string& table) { return "model:" + table; }
std::string ControllerSection(const std::string& table) {
  return "controller:" + table;
}

// Rows [begin, end) of `t`, preserving order.
storage::Table Slice(const storage::Table& t, int64_t begin, int64_t end) {
  std::vector<int64_t> rows(static_cast<size_t>(end - begin));
  std::iota(rows.begin(), rows.end(), begin);
  return t.TakeRows(rows);
}

}  // namespace

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  DDUP_CHECK_MSG(config_.micro_batch_rows > 0,
                 "EngineConfig::micro_batch_rows must be positive");
}

StatusOr<Engine::TableState*> Engine::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

StatusOr<const Engine::TableState*> Engine::FindTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Status Engine::CreateTable(const std::string& name,
                           const storage::Table& base_data,
                           const TableOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (name.find(':') != std::string::npos) {
    // ':' separates the checkpoint section namespace ("model:<table>");
    // reject it here so an engine never becomes un-checkpointable later.
    return Status::InvalidArgument("table name '" + name +
                                   "' must not contain ':'");
  }
  if (tables_.count(name) > 0) {
    return Status::FailedPrecondition("table '" + name + "' already exists");
  }
  if (base_data.num_columns() == 0) {
    return Status::InvalidArgument("table '" + name +
                                   "' needs at least one column");
  }
  if (options.micro_batch_rows < 0) {
    return Status::InvalidArgument("micro_batch_rows must be >= 0");
  }
  TableState state;
  state.micro_batch_rows = options.micro_batch_rows > 0
                               ? options.micro_batch_rows
                               : config_.micro_batch_rows;
  state.base = base_data;
  state.base.set_name(name);
  state.pending = state.base.TakeRows({});  // zero rows, same schema
  tables_[name] = std::move(state);
  return Status::OK();
}

Status Engine::AttachModel(const std::string& name, const ModelSpec& spec) {
  StatusOr<TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  TableState* state = found.value();
  if (state->model != nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' already has a model attached");
  }
  if (state->base.num_rows() <= 0) {
    return Status::FailedPrecondition(
        "table '" + name + "' has no rows to train the base model on");
  }
  StatusOr<std::unique_ptr<core::UpdatableModel>> model =
      ModelFactory::Global().Create(spec.kind, state->base, spec.options);
  if (!model.ok()) return model.status();
  state->model = std::move(model).value();
  state->controller = std::make_unique<core::DdupController>(
      state->model.get(), state->base, config_.controller);
  state->spec = spec;
  // The controller owns the accumulated data from here on; keep only the
  // schema for batch validation.
  state->base = state->base.TakeRows({});
  return Status::OK();
}

Status Engine::PushBatch(TableState* state, const storage::Table& batch,
                         IngestResult* result) {
  StatusOr<core::InsertionReport> report =
      state->controller->HandleInsertion(batch);
  if (!report.ok()) return report.status();
  state->insertions += 1;
  switch (report.value().action) {
    case core::UpdateAction::kDistill:
      state->ood_updates += 1;
      break;
    case core::UpdateAction::kFineTune:
      state->finetunes += 1;
      break;
    default:
      state->kept_stale += 1;
      break;
  }
  state->detect_seconds += report.value().detect_seconds;
  state->update_seconds += report.value().update_seconds;
  result->rows_flushed += batch.num_rows();
  result->reports.push_back(std::move(report).value());
  return Status::OK();
}

Status Engine::Drain(TableState* state, bool all, IngestResult* result) {
  // Single pass over the accumulator: each row is copied once into its
  // micro-batch (plus once for the surviving remainder), never re-copied
  // per iteration. On an error, the unconsumed suffix stays buffered.
  const int64_t total = state->pending.num_rows();
  int64_t offset = 0;
  Status status;
  while (status.ok() && total - offset >= state->micro_batch_rows) {
    status = PushBatch(
        state, Slice(state->pending, offset, offset + state->micro_batch_rows),
        result);
    if (status.ok()) offset += state->micro_batch_rows;
  }
  if (status.ok() && all && offset < total) {
    status = PushBatch(state, Slice(state->pending, offset, total), result);
    if (status.ok()) offset = total;
  }
  if (offset > 0) state->pending = Slice(state->pending, offset, total);
  result->rows_buffered = state->pending.num_rows();
  return status;
}

StatusOr<IngestResult> Engine::Ingest(const std::string& name,
                                      const storage::Table& batch) {
  StatusOr<TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  TableState* state = found.value();
  if (state->controller == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  IngestResult result;
  if (batch.num_rows() > 0) {
    DDUP_RETURN_IF_ERROR(storage::CheckSchemaCompatible(state->base, batch));
    state->pending.Append(batch);
  }
  DDUP_RETURN_IF_ERROR(Drain(state, /*all=*/false, &result));
  return result;
}

StatusOr<IngestResult> Engine::Flush(const std::string& name) {
  StatusOr<TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  TableState* state = found.value();
  if (state->controller == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  IngestResult result;
  DDUP_RETURN_IF_ERROR(Drain(state, /*all=*/true, &result));
  return result;
}

Status Engine::FlushAll() {
  for (auto& [name, state] : tables_) {
    // A table without a model cannot have buffered rows (Ingest requires
    // the controller), so there is nothing to flush — skip it rather than
    // failing the whole sweep.
    if (state.controller == nullptr) continue;
    StatusOr<IngestResult> result = Flush(name);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

StatusOr<double> Engine::EstimateCardinality(
    const std::string& name, const workload::Query& query) const {
  StatusOr<const TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  const TableState* state = found.value();
  if (state->model == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  const auto* estimator =
      dynamic_cast<const core::CardinalityEstimator*>(state->model.get());
  if (estimator == nullptr) {
    return Status::FailedPrecondition(
        "model kind '" + state->spec.kind + "' on table '" + name +
        "' does not serve cardinality estimates");
  }
  return estimator->TryEstimateCardinality(query);
}

StatusOr<double> Engine::EstimateAqp(const std::string& name,
                                     const workload::Query& query) const {
  StatusOr<const TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  const TableState* state = found.value();
  if (state->model == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  const auto* estimator =
      dynamic_cast<const core::AqpEstimator*>(state->model.get());
  if (estimator == nullptr) {
    return Status::FailedPrecondition("model kind '" + state->spec.kind +
                                      "' on table '" + name +
                                      "' does not serve AQP estimates");
  }
  return estimator->TryEstimateAqp(query, state->base);
}

StatusOr<TableReport> Engine::Report(const std::string& name) const {
  StatusOr<const TableState*> found = FindTable(name);
  if (!found.ok()) return found.status();
  const TableState* state = found.value();
  TableReport report;
  report.table = name;
  report.model_kind = state->spec.kind;
  report.rows = state->controller != nullptr
                    ? state->controller->data().num_rows()
                    : state->base.num_rows();
  report.buffered_rows = state->pending.num_rows();
  report.micro_batch_rows = state->micro_batch_rows;
  report.insertions = state->insertions;
  report.ood_updates = state->ood_updates;
  report.finetunes = state->finetunes;
  report.kept_stale = state->kept_stale;
  report.detect_seconds = state->detect_seconds;
  report.update_seconds = state->update_seconds;
  if (state->controller != nullptr) {
    report.bootstrap_mean = state->controller->detector().bootstrap_mean();
    report.bootstrap_std = state->controller->detector().bootstrap_std();
  }
  return report;
}

std::vector<std::string> Engine::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, state] : tables_) {
    (void)state;
    names.push_back(name);
  }
  return names;
}

bool Engine::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

core::UpdatableModel* Engine::model(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.model.get();
}

Status Engine::Save(const std::string& path) const {
  io::CheckpointWriter writer;
  io::Serializer manifest;
  manifest.WriteU32(kManifestVersion);
  manifest.WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, state] : tables_) {
    if (name.find(':') != std::string::npos) {
      return Status::InvalidArgument("table name '" + name +
                                     "' cannot be checkpointed (contains ':')");
    }
    manifest.WriteString(name);
    manifest.WriteString(state.spec.kind);
    manifest.WriteU32(static_cast<uint32_t>(state.spec.options.size()));
    for (const auto& [key, value] : state.spec.options) {
      manifest.WriteString(key);
      manifest.WriteString(value);
    }
    manifest.WriteI64(state.micro_batch_rows);
    manifest.WriteI64(state.insertions);
    manifest.WriteI64(state.ood_updates);
    manifest.WriteI64(state.finetunes);
    manifest.WriteI64(state.kept_stale);
    manifest.WriteDouble(state.detect_seconds);
    manifest.WriteDouble(state.update_seconds);
    manifest.WriteTable(state.base);
    manifest.WriteTable(state.pending);
    manifest.WriteBool(state.model != nullptr);
    if (state.model != nullptr) {
      io::Serializer model_state;
      DDUP_RETURN_IF_ERROR(state.model->SaveState(&model_state));
      writer.AddSection(ModelSection(name), model_state.Take());
      io::Serializer controller_state;
      DDUP_RETURN_IF_ERROR(state.controller->SaveState(&controller_state));
      writer.AddSection(ControllerSection(name), controller_state.Take());
    }
  }
  writer.AddSection(kManifestSection, manifest.Take());
  return writer.WriteToFile(path);
}

StatusOr<std::unique_ptr<Engine>> Engine::Load(const std::string& path,
                                               EngineConfig config) {
  StatusOr<io::CheckpointReader> reader = io::CheckpointReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> payload = reader.value().Section(kManifestSection);
  if (!payload.ok()) return payload.status();
  io::Deserializer manifest(std::move(payload).value());
  uint32_t version = manifest.ReadU32();
  if (manifest.ok() && version != kManifestVersion) {
    return Status::InvalidArgument("unsupported engine manifest version " +
                                   std::to_string(version));
  }

  auto engine = std::make_unique<Engine>(std::move(config));
  uint32_t num_tables = manifest.ReadU32();
  for (uint32_t i = 0; i < num_tables && manifest.ok(); ++i) {
    std::string name = manifest.ReadString();
    TableState state;
    state.spec.kind = manifest.ReadString();
    uint32_t num_options = manifest.ReadU32();
    for (uint32_t k = 0; k < num_options && manifest.ok(); ++k) {
      std::string key = manifest.ReadString();
      state.spec.options[key] = manifest.ReadString();
    }
    state.micro_batch_rows = manifest.ReadI64();
    state.insertions = manifest.ReadI64();
    state.ood_updates = manifest.ReadI64();
    state.finetunes = manifest.ReadI64();
    state.kept_stale = manifest.ReadI64();
    state.detect_seconds = manifest.ReadDouble();
    state.update_seconds = manifest.ReadDouble();
    state.base = manifest.ReadTable();
    state.pending = manifest.ReadTable();
    bool has_model = manifest.ReadBool();
    if (!manifest.ok()) break;
    if (state.micro_batch_rows <= 0) {
      return Status::InvalidArgument("manifest for table '" + name +
                                     "' has a non-positive micro-batch size");
    }
    if (has_model) {
      StatusOr<std::string> model_payload =
          reader.value().Section(ModelSection(name));
      if (!model_payload.ok()) return model_payload.status();
      io::Deserializer model_in(std::move(model_payload).value());
      StatusOr<std::unique_ptr<core::UpdatableModel>> model =
          ModelFactory::Global().Restore(state.spec.kind, &model_in);
      if (!model.ok()) return model.status();
      DDUP_RETURN_IF_ERROR(model_in.Finish());
      state.model = std::move(model).value();

      StatusOr<std::string> controller_payload =
          reader.value().Section(ControllerSection(name));
      if (!controller_payload.ok()) return controller_payload.status();
      io::Deserializer controller_in(std::move(controller_payload).value());
      StatusOr<std::unique_ptr<core::DdupController>> controller =
          core::DdupController::ResumeFromState(
              state.model.get(), engine->config_.controller, &controller_in);
      if (!controller.ok()) return controller.status();
      DDUP_RETURN_IF_ERROR(controller_in.Finish());
      state.controller = std::move(controller).value();
    }
    engine->tables_[name] = std::move(state);
  }
  DDUP_RETURN_IF_ERROR(manifest.Finish());
  return engine;
}

}  // namespace ddup::api
