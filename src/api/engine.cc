#include "api/engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "api/router.h"
#include "common/stopwatch.h"
#include "core/detector_zoo.h"
#include "exec/estimator_engine.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "serving/admission.h"

namespace ddup::api {

namespace {

// Version 2 added the per-table resolved detector kind to the manifest;
// version 3 added the per-table update-worker priority; version 4 adds the
// checkpoint codec name after the version word (Load still reads v3).
constexpr uint32_t kManifestVersion = 4;
constexpr uint32_t kMinManifestVersion = 3;
constexpr const char* kManifestSection = "engine";

std::string JoinedNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const auto& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

std::string JoinedDetectorKinds() {
  return JoinedNames(core::DriftDetectorKinds());
}

// Section names for the per-table payloads. Table names may contain any
// character except the separator we pick here; CreateTable rejects
// offenders.
std::string ModelSection(const std::string& table) { return "model:" + table; }
std::string ControllerSection(const std::string& table) {
  return "controller:" + table;
}

int ResolveUpdateWorkers(int requested) {
  if (requested >= 0) return requested;
  // Auto: one worker per default thread beyond the first, so DDUP_THREADS=1
  // and single-core hosts resolve to the synchronous engine.
  return std::max(0, DefaultThreadCount() - 1);
}

// Strips the exec engines' "query 0: " index prefix so the scalar shims
// keep the historical single-query error messages.
Status StripBatchPrefix(const Status& status) {
  constexpr const char kPrefix[] = "query 0: ";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (status.message().rfind(kPrefix, 0) == 0) {
    return Status(status.code(), status.message().substr(kPrefixLen));
  }
  return status;
}

}  // namespace

const char* ToString(TableServingState state) {
  switch (state) {
    case TableServingState::kServing:
      return "SERVING";
    case TableServingState::kUpdating:
      return "UPDATING";
    case TableServingState::kDraining:
      return "DRAINING";
  }
  return "UNKNOWN";
}

void Engine::FoldReportLocked(TableState* state,
                              const core::InsertionReport& report) {
  state->insertions += 1;
  switch (report.action) {
    case core::UpdateAction::kDistill:
      state->ood_updates += 1;
      break;
    case core::UpdateAction::kFineTune:
      state->finetunes += 1;
      break;
    default:
      state->kept_stale += 1;
      break;
  }
  state->detect_seconds += report.detect_seconds;
  state->update_seconds += report.update_seconds;
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  DDUP_CHECK_MSG(config_.micro_batch_rows > 0,
                 "EngineConfig::micro_batch_rows must be positive");
  DDUP_CHECK_MSG(config_.max_backlog_batches >= 0,
                 "EngineConfig::max_backlog_batches must be >= 0");
  admission_ = serving::FindAdmissionPolicy(config_.admission_policy);
  int workers = ResolveUpdateWorkers(config_.update_workers);
  if (workers > 0) executor_ = std::make_unique<TaskExecutor>(workers);
}

Engine::~Engine() {
  // The executor's destructor drains every queued update before joining;
  // strand tasks hold shared_ptr table handles, so the registry may be
  // destroyed in any order after that.
  executor_.reset();
}

size_t Engine::StripeIndex(const std::string& name) const {
  return std::hash<std::string>{}(name) % kRegistryStripes;
}

StatusOr<std::shared_ptr<Engine::TableState>> Engine::FindTable(
    const std::string& name) const {
  const Stripe& stripe = stripes_[StripeIndex(name)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.tables.find(name);
  if (it == stripe.tables.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

Status Engine::CreateTable(const std::string& name,
                           const storage::Table& base_data,
                           const TableOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (name.find(':') != std::string::npos) {
    // ':' separates the checkpoint section namespace ("model:<table>");
    // reject it here so an engine never becomes un-checkpointable later.
    return Status::InvalidArgument("table name '" + name +
                                   "' must not contain ':'");
  }
  if (base_data.num_columns() == 0) {
    return Status::InvalidArgument("table '" + name +
                                   "' needs at least one column");
  }
  if (options.micro_batch_rows < 0) {
    return Status::InvalidArgument("micro_batch_rows must be >= 0");
  }
  if (!options.detector.empty() &&
      !core::HasDriftDetectorKind(options.detector)) {
    return Status::InvalidArgument("table '" + name +
                                   "' requests unknown detector kind '" +
                                   options.detector + "'; registered kinds: " +
                                   JoinedDetectorKinds());
  }
  auto state = std::make_shared<TableState>();
  state->name = name;
  state->update_priority = options.update_priority;
  state->micro_batch_rows = options.micro_batch_rows > 0
                                ? options.micro_batch_rows
                                : config_.micro_batch_rows;
  state->detector_kind = options.detector.empty()
                             ? config_.controller.detector.kind
                             : options.detector;
  state->base = base_data;
  state->base.set_name(name);
  state->pending.Reset(state->base, state->micro_batch_rows,
                       config_.packed_accumulator);
  // Stats cover the base rows from the start; later batches fold in when
  // they leave the accumulator (DrainInline/EnqueueBatchesLocked).
  state->stats_builder = storage::TableStatsBuilder(state->base);
  std::atomic_store(&state->stats, state->stats_builder.Snapshot());
  Stripe& stripe = stripes_[StripeIndex(name)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.tables.count(name) > 0) {
    return Status::FailedPrecondition("table '" + name + "' already exists");
  }
  stripe.tables[name] = std::move(state);
  return Status::OK();
}

Status Engine::AttachModel(const std::string& name, const ModelSpec& spec) {
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return found.status();
  TableState* state = found.value().get();
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->model != nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' already has a model attached");
  }
  if (state->base.num_rows() <= 0) {
    return Status::FailedPrecondition(
        "table '" + name + "' has no rows to train the base model on");
  }
  // Resolved at CreateTable, but the engine default could itself name an
  // unregistered kind — catch it here on the Status surface, before the
  // controller constructor would CHECK.
  if (!core::HasDriftDetectorKind(state->detector_kind)) {
    return Status::InvalidArgument("table '" + name +
                                   "' resolves to unknown detector kind '" +
                                   state->detector_kind +
                                   "'; registered kinds: " +
                                   JoinedDetectorKinds());
  }
  StatusOr<std::unique_ptr<core::UpdatableModel>> model =
      ModelFactory::Global().Create(spec.kind, state->base, spec.options);
  if (!model.ok()) return model.status();
  state->model = std::move(model).value();
  core::ControllerConfig controller_config = config_.controller;
  controller_config.detector.kind = state->detector_kind;
  state->controller = std::make_unique<core::DdupController>(
      state->model.get(), state->base, controller_config);
  state->spec = spec;
  if (async()) {
    // Publish the initial serving snapshot; a kind without checkpoint
    // hooks cannot serve concurrently, so fail the attach (strong
    // guarantee: the table stays model-less).
    StatusOr<std::unique_ptr<core::UpdatableModel>> copy =
        CloneModel(state->spec.kind, *state->model);
    if (!copy.ok()) {
      state->controller.reset();
      state->model.reset();
      state->spec = ModelSpec{};
      return copy.status();
    }
    std::atomic_store(
        &state->serving,
        MakeServingView(std::shared_ptr<const core::UpdatableModel>(
            std::move(copy).value().release())));
    std::lock_guard<std::mutex> stats_lock(state->stats_mu);
    state->snapshot_publishes += 1;
  } else {
    // Sync: serve the live model through a non-owning alias. The model
    // object is stable after attach (updates mutate it in place), so the
    // view's cached interface pointers stay valid for the engine's life.
    std::atomic_store(
        &state->serving,
        MakeServingView(std::shared_ptr<const core::UpdatableModel>(
            std::shared_ptr<const core::UpdatableModel>(), state->model.get())));
  }
  // The controller owns the accumulated data from here on; keep only the
  // schema for batch validation.
  state->base = state->base.TakeRows({});
  return Status::OK();
}

Status Engine::PushBatch(TableState* state, const storage::Table& batch,
                         IngestResult* result) {
  StatusOr<core::InsertionReport> report =
      state->controller->HandleInsertion(batch);
  if (!report.ok()) return report.status();
  {
    std::lock_guard<std::mutex> lock(state->stats_mu);
    FoldReportLocked(state, report.value());
  }
  result->rows_flushed += batch.num_rows();
  result->reports.push_back(std::move(report).value());
  return Status::OK();
}

Status Engine::DrainInline(TableState* state, bool all, IngestResult* result) {
  // Single pass over the accumulator: each row is copied once into its
  // micro-batch (plus once for the surviving remainder), never re-copied
  // per iteration. On an error, the unconsumed suffix stays buffered.
  const int64_t total = state->pending.num_rows();
  int64_t offset = 0;
  Status status;
  while (status.ok() && total - offset >= state->micro_batch_rows) {
    storage::Table batch =
        state->pending.Slice(offset, offset + state->micro_batch_rows);
    status = PushBatch(state, batch, result);
    if (status.ok()) {
      state->stats_builder.Absorb(batch);
      offset += state->micro_batch_rows;
    }
  }
  if (status.ok() && all && offset < total) {
    storage::Table batch = state->pending.Slice(offset, total);
    status = PushBatch(state, batch, result);
    if (status.ok()) {
      state->stats_builder.Absorb(batch);
      offset = total;
    }
  }
  if (offset > 0) {
    state->pending.DropFront(offset);
    // Stats fold only for batches the loop actually consumed: on an error
    // the unconsumed suffix stays buffered and stays out of the stats,
    // keeping the snapshot aligned with what the model serves.
    std::atomic_store(&state->stats, state->stats_builder.Snapshot());
  }
  result->rows_buffered = state->pending.num_rows();
  return status;
}

std::shared_ptr<const Engine::TableState::ServingView> Engine::MakeServingView(
    std::shared_ptr<const core::UpdatableModel> model) {
  auto view = std::make_shared<TableState::ServingView>();
  view->card = dynamic_cast<const core::CardinalityEstimator*>(model.get());
  view->aqp = dynamic_cast<const core::AqpEstimator*>(model.get());
  view->model = std::move(model);
  return view;
}

void Engine::PublishSnapshot(TableState* state) {
  StatusOr<std::unique_ptr<core::UpdatableModel>> copy =
      CloneModel(state->spec.kind, *state->model);
  if (!copy.ok()) {
    std::lock_guard<std::mutex> lock(state->stats_mu);
    if (state->async_error.ok()) state->async_error = copy.status();
    return;
  }
  std::atomic_store(&state->serving,
                    MakeServingView(std::shared_ptr<const core::UpdatableModel>(
                        std::move(copy).value().release())));
  std::lock_guard<std::mutex> lock(state->stats_mu);
  state->snapshot_publishes += 1;
}

void Engine::RunGroupOnWorker(const std::shared_ptr<TableState>& state,
                              const std::vector<storage::Table>& batches,
                              double queue_seconds) {
  // The strand guarantees exclusivity over the controller and the live
  // model: no lock is taken around HandleInsertion, so readers (estimates
  // off the published snapshot, Report off the stats mutexes) never block
  // on training. A group runs the DDUp loop once per micro-batch — grouping
  // amortizes queue entries and the snapshot publish, never changes what
  // the model absorbs — and publishes ONE snapshot for the whole group.
  const int64_t backlog_now = state->backlog.load(std::memory_order_relaxed);
  std::vector<core::InsertionReport> reports;
  reports.reserve(batches.size());
  Status failed;
  for (const storage::Table& batch : batches) {
    StatusOr<core::InsertionReport> report =
        state->controller->HandleInsertion(batch);
    if (!report.ok()) {
      // Sticky error; the group's unprocessed suffix is dropped, exactly
      // like the queued single-batch tasks behind a failed one used to be
      // surfaced (every later Ingest/Flush reports the sticky Status).
      failed = report.status();
      break;
    }
    core::InsertionReport r = std::move(report).value();
    r.backlog_batches = backlog_now;
    // The strand wait was paid once for the whole group.
    r.queue_seconds = reports.empty() ? queue_seconds : 0.0;
    reports.push_back(std::move(r));
  }
  {
    std::lock_guard<std::mutex> lock(state->stats_mu);
    for (core::InsertionReport& r : reports) {
      FoldReportLocked(state.get(), r);
      state->async_batches += 1;
      if (state->finished.size() >= kMaxBufferedReports) {
        state->finished.erase(state->finished.begin());
      }
      state->finished.push_back(std::move(r));
    }
    if (!reports.empty()) state->queue_seconds += queue_seconds;
    if (!failed.ok() && state->async_error.ok()) state->async_error = failed;
  }
  if (!reports.empty()) PublishSnapshot(state.get());
  state->backlog.fetch_sub(static_cast<int64_t>(batches.size()),
                           std::memory_order_release);
  // Wake blocked producers (admission kWait). The empty critical section
  // pairs the notify with the waiters' predicate re-check so the decrement
  // cannot slip between their check and their wait.
  { std::lock_guard<std::mutex> lock(state->admission_mu); }
  state->admission_cv.notify_all();
}

void Engine::SubmitGroupLocked(const std::shared_ptr<TableState>& state,
                               int64_t batches, bool remainder,
                               IngestResult* result) {
  const int64_t total = state->pending.num_rows();
  int64_t offset = 0;
  std::vector<storage::Table> group;
  group.reserve(static_cast<size_t>(batches) + (remainder ? 1 : 0));
  for (int64_t b = 0; b < batches; ++b) {
    storage::Table batch =
        state->pending.Slice(offset, offset + state->micro_batch_rows);
    offset += state->micro_batch_rows;
    // Async stats fold at enqueue time: the rows leave the accumulator for
    // the strand unconditionally, so the snapshot tracks the handed-off
    // state (it may run slightly ahead of the serving model while the
    // strand catches up — both are eventually consistent views of the same
    // flushed prefix).
    state->stats_builder.Absorb(batch);
    result->rows_enqueued += batch.num_rows();
    group.push_back(std::move(batch));
  }
  if (remainder && offset < total) {
    storage::Table batch = state->pending.Slice(offset, total);
    offset = total;
    state->stats_builder.Absorb(batch);
    result->rows_enqueued += batch.num_rows();
    group.push_back(std::move(batch));
  }
  if (group.empty()) return;
  state->pending.DropFront(offset);
  std::atomic_store(&state->stats, state->stats_builder.Snapshot());
  if (group.size() > 1) {
    std::lock_guard<std::mutex> lock(state->stats_mu);
    state->coalesced_groups += 1;
  }
  state->backlog.fetch_add(static_cast<int64_t>(group.size()),
                           std::memory_order_relaxed);
  Stopwatch queued;
  executor_->Submit(state->name, state->update_priority,
                    [state, group = std::move(group), queued]() {
                      RunGroupOnWorker(state, group, queued.ElapsedSeconds());
                    });
}

void Engine::EnqueueBatchesLocked(const std::shared_ptr<TableState>& state,
                                  bool all, IngestResult* result) {
  // Caller holds state->mu, which also orders Submit calls: two racing
  // Ingests cannot interleave their batches out of row-arrival order.
  // Unbounded path (and every flush/drain path): one task per micro-batch,
  // no admission — the caller drains right after, so bounding here would
  // only deadlock a block-policy flush.
  while (state->pending.num_rows() >= state->micro_batch_rows) {
    SubmitGroupLocked(state, /*batches=*/1, /*remainder=*/false, result);
  }
  if (all && state->pending.num_rows() > 0) {
    SubmitGroupLocked(state, /*batches=*/0, /*remainder=*/true, result);
  }
  result->rows_buffered = state->pending.num_rows();
  result->backlog_batches = state->backlog.load(std::memory_order_relaxed);
}

void Engine::EnqueueBoundedLocked(const std::shared_ptr<TableState>& state,
                                  std::unique_lock<std::mutex>& lock,
                                  IngestResult* result) {
  const int64_t bound = config_.max_backlog_batches;
  for (;;) {
    const int64_t available =
        state->pending.num_rows() / state->micro_batch_rows;
    if (available == 0) break;
    const int64_t backlog = state->backlog.load(std::memory_order_acquire);
    if (backlog < bound) {
      // Room: enqueue one group sized by the policy (1 for block/shed,
      // everything buffered for coalesce), then re-evaluate.
      const int64_t group = std::clamp<int64_t>(
          admission_->GroupSize(available), int64_t{1}, available);
      SubmitGroupLocked(state, group, /*remainder=*/false, result);
      continue;
    }
    serving::AdmissionContext ctx;
    ctx.table = state->name;
    ctx.backlog_batches = backlog;
    ctx.bound = bound;
    ctx.buffered_batches = available;
    const serving::AdmissionAction action = admission_->Admit(ctx);
    if (action == serving::AdmissionAction::kAdmit) {
      const int64_t group = std::clamp<int64_t>(
          admission_->GroupSize(available), int64_t{1}, available);
      SubmitGroupLocked(state, group, /*remainder=*/false, result);
      continue;
    }
    if (action == serving::AdmissionAction::kWait) {
      // Stall with state->mu released so Report/Estimate/Flush on the
      // table stay responsive while this producer is blocked.
      lock.unlock();
      {
        std::unique_lock<std::mutex> wait_lock(state->admission_mu);
        state->admission_cv.wait(wait_lock, [&state, bound] {
          return state->backlog.load(std::memory_order_acquire) < bound;
        });
      }
      lock.lock();
      continue;
    }
    // kShed / kCoalesce at the bound: the rows stay buffered; a later
    // admitted call (or a flush) enqueues them once the backlog has room.
    break;
  }
  result->rows_buffered = state->pending.num_rows();
  result->backlog_batches = state->backlog.load(std::memory_order_relaxed);
}

Status Engine::StickyError(const TableState& state) const {
  std::lock_guard<std::mutex> lock(state.stats_mu);
  return state.async_error;
}

bool Engine::NothingToFlushLocked(const TableState& state) const {
  if (state.pending.num_rows() != 0) return false;
  if (!async()) return true;
  if (state.backlog.load(std::memory_order_acquire) != 0) return false;
  std::lock_guard<std::mutex> stats_lock(state.stats_mu);
  return state.finished.empty();
}

StatusOr<IngestResult> Engine::Ingest(const std::string& name,
                                      const storage::Table& batch) {
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return found.status();
  const std::shared_ptr<TableState>& state = found.value();
  const bool bounded = async() && config_.max_backlog_batches > 0;
  if (bounded && admission_ == nullptr) {
    return Status::InvalidArgument(
        "unknown admission policy '" + config_.admission_policy +
        "'; registered: " +
        JoinedNames(serving::RegisteredAdmissionPolicies()));
  }
  std::unique_lock<std::mutex> lock(state->mu);
  if (state->controller == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  DDUP_RETURN_IF_ERROR(StickyError(*state));
  IngestResult result;
  if (batch.num_rows() > 0) {
    DDUP_RETURN_IF_ERROR(storage::CheckSchemaCompatible(state->base, batch));
    if (bounded) {
      // Shed decides at call entry, before any row is buffered: a refused
      // call leaves no trace in the accumulator, so the caller can retry
      // the whole batch later without double-counting rows.
      const int64_t backlog = state->backlog.load(std::memory_order_acquire);
      if (backlog >= config_.max_backlog_batches) {
        serving::AdmissionContext ctx;
        ctx.table = state->name;
        ctx.backlog_batches = backlog;
        ctx.bound = config_.max_backlog_batches;
        ctx.buffered_batches =
            (state->pending.num_rows() + batch.num_rows()) /
            state->micro_batch_rows;
        if (admission_->Admit(ctx) == serving::AdmissionAction::kShed) {
          {
            std::lock_guard<std::mutex> stats_lock(state->stats_mu);
            state->sheds += 1;
          }
          return serving::MakeShedError(name, backlog,
                                        config_.max_backlog_batches);
        }
      }
    }
    state->pending.Append(batch);
  }
  if (!async()) {
    DDUP_RETURN_IF_ERROR(DrainInline(state.get(), /*all=*/false, &result));
    return result;
  }
  if (bounded) {
    EnqueueBoundedLocked(state, lock, &result);
  } else {
    EnqueueBatchesLocked(state, /*all=*/false, &result);
  }
  return result;
}

StatusOr<IngestResult> Engine::CollectFlush(
    const std::shared_ptr<TableState>& state) {
  // Enqueue the remainder (if any) and mark the table DRAINING.
  {
    std::lock_guard<std::mutex> lock(state->mu);
    IngestResult enqueued;
    EnqueueBatchesLocked(state, /*all=*/true, &enqueued);
    state->draining = true;
  }
  executor_->DrainKey(state->name);
  IngestResult result;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->draining = false;
    result.rows_buffered = state->pending.num_rows();
  }
  std::lock_guard<std::mutex> lock(state->stats_mu);
  // Error check before consuming the reports: on a failed drain the
  // completed InsertionReports stay buffered instead of vanishing with
  // the discarded result.
  if (!state->async_error.ok()) return state->async_error;
  result.reports = std::move(state->finished);
  state->finished.clear();
  for (const auto& r : result.reports) result.rows_flushed += r.new_rows;
  return result;
}

StatusOr<IngestResult> Engine::Flush(const std::string& name) {
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return found.status();
  const std::shared_ptr<TableState>& state = found.value();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->controller == nullptr) {
      return Status::FailedPrecondition("table '" + name +
                                        "' has no model attached yet");
    }
    DDUP_RETURN_IF_ERROR(StickyError(*state));
    // Empty flush: short-circuit without touching the update path at all.
    if (NothingToFlushLocked(*state)) {
      return IngestResult{};
    }
    if (!async()) {
      IngestResult result;
      DDUP_RETURN_IF_ERROR(DrainInline(state.get(), /*all=*/true, &result));
      return result;
    }
  }
  return CollectFlush(state);
}

StatusOr<FlushReport> Engine::FlushAll() {
  FlushReport sweep;
  Status first_error;
  // Phase 1 (async): enqueue every table's remainder first, so the sweep
  // overlaps updates across tables instead of draining them one by one.
  // Errors are recorded, not returned mid-sweep: every table marked
  // DRAINING must be drained and reset even when another table failed.
  std::vector<std::shared_ptr<TableState>> to_collect;
  for (const std::string& name : TableNames()) {
    StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
    if (!found.ok()) return found.status();
    const std::shared_ptr<TableState>& state = found.value();
    std::lock_guard<std::mutex> lock(state->mu);
    // A table without a model cannot have buffered rows (Ingest requires
    // the controller), so there is nothing to flush — skip it rather than
    // failing the whole sweep.
    if (state->controller == nullptr) {
      sweep.tables_skipped += 1;
      continue;
    }
    Status sticky = StickyError(*state);
    if (!sticky.ok()) {
      if (first_error.ok()) first_error = sticky;
      continue;
    }
    if (NothingToFlushLocked(*state)) {
      sweep.tables_skipped += 1;
      continue;
    }
    sweep.tables_flushed += 1;
    if (async()) {
      IngestResult enqueued;
      EnqueueBatchesLocked(state, /*all=*/true, &enqueued);
      state->draining = true;
      to_collect.push_back(state);
    } else {
      IngestResult result;
      Status st = DrainInline(state.get(), /*all=*/true, &result);
      sweep.rows_flushed += result.rows_flushed;
      sweep.updates_triggered += static_cast<int64_t>(result.reports.size());
      if (!st.ok() && first_error.ok()) first_error = st;
    }
  }
  // Phase 2 (async): one drain over all strands, then collect per table.
  if (!to_collect.empty()) {
    executor_->Drain();
    for (const auto& state : to_collect) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->draining = false;
      }
      std::lock_guard<std::mutex> lock(state->stats_mu);
      sweep.updates_triggered +=
          static_cast<int64_t>(state->finished.size());
      for (const auto& r : state->finished) sweep.rows_flushed += r.new_rows;
      state->finished.clear();
      if (!state->async_error.ok() && first_error.ok()) {
        first_error = state->async_error;
      }
    }
  }
  if (!first_error.ok()) return first_error;
  return sweep;
}

// The whole single-table estimate hot path is here: one exec-engine lookup,
// one registry lookup, one atomic view load, then the batch call — no lock,
// no dynamic_cast (the interfaces were resolved when the view was
// published), no shared mutable state.
StatusOr<std::vector<double>> Engine::EstimateSingleTable(
    EstimateRequest::Kind kind, const std::string& name,
    const workload::QueryBatch& batch) const {
  const exec::EstimatorEngine* engine =
      exec::FindEstimatorEngine(config_.estimate_engine);
  if (engine == nullptr) {
    return Status::InvalidArgument(
        "unknown estimate engine '" + config_.estimate_engine +
        "'; registered: " + JoinedNames(exec::RegisteredEstimatorEngines()));
  }
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return found.status();
  const TableState* state = found.value().get();
  std::shared_ptr<const TableState::ServingView> view =
      std::atomic_load(&state->serving);
  if (view == nullptr) {
    return Status::FailedPrecondition("table '" + name +
                                      "' has no model attached yet");
  }
  std::vector<double> out;
  if (kind == EstimateRequest::Kind::kCardinality) {
    if (view->card == nullptr) {
      return Status::FailedPrecondition(
          "model kind '" + state->spec.kind + "' on table '" + name +
          "' does not serve cardinality estimates");
    }
    DDUP_RETURN_IF_ERROR(
        engine->EstimateCardinalityBatch(*view->card, batch, &out));
  } else {
    if (view->aqp == nullptr) {
      return Status::FailedPrecondition("model kind '" + state->spec.kind +
                                        "' on table '" + name +
                                        "' does not serve AQP estimates");
    }
    DDUP_RETURN_IF_ERROR(
        engine->EstimateAqpBatch(*view->aqp, state->base, batch, &out));
  }
  return out;
}

StatusOr<EstimateResponse> Engine::Estimate(
    const EstimateRequest& request) const {
  const bool join = !request.joins.empty();
  if (join && !request.table.empty()) {
    return Status::InvalidArgument(
        "EstimateRequest sets both the single-table shape (table '" +
        request.table + "') and join queries; populate exactly one");
  }
  StatusOr<std::vector<double>> answers = Status::OK();
  if (!join) {
    // Single-table shape (possibly with an empty or unknown table name —
    // FindTable reports those, matching the legacy overloads exactly).
    answers = EstimateSingleTable(request.kind, request.table,
                                  request.queries);
  } else if (request.kind == EstimateRequest::Kind::kAqp) {
    return Status::InvalidArgument(
        "join requests serve cardinality only; AQP over joins is not "
        "supported yet (DESIGN.md §14)");
  } else {
    answers = QueryRouter(this).EstimateCardinalityBatch(request.joins,
                                                         request.combiner);
  }
  if (!answers.ok()) return answers.status();
  EstimateResponse response;
  response.answers = std::move(answers).value();
  return response;
}

// --- Legacy shims (see engine.h for the migration table) -------------------

StatusOr<double> Engine::EstimateCardinality(
    const std::string& name, const workload::Query& query) const {
  EstimateRequest request;
  request.kind = EstimateRequest::Kind::kCardinality;
  request.table = name;
  request.queries.Add(query);
  StatusOr<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return StripBatchPrefix(response.status());
  return response.value().answers[0];
}

StatusOr<double> Engine::EstimateAqp(const std::string& name,
                                     const workload::Query& query) const {
  EstimateRequest request;
  request.kind = EstimateRequest::Kind::kAqp;
  request.table = name;
  request.queries.Add(query);
  StatusOr<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return StripBatchPrefix(response.status());
  return response.value().answers[0];
}

StatusOr<std::vector<double>> Engine::EstimateCardinalityBatch(
    const std::string& name, const workload::QueryBatch& batch) const {
  EstimateRequest request;
  request.kind = EstimateRequest::Kind::kCardinality;
  request.table = name;
  request.queries = batch;
  StatusOr<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().answers;
}

StatusOr<std::vector<double>> Engine::EstimateAqpBatch(
    const std::string& name, const workload::QueryBatch& batch) const {
  EstimateRequest request;
  request.kind = EstimateRequest::Kind::kAqp;
  request.table = name;
  request.queries = batch;
  StatusOr<EstimateResponse> response = Estimate(request);
  if (!response.ok()) return response.status();
  return std::move(response).value().answers;
}

StatusOr<TableReport> Engine::Report(const std::string& name) const {
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return found.status();
  const TableState* state = found.value().get();
  TableReport report;
  report.table = name;
  report.update_priority = state->update_priority;
  report.backlog_batches = state->backlog.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    report.model_kind = state->spec.kind;
    report.detector_kind = state->detector_kind;
    report.buffered_rows = state->pending.num_rows();
    report.buffered_bytes = state->pending.buffered_bytes();
    report.micro_batch_rows = state->micro_batch_rows;
    if (state->controller != nullptr) {
      // stats() is the controller's thread-safe read surface; the live
      // detector/data references would race a worker mid-update.
      core::LoopStats stats = state->controller->stats();
      report.rows = stats.rows;
      report.bootstrap_mean = stats.bootstrap_mean;
      report.bootstrap_std = stats.bootstrap_std;
    } else {
      report.rows = state->base.num_rows();
    }
    report.state = state->draining
                       ? TableServingState::kDraining
                       : (report.backlog_batches > 0
                              ? TableServingState::kUpdating
                              : TableServingState::kServing);
  }
  std::lock_guard<std::mutex> lock(state->stats_mu);
  report.insertions = state->insertions;
  report.ood_updates = state->ood_updates;
  report.finetunes = state->finetunes;
  report.kept_stale = state->kept_stale;
  report.detect_seconds = state->detect_seconds;
  report.update_seconds = state->update_seconds;
  report.async_batches = state->async_batches;
  report.queue_seconds = state->queue_seconds;
  report.snapshot_publishes = state->snapshot_publishes;
  report.sheds = state->sheds;
  report.coalesced_groups = state->coalesced_groups;
  return report;
}

void Engine::Quiesce() {
  if (executor_ != nullptr) executor_->Drain();
}

void Engine::PauseUpdates() {
  if (executor_ != nullptr) executor_->Pause();
}

void Engine::ResumeUpdates() {
  if (executor_ != nullptr) executor_->Resume();
}

std::vector<std::string> Engine::TableNames() const {
  std::vector<std::string> names;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [name, state] : stripe.tables) {
      (void)state;
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool Engine::HasTable(const std::string& name) const {
  const Stripe& stripe = stripes_[StripeIndex(name)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.tables.count(name) > 0;
}

core::UpdatableModel* Engine::model(const std::string& name) {
  StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
  if (!found.ok()) return nullptr;
  std::lock_guard<std::mutex> lock(found.value()->mu);
  return found.value()->model.get();
}

Engine::TableCheckpoint Engine::CheckpointTable(const TableState& state) {
  TableCheckpoint out;
  io::Serializer manifest;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    std::lock_guard<std::mutex> stats_lock(state.stats_mu);
    manifest.WriteString(state.name);
    manifest.WriteString(state.spec.kind);
    manifest.WriteU32(static_cast<uint32_t>(state.spec.options.size()));
    for (const auto& [key, value] : state.spec.options) {
      manifest.WriteString(key);
      manifest.WriteString(value);
    }
    manifest.WriteI64(state.micro_batch_rows);
    manifest.WriteString(state.detector_kind);
    manifest.WriteI64(state.update_priority);
    manifest.WriteI64(state.insertions);
    manifest.WriteI64(state.ood_updates);
    manifest.WriteI64(state.finetunes);
    manifest.WriteI64(state.kept_stale);
    manifest.WriteDouble(state.detect_seconds);
    manifest.WriteDouble(state.update_seconds);
    manifest.WriteTable(state.base);
    manifest.WriteTable(state.pending.Materialize());
    manifest.WriteBool(state.model != nullptr);
    out.has_model = state.model != nullptr;
    if (out.has_model) {
      io::Serializer model_state;
      out.status = state.model->SaveState(&model_state);
      if (!out.status.ok()) return out;
      out.model_state = model_state.Take();
      io::Serializer controller_state;
      out.status = state.controller->SaveState(&controller_state);
      if (!out.status.ok()) return out;
      out.controller_state = controller_state.Take();
    }
  }
  out.manifest = manifest.Take();
  return out;
}

Status Engine::Save(const std::string& path) const {
  std::vector<std::string> names = TableNames();
  std::vector<std::shared_ptr<TableState>> states;
  states.reserve(names.size());
  for (const std::string& name : names) {
    StatusOr<std::shared_ptr<TableState>> found = FindTable(name);
    if (!found.ok()) return found.status();
    states.push_back(found.value());
  }

  std::vector<TableCheckpoint> blobs(states.size());
  if (async()) {
    // Quiesce: every already-queued update runs first (strand FIFO), then
    // the serialization task itself executes on the table's strand — so a
    // checkpoint can never capture a torn mid-update state, even with
    // concurrent ingest on other tables.
    std::vector<std::future<void>> done;
    done.reserve(states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      std::shared_ptr<TableState> state = states[i];
      TableCheckpoint* blob = &blobs[i];
      done.push_back(executor_->Submit(
          state->name, state->update_priority,
          [state, blob]() { *blob = CheckpointTable(*state); }));
    }
    for (auto& f : done) f.wait();
  } else {
    for (size_t i = 0; i < states.size(); ++i) {
      blobs[i] = CheckpointTable(*states[i]);
    }
  }

  // Codec precedence: the caller's config wins, then the codec recorded in
  // the manifest this engine was loaded from, then the compressed default.
  std::string codec_name = config_.checkpoint.codec.empty()
                               ? loaded_codec_
                               : config_.checkpoint.codec;
  if (codec_name.empty()) codec_name = io::kDefaultCheckpointCodec;
  const io::Codec* codec = io::FindCodecByName(codec_name);
  if (codec == nullptr) {
    return Status::InvalidArgument(
        "unknown checkpoint codec '" + codec_name + "'; registered codecs: " +
        JoinedNames(io::RegisteredCodecNames()));
  }

  io::CheckpointWriter writer(codec);
  io::Serializer manifest;
  manifest.WriteU32(kManifestVersion);
  manifest.WriteString(codec_name);
  manifest.WriteU32(static_cast<uint32_t>(states.size()));
  for (size_t i = 0; i < states.size(); ++i) {
    DDUP_RETURN_IF_ERROR(blobs[i].status);
    manifest.WriteRaw(blobs[i].manifest);
    if (blobs[i].has_model) {
      writer.AddSection(ModelSection(names[i]),
                        std::move(blobs[i].model_state));
      writer.AddSection(ControllerSection(names[i]),
                        std::move(blobs[i].controller_state));
    }
  }
  writer.AddSection(kManifestSection, manifest.Take());
  return writer.WriteToFile(path);
}

StatusOr<std::unique_ptr<Engine>> Engine::Load(const std::string& path,
                                               EngineConfig config) {
  StatusOr<io::CheckpointReader> reader = io::CheckpointReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> payload = reader.value().Section(kManifestSection);
  if (!payload.ok()) return payload.status();
  io::Deserializer manifest(std::move(payload).value());
  uint32_t version = manifest.ReadU32();
  if (manifest.ok() &&
      (version < kMinManifestVersion || version > kManifestVersion)) {
    return Status::InvalidArgument("unsupported engine manifest version " +
                                   std::to_string(version));
  }

  auto engine = std::make_unique<Engine>(std::move(config));
  // v4 records the codec the checkpoint was written with; a later Save
  // keeps it unless the loading config names a different one.
  if (version >= 4) engine->loaded_codec_ = manifest.ReadString();
  uint32_t num_tables = manifest.ReadU32();
  for (uint32_t i = 0; i < num_tables && manifest.ok(); ++i) {
    auto state = std::make_shared<TableState>();
    state->name = manifest.ReadString();
    state->spec.kind = manifest.ReadString();
    uint32_t num_options = manifest.ReadU32();
    for (uint32_t k = 0; k < num_options && manifest.ok(); ++k) {
      std::string key = manifest.ReadString();
      state->spec.options[key] = manifest.ReadString();
    }
    state->micro_batch_rows = manifest.ReadI64();
    state->detector_kind = manifest.ReadString();
    state->update_priority = static_cast<int>(manifest.ReadI64());
    state->insertions = manifest.ReadI64();
    state->ood_updates = manifest.ReadI64();
    state->finetunes = manifest.ReadI64();
    state->kept_stale = manifest.ReadI64();
    state->detect_seconds = manifest.ReadDouble();
    state->update_seconds = manifest.ReadDouble();
    state->base = manifest.ReadTable();
    storage::Table pending = manifest.ReadTable();
    bool has_model = manifest.ReadBool();
    if (!manifest.ok()) break;
    if (state->micro_batch_rows <= 0) {
      return Status::InvalidArgument("manifest for table '" + state->name +
                                     "' has a non-positive micro-batch size");
    }
    state->pending.Reset(state->base, state->micro_batch_rows,
                         engine->config_.packed_accumulator);
    state->pending.Append(pending);
    if (has_model) {
      StatusOr<std::string> model_payload =
          reader.value().Section(ModelSection(state->name));
      if (!model_payload.ok()) return model_payload.status();
      io::Deserializer model_in(std::move(model_payload).value());
      StatusOr<std::unique_ptr<core::UpdatableModel>> model =
          ModelFactory::Global().Restore(state->spec.kind, &model_in);
      if (!model.ok()) return model.status();
      DDUP_RETURN_IF_ERROR(model_in.Finish());
      state->model = std::move(model).value();

      StatusOr<std::string> controller_payload =
          reader.value().Section(ControllerSection(state->name));
      if (!controller_payload.ok()) return controller_payload.status();
      io::Deserializer controller_in(std::move(controller_payload).value());
      StatusOr<std::unique_ptr<core::DdupController>> controller =
          core::DdupController::ResumeFromState(
              state->model.get(), engine->config_.controller, &controller_in);
      if (!controller.ok()) return controller.status();
      DDUP_RETURN_IF_ERROR(controller_in.Finish());
      state->controller = std::move(controller).value();
      // The controller snapshot is authoritative for the detector that was
      // live at save time; re-anchor the table's resolved kind to it.
      state->detector_kind = state->controller->detector().kind();
      if (engine->async()) {
        StatusOr<std::unique_ptr<core::UpdatableModel>> copy =
            CloneModel(state->spec.kind, *state->model);
        if (!copy.ok()) return copy.status();
        std::atomic_store(
            &state->serving,
            MakeServingView(std::shared_ptr<const core::UpdatableModel>(
                std::move(copy).value().release())));
        state->snapshot_publishes += 1;
      } else {
        std::atomic_store(
            &state->serving,
            MakeServingView(std::shared_ptr<const core::UpdatableModel>(
                std::shared_ptr<const core::UpdatableModel>(),
                state->model.get())));
      }
    }
    // Stats are derived state, deliberately not persisted: rebuild them
    // from the restored flushed rows (the controller owns them once a model
    // is attached; before that they still live in base). Load runs before
    // any clients, so reading the controller's data here is safe.
    state->stats_builder = storage::TableStatsBuilder(
        state->controller != nullptr ? state->controller->data()
                                     : state->base);
    std::atomic_store(&state->stats, state->stats_builder.Snapshot());
    Stripe& stripe = engine->stripes_[engine->StripeIndex(state->name)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.tables[state->name] = std::move(state);
  }
  DDUP_RETURN_IF_ERROR(manifest.Finish());
  return engine;
}

}  // namespace ddup::api
