#ifndef DDUP_API_ENGINE_H_
#define DDUP_API_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/model_factory.h"
#include "common/status.h"
#include "core/controller.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::api {

// Engine-wide defaults. The controller config (detector + update policies)
// applies to every attached model; micro_batch_rows is the default flush
// threshold, overridable per table at CreateTable.
struct EngineConfig {
  core::ControllerConfig controller;
  int64_t micro_batch_rows = 512;
};

struct TableOptions {
  // Per-table flush threshold; 0 uses the engine default.
  int64_t micro_batch_rows = 0;
};

// What one Ingest/Flush call did: rows may sit in the accumulator
// (buffered), and each flushed micro-batch produces one full DDUp loop
// iteration (detect -> update -> offline refresh) reported per batch.
struct IngestResult {
  // Accumulator occupancy after the call.
  int64_t rows_buffered = 0;
  // Rows pushed through the DDUp loop by this call.
  int64_t rows_flushed = 0;
  // One entry per flushed micro-batch, in flush order.
  std::vector<core::InsertionReport> reports;
};

// Cumulative per-table statistics (Report).
struct TableReport {
  std::string table;
  // "" before AttachModel.
  std::string model_kind;
  // Rows the model has absorbed / rows awaiting a flush.
  int64_t rows = 0;
  int64_t buffered_rows = 0;
  // Flush threshold.
  int64_t micro_batch_rows = 0;
  // Micro-batches through the loop, split by the action taken.
  int64_t insertions = 0;
  int64_t ood_updates = 0;
  int64_t finetunes = 0;
  int64_t kept_stale = 0;
  double detect_seconds = 0.0;
  double update_seconds = 0.0;
  // Detector state after the last offline refresh.
  double bootstrap_mean = 0.0;
  double bootstrap_std = 0.0;
};

// The public multi-table facade over the DDUp loop: a registry of named
// tables, each bound to a model built through the ModelFactory and driven
// by its own DdupController. Every fallible call returns Status/StatusOr —
// unknown tables, unregistered model kinds, schema-mismatched batches and
// unsupported estimate types are recoverable errors, never crashes.
//
// Ingest accepts arbitrary-size row batches and decouples insertion
// granularity from detection granularity: rows accumulate per table and
// the DDUp loop runs once per full micro-batch (micro_batch_rows), plus
// once for the remainder on an explicit Flush. Buffered rows are invisible
// to the model (and to Estimate*) until flushed.
//
// Save writes the whole engine — registry, per-table accumulator, model
// weights, detector moments and every RNG stream — as one manifest over
// the src/io checkpoint container; Load restores it bit-identically, so a
// restarted engine issues the same estimates and the same future detect
// decisions as the original.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Registers an empty-or-populated base table under `name`. The table
  // needs at least one column; its schema becomes the contract every later
  // batch is validated against.
  Status CreateTable(const std::string& name, const storage::Table& base_data,
                     const TableOptions& options = {});

  // Builds spec.kind via the ModelFactory, trains it on the table's current
  // rows (which must be non-empty) and starts the DDUp controller. One
  // model per table.
  Status AttachModel(const std::string& name, const ModelSpec& spec);

  // Buffers `batch` (validated against the table schema; empty is a no-op)
  // and runs the DDUp loop for every completed micro-batch.
  StatusOr<IngestResult> Ingest(const std::string& name,
                                const storage::Table& batch);

  // Pushes any buffered remainder through the loop regardless of size.
  StatusOr<IngestResult> Flush(const std::string& name);
  // Flush for every table; stops at the first error.
  Status FlushAll();

  // Estimates over the flushed state. FailedPrecondition if no model is
  // attached or the model kind does not serve the estimate type.
  StatusOr<double> EstimateCardinality(const std::string& name,
                                       const workload::Query& query) const;
  StatusOr<double> EstimateAqp(const std::string& name,
                               const workload::Query& query) const;

  StatusOr<TableReport> Report(const std::string& name) const;
  std::vector<std::string> TableNames() const;  // sorted
  bool HasTable(const std::string& name) const;

  // Direct model access for plotting/diagnostics (nullptr before
  // AttachModel). The engine still owns the model.
  core::UpdatableModel* model(const std::string& name);

  // Whole-engine checkpoint: a manifest section describing the registry
  // plus one model and one controller section per attached table, all in a
  // single container file. Restores are bit-identical.
  Status Save(const std::string& path) const;
  // `config` supplies what the manifest deliberately does not persist: the
  // policy/detector knobs for resumed controllers (matching the
  // DdupController::Resume contract) and the micro-batch default for
  // tables created after the restore.
  static StatusOr<std::unique_ptr<Engine>> Load(const std::string& path,
                                                EngineConfig config = {});

 private:
  struct TableState {
    ModelSpec spec;
    int64_t micro_batch_rows = 0;
    storage::Table base;     // schema contract; rows only until AttachModel
    storage::Table pending;  // micro-batch accumulator (base schema)
    std::unique_ptr<core::UpdatableModel> model;
    std::unique_ptr<core::DdupController> controller;
    int64_t insertions = 0;
    int64_t ood_updates = 0;
    int64_t finetunes = 0;
    int64_t kept_stale = 0;
    double detect_seconds = 0.0;
    double update_seconds = 0.0;
  };

  StatusOr<TableState*> FindTable(const std::string& name);
  StatusOr<const TableState*> FindTable(const std::string& name) const;
  // Runs the DDUp loop on `batch` and folds the report into the counters.
  Status PushBatch(TableState* state, const storage::Table& batch,
                   IngestResult* result);
  // Drains every full micro-batch (and, if `all`, the remainder).
  Status Drain(TableState* state, bool all, IngestResult* result);

  EngineConfig config_;
  std::map<std::string, TableState> tables_;  // sorted => deterministic Save
};

}  // namespace ddup::api

#endif  // DDUP_API_ENGINE_H_
