#ifndef DDUP_API_ENGINE_H_
#define DDUP_API_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/model_factory.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "storage/packed.h"
#include "storage/stats.h"
#include "storage/table.h"
#include "workload/join_query.h"
#include "workload/query.h"

namespace ddup::serving {
class AdmissionPolicy;
}  // namespace ddup::serving

namespace ddup::api {

class QueryRouter;

// Checkpoint-writing knobs (Engine::Save, serving::Cluster::Save).
struct CheckpointOptions {
  // Section codec, by registered name (io::RegisteredCodecNames(): "raw",
  // "lz", "shuffle", "delta"). "" uses the compressed default
  // (io::kDefaultCheckpointCodec). The choice is recorded in the engine
  // manifest, so a later Save through Engine::Load + Save keeps the codec
  // unless the loading config names a different one; Load itself reads any
  // registered codec regardless of this setting. An unknown name is an
  // InvalidArgument at Save time.
  std::string codec;
};

// Engine-wide defaults. The controller config (detector + update policies)
// applies to every attached model; micro_batch_rows is the default flush
// threshold, overridable per table at CreateTable.
struct EngineConfig {
  core::ControllerConfig controller;
  int64_t micro_batch_rows = 512;
  // Background DDUp update workers (DESIGN.md §11).
  //   0  (default): synchronous — Ingest runs the detect→update loop inline
  //      for every completed micro-batch, exactly the pre-concurrency
  //      behavior and bit-identical to it.
  //   n > 0: n background workers. Ingest appends to the accumulator, hands
  //      full micro-batches to the table's FIFO update strand and returns
  //      immediately; estimates keep serving from the last published model
  //      snapshot while the update runs.
  //   -1 (auto): one worker per default thread beyond the first
  //      (DefaultThreadCount() - 1, see common/thread_pool.h), so
  //      DDUP_THREADS=1 and single-core environments resolve to synchronous.
  int update_workers = 0;
  // Execution engine behind EstimateCardinalityBatch/EstimateAqpBatch
  // (src/exec): "vectorized" drives the models' batched entry points,
  // "reference" loops the scalar path. Both are byte-identical (enforced by
  // the differential harness); the scalar Estimate* calls do not go through
  // an engine. Validated on first batch call (InvalidArgument if unknown).
  std::string estimate_engine = "vectorized";
  // Engine-side admission control (DESIGN.md §15). With a positive bound,
  // each table's queued micro-batch updates are capped at
  // max_backlog_batches and an overloaded Ingest is resolved by the named
  // AdmissionPolicy (serving/admission.h): "block" stalls the caller until
  // a worker drains a slot, "shed" refuses the call with a typed
  // [admission:shed] ResourceExhausted Status, "coalesce" keeps buffering
  // and merges the pile into one group task (one snapshot publish per
  // group, byte-identical models). 0 = unbounded, the PR 5 behavior where
  // callers throttle themselves off TableReport::backlog_batches. Only
  // meaningful with update_workers != 0 (the synchronous engine has no
  // backlog). An unknown policy name surfaces as InvalidArgument on the
  // first bounded Ingest, like estimate_engine.
  int64_t max_backlog_batches = 0;
  std::string admission_policy = "block";
  // Buffer accumulated rows in the packed columnar form
  // (storage::MicroBatchBuffer): sealed micro-batch chunks are held as
  // delta/varint- or shuffle-encoded column buffers instead of plain
  // doubles/codes, shrinking the per-table buffered footprint
  // (TableReport::buffered_bytes). Drain order and model bytes are
  // identical either way — pinned by tests/packed_test.cc — so false is
  // only a debugging escape hatch, not a compatibility knob.
  bool packed_accumulator = true;
  // How Engine::Save (and serving::Cluster::Save) writes checkpoint
  // containers.
  CheckpointOptions checkpoint;
};

struct TableOptions {
  // Per-table flush threshold; 0 uses the engine default.
  int64_t micro_batch_rows = 0;
  // Per-table drift detector kind ("bootstrap", "cusum", "adwin",
  // "percolumn_cusum" — see core/detector_zoo.h); "" uses the engine
  // default (config.controller.detector.kind). Validated at CreateTable,
  // applied when AttachModel builds the table's controller, and persisted
  // across Save/Load.
  std::string detector;
  // Update-worker priority (async engines): when more tables have queued
  // updates than there are workers, higher-priority tables' strands run
  // first (strict precedence, round-robin among equals — see
  // TaskExecutor::Submit). Hot tables keep their models fresh under
  // saturation while cold tables wait. Persisted across Save/Load.
  int update_priority = 0;
};

// Per-table serving state machine (DESIGN.md §11): SERVING when the update
// strand is idle, UPDATING while micro-batches are queued or running on a
// background worker, DRAINING while a Flush/FlushAll/Save is waiting for
// the strand to empty. Synchronous engines are always SERVING outside a
// call.
enum class TableServingState { kServing, kUpdating, kDraining };
const char* ToString(TableServingState state);

// What one Ingest/Flush call did: rows may sit in the accumulator
// (buffered), and each flushed micro-batch produces one full DDUp loop
// iteration (detect -> update -> offline refresh) reported per batch.
//
// Asynchronous engines (update_workers != 0) decouple the call from the
// loop: Ingest reports rows_enqueued instead of rows_flushed and returns no
// reports (the batches have not run yet); Flush drains the strand and
// returns every InsertionReport completed since the previous collection
// point, so rows_flushed there can exceed the rows this call enqueued.
struct IngestResult {
  // Accumulator occupancy after the call.
  int64_t rows_buffered = 0;
  // Rows pushed through the DDUp loop by this call (sync), or completed
  // reports collected by this Flush (async).
  int64_t rows_flushed = 0;
  // Rows handed to the background update strand by this call (async).
  int64_t rows_enqueued = 0;
  // Micro-batches queued or running for this table after the call (async).
  // ADVISORY since admission moved engine-side (DESIGN.md §15): with
  // EngineConfig::max_backlog_batches set, the engine itself bounds the
  // backlog and applies the admission policy — callers no longer need to
  // poll this to throttle (the PR 5 pattern); it remains useful for
  // monitoring.
  int64_t backlog_batches = 0;
  // One entry per flushed micro-batch, in flush order.
  std::vector<core::InsertionReport> reports;
};

// What one FlushAll sweep did across the registry.
struct FlushReport {
  // Tables that had buffered rows or queued updates to push.
  int64_t tables_flushed = 0;
  // Tables short-circuited because there was nothing to do (empty
  // accumulator, idle strand).
  int64_t tables_skipped = 0;
  int64_t rows_flushed = 0;
  // Micro-batches pushed through the DDUp loop by the sweep.
  int64_t updates_triggered = 0;
};

// Cumulative per-table statistics (Report).
struct TableReport {
  std::string table;
  // "" before AttachModel.
  std::string model_kind;
  // Resolved drift detector kind for this table (TableOptions::detector,
  // or the engine default when the option was empty).
  std::string detector_kind;
  // Rows the model has absorbed / rows awaiting a flush.
  int64_t rows = 0;
  int64_t buffered_rows = 0;
  // Bytes the accumulator currently holds for those buffered rows — the
  // packed (EngineConfig::packed_accumulator) vs plain footprint metric.
  int64_t buffered_bytes = 0;
  // Flush threshold.
  int64_t micro_batch_rows = 0;
  // Micro-batches through the loop, split by the action taken.
  int64_t insertions = 0;
  int64_t ood_updates = 0;
  int64_t finetunes = 0;
  int64_t kept_stale = 0;
  double detect_seconds = 0.0;
  double update_seconds = 0.0;
  // Detector state after the last offline refresh.
  double bootstrap_mean = 0.0;
  double bootstrap_std = 0.0;
  // Update-worker priority for this table (TableOptions::update_priority).
  int update_priority = 0;
  // Concurrency surface (async engines; zeros on the synchronous path).
  TableServingState state = TableServingState::kServing;
  // Micro-batches queued or running. ADVISORY for throttling purposes now
  // that admission is engine-side (EngineConfig::max_backlog_batches +
  // admission_policy, DESIGN.md §15); kept for monitoring.
  int64_t backlog_batches = 0;
  int64_t async_batches = 0;        // batches that ran on a worker
  double queue_seconds = 0.0;       // cumulative worker-queue wait
  int64_t snapshot_publishes = 0;   // serving-model swaps so far
  int64_t sheds = 0;                // Ingest calls refused by admission
  int64_t coalesced_groups = 0;     // multi-batch group tasks enqueued
};

// One estimate call, structured. This is the single entry point behind
// every estimate the engine serves (DESIGN.md §14): single-table scalar,
// single-table batch, and multi-table join all flow through
// Engine::Estimate(const EstimateRequest&); the string-keyed overloads
// below are thin shims over it.
//
// Exactly one of the two shapes must be populated:
//   - Single-table: `table` names a registered table and `queries` holds
//     its batch (possibly of size 1, possibly empty -> empty answers).
//   - Join: `joins` holds multi-table queries; `table`/`queries` stay
//     empty. Served by the QueryRouter under `combiner` (see api/router.h;
//     "" = join-uniformity). Join requests are kCardinality-only — a kAqp
//     join request is an InvalidArgument, not a crash.
struct EstimateRequest {
  enum class Kind {
    kCardinality,  // COUNT estimates
    kAqp,          // SUM/AVG/COUNT relative to the agg spec in the query
  };
  Kind kind = Kind::kCardinality;

  // Single-table shape.
  std::string table;
  workload::QueryBatch queries;

  // Join shape (kCardinality only).
  workload::JoinQueryBatch joins;
  std::string combiner;  // "" = api::kDefaultJoinCombiner
};

struct EstimateResponse {
  // answers[i] corresponds to queries.queries[i] (single-table) or
  // joins.queries[i] (join). Each answer is bit-identical to the scalar
  // call for that query.
  std::vector<double> answers;
};

// The public multi-table facade over the DDUp loop: a registry of named
// tables, each bound to a model built through the ModelFactory and driven
// by its own DdupController. Every fallible call returns Status/StatusOr —
// unknown tables, unregistered model kinds, schema-mismatched batches and
// unsupported estimate types are recoverable errors, never crashes.
//
// Ingest accepts arbitrary-size row batches and decouples insertion
// granularity from detection granularity: rows accumulate per table and
// the DDUp loop runs once per full micro-batch (micro_batch_rows), plus
// once for the remainder on an explicit Flush. Buffered rows are invisible
// to the model (and to Estimate*) until flushed.
//
// Concurrency (DESIGN.md §11). With update_workers != 0 the engine is a
// concurrent serving core: the registry is striped (kRegistryStripes
// locks), each table runs a SERVING/UPDATING/DRAINING state machine, full
// micro-batches execute on a per-table FIFO strand of a background
// TaskExecutor (updates for one table never reorder or overlap; distinct
// tables update in parallel), and Estimate* serves from the last published
// read-only model snapshot — an atomic shared_ptr swap per completed
// batch, so readers never block on training. Ingest/Estimate/Flush/Report
// are thread-safe against each other and against running updates; the
// setup calls (CreateTable, AttachModel, Load) and model() are not — run
// them before spinning up clients. Synchronous engines (update_workers ==
// 0, the default) keep the strictly single-threaded contract and
// byte-identical behavior of the pre-concurrency engine.
//
// Save writes the whole engine — registry, per-table accumulator, model
// weights, detector moments and every RNG stream — as one manifest over
// the src/io checkpoint container; Load restores it bit-identically, so a
// restarted engine issues the same estimates and the same future detect
// decisions as the original. On an async engine Save quiesces first: every
// queued update runs to completion and the per-table serialization itself
// executes on the table's strand, so a checkpoint can never capture a
// torn mid-update state.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Registers an empty-or-populated base table under `name`. The table
  // needs at least one column; its schema becomes the contract every later
  // batch is validated against.
  Status CreateTable(const std::string& name, const storage::Table& base_data,
                     const TableOptions& options = {});

  // Builds spec.kind via the ModelFactory, trains it on the table's current
  // rows (which must be non-empty) and starts the DDUp controller. One
  // model per table. On an async engine this also publishes the initial
  // serving snapshot, so the model kind must support the checkpoint hooks.
  Status AttachModel(const std::string& name, const ModelSpec& spec);

  // Buffers `batch` (validated against the table schema; empty is a no-op)
  // and runs the DDUp loop for every completed micro-batch — inline (sync)
  // or on the table's background update strand (async, non-blocking).
  StatusOr<IngestResult> Ingest(const std::string& name,
                                const storage::Table& batch);

  // Pushes any buffered remainder through the loop regardless of size.
  // Async: also waits for the table's update strand to drain, and returns
  // the InsertionReports completed since the last collection. Empty
  // flushes (no buffered rows, idle strand) short-circuit without touching
  // the update path.
  StatusOr<IngestResult> Flush(const std::string& name);
  // Flush for every table; stops at the first error. Async: remainders for
  // all tables are enqueued first, then drained together, so the sweep
  // overlaps updates across tables.
  StatusOr<FlushReport> FlushAll();

  // The estimate surface. Estimates run over the flushed state;
  // FailedPrecondition if a queried table has no model attached or the
  // model kind does not serve the estimate type.
  //
  // The read path is lock-free: estimates serve from an atomically published
  // ServingView (the model plus its estimator interface pointers, resolved
  // with dynamic_cast once at publish time, never per call). Estimators are
  // const and keep all per-call mutable state in a core::EstimateContext
  // whose RNG stream is derived from (model seed, query fingerprint), so
  // any number of reader threads estimate concurrently with no mutex —
  // against the published snapshot (async) or the live model (sync, where
  // the single-threaded contract already rules out a concurrent update).
  // Answers are deterministic per query regardless of thread interleaving,
  // batch size or call order.
  //
  // Single-table batches execute on the exec engine named in
  // EngineConfig::estimate_engine — "vectorized" amortizes per-call setup
  // (weight freezing, scratch, kernel dispatch) across the batch and runs
  // the models' fused GEMM paths. Join batches are planned and fanned out
  // per table by the QueryRouter (api/router.h), then combined under
  // request.combiner. See EstimateRequest for the request shapes.
  StatusOr<EstimateResponse> Estimate(const EstimateRequest& request) const;

  // --- Legacy string-keyed estimate overloads -----------------------------
  //
  // DEPRECATED shims over Estimate(EstimateRequest). They remain
  // byte-identical to their historical behavior — same answers bit-for-bit,
  // same error messages (scalar errors carry no "query 0: " batch prefix) —
  // and are pinned that way in tests/engine_test.cc, but new call sites
  // should build an EstimateRequest instead.
  //
  // Migration:
  //   EstimateCardinality(t, q)        -> {kind=kCardinality, table=t,
  //                                        queries={q}}, answers[0]
  //   EstimateCardinalityBatch(t, b)   -> {kind=kCardinality, table=t,
  //                                        queries=b}
  //   EstimateAqp(t, q)                -> {kind=kAqp, table=t, queries={q}},
  //                                        answers[0]
  //   EstimateAqpBatch(t, b)           -> {kind=kAqp, table=t, queries=b}
  // Multi-table queries have no legacy spelling; build the join shape of
  // EstimateRequest (or use api::QueryRouter directly).
  //
  // One historical quirk the shims deliberately do NOT preserve: the old
  // scalar calls never consulted EngineConfig::estimate_engine, so an
  // engine configured with an unknown exec-engine name only failed on
  // batch calls. Scalar shims now validate it too (InvalidArgument).
  StatusOr<double> EstimateCardinality(const std::string& name,
                                       const workload::Query& query) const;
  StatusOr<double> EstimateAqp(const std::string& name,
                               const workload::Query& query) const;
  StatusOr<std::vector<double>> EstimateCardinalityBatch(
      const std::string& name, const workload::QueryBatch& batch) const;
  StatusOr<std::vector<double>> EstimateAqpBatch(
      const std::string& name, const workload::QueryBatch& batch) const;

  StatusOr<TableReport> Report(const std::string& name) const;
  std::vector<std::string> TableNames() const;  // sorted
  bool HasTable(const std::string& name) const;

  // Barrier over the update workers: blocks until every queued update has
  // run (no-op on a synchronous engine). Unlike Flush it pushes nothing —
  // accumulator remainders stay buffered — so it is the quiesce point a
  // multi-engine checkpoint wants before serializing (serving::Cluster
  // drains every shard through this before any shard file is written).
  void Quiesce();

  // Pauses/resumes the update workers (async; no-ops sync). While paused,
  // Ingest still buffers and enqueues (admission decisions apply against
  // the frozen backlog) but nothing trains and no snapshot publishes.
  // Flush/FlushAll/Save/Quiesce while paused block until ResumeUpdates —
  // pairing them is on the caller. Built for deterministic admission tests
  // and maintenance windows, not for steady-state use.
  void PauseUpdates();
  void ResumeUpdates();

  // Direct access to the live training model for plotting/diagnostics
  // (nullptr before AttachModel). The engine still owns the model. Async
  // engines: quiesce first (Flush/FlushAll) — the live model is mutated by
  // the update strand, not the published serving snapshot.
  core::UpdatableModel* model(const std::string& name);

  // Whole-engine checkpoint: a manifest section describing the registry
  // plus one model and one controller section per attached table, all in a
  // single container file. Restores are bit-identical. Async engines
  // quiesce via drain first (see the class comment).
  Status Save(const std::string& path) const;
  // `config` supplies what the manifest deliberately does not persist: the
  // policy/detector knobs for resumed controllers (matching the
  // DdupController::Resume contract), the micro-batch default for tables
  // created after the restore, and the update-worker count (a restored
  // engine may run sync or async regardless of how the saved one ran).
  static StatusOr<std::unique_ptr<Engine>> Load(const std::string& path,
                                                EngineConfig config = {});

 private:
  // The router reads TableState serving/stats snapshots (atomic loads only)
  // and plan-time schema metadata via the engine's lookup helpers.
  friend class QueryRouter;

  struct TableState {
    std::string name;
    ModelSpec spec;
    int64_t micro_batch_rows = 0;
    // Resolved at CreateTable (option or engine default); the kind the
    // controller is built with at AttachModel and re-anchored to the live
    // controller on Load.
    std::string detector_kind;
    // Strand priority for this table's update tasks (TableOptions).
    int update_priority = 0;

    // Ingest-side state, guarded by mu: the schema contract, the
    // micro-batch accumulator, the model/controller handles and the drain
    // flag. The controller's *internals* are not guarded by mu — they are
    // touched only from the table's FIFO update strand (async) or inline
    // (sync), which serializes them without a lock.
    mutable std::mutex mu;
    storage::Table base;  // schema contract; rows only until AttachModel
    // Micro-batch accumulator (base schema): packed columnar buffers when
    // EngineConfig::packed_accumulator, plain rows otherwise. Drained
    // front-to-back in both modes with identical bytes.
    storage::MicroBatchBuffer pending;
    std::unique_ptr<core::UpdatableModel> model;
    std::unique_ptr<core::DdupController> controller;
    bool draining = false;

    // Update-side statistics, guarded by stats_mu (folded by workers,
    // read by Report/Flush).
    mutable std::mutex stats_mu;
    int64_t insertions = 0;
    int64_t ood_updates = 0;
    int64_t finetunes = 0;
    int64_t kept_stale = 0;
    double detect_seconds = 0.0;
    double update_seconds = 0.0;
    int64_t async_batches = 0;
    double queue_seconds = 0.0;
    int64_t snapshot_publishes = 0;
    int64_t sheds = 0;
    int64_t coalesced_groups = 0;
    // First background failure, sticky: reported by every later
    // Ingest/Flush on the table. Cannot trigger for batches the engine
    // validated, but a custom model kind could fail a snapshot publish.
    Status async_error;
    // Reports completed on the strand since the last Flush collection,
    // bounded by kMaxBufferedReports (oldest dropped first).
    std::vector<core::InsertionReport> finished;

    // Micro-batches queued or running on the strand.
    std::atomic<int64_t> backlog{0};

    // Admission wait point (block policy, DESIGN.md §15): an overloaded
    // Ingest waits here — never under `mu`, so Report/Estimate/Flush on
    // the table stay responsive while a producer is stalled. Workers
    // notify after every backlog decrement.
    std::mutex admission_mu;
    std::condition_variable admission_cv;

    // What Estimate* serves, swapped as one atomic unit (access ONLY via
    // std::atomic_load/atomic_store on `serving`): the model handle plus
    // its estimator interface pointers, resolved with dynamic_cast once
    // here so the hot path never casts. Async engines publish a view over
    // a fresh deep copy after every batch; sync engines publish a
    // non-owning alias of the live model once at attach/load (the object
    // is stable — updates mutate it in place, so the cached interface
    // pointers stay valid). Readers take NO lock: estimation is const on
    // the model with all per-call state in core::EstimateContext, so
    // overlapped estimates on one view are safe by contract
    // (core/interfaces.h). There is deliberately no estimate mutex — the
    // old one serialized every reader on the table (even for stateless
    // SPN/GBDT estimators, even in sync mode) to protect DARN sampler
    // state that now lives in the per-call context.
    struct ServingView {
      std::shared_ptr<const core::UpdatableModel> model;
      const core::CardinalityEstimator* card = nullptr;
      const core::AqpEstimator* aqp = nullptr;
    };
    std::shared_ptr<const ServingView> serving;

    // Exact per-column NDV + row count for the join combiners. The builder
    // is guarded by mu and folds rows exactly when they leave the
    // accumulator for the DDUp loop (inline drain or strand enqueue), so
    // the snapshot tracks the flushed state the models serve — buffered
    // rows are invisible here just as they are to Estimate*. Published
    // snapshots are immutable; access `stats` ONLY via
    // std::atomic_load/atomic_store (same discipline as `serving`).
    storage::TableStatsBuilder stats_builder;
    std::shared_ptr<const storage::TableStats> stats;
  };

  // Hash-striped registry: CreateTable/lookup contend only within one
  // stripe, and lookups drop the stripe lock before touching the table
  // (TableState handles are shared_ptr, never invalidated).
  static constexpr size_t kRegistryStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<TableState>> tables;
  };
  // Collected per-table sections for Save (serialized on the strand).
  struct TableCheckpoint {
    Status status;
    std::string manifest;  // per-table manifest fields
    bool has_model = false;
    std::string model_state;
    std::string controller_state;
  };

  static constexpr size_t kMaxBufferedReports = 1024;

  size_t StripeIndex(const std::string& name) const;
  StatusOr<std::shared_ptr<TableState>> FindTable(
      const std::string& name) const;
  bool async() const { return executor_ != nullptr; }

  // Single-table body of Estimate(): resolves the exec engine, the table
  // and its serving view, then runs the whole batch through the exec
  // engine. Batch-execution errors carry the exec engines' "query <i>: "
  // prefix; the scalar shims strip it for batch-of-1 calls.
  StatusOr<std::vector<double>> EstimateSingleTable(
      EstimateRequest::Kind kind, const std::string& name,
      const workload::QueryBatch& batch) const;

  // Runs the DDUp loop on `batch` inline and folds the report into the
  // counters (sync path; also the strand body via RunBatchOnWorker).
  Status PushBatch(TableState* state, const storage::Table& batch,
                   IngestResult* result);
  // Slices full micro-batches (and, if `all`, the remainder) out of the
  // accumulator under state->mu and runs them inline (sync).
  Status DrainInline(TableState* state, bool all, IngestResult* result);
  // Async: slices batches out of the accumulator and enqueues them on the
  // table's strand, one task per micro-batch, ignoring the admission bound
  // (the flush/drain paths use this — they are immediately followed by a
  // drain, so bounding them would only deadlock a block-policy flush).
  // Caller must hold state->mu.
  void EnqueueBatchesLocked(const std::shared_ptr<TableState>& state, bool all,
                            IngestResult* result);
  // Admission-aware enqueue for the bounded Ingest path: enqueues full
  // micro-batches while the backlog has room (grouping per the policy's
  // GroupSize), consults the policy when it does not, and implements kWait
  // by releasing `lock` while the caller stalls on admission_cv. Caller
  // must hold `lock` (on state->mu); it is held again on return.
  void EnqueueBoundedLocked(const std::shared_ptr<TableState>& state,
                            std::unique_lock<std::mutex>& lock,
                            IngestResult* result);
  // Slices `batches` micro-batches (plus the remainder when `remainder`)
  // out of the accumulator and submits them as ONE strand task. Caller
  // must hold state->mu.
  void SubmitGroupLocked(const std::shared_ptr<TableState>& state,
                         int64_t batches, bool remainder,
                         IngestResult* result);
  // Strand body: a group of micro-batches through the loop, one
  // HandleInsertion per micro-batch (so grouping never changes model
  // bytes), one snapshot republish per group.
  static void RunGroupOnWorker(const std::shared_ptr<TableState>& state,
                               const std::vector<storage::Table>& batches,
                               double queue_seconds);
  // Publishes a fresh read-only copy of the live model (strand context or
  // setup path). Folds errors into state->async_error.
  static void PublishSnapshot(TableState* state);
  // Wraps `model` in a ServingView with the estimator interfaces resolved
  // (the once-per-publish dynamic_cast). Pass an aliasing (non-owning)
  // shared_ptr for the sync-mode live model.
  static std::shared_ptr<const TableState::ServingView> MakeServingView(
      std::shared_ptr<const core::UpdatableModel> model);
  // Folds one completed InsertionReport into the table counters. Caller
  // must hold state->stats_mu.
  static void FoldReportLocked(TableState* state,
                               const core::InsertionReport& report);
  // Serializes one table's manifest fields + model/controller sections.
  static TableCheckpoint CheckpointTable(const TableState& state);
  // Async flush helpers.
  StatusOr<IngestResult> CollectFlush(const std::shared_ptr<TableState>& state);
  Status StickyError(const TableState& state) const;
  // True when a flush would be a no-op: empty accumulator, idle strand,
  // no completed reports awaiting collection. Caller must hold state.mu.
  bool NothingToFlushLocked(const TableState& state) const;

  EngineConfig config_;
  // Codec name recorded in the manifest this engine was loaded from ("" for
  // a fresh engine); Save re-uses it when config_.checkpoint.codec is empty.
  std::string loaded_codec_;
  // Resolved once from config_.admission_policy; nullptr for an unknown
  // name (surfaced as InvalidArgument on the first bounded Ingest).
  const serving::AdmissionPolicy* admission_ = nullptr;
  std::array<Stripe, kRegistryStripes> stripes_;
  // Background update workers; null on the synchronous path. Declared last
  // so it is destroyed (drained + joined) before the registry it points
  // into — though strand tasks also hold shared_ptr table handles.
  std::unique_ptr<TaskExecutor> executor_;
};

}  // namespace ddup::api

#endif  // DDUP_API_ENGINE_H_
