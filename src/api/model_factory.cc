#include "api/model_factory.h"

#include <cerrno>
#include <cstdlib>

#include "io/serializer.h"
#include "models/registry.h"

namespace ddup::api {

// ---------------------------------------------------------------------------
// OptionReader
// ---------------------------------------------------------------------------

const std::string* OptionReader::Raw(const std::string& key) {
  consumed_.insert(key);
  auto it = options_.find(key);
  return it == options_.end() ? nullptr : &it->second;
}

void OptionReader::Fail(const std::string& key, const char* expected) {
  if (status_.ok()) {
    status_ = Status::InvalidArgument("option '" + key + "' is not " +
                                      expected + ": '" + options_.at(key) +
                                      "'");
  }
}

std::string OptionReader::String(const std::string& key, std::string fallback) {
  const std::string* raw = Raw(key);
  return raw != nullptr ? *raw : fallback;
}

int64_t OptionReader::Int(const std::string& key, int64_t fallback,
                          int64_t min_value, int64_t max_value) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(raw->c_str(), &end, 10);
  if (raw->empty() || errno != 0 || end != raw->c_str() + raw->size()) {
    Fail(key, "an integer");
    return fallback;
  }
  if (v < min_value || v > max_value) {
    Fail(key, ("in [" + std::to_string(min_value) + ", " +
               std::to_string(max_value) + "]")
                  .c_str());
    return fallback;
  }
  return static_cast<int64_t>(v);
}

int OptionReader::PositiveInt(const std::string& key, int fallback) {
  return static_cast<int>(
      Int(key, fallback, 1, std::numeric_limits<int>::max()));
}

double OptionReader::Double(const std::string& key, double fallback) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(raw->c_str(), &end);
  if (raw->empty() || errno != 0 || end != raw->c_str() + raw->size()) {
    Fail(key, "a number");
    return fallback;
  }
  return v;
}

uint64_t OptionReader::U64(const std::string& key, uint64_t fallback) {
  const std::string* raw = Raw(key);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw->c_str(), &end, 10);
  if (raw->empty() || errno != 0 || end != raw->c_str() + raw->size()) {
    Fail(key, "an unsigned integer");
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

Status OptionReader::Finish(const std::string& kind) const {
  if (!status_.ok()) return status_;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (consumed_.count(key) == 0) {
      return Status::InvalidArgument("model kind '" + kind +
                                     "' does not understand option '" + key +
                                     "'");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ModelFactory
// ---------------------------------------------------------------------------

ModelFactory& ModelFactory::Global() {
  static ModelFactory* factory = [] {
    auto* f = new ModelFactory();
    models::RegisterBuiltinModels(f);
    return f;
  }();
  return *factory;
}

Status ModelFactory::Register(const std::string& kind, Creator creator,
                              Restorer restorer) {
  if (kind.empty()) {
    return Status::InvalidArgument("model kind must be non-empty");
  }
  if (entries_.count(kind) > 0) {
    return Status::FailedPrecondition("model kind '" + kind +
                                      "' is already registered");
  }
  entries_[kind] = Entry{std::move(creator), std::move(restorer)};
  return Status::OK();
}

bool ModelFactory::Has(const std::string& kind) const {
  return entries_.count(kind) > 0;
}

std::vector<std::string> ModelFactory::Kinds() const {
  std::vector<std::string> kinds;
  kinds.reserve(entries_.size());
  for (const auto& [kind, entry] : entries_) {
    (void)entry;
    kinds.push_back(kind);
  }
  return kinds;
}

StatusOr<const ModelFactory::Entry*> ModelFactory::Find(
    const std::string& kind) const {
  auto it = entries_.find(kind);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& k : Kinds()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    return Status::NotFound("unregistered model kind '" + kind +
                            "' (registered: " + known + ")");
  }
  return &it->second;
}

StatusOr<std::unique_ptr<core::UpdatableModel>> ModelFactory::Create(
    const std::string& kind, const storage::Table& base_data,
    const ModelOptions& options) const {
  StatusOr<const Entry*> entry = Find(kind);
  if (!entry.ok()) return entry.status();
  return entry.value()->creator(base_data, options);
}

StatusOr<std::unique_ptr<core::UpdatableModel>> ModelFactory::Restore(
    const std::string& kind, io::Deserializer* in) const {
  StatusOr<const Entry*> entry = Find(kind);
  if (!entry.ok()) return entry.status();
  return entry.value()->restorer(in);
}

StatusOr<std::unique_ptr<core::UpdatableModel>> CloneModel(
    const std::string& kind, const core::UpdatableModel& model) {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(model.SaveState(&state));
  io::Deserializer in(state.Take());
  StatusOr<std::unique_ptr<core::UpdatableModel>> copy =
      ModelFactory::Global().Restore(kind, &in);
  if (!copy.ok()) return copy.status();
  DDUP_RETURN_IF_ERROR(in.Finish());
  return copy;
}

}  // namespace ddup::api
