#ifndef DDUP_API_MODEL_FACTORY_H_
#define DDUP_API_MODEL_FACTORY_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interfaces.h"
#include "storage/table.h"

namespace ddup::io {
class Deserializer;
}  // namespace ddup::io

namespace ddup::api {

// String-keyed model configuration, e.g. {{"epochs", "25"}, {"seed", "7"}}.
// Each registered kind parses the keys it understands and rejects unknown
// keys or malformed values with InvalidArgument, so a typo in a config knob
// surfaces at AttachModel time instead of silently training with defaults.
using ModelOptions = std::map<std::string, std::string>;

// A model kind plus its configuration; the unit AttachModel consumes and
// the engine manifest persists.
struct ModelSpec {
  std::string kind;  // "mdn" | "darn" | "tvae" | "spn" | "gbdt"
  ModelOptions options;
};

// Helper for creator implementations: typed option lookups with defaults,
// sticky parse errors, and unknown-key detection. Read every key the kind
// supports, then call Finish() to convert the first problem (malformed
// value or unconsumed key) into a Status.
class OptionReader {
 public:
  explicit OptionReader(const ModelOptions& options) : options_(options) {}

  std::string String(const std::string& key, std::string fallback);
  // Values outside [min_value, max_value] fail like malformed ones, so a
  // knob can never truncate silently when narrowed to the config's type.
  int64_t Int(const std::string& key, int64_t fallback,
              int64_t min_value = std::numeric_limits<int64_t>::min(),
              int64_t max_value = std::numeric_limits<int64_t>::max());
  // Int bounded to a positive int — the shape of every structural knob
  // (epochs, widths, batch sizes, ...).
  int PositiveInt(const std::string& key, int fallback);
  double Double(const std::string& key, double fallback);
  uint64_t U64(const std::string& key, uint64_t fallback);

  // OK iff every provided key was read and every value parsed.
  Status Finish(const std::string& kind) const;

 private:
  const std::string* Raw(const std::string& key);
  void Fail(const std::string& key, const char* expected);

  const ModelOptions& options_;
  std::set<std::string> consumed_;
  Status status_;
};

// Registry mapping model-kind names to constructors and checkpoint
// restorers. The five in-tree families are registered on first use of
// Global() (see models/registry.cc); embedders can register additional
// kinds, which then work everywhere a builtin does — AttachModel, bench
// traits, and engine Save/Load.
class ModelFactory {
 public:
  using Creator =
      std::function<StatusOr<std::unique_ptr<core::UpdatableModel>>(
          const storage::Table& base_data, const ModelOptions& options)>;
  using Restorer =
      std::function<StatusOr<std::unique_ptr<core::UpdatableModel>>(
          io::Deserializer* in)>;

  // The process-wide registry with the builtin kinds pre-registered.
  static ModelFactory& Global();

  // FailedPrecondition if `kind` is already registered.
  Status Register(const std::string& kind, Creator creator, Restorer restorer);
  bool Has(const std::string& kind) const;
  // Registered kinds, sorted.
  std::vector<std::string> Kinds() const;

  // Builds and trains a model of `kind` on `base_data`. NotFound for an
  // unregistered kind (the message lists the registered ones).
  StatusOr<std::unique_ptr<core::UpdatableModel>> Create(
      const std::string& kind, const storage::Table& base_data,
      const ModelOptions& options) const;

  // Rebuilds a model of `kind` from a SaveState payload.
  StatusOr<std::unique_ptr<core::UpdatableModel>> Restore(
      const std::string& kind, io::Deserializer* in) const;

 private:
  struct Entry {
    Creator creator;
    Restorer restorer;
  };

  StatusOr<const Entry*> Find(const std::string& kind) const;

  std::map<std::string, Entry> entries_;
};

// Deep copy of `model` (a registered `kind`) through its checkpoint state:
// SaveState into a buffer, Restore a fresh instance. The copy shares no
// mutable state with the original — the Engine publishes such copies as
// read-only serving snapshots while training continues on the original
// (DESIGN.md §11). Fails (without side effects) for kinds whose models do
// not implement the checkpoint hooks.
StatusOr<std::unique_ptr<core::UpdatableModel>> CloneModel(
    const std::string& kind, const core::UpdatableModel& model);

}  // namespace ddup::api

#endif  // DDUP_API_MODEL_FACTORY_H_
