#include "api/router.h"

#include <algorithm>
#include <map>
#include <utility>

#include "api/engine.h"
#include "exec/estimator_engine.h"
#include "storage/stats.h"

namespace ddup::api {

namespace {

constexpr PlanError kAllPlanErrors[] = {
    PlanError::kEmptyQuery,           PlanError::kUnknownTable,
    PlanError::kUnknownColumn,        PlanError::kJoinTypeMismatch,
    PlanError::kDisconnectedJoinGraph, PlanError::kCyclicJoinGraph,
    PlanError::kUnsupportedAggregate,
};

std::string JoinedNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const auto& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

const char* TypeName(storage::ColumnType type) {
  return type == storage::ColumnType::kNumeric ? "numeric" : "categorical";
}

// Strips the batch "join query 0: " prefix for the scalar call.
Status StripBatchPrefix(const Status& status) {
  constexpr const char kPrefix[] = "join query 0: ";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (status.message().rfind(kPrefix, 0) == 0) {
    return Status(status.code(), status.message().substr(kPrefixLen));
  }
  return status;
}

Status PrefixedError(size_t index, const Status& status) {
  return Status(status.code(), "join query " + std::to_string(index) + ": " +
                                   status.message());
}

// ---------------------------------------------------------------------------
// Combiners. Both refuse to divide by a non-positive NDV (an empty table on
// that side means the join is empty) and both return 0 as soon as any
// referenced table has no rows.
// ---------------------------------------------------------------------------

double SelectedRowProduct(const std::vector<CombinerTableTerm>& tables,
                          bool* empty) {
  double product = 1.0;
  *empty = false;
  for (const CombinerTableTerm& t : tables) {
    if (t.rows <= 0) {
      *empty = true;
      return 0.0;
    }
    product *= static_cast<double>(t.rows) * t.selectivity;
  }
  return product;
}

class JoinUniformityCombiner : public JoinCombiner {
 public:
  std::string name() const override { return "join-uniformity"; }

  double EstimateJoinCardinality(
      const std::vector<CombinerTableTerm>& tables,
      const std::vector<CombinerEdgeTerm>& edges) const override {
    bool empty = false;
    double est = SelectedRowProduct(tables, &empty);
    if (empty) return 0.0;
    for (const CombinerEdgeTerm& e : edges) {
      const int64_t denom = std::max(e.parent_ndv, e.child_ndv);
      if (denom <= 0) return 0.0;
      est /= static_cast<double>(denom);
    }
    return est;
  }
};

class FanoutScalingCombiner : public JoinCombiner {
 public:
  std::string name() const override { return "fanout-scaling"; }

  double EstimateJoinCardinality(
      const std::vector<CombinerTableTerm>& tables,
      const std::vector<CombinerEdgeTerm>& edges) const override {
    bool empty = false;
    double est = SelectedRowProduct(tables, &empty);
    if (empty) return 0.0;
    for (const CombinerEdgeTerm& e : edges) {
      if (e.child_ndv <= 0) return 0.0;
      est /= static_cast<double>(e.child_ndv);
    }
    return est;
  }
};

}  // namespace

const char* ToString(PlanError error) {
  switch (error) {
    case PlanError::kEmptyQuery:
      return "empty-query";
    case PlanError::kUnknownTable:
      return "unknown-table";
    case PlanError::kUnknownColumn:
      return "unknown-column";
    case PlanError::kJoinTypeMismatch:
      return "join-type-mismatch";
    case PlanError::kDisconnectedJoinGraph:
      return "disconnected-join-graph";
    case PlanError::kCyclicJoinGraph:
      return "cyclic-join-graph";
    case PlanError::kUnsupportedAggregate:
      return "unsupported-aggregate";
  }
  return "unknown";
}

Status MakePlanError(PlanError error, const std::string& message) {
  std::string tagged = std::string("[plan:") + ToString(error) + "] " + message;
  if (error == PlanError::kUnknownTable) {
    return Status::NotFound(std::move(tagged));
  }
  return Status::InvalidArgument(std::move(tagged));
}

std::optional<PlanError> PlanErrorFromStatus(const Status& status) {
  if (status.ok()) return std::nullopt;
  // Tolerate the batch "join query <i>: " prefix in front of the tag.
  const std::string& m = status.message();
  const size_t open = m.find("[plan:");
  if (open == std::string::npos) return std::nullopt;
  const size_t start = open + 6;
  const size_t close = m.find(']', start);
  if (close == std::string::npos) return std::nullopt;
  const std::string tag = m.substr(start, close - start);
  for (PlanError e : kAllPlanErrors) {
    if (tag == ToString(e)) return e;
  }
  return std::nullopt;
}

const Engine* QueryRouter::Route(const std::string& table) const {
  if (!route_) return engine_;
  const Engine* shard = route_(table);
  return shard != nullptr ? shard : engine_;
}

const JoinCombiner* FindJoinCombiner(const std::string& name) {
  static const JoinUniformityCombiner* uniformity =
      new JoinUniformityCombiner();
  static const FanoutScalingCombiner* fanout = new FanoutScalingCombiner();
  if (name == uniformity->name()) return uniformity;
  if (name == fanout->name()) return fanout;
  return nullptr;
}

std::vector<std::string> RegisteredJoinCombiners() {
  return {"fanout-scaling", "join-uniformity"};
}

StatusOr<JoinPlan> QueryRouter::Plan(const workload::JoinQuery& query) const {
  // The planner works on the canonical form, so one logical query always
  // yields one plan (and one set of subquery fingerprints).
  workload::JoinQuery canonical = query;
  workload::CanonicalizeJoinQuery(&canonical);

  if (canonical.agg != workload::AggFunc::kCount) {
    return MakePlanError(
        PlanError::kUnsupportedAggregate,
        "join queries serve COUNT only; SUM/AVG over joins is not supported "
        "yet");
  }
  JoinPlan plan;
  plan.tables = canonical.ReferencedTables();
  if (plan.tables.empty()) {
    return MakePlanError(PlanError::kEmptyQuery,
                         "the query references no tables");
  }

  // Resolve every referenced table's schema (column names + types) from its
  // published stats snapshot — plan time takes no table lock either.
  std::map<std::string, std::shared_ptr<const storage::TableStats>> schemas;
  for (const std::string& t : plan.tables) {
    StatusOr<std::shared_ptr<Engine::TableState>> found =
        Route(t)->FindTable(t);
    if (!found.ok()) {
      return MakePlanError(PlanError::kUnknownTable,
                           "no table named '" + t + "' is registered");
    }
    schemas[t] = std::atomic_load(&found.value()->stats);
  }

  // Predicate columns are indices into their table's schema.
  for (const workload::BoundPredicate& p : canonical.predicates) {
    const storage::TableStats& schema = *schemas.at(p.table);
    if (p.predicate.column < 0 ||
        p.predicate.column >= static_cast<int>(schema.columns.size())) {
      return MakePlanError(
          PlanError::kUnknownColumn,
          "table '" + p.table + "' has no column index " +
              std::to_string(p.predicate.column) + " (it has " +
              std::to_string(schema.columns.size()) + " columns)");
    }
  }

  // Edge columns are names; resolve and type-check both sides.
  for (const workload::JoinEdge& e : canonical.joins) {
    const storage::TableStats& left = *schemas.at(e.left_table);
    const storage::TableStats& right = *schemas.at(e.right_table);
    const int li = left.ColumnIndex(e.left_column);
    if (li < 0) {
      return MakePlanError(PlanError::kUnknownColumn,
                           "table '" + e.left_table + "' has no column '" +
                               e.left_column + "'");
    }
    const int ri = right.ColumnIndex(e.right_column);
    if (ri < 0) {
      return MakePlanError(PlanError::kUnknownColumn,
                           "table '" + e.right_table + "' has no column '" +
                               e.right_column + "'");
    }
    if (left.types[static_cast<size_t>(li)] !=
        right.types[static_cast<size_t>(ri)]) {
      return MakePlanError(
          PlanError::kJoinTypeMismatch,
          "cannot equi-join " + e.left_table + "." + e.left_column + " (" +
              TypeName(left.types[static_cast<size_t>(li)]) + ") with " +
              e.right_table + "." + e.right_column + " (" +
              TypeName(right.types[static_cast<size_t>(ri)]) + ")");
    }
    if (e.left_table == e.right_table) {
      return MakePlanError(PlanError::kCyclicJoinGraph,
                           "self-join edge on table '" + e.left_table +
                               "' forms a cycle");
    }
  }

  // The join graph must be a tree over the referenced tables. BFS from the
  // root (the lexicographically smallest table — plan.tables is sorted)
  // both verifies connectivity and orients every edge parent -> child.
  plan.root = plan.tables.front();
  std::map<std::string, std::vector<size_t>> adjacency;
  for (size_t i = 0; i < canonical.joins.size(); ++i) {
    adjacency[canonical.joins[i].left_table].push_back(i);
    adjacency[canonical.joins[i].right_table].push_back(i);
  }
  std::map<std::string, bool> visited;
  for (const std::string& t : plan.tables) visited[t] = false;
  std::vector<std::string> frontier{plan.root};
  visited[plan.root] = true;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& current : frontier) {
      for (size_t i : adjacency[current]) {
        const workload::JoinEdge& e = canonical.joins[i];
        const bool from_left = (e.left_table == current);
        const std::string& other = from_left ? e.right_table : e.left_table;
        if (visited[other]) continue;
        visited[other] = true;
        PlannedEdge oriented;
        oriented.parent_table = current;
        oriented.parent_column = from_left ? e.left_column : e.right_column;
        oriented.child_table = other;
        oriented.child_column = from_left ? e.right_column : e.left_column;
        plan.edges.push_back(std::move(oriented));
        next.push_back(other);
      }
    }
    frontier = std::move(next);
  }
  for (const auto& [table, seen] : visited) {
    if (!seen) {
      return MakePlanError(
          PlanError::kDisconnectedJoinGraph,
          "table '" + table + "' is not connected to '" + plan.root +
              "' by the join edges");
    }
  }
  if (canonical.joins.size() != plan.tables.size() - 1) {
    // Connected with more than |tables| - 1 edges means a cycle (possibly a
    // duplicated edge between the same pair of tables).
    return MakePlanError(
        PlanError::kCyclicJoinGraph,
        "the join graph has " + std::to_string(canonical.joins.size()) +
            " edges over " + std::to_string(plan.tables.size()) +
            " tables; a join tree needs exactly " +
            std::to_string(plan.tables.size() - 1));
  }

  // Split the (already canonically sorted) predicates into per-table
  // subqueries; tables without predicates get none (selectivity 1).
  for (const workload::BoundPredicate& p : canonical.predicates) {
    if (plan.subqueries.empty() || plan.subqueries.back().table != p.table) {
      PlannedSubquery sub;
      sub.table = p.table;
      plan.subqueries.push_back(std::move(sub));
    }
    plan.subqueries.back().query.predicates.push_back(p.predicate);
  }
  return plan;
}

StatusOr<double> QueryRouter::EstimateCardinality(
    const workload::JoinQuery& query, const std::string& combiner) const {
  workload::JoinQueryBatch batch;
  batch.Add(query);
  StatusOr<std::vector<double>> answers =
      EstimateCardinalityBatch(batch, combiner);
  if (!answers.ok()) return StripBatchPrefix(answers.status());
  return answers.value()[0];
}

StatusOr<std::vector<double>> QueryRouter::EstimateCardinalityBatch(
    const workload::JoinQueryBatch& batch, const std::string& combiner) const {
  const std::string& name =
      combiner.empty() ? std::string(kDefaultJoinCombiner) : combiner;
  const JoinCombiner* comb = FindJoinCombiner(name);
  if (comb == nullptr) {
    return Status::InvalidArgument(
        "unknown join combiner '" + name +
        "'; registered: " + JoinedNames(RegisteredJoinCombiners()));
  }
  const exec::EstimatorEngine* exec_engine =
      exec::FindEstimatorEngine(engine_->config_.estimate_engine);
  if (exec_engine == nullptr) {
    return Status::InvalidArgument(
        "unknown estimate engine '" + engine_->config_.estimate_engine +
        "'; registered: " +
        JoinedNames(exec::RegisteredEstimatorEngines()));
  }

  // Plan every query first — fail fast before any estimate runs.
  std::vector<JoinPlan> plans;
  plans.reserve(batch.queries.size());
  for (size_t i = 0; i < batch.queries.size(); ++i) {
    StatusOr<JoinPlan> plan = Plan(batch.queries[i]);
    if (!plan.ok()) return PrefixedError(i, plan.status());
    plans.push_back(std::move(plan).value());
  }

  // One snapshot per referenced table for the whole batch: a single atomic
  // load of the serving view and of the stats — concurrent update workers
  // publish new ones without blocking us, and every subquery of this call
  // sees one consistent per-table snapshot.
  struct TableSnapshot {
    std::shared_ptr<const Engine::TableState::ServingView> view;
    std::shared_ptr<const storage::TableStats> stats;
    std::string model_kind;
    workload::QueryBatch subqueries;   // gathered across the whole batch
    std::vector<double> answers;
    size_t cursor = 0;
  };
  std::map<std::string, TableSnapshot> snapshots;
  for (const JoinPlan& plan : plans) {
    for (const std::string& t : plan.tables) {
      if (snapshots.count(t) > 0) continue;
      StatusOr<std::shared_ptr<Engine::TableState>> found =
          Route(t)->FindTable(t);
      if (!found.ok()) return found.status();
      TableSnapshot& snap = snapshots[t];
      snap.view = std::atomic_load(&found.value()->serving);
      snap.stats = std::atomic_load(&found.value()->stats);
      snap.model_kind = found.value()->spec.kind;
    }
  }

  // Gather all subqueries per table across the batch, then run each table's
  // gathered batch through the exec engine once.
  for (const JoinPlan& plan : plans) {
    for (const PlannedSubquery& sub : plan.subqueries) {
      snapshots.at(sub.table).subqueries.Add(sub.query);
    }
  }
  for (auto& [table, snap] : snapshots) {
    if (snap.subqueries.queries.empty()) continue;
    if (snap.view == nullptr) {
      return Status::FailedPrecondition("table '" + table +
                                        "' has no model attached yet");
    }
    if (snap.view->card == nullptr) {
      return Status::FailedPrecondition(
          "model kind '" + snap.model_kind + "' on table '" + table +
          "' does not serve cardinality estimates");
    }
    Status run = exec_engine->EstimateCardinalityBatch(
        *snap.view->card, snap.subqueries, &snap.answers);
    if (!run.ok()) {
      return Status(run.code(), "table '" + table + "': " + run.message());
    }
  }

  // Combine: per query, per-table selectivities (estimate / rows, clamped
  // to [0, 1]) and per-edge NDVs from the same snapshots.
  std::vector<double> out;
  out.reserve(plans.size());
  for (const JoinPlan& plan : plans) {
    std::vector<CombinerTableTerm> tables;
    tables.reserve(plan.tables.size());
    std::map<std::string, double> selectivity;
    for (const PlannedSubquery& sub : plan.subqueries) {
      TableSnapshot& snap = snapshots.at(sub.table);
      const double estimate = snap.answers[snap.cursor++];
      const double rows = static_cast<double>(snap.stats->rows);
      double sel = rows > 0 ? estimate / rows : 1.0;
      sel = std::min(1.0, std::max(0.0, sel));
      selectivity[sub.table] = sel;
    }
    for (const std::string& t : plan.tables) {
      CombinerTableTerm term;
      term.table = t;
      term.rows = snapshots.at(t).stats->rows;
      auto it = selectivity.find(t);
      term.selectivity = it == selectivity.end() ? 1.0 : it->second;
      tables.push_back(std::move(term));
    }
    std::vector<CombinerEdgeTerm> edges;
    edges.reserve(plan.edges.size());
    for (const PlannedEdge& e : plan.edges) {
      const storage::TableStats& parent =
          *snapshots.at(e.parent_table).stats;
      const storage::TableStats& child = *snapshots.at(e.child_table).stats;
      CombinerEdgeTerm term;
      term.parent_rows = parent.rows;
      term.parent_ndv = parent.NdvOf(e.parent_column);
      term.child_rows = child.rows;
      term.child_ndv = child.NdvOf(e.child_column);
      edges.push_back(term);
    }
    out.push_back(comb->EstimateJoinCardinality(tables, edges));
  }
  return out;
}

}  // namespace ddup::api
