#ifndef DDUP_API_ROUTER_H_
#define DDUP_API_ROUTER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/join_query.h"

namespace ddup::api {

class Engine;

// ---------------------------------------------------------------------------
// Typed planning errors. Plan() and the estimate calls return Status, but
// every planning failure carries one of these machine-readable codes (as a
// stable "[plan:<tag>]" message prefix) so callers can branch on the cause
// without string-matching ad-hoc prose. PlanErrorFromStatus recovers the
// code; MakePlanError builds the Status (used by the router internally).
// ---------------------------------------------------------------------------
enum class PlanError {
  kEmptyQuery,            // the query references no tables at all
  kUnknownTable,          // a referenced table is not registered
  kUnknownColumn,         // a predicate/edge column is not in its schema
  kJoinTypeMismatch,      // numeric joined with categorical (or dicts differ)
  kDisconnectedJoinGraph, // >1 referenced table not connected by the edges
  kCyclicJoinGraph,       // the edges contain a cycle (incl. self-joins)
  kUnsupportedAggregate,  // join queries serve COUNT only (DESIGN.md §14)
};

// Stable tag for the "[plan:<tag>]" message prefix, e.g. "unknown-table".
const char* ToString(PlanError error);
// Status with code kNotFound (kUnknownTable) or kInvalidArgument (others)
// and the message "[plan:<tag>] <message>".
Status MakePlanError(PlanError error, const std::string& message);
// Recovers the typed code from a planning Status; nullopt for any Status
// that did not come out of the planner.
std::optional<PlanError> PlanErrorFromStatus(const Status& status);

// ---------------------------------------------------------------------------
// Join-size combiners. A combiner turns per-table and per-edge statistics
// plus the models' per-table selectivities into one join-cardinality
// estimate; which one is right depends on assumptions about the data that
// the router deliberately refuses to bake in ("Are We Ready For Learned
// Cardinality Estimation?" — the combination assumption dominates the error
// on real joins). Registered combiners:
//
//   "join-uniformity" (default): System-R-style containment + uniformity.
//     |A ⋈ B| = |A||B| / max(ndv(A.a), ndv(B.b)) per edge. Assumes the
//     smaller key-value set is contained in the larger and values are
//     uniformly distributed; degrades under key skew.
//
//   "fanout-scaling": DeepDB-style referential fanout. Each edge expands
//     the parent side by the child's average per-key fanout:
//     |A ⋈ B| = |A| * |B| / ndv(B.b) with B the child (away from the plan
//     root). Assumes every parent row finds a match (referential
//     integrity); overestimates when parent keys dangle or when the
//     orientation puts a non-key side in the denominator.
//
// Both multiply the per-table predicate selectivities independently — the
// cross-table independence assumption is shared and explicit (§14 documents
// the failure modes). Combiners are stateless process-lifetime singletons.
// ---------------------------------------------------------------------------
struct CombinerTableTerm {
  std::string table;
  int64_t rows = 0;
  // Model-estimated selectivity of this table's predicates in [0, 1];
  // 1.0 for a table the query does not filter.
  double selectivity = 1.0;
};

struct CombinerEdgeTerm {
  // Parent = nearer the plan root, child = the table the edge attaches.
  int64_t parent_rows = 0;
  int64_t parent_ndv = 0;
  int64_t child_rows = 0;
  int64_t child_ndv = 0;
};

class JoinCombiner {
 public:
  virtual ~JoinCombiner() = default;

  virtual std::string name() const = 0;

  // Estimated cardinality of the predicated join described by the terms.
  // `tables` has one entry per referenced table, `edges` one per join edge
  // (|tables| - 1 of them; the plan is a tree).
  virtual double EstimateJoinCardinality(
      const std::vector<CombinerTableTerm>& tables,
      const std::vector<CombinerEdgeTerm>& edges) const = 0;
};

// nullptr for an unknown name.
const JoinCombiner* FindJoinCombiner(const std::string& name);
// Sorted names of every registered combiner.
std::vector<std::string> RegisteredJoinCombiners();
inline constexpr const char* kDefaultJoinCombiner = "join-uniformity";

// ---------------------------------------------------------------------------
// The executable shape of a validated join query: the canonical per-table
// subqueries plus the join tree oriented away from the root. Produced by
// QueryRouter::Plan; exposed so tests and benches can inspect planning
// decisions without running an estimate.
// ---------------------------------------------------------------------------
struct PlannedSubquery {
  std::string table;
  workload::Query query;  // predicates in canonical order
};

struct PlannedEdge {
  std::string parent_table;
  std::string parent_column;
  std::string child_table;
  std::string child_column;
};

struct JoinPlan {
  std::vector<std::string> tables;  // sorted referenced tables
  // Root of the join tree: the lexicographically smallest referenced table.
  // Deterministic and schema-only, so one logical query always yields the
  // same plan (and the same subquery fingerprints) regardless of data.
  std::string root;
  std::vector<PlannedEdge> edges;            // BFS order from the root
  std::vector<PlannedSubquery> subqueries;   // predicated tables, sorted
};

// ---------------------------------------------------------------------------
// QueryRouter: plans and executes multi-table estimates against an Engine.
//
// Estimate calls are lock-free in the same sense as the Engine's own read
// path: per table they take one atomic load of the published ServingView
// (model + estimator interfaces) and one of the published TableStats
// snapshot, then never touch shared mutable state — concurrent background
// update workers publish new snapshots without blocking routers, and a
// router call observes each table at exactly one snapshot.
//
// Batched execution: all subqueries that land on one table — across every
// join query in the batch — run as a single workload::QueryBatch through
// the Engine's configured exec::EstimatorEngine, so the PR 7 vectorized
// paths amortize across the join workload. Answers are deterministic and
// batch-/order-invariant per join query (canonical subqueries keep the
// per-query RNG streams stable; see workload/join_query.h).
//
// The router does not own the Engine; it is a cheap value to construct per
// call or to keep around, and is itself stateless and const.
// ---------------------------------------------------------------------------
class QueryRouter {
 public:
  explicit QueryRouter(const Engine* engine) : engine_(engine) {}

  // Cross-shard routing (serving::Cluster): `route` maps a table name to
  // the Engine shard that owns it — the router fans each planned per-table
  // subquery batch out to its owner, so one join query can span shards.
  // `config_source` supplies the shared engine-level knobs (the exec
  // estimate engine); every shard of a cluster is built from one
  // EngineConfig, so any shard serves. A resolver returning nullptr for a
  // table falls back to `config_source`, whose registry lookup then yields
  // the standard [plan:unknown-table] error.
  QueryRouter(const Engine* config_source,
              std::function<const Engine*(const std::string&)> route)
      : engine_(config_source), route_(std::move(route)) {}

  // Validates and plans `query` against the registered tables: resolves
  // every referenced table and column, type-checks the equi-join columns,
  // checks the join graph is a tree, splits the predicates into canonical
  // per-table subqueries and orients the edges away from the root. Fails
  // with a typed plan error (see PlanError) — never with ad-hoc strings.
  StatusOr<JoinPlan> Plan(const workload::JoinQuery& query) const;

  // Plans and executes one join-cardinality estimate under the named
  // combiner ("" = kDefaultJoinCombiner). FailedPrecondition if a
  // predicated table has no model attached or its model kind does not
  // serve cardinality estimates.
  StatusOr<double> EstimateCardinality(const workload::JoinQuery& query,
                                       const std::string& combiner = {}) const;

  // Batch variant: answers[i] corresponds to batch.queries[i], each
  // bit-identical to the scalar call for that query. Fails fast on the
  // first invalid query; the error is prefixed "join query <i>: ".
  StatusOr<std::vector<double>> EstimateCardinalityBatch(
      const workload::JoinQueryBatch& batch,
      const std::string& combiner = {}) const;

 private:
  // The engine owning `table`: the resolver's answer under cross-shard
  // routing, else the single engine this router was built on.
  const Engine* Route(const std::string& table) const;

  const Engine* engine_;
  std::function<const Engine*(const std::string&)> route_;
};

}  // namespace ddup::api

#endif  // DDUP_API_ROUTER_H_
