#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/status.h"

namespace ddup {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DDUP_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int Rng::Categorical(const std::vector<double>& weights) {
  DDUP_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  DDUP_CHECK_MSG(total > 0.0, "categorical weights must have positive mass");
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::Zipf(int n, double s) {
  DDUP_CHECK(n > 0);
  std::vector<double> w(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    w[static_cast<size_t>(i)] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return Categorical(w);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  DDUP_CHECK(k >= 0 && k <= n);
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n - 1);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

std::vector<int64_t> Rng::SampleWithReplacement(int64_t n, int64_t k) {
  DDUP_CHECK(n > 0 && k >= 0);
  std::vector<int64_t> idx(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = UniformInt(0, n - 1);
  return idx;
}

Rng Rng::Fork() { return Rng(engine_()); }

Rng Rng::ForStream(uint64_t seed, uint64_t stream) {
  // SplitMix64 finalizer over each key in turn: cheap, and small key deltas
  // (adjacent seeds, similar fingerprints) land in unrelated seeds.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  return Rng(mix(mix(seed) ^ stream));
}

}  // namespace ddup
