#ifndef DDUP_COMMON_RNG_H_
#define DDUP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ddup {

// Deterministic random source used by every stochastic component in the
// library. All samplers take an explicit Rng so experiments are reproducible
// run-to-run and seed-to-seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);
  // Standard (or scaled) normal deviate.
  double Normal(double mean = 0.0, double stddev = 1.0);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Bernoulli draw with probability p of true.
  bool Bernoulli(double p);
  // Index in [0, weights.size()) drawn proportionally to `weights`
  // (non-negative, not all zero).
  int Categorical(const std::vector<double>& weights);
  // Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  int Zipf(int n, double s);

  // k indices sampled from [0, n) without replacement (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);
  // k indices sampled from [0, n) with replacement (bootstrap draw).
  std::vector<int64_t> SampleWithReplacement(int64_t n, int64_t k);
  // In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Derives an independent child generator; used to hand sub-components
  // their own streams without coupling their consumption patterns.
  Rng Fork();

  // Stateless derivation of a child stream from (seed, stream) — no
  // generator instance involved, so the result depends only on the two keys.
  // Estimators use this to give every query its own deterministic stream
  // (stream = the query fingerprint), which is what makes estimates
  // independent of batch size, batch position and call history.
  static Rng ForStream(uint64_t seed, uint64_t stream);

  std::mt19937_64& engine() { return engine_; }
  // Const view of the engine; the io layer serializes the exact generator
  // state so a restored component continues the identical random stream.
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ddup

#endif  // DDUP_COMMON_RNG_H_
