#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace ddup {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  DDUP_CHECK(!xs.empty());
  DDUP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50.0); }

double NormalCdf(double x, double mean, double stddev) {
  DDUP_CHECK(stddev > 0.0);
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
}

double NormalPdf(double x, double mean, double stddev) {
  DDUP_CHECK(stddev > 0.0);
  double z = (x - mean) / stddev;
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi / stddev * std::exp(-0.5 * z * z);
}

double TruncatedNormalPartialExpectation(double mean, double stddev, double lo,
                                         double hi) {
  // E[Y * 1{lo <= Y <= hi}] for Y ~ N(mean, stddev^2):
  //   mean * (Phi(b) - Phi(a)) - stddev * (phi(b) - phi(a))
  // with a=(lo-mean)/stddev, b=(hi-mean)/stddev and standard phi/Phi.
  DDUP_CHECK(stddev > 0.0);
  double a = (lo - mean) / stddev;
  double b = (hi - mean) / stddev;
  double mass = NormalCdf(b) - NormalCdf(a);
  double density_diff = NormalPdf(b) - NormalPdf(a);
  return mean * mass - stddev * density_diff;
}

double LogSumExp(const std::vector<double>& xs) {
  DDUP_CHECK(!xs.empty());
  double mx = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  DDUP_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace ddup
