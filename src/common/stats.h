#ifndef DDUP_COMMON_STATS_H_
#define DDUP_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace ddup {

// Arithmetic mean; 0.0 for an empty vector.
double Mean(const std::vector<double>& xs);

// Population standard deviation; 0.0 for fewer than two elements.
double StdDev(const std::vector<double>& xs);

// Unbiased sample standard deviation (n-1 denominator); 0.0 for fewer than
// two elements. Preferred when the vector is a small bootstrap/replicate
// sample rather than the full population.
double SampleStdDev(const std::vector<double>& xs);

// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double Percentile(std::vector<double> xs, double p);

// Median shorthand.
double Median(std::vector<double> xs);

// Standard normal CDF via erf.
double NormalCdf(double x, double mean = 0.0, double stddev = 1.0);

// Standard normal PDF.
double NormalPdf(double x, double mean = 0.0, double stddev = 1.0);

// Mean of a normal(mean, stddev) truncated to [lo, hi], times the mass of
// the truncation interval: returns E[Y * 1{lo <= Y <= hi}]. Used by the MDN
// AQP engine to answer SUM queries analytically.
double TruncatedNormalPartialExpectation(double mean, double stddev, double lo,
                                         double hi);

// log(sum_i exp(xs[i])) computed stably.
double LogSumExp(const std::vector<double>& xs);

// Pearson correlation of two equal-length vectors; 0.0 when degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace ddup

#endif  // DDUP_COMMON_STATS_H_
