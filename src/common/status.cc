#include "common/status.h"

namespace ddup {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "DDUP_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace ddup
