#ifndef DDUP_COMMON_STATUS_H_
#define DDUP_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace ddup {

// Lightweight Status / StatusOr pair in the RocksDB/Arrow idiom: library code
// never throws; fallible operations return Status (or StatusOr<T>) and
// programmer errors abort via DDUP_CHECK.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
  // A bounded resource is saturated and the call was refused, not failed:
  // retrying after the resource drains is expected to succeed (the
  // admission layer's shed decision, serving/admission.h).
  kResourceExhausted,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either an OK status and a value, or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl.
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_ = Status::OK();
  T value_{};
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace ddup

// Aborts with a diagnostic if `cond` is false. Used for programmer errors
// (out-of-bounds, shape mismatches), not for data-dependent failures.
#define DDUP_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::ddup::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                             \
  } while (0)

#define DDUP_CHECK_MSG(cond, msg)                                    \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::ddup::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                \
  } while (0)

// Propagates a non-OK Status from the current function.
#define DDUP_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::ddup::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

#endif  // DDUP_COMMON_STATUS_H_
