#include "common/stopwatch.h"

namespace ddup {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

}  // namespace ddup
