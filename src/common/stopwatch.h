#ifndef DDUP_COMMON_STOPWATCH_H_
#define DDUP_COMMON_STOPWATCH_H_

#include <chrono>

namespace ddup {

// Wall-clock stopwatch used to report update/detection overheads
// (paper Tables 10 and 11).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();
  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ddup

#endif  // DDUP_COMMON_STOPWATCH_H_
