#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/status.h"

namespace ddup {

namespace {

thread_local bool t_in_pool_work = false;

}  // namespace

int DefaultThreadCount() {
  if (const char* env = std::getenv("DDUP_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads > 0 ? num_threads : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(n - 1));
  for (int i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    t_in_pool_work = true;
    task();
    t_in_pool_work = false;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t chunk,
                             const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  DDUP_CHECK(chunk > 0);
  const int64_t nchunks = (end - begin + chunk - 1) / chunk;
  // Serial path: no workers, nested call from pool work, or a single chunk.
  if (workers_.empty() || InWorker() || nchunks == 1) {
    for (int64_t c = 0; c < nchunks; ++c) {
      int64_t lo = begin + c * chunk;
      body(lo, std::min(end, lo + chunk));
    }
    return;
  }

  // Shared claim state. `body` lives on the caller's stack; the caller blocks
  // until every chunk is done, so the reference stays valid.
  struct ForState {
    std::atomic<int64_t> next{0};
    int64_t begin = 0, end = 0, chunk = 0, nchunks = 0;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t done = 0;
  };
  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->nchunks = nchunks;
  state->body = &body;

  auto drain = [state]() {
    int64_t completed = 0;
    for (;;) {
      int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->nchunks) break;
      int64_t lo = state->begin + c * state->chunk;
      (*state->body)(lo, std::min(state->end, lo + state->chunk));
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done += completed;
      if (state->done == state->nchunks) state->done_cv.notify_all();
    }
  };

  // One drain task per worker; each claims chunks until none remain.
  size_t helpers = std::min(workers_.size(),
                            static_cast<size_t>(nchunks - 1));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) tasks_.emplace_back(drain);
  }
  cv_.notify_all();

  // The caller participates too, then waits for stragglers.
  t_in_pool_work = true;
  drain();
  t_in_pool_work = false;
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->nchunks; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

bool ThreadPool::InWorker() { return t_in_pool_work; }

TaskExecutor::TaskExecutor(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  DDUP_CHECK_MSG(pending_ == 0, "TaskExecutor lost tasks at shutdown");
}

void TaskExecutor::PushReady(const std::string& key, int priority) {
  ready_[priority].push_back(key);
}

void TaskExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A pause holds workers here; shutdown overrides it so the destructor's
    // graceful drain still runs every queued task.
    work_cv_.wait(lock, [this] {
      return shutdown_ || (!paused_ && !ready_.empty());
    });
    if (ready_.empty()) {
      if (shutdown_) {
        // No runnable strand. A strand whose task is still running on
        // another worker requeues itself when it finishes, and that worker
        // re-checks the predicate — so exiting here never strands work.
        return;
      }
      continue;  // woken by Resume with nothing ready
    }
    // Highest-priority bucket first (ready_ is ordered greatest-first),
    // FIFO among its strands.
    auto bucket = ready_.begin();
    std::string key = std::move(bucket->second.front());
    bucket->second.pop_front();
    if (bucket->second.empty()) ready_.erase(bucket);
    std::packaged_task<void()> task;
    {
      Strand& strand = strands_[key];
      task = std::move(strand.queue.front());
      strand.queue.pop_front();
      strand.running = true;
    }
    lock.unlock();
    task();
    lock.lock();
    // Re-find: Submit may have rehashed the map while we were unlocked.
    auto it = strands_.find(key);
    it->second.running = false;
    if (!it->second.queue.empty()) {
      PushReady(key, it->second.priority);
      work_cv_.notify_one();
    } else {
      strands_.erase(it);
    }
    --pending_;
    idle_cv_.notify_all();
  }
}

std::future<void> TaskExecutor::Submit(const std::string& key,
                                       std::function<void()> fn) {
  return Submit(key, 0, std::move(fn));
}

std::future<void> TaskExecutor::Submit(const std::string& key, int priority,
                                       std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DDUP_CHECK_MSG(!shutdown_, "TaskExecutor::Submit after shutdown");
    Strand& strand = strands_[key];
    strand.queue.push_back(std::move(task));
    strand.priority = priority;
    ++pending_;
    if (!strand.running && strand.queue.size() == 1) {
      PushReady(key, priority);
    }
  }
  work_cv_.notify_one();
  return future;
}

void TaskExecutor::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void TaskExecutor::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void TaskExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskExecutor::DrainKey(const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [&] { return strands_.find(key) == strands_.end(); });
}

int64_t TaskExecutor::backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

int64_t TaskExecutor::backlog(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = strands_.find(key);
  if (it == strands_.end()) return 0;
  return static_cast<int64_t>(it->second.queue.size()) +
         (it->second.running ? 1 : 0);
}

double ParallelChunkMean(ThreadPool& pool, int64_t n, int64_t chunk_rows,
                         const std::function<double(int64_t, int64_t)>& chunk_mean) {
  DDUP_CHECK(n > 0 && chunk_rows > 0);
  const int64_t nchunks = (n + chunk_rows - 1) / chunk_rows;
  std::vector<double> partial(static_cast<size_t>(nchunks), 0.0);
  pool.ParallelFor(0, nchunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      int64_t row_lo = c * chunk_rows;
      int64_t row_hi = std::min(n, row_lo + chunk_rows);
      partial[static_cast<size_t>(c)] = chunk_mean(row_lo, row_hi);
    }
  });
  // Weighted combine in chunk order: bit-identical for any pool size.
  double total = 0.0;
  for (int64_t c = 0; c < nchunks; ++c) {
    int64_t row_lo = c * chunk_rows;
    int64_t row_hi = std::min(n, row_lo + chunk_rows);
    total += partial[static_cast<size_t>(c)] *
             static_cast<double>(row_hi - row_lo);
  }
  return total / static_cast<double>(n);
}

double GlobalChunkMean(int64_t n,
                       const std::function<double(int64_t, int64_t)>& chunk_mean) {
  return ParallelChunkMean(ThreadPool::Global(), n, kLossChunkRows, chunk_mean);
}

}  // namespace ddup
