#ifndef DDUP_COMMON_THREAD_POOL_H_
#define DDUP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddup {

// Small fixed-size thread pool used by the row-parallel loss paths and the
// detector's bootstrap loop. Design constraints, in order:
//   1. Determinism: ParallelFor never changes *what* is computed, only *who*
//      computes it. Work is split into caller-specified chunks whose bounds
//      depend only on (begin, end, chunk) — never on the pool size — so any
//      caller that combines per-chunk results in chunk order gets bit-identical
//      output for pool sizes 1 and N.
//   2. No nested fan-out: a ParallelFor issued from inside a worker runs
//      inline and serially (the detector parallelizes over bootstrap
//      iterations; the per-iteration loss must not recursively fan out).
//   3. The calling thread participates as a worker, so ThreadPool(1) spawns
//      no threads at all and is exactly the serial code path.
class ThreadPool {
 public:
  // num_threads <= 0 picks a default: $DDUP_THREADS if set, else
  // std::thread::hardware_concurrency() (min 1). A pool of size k spawns
  // k - 1 worker threads; the caller is the k-th.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total worker count including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(lo, hi) over [begin, end) split into chunks of `chunk`
  // elements (the last chunk may be short). Blocks until every chunk has
  // completed. Chunks are claimed dynamically but their bounds are a pure
  // function of (begin, end, chunk).
  void ParallelFor(int64_t begin, int64_t end, int64_t chunk,
                   const std::function<void(int64_t, int64_t)>& body);

  // Shared process-wide pool (size from $DDUP_THREADS or the hardware).
  static ThreadPool& Global();

  // True on a thread that is currently executing pool work (any pool).
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Deterministic parallel mean: splits [0, n) into fixed chunks of
// `chunk_rows`, evaluates chunk_mean(lo, hi) for each (possibly in
// parallel), and combines the per-chunk means weighted by chunk length *in
// chunk order*. The result is bit-identical for any pool size because both
// the chunk bounds and the combination order are independent of it.
double ParallelChunkMean(ThreadPool& pool, int64_t n, int64_t chunk_rows,
                         const std::function<double(int64_t, int64_t)>& chunk_mean);

// The chunk size every model's AverageLoss shares. A pure constant — never
// derived from the pool size — so chunk bounds, and therefore the FP
// combine, are thread-count independent for all models at once.
inline constexpr int64_t kLossChunkRows = 512;

// ParallelChunkMean over ThreadPool::Global() with the standard loss
// chunking: the one-liner the chunked AverageLoss paths call.
double GlobalChunkMean(int64_t n,
                       const std::function<double(int64_t, int64_t)>& chunk_mean);

}  // namespace ddup

#endif  // DDUP_COMMON_THREAD_POOL_H_
