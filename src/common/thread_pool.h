#ifndef DDUP_COMMON_THREAD_POOL_H_
#define DDUP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ddup {

// The process-wide default thread count: $DDUP_THREADS if set and positive,
// else std::thread::hardware_concurrency() (min 1). Shared by ThreadPool
// and the Engine's background-worker auto mode, so one knob pins every
// threading decision in the process (DDUP_THREADS=1 == fully serial).
int DefaultThreadCount();

// Small fixed-size thread pool used by the row-parallel loss paths and the
// detector's bootstrap loop. Design constraints, in order:
//   1. Determinism: ParallelFor never changes *what* is computed, only *who*
//      computes it. Work is split into caller-specified chunks whose bounds
//      depend only on (begin, end, chunk) — never on the pool size — so any
//      caller that combines per-chunk results in chunk order gets bit-identical
//      output for pool sizes 1 and N.
//   2. No nested fan-out: a ParallelFor issued from inside a worker runs
//      inline and serially (the detector parallelizes over bootstrap
//      iterations; the per-iteration loss must not recursively fan out).
//   3. The calling thread participates as a worker, so ThreadPool(1) spawns
//      no threads at all and is exactly the serial code path.
class ThreadPool {
 public:
  // num_threads <= 0 picks a default: $DDUP_THREADS if set, else
  // std::thread::hardware_concurrency() (min 1). A pool of size k spawns
  // k - 1 worker threads; the caller is the k-th.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total worker count including the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs body(lo, hi) over [begin, end) split into chunks of `chunk`
  // elements (the last chunk may be short). Blocks until every chunk has
  // completed. Chunks are claimed dynamically but their bounds are a pure
  // function of (begin, end, chunk).
  void ParallelFor(int64_t begin, int64_t end, int64_t chunk,
                   const std::function<void(int64_t, int64_t)>& body);

  // Shared process-wide pool (size from $DDUP_THREADS or the hardware).
  static ThreadPool& Global();

  // True on a thread that is currently executing pool work (any pool).
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// A task-queue executor with per-key FIFO ordering ("strands") and graceful
// drain, built for background work that must not reorder within a logical
// stream: the Engine (src/api) hands every table's micro-batch updates to
// one executor keyed by table name, so updates for one table never overlap
// or reorder (the final model state is the same as a serial replay of that
// table's stream) while distinct tables update concurrently.
//
// Contrast with ThreadPool above: ThreadPool is a fork-join helper for
// data-parallel loops where the *caller* blocks; TaskExecutor is
// fire-and-forget — Submit returns a future immediately and dedicated
// worker threads run the task later. Determinism story: the executor never
// changes what a strand computes, only when; per-strand results are
// bit-identical to serial execution because strand tasks never overlap.
class TaskExecutor {
 public:
  // Spawns `num_threads` dedicated workers (clamped to >= 1). Unlike
  // ThreadPool the caller does not participate, so even a 1-thread executor
  // makes Submit non-blocking.
  explicit TaskExecutor(int num_threads);
  // Graceful shutdown: finishes every queued task, then joins the workers.
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` on strand `key` and returns immediately. Tasks sharing a
  // key run in submission order and never overlap; tasks on distinct keys
  // run concurrently (worker count permitting). The future becomes ready
  // when the task finishes. Must not be called during/after destruction.
  std::future<void> Submit(const std::string& key, std::function<void()> fn);

  // Priority variant: when several strands are runnable, workers pick the
  // highest-priority one first (FIFO among strands sharing a priority, FIFO
  // within a strand as always). The plain overload submits at priority 0.
  // A strand's priority is the one carried by its latest Submit — callers
  // that care (the Engine's per-table update priorities) keep it constant
  // per key. Priorities starve fairly: a lower-priority strand runs only
  // when no higher-priority strand is runnable, so hot tables get update
  // workers first under saturation (DESIGN.md §15).
  std::future<void> Submit(const std::string& key, int priority,
                           std::function<void()> fn);

  // Pauses dispatch: running tasks finish, but workers pick no new strand
  // until Resume. Submit/backlog stay usable while paused. Destruction
  // overrides a pause (the graceful drain still runs every queued task).
  // Drain/DrainKey while paused block until Resume — pairing them is on
  // the caller. Built for deterministic admission/priority tests and
  // maintenance windows; not part of any hot path.
  void Pause();
  void Resume();

  // Blocks until every task submitted before the call has finished. Tasks
  // submitted concurrently with Drain may or may not be waited for.
  void Drain();
  // Drain for a single strand: blocks until `key` has no queued or running
  // task.
  void DrainKey(const std::string& key);

  // Queued + running tasks, over the whole executor or one strand.
  int64_t backlog() const;
  int64_t backlog(const std::string& key) const;

 private:
  // Invariant: a strand is present in strands_ iff it has queued tasks or a
  // running one; it is in ready_ exactly once iff it has queued tasks and
  // none running. Workers pull the front strand of the highest-priority
  // ready bucket, run ONE task, then requeue the strand at the back of its
  // bucket — round-robin across strands of one priority, strict precedence
  // across priorities, FIFO within one strand.
  struct Strand {
    std::deque<std::packaged_task<void()>> queue;
    bool running = false;
    int priority = 0;  // latest Submit wins; used at every ready insertion
  };

  void WorkerLoop();
  // Caller must hold mu_. Appends `key` to its priority bucket.
  void PushReady(const std::string& key, int priority);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: ready_ non-empty or shutdown
  std::condition_variable idle_cv_;  // Drain/DrainKey: progress signal
  std::unordered_map<std::string, Strand> strands_;
  // Priority buckets, highest first; a bucket is present iff non-empty.
  std::map<int, std::deque<std::string>, std::greater<int>> ready_;
  int64_t pending_ = 0;  // queued + running, all strands
  bool shutdown_ = false;
  bool paused_ = false;
  std::vector<std::thread> workers_;
};

// Deterministic parallel mean: splits [0, n) into fixed chunks of
// `chunk_rows`, evaluates chunk_mean(lo, hi) for each (possibly in
// parallel), and combines the per-chunk means weighted by chunk length *in
// chunk order*. The result is bit-identical for any pool size because both
// the chunk bounds and the combination order are independent of it.
double ParallelChunkMean(ThreadPool& pool, int64_t n, int64_t chunk_rows,
                         const std::function<double(int64_t, int64_t)>& chunk_mean);

// The chunk size every model's AverageLoss shares. A pure constant — never
// derived from the pool size — so chunk bounds, and therefore the FP
// combine, are thread-count independent for all models at once.
inline constexpr int64_t kLossChunkRows = 512;

// ParallelChunkMean over ThreadPool::Global() with the standard loss
// chunking: the one-liner the chunked AverageLoss paths call.
double GlobalChunkMean(int64_t n,
                       const std::function<double(int64_t, int64_t)>& chunk_mean);

}  // namespace ddup

#endif  // DDUP_COMMON_THREAD_POOL_H_
