#include "core/controller.h"

#include "common/status.h"
#include "common/stopwatch.h"
#include "storage/sampling.h"

namespace ddup::core {

DdupController::DdupController(UpdatableModel* model, storage::Table base_data,
                               ControllerConfig config)
    : model_(model),
      data_(std::move(base_data)),
      config_(config),
      detector_(config.detector),
      rng_(config.seed) {
  DDUP_CHECK(model_ != nullptr);
  DDUP_CHECK(data_.num_rows() > 0);
  detector_.Fit(*model_, data_);
}

InsertionReport DdupController::HandleInsertion(const storage::Table& batch) {
  DDUP_CHECK(batch.num_rows() > 0);
  InsertionReport report;
  report.old_rows = data_.num_rows();
  report.new_rows = batch.num_rows();

  Stopwatch detect_timer;
  report.test = detector_.Test(*model_, batch);
  report.detect_seconds = detect_timer.ElapsedSeconds();

  // Metadata (frequency tables, cardinalities) always tracks the data state,
  // whatever happens to the weights (§2.2).
  model_->AbsorbMetadata(batch);

  Stopwatch update_timer;
  if (report.test.is_ood) {
    report.action = UpdateAction::kDistill;
    storage::Table transfer_set =
        storage::SampleFraction(data_, rng_, config_.policy.transfer_fraction);
    // Resolve the Eq. 5 weighting against the FULL old-data size here — the
    // model only sees the (much smaller) transfer set and would otherwise
    // over-weight the new batch (DESIGN.md §6.1).
    DistillConfig distill = config_.policy.distill;
    distill.alpha = ResolveAlpha(distill, report.old_rows, report.new_rows);
    model_->DistillUpdate(transfer_set, batch, distill);
  } else if (config_.policy.finetune_on_ind) {
    report.action = UpdateAction::kFineTune;
    double lr = ScaledFineTuneLr(config_.policy, report.old_rows,
                                 report.new_rows);
    model_->FineTune(batch, lr, config_.policy.finetune_epochs);
  } else {
    report.action = UpdateAction::kKeepStale;
  }
  report.update_seconds = update_timer.ElapsedSeconds();

  data_.Append(batch);

  // Refresh the offline phase against the new model + data state so the next
  // insertion is tested under the updated null distribution.
  Stopwatch offline_timer;
  detector_.Fit(*model_, data_);
  report.offline_refresh_seconds = offline_timer.ElapsedSeconds();
  return report;
}

}  // namespace ddup::core
