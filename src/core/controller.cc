#include "core/controller.h"

#include "common/status.h"
#include "common/stopwatch.h"
#include "core/detector_zoo.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "storage/sampling.h"

namespace ddup::core {

namespace {
// Version 2 prepends the detector kind (a string) to the detector state so
// a snapshot restores the same detector that wrote it.
constexpr uint32_t kControllerStateVersion = 2;

// Constructor-path factory: an unknown kind is a programmer error here —
// the Status-returning surfaces (Engine::CreateTable, ResumeFromState)
// validate the kind before a controller is ever built.
std::unique_ptr<DriftDetector> MustMakeDetector(const DetectorConfig& config) {
  auto detector = MakeDriftDetector(config);
  DDUP_CHECK_MSG(detector.ok(), "unknown drift detector kind");
  return std::move(detector).value();
}
}  // namespace

DdupController::DdupController(UpdatableModel* model, storage::Table base_data,
                               ControllerConfig config)
    : model_(model),
      data_(std::move(base_data)),
      config_(std::move(config)),
      detector_(MustMakeDetector(config_.detector)),
      rng_(config_.seed) {
  DDUP_CHECK(model_ != nullptr);
  DDUP_CHECK(data_.num_rows() > 0);
  detector_->Fit(*model_, data_);
  RefreshStats();
}

void DdupController::RefreshStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.rows = data_.num_rows();
  stats_.bootstrap_mean = detector_->bootstrap_mean();
  stats_.bootstrap_std = detector_->bootstrap_std();
}

LoopStats DdupController::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

DdupController::DdupController(UpdatableModel* model, ControllerConfig config,
                               ResumeTag)
    : model_(model),
      config_(std::move(config)),
      detector_(MustMakeDetector(config_.detector)),
      rng_(config_.seed) {
  DDUP_CHECK(model_ != nullptr);
}

Status DdupController::SaveState(io::Serializer* out) const {
  out->WriteU32(kControllerStateVersion);
  out->WriteString(detector_->kind());
  DDUP_RETURN_IF_ERROR(detector_->SaveState(out));
  out->WriteRng(rng_);
  out->WriteTable(data_);
  return Status::OK();
}

StatusOr<std::unique_ptr<DdupController>> DdupController::ResumeFromState(
    UpdatableModel* model, ControllerConfig config, io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kControllerStateVersion) {
    return Status::InvalidArgument("unsupported controller state version " +
                                   std::to_string(version));
  }
  std::string kind = in->ReadString();
  if (!in->ok()) return in->status();
  if (!HasDriftDetectorKind(kind)) {
    return Status::InvalidArgument("snapshot names unknown detector kind '" +
                                   kind + "'");
  }
  // The snapshot wins: restore the detector that wrote the state, whatever
  // the caller's config says (its knobs round-trip inside the state).
  config.detector.kind = kind;
  std::unique_ptr<DdupController> controller(
      new DdupController(model, std::move(config), ResumeTag{}));
  Status st = controller->detector_->LoadState(in);
  if (!st.ok()) return st;
  in->ReadRng(&controller->rng_);
  controller->data_ = in->ReadTable();
  if (!in->ok()) return in->status();
  if (!controller->detector_->fitted() || controller->data_.num_rows() <= 0) {
    return Status::InvalidArgument("controller snapshot is not resumable");
  }
  controller->RefreshStats();
  return controller;
}

Status DdupController::SaveSnapshot(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<DdupController>> DdupController::Resume(
    UpdatableModel* model, ControllerConfig config, const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<DdupController>> controller =
      ResumeFromState(model, config, &in);
  if (!controller.ok()) return controller;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return controller;
}

StatusOr<InsertionReport> DdupController::HandleInsertion(
    const storage::Table& batch) {
  if (batch.num_rows() <= 0) {
    return Status::InvalidArgument("insertion batch is empty");
  }
  DDUP_RETURN_IF_ERROR(storage::CheckSchemaCompatible(data_, batch));
  InsertionReport report;
  report.old_rows = data_.num_rows();
  report.new_rows = batch.num_rows();

  Stopwatch detect_timer;
  report.test = detector_->Test(*model_, batch);
  report.detect_seconds = detect_timer.ElapsedSeconds();

  // Metadata (frequency tables, cardinalities) always tracks the data state,
  // whatever happens to the weights (§2.2).
  model_->AbsorbMetadata(batch);

  Stopwatch update_timer;
  if (report.test.is_ood) {
    report.action = UpdateAction::kDistill;
    storage::Table transfer_set =
        storage::SampleFraction(data_, rng_, config_.policy.transfer_fraction);
    // Resolve the Eq. 5 weighting against the FULL old-data size here — the
    // model only sees the (much smaller) transfer set and would otherwise
    // over-weight the new batch (DESIGN.md §6.1).
    DistillConfig distill = config_.policy.distill;
    distill.alpha = ResolveAlpha(distill, report.old_rows, report.new_rows);
    model_->DistillUpdate(transfer_set, batch, distill);
  } else if (config_.policy.finetune_on_ind) {
    report.action = UpdateAction::kFineTune;
    double lr = ScaledFineTuneLr(config_.policy, report.old_rows,
                                 report.new_rows);
    model_->FineTune(batch, lr, config_.policy.finetune_epochs);
  } else {
    report.action = UpdateAction::kKeepStale;
  }
  report.update_seconds = update_timer.ElapsedSeconds();

  data_.Append(batch);

  // Refresh the offline phase against the new model + data state so the next
  // insertion is tested under the updated null distribution.
  Stopwatch offline_timer;
  detector_->Fit(*model_, data_);
  report.offline_refresh_seconds = offline_timer.ElapsedSeconds();
  RefreshStats();
  return report;
}

}  // namespace ddup::core
