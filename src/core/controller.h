#ifndef DDUP_CORE_CONTROLLER_H_
#define DDUP_CORE_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "core/detector.h"
#include "core/interfaces.h"
#include "core/policies.h"
#include "storage/table.h"

namespace ddup::core {

struct ControllerConfig {
  DetectorConfig detector;
  PolicyConfig policy;
  uint64_t seed = 31;
};

// Everything that happened for one insertion (Figure 1's full loop).
struct InsertionReport {
  DriftTestResult test;
  UpdateAction action = UpdateAction::kKeepStale;
  double detect_seconds = 0.0;          // online test time
  double update_seconds = 0.0;          // fine-tune / distill time
  double offline_refresh_seconds = 0.0; // bootstrap refresh time
  int64_t old_rows = 0;
  int64_t new_rows = 0;
  // Filled by the serving layer (src/api) when the batch ran on a
  // background update worker: the per-table update backlog observed when
  // the worker picked the batch up (this batch included), and the time the
  // batch waited in the worker queue. Zero on the synchronous path.
  int64_t backlog_batches = 0;
  double queue_seconds = 0.0;
};

// The read-only serving surface of a controller, separated from the
// mutable training state so concurrent readers (Engine::Report, monitoring
// threads) never race a HandleInsertion running on an update worker. The
// snapshot is refreshed under an internal mutex at the end of every
// insertion (and at construction/resume), so readers see either the
// pre-batch or the post-batch state — never a torn mix.
struct LoopStats {
  int64_t rows = 0;               // accumulated data size
  double bootstrap_mean = 0.0;    // detector moments after the last refresh
  double bootstrap_std = 0.0;
};

// Orchestrates DDUp per §2.2: on every insertion batch, run the online
// two-sample test against the bootstrapped threshold; if in-distribution,
// fine-tune with the size-scaled learning rate (or keep the model stale);
// if OOD, run the sequential self-distillation update with a transfer set
// sampled from the accumulated old data. After updating, the offline
// bootstrap phase is refreshed so the next insertion tests against the new
// model/data state.
class DdupController {
 public:
  // Runs the offline phase on construction. `model` must already be trained
  // on `base_data` and must outlive the controller.
  DdupController(UpdatableModel* model, storage::Table base_data,
                 ControllerConfig config);

  // Runs the full loop for one insertion batch. The batch is validated
  // before it can corrupt any state: an empty batch or one whose schema
  // differs from the accumulated table (column count/name/type/dictionary)
  // returns InvalidArgument and leaves the model, detector and data
  // untouched.
  StatusOr<InsertionReport> HandleInsertion(const storage::Table& batch);

  // Thread-safe snapshot of the read-only serving stats. This is the only
  // accessor that may be called concurrently with HandleInsertion; data(),
  // detector() and model() below hand out references into the mutable
  // training state and require external serialization (the Engine calls
  // them only from the table's FIFO update strand or after a drain).
  LoopStats stats() const;

  const storage::Table& data() const { return data_; }
  const DriftDetector& detector() const { return *detector_; }
  UpdatableModel* model() { return model_; }

  // Persists the resumable loop state — detector kind and snapshot (fitted
  // reference + any sequential state + online RNG), controller RNG, and the
  // accumulated data table — so a detect→update cycle can continue
  // mid-stream after a restart. The model itself is checkpointed separately
  // (its own SaveToFile); pair the two writes to capture a consistent
  // system state.
  Status SaveSnapshot(const std::string& path) const;
  // Rebuilds a controller from a snapshot without re-running the offline
  // bootstrap phase. `model` must be the restored counterpart of the model
  // that was live when the snapshot was taken. `config.policy` applies as
  // given; the detector's kind, config and fitted state come from the
  // snapshot (the snapshot wins over config.detector.kind).
  static StatusOr<std::unique_ptr<DdupController>> Resume(
      UpdatableModel* model, ControllerConfig config, const std::string& path);
  static constexpr const char* kCheckpointKind = "controller";

  // In-memory counterparts of SaveSnapshot/Resume, used by the Engine
  // (src/api) to embed controller state as one section of a multi-table
  // manifest instead of a standalone file. SaveSnapshot/Resume are thin
  // wrappers over these.
  Status SaveState(io::Serializer* out) const;
  static StatusOr<std::unique_ptr<DdupController>> ResumeFromState(
      UpdatableModel* model, ControllerConfig config, io::Deserializer* in);

 private:
  // Resume path: adopts the snapshot state instead of running Fit.
  struct ResumeTag {};
  DdupController(UpdatableModel* model, ControllerConfig config, ResumeTag);

  // Re-publishes stats_ from the current data/detector state.
  void RefreshStats();

  UpdatableModel* model_;
  storage::Table data_;
  ControllerConfig config_;
  std::unique_ptr<DriftDetector> detector_;  // built by MakeDriftDetector
  Rng rng_;

  mutable std::mutex stats_mu_;
  LoopStats stats_;  // guarded by stats_mu_
};

}  // namespace ddup::core

#endif  // DDUP_CORE_CONTROLLER_H_
