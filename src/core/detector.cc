#include "core/detector.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/status.h"
#include "storage/sampling.h"

namespace ddup::core {

namespace {
int64_t SampleSize(int64_t available, double fraction, int64_t floor_rows) {
  auto n = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(available)));
  n = std::max(n, std::min(floor_rows, available));
  return std::min(n, available);
}
}  // namespace

OodDetector::OodDetector(DetectorConfig config)
    : config_(config), rng_(config.seed) {
  DDUP_CHECK(config_.bootstrap_iterations >= 2);
  DDUP_CHECK(config_.old_sample_fraction > 0.0 &&
             config_.old_sample_fraction <= 1.0);
  DDUP_CHECK(config_.threshold_sigmas > 0.0);
}

void OodDetector::Fit(const LossModel& model, const storage::Table& old_data) {
  DDUP_CHECK(old_data.num_rows() > 0);
  int64_t sample_rows = SampleSize(old_data.num_rows(),
                                   config_.old_sample_fraction,
                                   config_.min_sample_rows);
  std::vector<double> losses;
  losses.reserve(static_cast<size_t>(config_.bootstrap_iterations));
  for (int i = 0; i < config_.bootstrap_iterations; ++i) {
    storage::Table sample = storage::BootstrapRows(old_data, rng_, sample_rows);
    losses.push_back(model.AverageLoss(sample));
  }
  bootstrap_mean_ = Mean(losses);
  bootstrap_std_ = StdDev(losses);
  // A perfectly deterministic model (or degenerate data) can yield zero
  // spread; keep a tiny floor so thresholds stay meaningful.
  bootstrap_std_ = std::max(bootstrap_std_, 1e-12);
  fitted_ = true;
}

OodDetector::TestResult OodDetector::Test(
    const LossModel& model, const storage::Table& new_batch) const {
  DDUP_CHECK_MSG(fitted_, "OodDetector::Test before Fit");
  DDUP_CHECK(new_batch.num_rows() > 0);
  int64_t sample_rows = SampleSize(new_batch.num_rows(),
                                   config_.new_sample_fraction,
                                   config_.min_sample_rows);
  storage::Table sample = storage::SampleRows(new_batch, rng_, sample_rows);

  TestResult res;
  res.new_loss = model.AverageLoss(sample);
  res.bootstrap_mean = bootstrap_mean_;
  res.bootstrap_std = bootstrap_std_;
  res.signed_statistic = res.new_loss - bootstrap_mean_;
  res.statistic = std::fabs(res.signed_statistic);
  res.threshold = config_.threshold_sigmas * bootstrap_std_;
  res.is_ood = config_.two_sided ? res.statistic > res.threshold
                                 : res.signed_statistic > res.threshold;
  return res;
}

}  // namespace ddup::core
