#include "core/detector.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "storage/sampling.h"

namespace ddup::core {

namespace {
constexpr uint32_t kDetectorStateVersion = 1;

int64_t SampleSize(int64_t available, double fraction, int64_t floor_rows) {
  auto n = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(available)));
  n = std::max(n, std::min(floor_rows, available));
  return std::min(n, available);
}
}  // namespace

LossReferenceDetector::LossReferenceDetector(DetectorConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  DDUP_CHECK(config_.bootstrap_iterations >= 2);
  DDUP_CHECK(config_.old_sample_fraction > 0.0 &&
             config_.old_sample_fraction <= 1.0);
  DDUP_CHECK(config_.threshold_sigmas > 0.0);
}

void LossReferenceDetector::Fit(const LossModel& model,
                                const storage::Table& old_data) {
  DDUP_CHECK(old_data.num_rows() > 0);
  int64_t sample_rows = SampleSize(old_data.num_rows(),
                                   config_.old_sample_fraction,
                                   config_.min_sample_rows);
  const int iters = config_.bootstrap_iterations;
  // Every iteration draws from its own child generator, forked sequentially
  // up front. losses[i] then depends only on iter_rngs[i], and the moment
  // estimates below combine the vector in index order — so the result is
  // bit-identical no matter how many threads execute the loop.
  std::vector<Rng> iter_rngs;
  iter_rngs.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) iter_rngs.push_back(rng_.Fork());

  std::vector<double> losses(static_cast<size_t>(iters), 0.0);
  auto run_range = [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      storage::Table sample = storage::BootstrapRows(
          old_data, iter_rngs[static_cast<size_t>(i)], sample_rows);
      losses[static_cast<size_t>(i)] = model.AverageLoss(sample);
    }
  };
  if (config_.num_threads > 0) {
    ThreadPool pool(config_.num_threads);
    pool.ParallelFor(0, iters, /*chunk=*/1, run_range);
  } else {
    ThreadPool::Global().ParallelFor(0, iters, /*chunk=*/1, run_range);
  }

  bootstrap_mean_ = Mean(losses);
  // Unbiased (n-1) estimator: bootstrap_iterations can legitimately be as
  // small as 2, where the population estimator's bias is worst.
  bootstrap_std_ = SampleStdDev(losses);
  // A perfectly deterministic model (or degenerate data) can yield zero
  // spread; keep a tiny floor so thresholds stay meaningful.
  bootstrap_std_ = std::max(bootstrap_std_, 1e-12);
  fitted_ = true;
  ResetSequentialState();
}

double LossReferenceDetector::SampledBatchLoss(const LossModel& model,
                                               const storage::Table& new_batch) {
  DDUP_CHECK(new_batch.num_rows() > 0);
  int64_t sample_rows = SampleSize(new_batch.num_rows(),
                                   config_.new_sample_fraction,
                                   config_.min_sample_rows);
  storage::Table sample = storage::SampleRows(new_batch, rng_, sample_rows);
  return model.AverageLoss(sample);
}

void LossReferenceDetector::SaveCommon(io::Serializer* out) const {
  out->WriteI32(config_.bootstrap_iterations);
  out->WriteDouble(config_.old_sample_fraction);
  out->WriteI64(config_.min_sample_rows);
  out->WriteDouble(config_.new_sample_fraction);
  out->WriteDouble(config_.threshold_sigmas);
  out->WriteBool(config_.two_sided);
  out->WriteU64(config_.seed);
  out->WriteI32(config_.num_threads);
  out->WriteDouble(bootstrap_mean_);
  out->WriteDouble(bootstrap_std_);
  out->WriteBool(fitted_);
  out->WriteRng(rng_);
}

void LossReferenceDetector::LoadCommon(io::Deserializer* in) {
  config_.bootstrap_iterations = in->ReadI32();
  config_.old_sample_fraction = in->ReadDouble();
  config_.min_sample_rows = in->ReadI64();
  config_.new_sample_fraction = in->ReadDouble();
  config_.threshold_sigmas = in->ReadDouble();
  config_.two_sided = in->ReadBool();
  config_.seed = in->ReadU64();
  config_.num_threads = in->ReadI32();
  bootstrap_mean_ = in->ReadDouble();
  bootstrap_std_ = in->ReadDouble();
  fitted_ = in->ReadBool();
  in->ReadRng(&rng_);
}

OodDetector::OodDetector(DetectorConfig config)
    : LossReferenceDetector(std::move(config)) {}

DriftTestResult OodDetector::Test(const LossModel& model,
                                  const storage::Table& new_batch) {
  DDUP_CHECK_MSG(fitted_, "OodDetector::Test before Fit");
  DriftTestResult res;
  res.new_loss = SampledBatchLoss(model, new_batch);
  res.bootstrap_mean = bootstrap_mean_;
  res.bootstrap_std = bootstrap_std_;
  res.signed_statistic = res.new_loss - bootstrap_mean_;
  res.statistic = std::fabs(res.signed_statistic);
  res.threshold = config_.threshold_sigmas * bootstrap_std_;
  res.is_ood = config_.two_sided ? res.statistic > res.threshold
                                 : res.signed_statistic > res.threshold;
  return res;
}

Status OodDetector::SaveState(io::Serializer* out) const {
  // Version 1 layout, unchanged since the pre-interface detector: version,
  // bootstrap config fields, moments, fitted flag, online RNG.
  out->WriteU32(kDetectorStateVersion);
  SaveCommon(out);
  return Status::OK();
}

Status OodDetector::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kDetectorStateVersion) {
    return Status::InvalidArgument("unsupported detector state version " +
                                   std::to_string(version));
  }
  LoadCommon(in);
  return in->status();
}

Status OodDetector::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<OodDetector> OodDetector::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  OodDetector detector;
  Status st = detector.LoadState(&in);
  if (!st.ok()) return st;
  st = in.Finish();
  if (!st.ok()) return st;
  return detector;
}

}  // namespace ddup::core
