#ifndef DDUP_CORE_DETECTOR_H_
#define DDUP_CORE_DETECTOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "core/interfaces.h"
#include "storage/table.h"

namespace ddup::core {

// Configuration shared by every drift detector. The bootstrap fields drive
// the loss-based two-sample OOD test (§3.3-3.4); the cusum_*/adwin_* knobs
// parameterize the sequential detectors in core/detector_zoo.h and are
// ignored by the others.
struct DetectorConfig {
  // Which detector MakeDriftDetector (core/detector_zoo.h) builds:
  // "bootstrap" (the paper's two-sample test, the default), "cusum",
  // "adwin", or "percolumn_cusum".
  std::string kind = "bootstrap";
  // Offline bootstrap iterations (the paper uses >1000; benches raise it).
  int bootstrap_iterations = 256;
  // Bootstrap sample size as a fraction of the old data (paper: 1% samples
  // with replacement), floored at min_sample_rows.
  double old_sample_fraction = 0.01;
  int64_t min_sample_rows = 32;
  // Online sample taken from the new batch, as a fraction of the batch
  // (paper: 10% without replacement), floored at min_sample_rows.
  double new_sample_fraction = 0.10;
  // Significance threshold = threshold_sigmas * bootstrap std (2 ~= p 0.05).
  double threshold_sigmas = 2.0;
  // Two-sided tests also flag suspiciously *low* loss; the paper's test is
  // effectively one-sided on loss increase (see DESIGN.md §6.3).
  bool two_sided = true;
  uint64_t seed = 29;
  // Threads for the bootstrap loop in Fit: 0 shares the process-wide
  // ThreadPool::Global(); > 0 runs on a dedicated pool of that size. The
  // fitted moments are bit-identical for every setting — each iteration owns
  // a pre-forked child Rng and results combine in iteration order.
  int num_threads = 0;
  // CUSUM (detector_zoo): per-batch z-scores accumulate into one-sided sums
  // S+/S- with drift allowance k (in sigmas); an alarm fires when a sum
  // exceeds h (in sigmas) and resets that episode's accumulation.
  double cusum_k_sigmas = 0.5;
  double cusum_h_sigmas = 4.0;
  // ADWIN-style detector (detector_zoo): confidence parameter of the
  // Hoeffding cut over every split of the adaptive window of batch losses,
  // and the window's size cap.
  double adwin_delta = 0.05;
  int adwin_max_window = 96;
};

// Outcome of testing one insertion batch against the fitted reference.
// Every detector fills the same record so the controller, Engine reports
// and benches stay detector-agnostic; fields a detector has no analogue for
// are left at their reference-free defaults (documented per detector).
struct DriftTestResult {
  double signed_statistic = 0.0;  // new_loss - bootstrap_mean
  double statistic = 0.0;         // detector's alarm statistic
  double threshold = 0.0;         // alarm fires when statistic exceeds this
  double bootstrap_mean = 0.0;
  double bootstrap_std = 0.0;
  double new_loss = 0.0;
  bool is_ood = false;
};

// A pluggable drift detector: fitted offline against the accumulated old
// data, then fed each insertion batch in stream order. Test is non-const
// because detection is stateful — sequential detectors accumulate evidence
// across batches, and even the bootstrap test advances its sampling RNG.
// Fit re-anchors the reference (the controller refits after every accepted
// insertion), which also resets any accumulated sequential state.
class DriftDetector {
 public:
  virtual ~DriftDetector() = default;

  virtual void Fit(const LossModel& model, const storage::Table& old_data) = 0;
  virtual bool fitted() const = 0;
  virtual DriftTestResult Test(const LossModel& model,
                               const storage::Table& new_batch) = 0;

  // Stable factory name ("bootstrap", "cusum", ...; see detector_zoo.h).
  virtual const char* kind() const = 0;

  // Reference moments published in LoopStats; detectors without a
  // bootstrapped loss reference report 0.
  virtual double bootstrap_mean() const = 0;
  virtual double bootstrap_std() const = 0;

  // Snapshot hooks (src/io). A restored detector issues the identical
  // sequence of Test decisions without re-running the offline phase. The
  // byte format is per-kind; pair LoadState with the kind that wrote it
  // (the controller persists the kind alongside the state).
  virtual Status SaveState(io::Serializer* out) const = 0;
  virtual Status LoadState(io::Deserializer* in) = 0;
};

// Shared base of the detectors whose H0 reference is the bootstrapped
// distribution of the mean model loss (bootstrap, cusum, adwin): owns the
// config, the fitted moments and the online sampling RNG, and implements
// the offline bootstrap phase.
class LossReferenceDetector : public DriftDetector {
 public:
  explicit LossReferenceDetector(DetectorConfig config);

  // Offline phase. Must be re-run whenever the model or the reference data
  // changes (the controller does this after every accepted insertion).
  void Fit(const LossModel& model, const storage::Table& old_data) override;
  bool fitted() const override { return fitted_; }

  double bootstrap_mean() const override { return bootstrap_mean_; }
  double bootstrap_std() const override { return bootstrap_std_; }
  const DetectorConfig& config() const { return config_; }

 protected:
  // Average model loss over a new_sample_fraction sample of the batch,
  // drawn from the online RNG — the shared online measurement.
  double SampledBatchLoss(const LossModel& model,
                          const storage::Table& new_batch);

  // Hook for subclasses with sequential state (CUSUM sums, ADWIN window):
  // called at the end of every Fit, because a re-anchored reference
  // invalidates evidence accumulated against the old one.
  virtual void ResetSequentialState() {}

  // Serialize/restore the shared fields in a fixed order: config (the v1
  // bootstrap fields only — the detector kind travels outside the state),
  // fitted moments, fitted flag, online RNG.
  void SaveCommon(io::Serializer* out) const;
  void LoadCommon(io::Deserializer* in);

  DetectorConfig config_;
  double bootstrap_mean_ = 0.0;
  double bootstrap_std_ = 0.0;
  bool fitted_ = false;
  Rng rng_;
};

// The DDUp OOD detector. Offline (Fit): bootstrap samples of the old data
// are scored with the model's own average training loss to estimate the
// sampling distribution of the mean loss under H0 (CLT: approximately
// normal). Online (Test): the average loss of a sample of the new batch is
// compared against bootstrap_mean with threshold k * std (Eq. 3). Each
// batch is judged independently — no evidence carries across batches.
class OodDetector : public LossReferenceDetector {
 public:
  explicit OodDetector(DetectorConfig config = {});

  // Backwards-compatible alias: OodDetector::TestResult predates the
  // pluggable interface.
  using TestResult = DriftTestResult;

  DriftTestResult Test(const LossModel& model,
                       const storage::Table& new_batch) override;
  const char* kind() const override { return "bootstrap"; }

  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;
  Status SaveToFile(const std::string& path) const;
  static StatusOr<OodDetector> LoadFromFile(const std::string& path);
  static constexpr const char* kCheckpointKind = "detector";
};

}  // namespace ddup::core

#endif  // DDUP_CORE_DETECTOR_H_
