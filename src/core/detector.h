#ifndef DDUP_CORE_DETECTOR_H_
#define DDUP_CORE_DETECTOR_H_

#include <cstdint>

#include "common/rng.h"
#include "core/interfaces.h"
#include "storage/table.h"

namespace ddup::core {

// Configuration of the loss-based two-sample OOD test (§3.3-3.4).
struct DetectorConfig {
  // Offline bootstrap iterations (the paper uses >1000; benches raise it).
  int bootstrap_iterations = 256;
  // Bootstrap sample size as a fraction of the old data (paper: 1% samples
  // with replacement), floored at min_sample_rows.
  double old_sample_fraction = 0.01;
  int64_t min_sample_rows = 32;
  // Online sample taken from the new batch, as a fraction of the batch
  // (paper: 10% without replacement), floored at min_sample_rows.
  double new_sample_fraction = 0.10;
  // Significance threshold = threshold_sigmas * bootstrap std (2 ~= p 0.05).
  double threshold_sigmas = 2.0;
  // Two-sided tests also flag suspiciously *low* loss; the paper's test is
  // effectively one-sided on loss increase (see DESIGN.md §6.3).
  bool two_sided = true;
  uint64_t seed = 29;
  // Threads for the bootstrap loop in Fit: 0 shares the process-wide
  // ThreadPool::Global(); > 0 runs on a dedicated pool of that size. The
  // fitted moments are bit-identical for every setting — each iteration owns
  // a pre-forked child Rng and results combine in iteration order.
  int num_threads = 0;
};

// The DDUp OOD detector. Offline (Fit): bootstrap samples of the old data
// are scored with the model's own average training loss to estimate the
// sampling distribution of the mean loss under H0 (CLT: approximately
// normal). Online (Test): the average loss of a sample of the new batch is
// compared against bootstrap_mean with threshold k * std (Eq. 3).
class OodDetector {
 public:
  explicit OodDetector(DetectorConfig config = {});

  // Offline phase. Must be re-run whenever the model or the reference data
  // changes (the controller does this after every accepted insertion).
  void Fit(const LossModel& model, const storage::Table& old_data);
  bool fitted() const { return fitted_; }

  struct TestResult {
    double signed_statistic = 0.0;  // new_loss - bootstrap_mean
    double statistic = 0.0;         // |signed_statistic|
    double threshold = 0.0;         // threshold_sigmas * bootstrap_std
    double bootstrap_mean = 0.0;
    double bootstrap_std = 0.0;
    double new_loss = 0.0;
    bool is_ood = false;
  };

  // Online phase; CHECKs that Fit ran.
  TestResult Test(const LossModel& model, const storage::Table& new_batch) const;

  double bootstrap_mean() const { return bootstrap_mean_; }
  double bootstrap_std() const { return bootstrap_std_; }
  const DetectorConfig& config() const { return config_; }

  // Snapshot hooks (src/io): the fitted bootstrap moments, the full config
  // and the online RNG stream round-trip exactly, so a restored detector
  // issues the identical sequence of Test decisions without re-running the
  // offline bootstrap phase.
  Status SaveState(io::Serializer* out) const;
  Status LoadState(io::Deserializer* in);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<OodDetector> LoadFromFile(const std::string& path);
  static constexpr const char* kCheckpointKind = "detector";

 private:
  DetectorConfig config_;
  double bootstrap_mean_ = 0.0;
  double bootstrap_std_ = 0.0;
  bool fitted_ = false;
  mutable Rng rng_;
};

}  // namespace ddup::core

#endif  // DDUP_CORE_DETECTOR_H_
