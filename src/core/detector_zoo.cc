#include "core/detector_zoo.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "io/serializer.h"

namespace ddup::core {

namespace {
constexpr uint32_t kCusumStateVersion = 1;
constexpr uint32_t kAdwinStateVersion = 1;
constexpr uint32_t kPerColumnStateVersion = 1;
constexpr double kStdFloor = 1e-12;
}  // namespace

// ---------------------------------------------------------------------------
// CusumDetector
// ---------------------------------------------------------------------------

CusumDetector::CusumDetector(DetectorConfig config)
    : LossReferenceDetector(std::move(config)) {
  DDUP_CHECK(config_.cusum_k_sigmas >= 0.0);
  DDUP_CHECK(config_.cusum_h_sigmas > 0.0);
}

void CusumDetector::ResetSequentialState() {
  sum_high_ = 0.0;
  sum_low_ = 0.0;
}

DriftTestResult CusumDetector::Test(const LossModel& model,
                                    const storage::Table& new_batch) {
  DDUP_CHECK_MSG(fitted_, "CusumDetector::Test before Fit");
  DriftTestResult res;
  res.new_loss = SampledBatchLoss(model, new_batch);
  res.bootstrap_mean = bootstrap_mean_;
  res.bootstrap_std = bootstrap_std_;
  res.signed_statistic = res.new_loss - bootstrap_mean_;

  const double z = res.signed_statistic / bootstrap_std_;
  const double k = config_.cusum_k_sigmas;
  sum_high_ = std::max(0.0, sum_high_ + z - k);
  sum_low_ = config_.two_sided ? std::max(0.0, sum_low_ - z - k) : 0.0;

  res.statistic = std::max(sum_high_, sum_low_);
  res.threshold = config_.cusum_h_sigmas;
  res.is_ood = res.statistic > res.threshold;
  if (res.is_ood) ResetSequentialState();  // one alarm per episode
  return res;
}

Status CusumDetector::SaveState(io::Serializer* out) const {
  out->WriteU32(kCusumStateVersion);
  SaveCommon(out);
  out->WriteDouble(config_.cusum_k_sigmas);
  out->WriteDouble(config_.cusum_h_sigmas);
  out->WriteDouble(sum_high_);
  out->WriteDouble(sum_low_);
  return Status::OK();
}

Status CusumDetector::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kCusumStateVersion) {
    return Status::InvalidArgument("unsupported cusum state version " +
                                   std::to_string(version));
  }
  LoadCommon(in);
  config_.cusum_k_sigmas = in->ReadDouble();
  config_.cusum_h_sigmas = in->ReadDouble();
  sum_high_ = in->ReadDouble();
  sum_low_ = in->ReadDouble();
  return in->status();
}

// ---------------------------------------------------------------------------
// AdwinDetector
// ---------------------------------------------------------------------------

AdwinDetector::AdwinDetector(DetectorConfig config)
    : LossReferenceDetector(std::move(config)) {
  DDUP_CHECK(config_.adwin_delta > 0.0 && config_.adwin_delta < 1.0);
  DDUP_CHECK(config_.adwin_max_window >= 4);
}

void AdwinDetector::ResetSequentialState() { window_.clear(); }

DriftTestResult AdwinDetector::Test(const LossModel& model,
                                    const storage::Table& new_batch) {
  DDUP_CHECK_MSG(fitted_, "AdwinDetector::Test before Fit");
  DriftTestResult res;
  res.new_loss = SampledBatchLoss(model, new_batch);
  res.bootstrap_mean = bootstrap_mean_;
  res.bootstrap_std = bootstrap_std_;
  res.signed_statistic = res.new_loss - bootstrap_mean_;
  res.threshold = 1.0;  // statistic is the eps-normalized gap

  window_.push_back(res.new_loss);
  if (static_cast<int>(window_.size()) > config_.adwin_max_window) {
    window_.erase(window_.begin());
  }
  const size_t n = window_.size();
  if (n < 2) return res;

  // Prefix sums make every split's sub-means O(1); the split scan itself is
  // O(window), so one Test is O(window) with window <= adwin_max_window.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + window_[i];

  // Batch-mean losses under H0 concentrate within a few bootstrap sigmas of
  // the reference mean; use that spread as the Hoeffding range.
  const double range = std::max(4.0 * bootstrap_std_, kStdFloor);
  const double log_term = std::log(4.0 / config_.adwin_delta);

  double best_stat = 0.0;
  double best_signed_gap = 0.0;
  size_t best_split = 0;
  for (size_t split = 1; split < n; ++split) {
    const double n0 = static_cast<double>(split);
    const double n1 = static_cast<double>(n - split);
    const double mean0 = prefix[split] / n0;
    const double mean1 = (prefix[n] - prefix[split]) / n1;
    const double m = 1.0 / (1.0 / n0 + 1.0 / n1);  // harmonic sample size
    const double eps =
        std::sqrt(range * range / (2.0 * m) * log_term);
    const double gap = mean1 - mean0;
    if (!config_.two_sided && gap <= 0.0) continue;
    const double stat = std::fabs(gap) / std::max(eps, kStdFloor);
    if (stat > best_stat) {
      best_stat = stat;
      best_signed_gap = gap;
      best_split = split;
    }
  }

  res.statistic = best_stat;
  res.is_ood = best_stat > res.threshold;
  if (res.is_ood) {
    res.signed_statistic = best_signed_gap;
    // Drop the pre-change prefix: the window re-anchors to the new regime.
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<ptrdiff_t>(best_split));
  }
  return res;
}

Status AdwinDetector::SaveState(io::Serializer* out) const {
  out->WriteU32(kAdwinStateVersion);
  SaveCommon(out);
  out->WriteDouble(config_.adwin_delta);
  out->WriteI32(config_.adwin_max_window);
  out->WriteI64(static_cast<int64_t>(window_.size()));
  for (double v : window_) out->WriteDouble(v);
  return Status::OK();
}

Status AdwinDetector::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kAdwinStateVersion) {
    return Status::InvalidArgument("unsupported adwin state version " +
                                   std::to_string(version));
  }
  LoadCommon(in);
  config_.adwin_delta = in->ReadDouble();
  config_.adwin_max_window = in->ReadI32();
  int64_t count = in->ReadI64();
  if (!in->ok()) return in->status();
  if (count < 0 || count > static_cast<int64_t>(1) << 24) {
    return Status::InvalidArgument("corrupt adwin window size");
  }
  window_.assign(static_cast<size_t>(count), 0.0);
  for (auto& v : window_) v = in->ReadDouble();
  return in->status();
}

// ---------------------------------------------------------------------------
// PerColumnCusumDetector
// ---------------------------------------------------------------------------

PerColumnCusumDetector::PerColumnCusumDetector(DetectorConfig config)
    : config_(std::move(config)) {
  DDUP_CHECK(config_.cusum_k_sigmas >= 0.0);
  DDUP_CHECK(config_.cusum_h_sigmas > 0.0);
}

void PerColumnCusumDetector::Fit(const LossModel& /*model*/,
                                 const storage::Table& old_data) {
  DDUP_CHECK(old_data.num_rows() > 0);
  const int cols = old_data.num_columns();
  const auto rows = static_cast<double>(old_data.num_rows());
  ref_mean_.assign(static_cast<size_t>(cols), 0.0);
  ref_std_.assign(static_cast<size_t>(cols), 0.0);
  sum_high_.assign(static_cast<size_t>(cols), 0.0);
  sum_low_.assign(static_cast<size_t>(cols), 0.0);
  for (int c = 0; c < cols; ++c) {
    const auto& col = old_data.column(c);
    double sum = 0.0;
    for (int64_t r = 0; r < col.size(); ++r) sum += col.AsDouble(r);
    const double mean = sum / rows;
    double sq = 0.0;
    for (int64_t r = 0; r < col.size(); ++r) {
      const double d = col.AsDouble(r) - mean;
      sq += d * d;
    }
    ref_mean_[static_cast<size_t>(c)] = mean;
    ref_std_[static_cast<size_t>(c)] =
        std::max(std::sqrt(sq / rows), kStdFloor);
  }
  fitted_ = true;
}

DriftTestResult PerColumnCusumDetector::Test(const LossModel& /*model*/,
                                             const storage::Table& new_batch) {
  DDUP_CHECK_MSG(fitted_, "PerColumnCusumDetector::Test before Fit");
  DDUP_CHECK(new_batch.num_rows() > 0);
  DDUP_CHECK_MSG(new_batch.num_columns() ==
                     static_cast<int>(ref_mean_.size()),
                 "batch schema differs from the fitted reference");
  const double k = config_.cusum_k_sigmas;
  const double sqrt_n = std::sqrt(static_cast<double>(new_batch.num_rows()));

  DriftTestResult res;
  res.threshold = config_.cusum_h_sigmas;
  double max_abs_z = 0.0;
  double signed_z_at_max = 0.0;
  for (size_t c = 0; c < ref_mean_.size(); ++c) {
    const auto& col = new_batch.column(static_cast<int>(c));
    double sum = 0.0;
    for (int64_t r = 0; r < col.size(); ++r) sum += col.AsDouble(r);
    const double mean = sum / static_cast<double>(col.size());
    // CLT null: the batch mean of a stationary column has std
    // ref_std / sqrt(batch_rows).
    const double z = (mean - ref_mean_[c]) / (ref_std_[c] / sqrt_n);
    sum_high_[c] = std::max(0.0, sum_high_[c] + z - k);
    sum_low_[c] = config_.two_sided ? std::max(0.0, sum_low_[c] - z - k) : 0.0;
    const double stat = std::max(sum_high_[c], sum_low_[c]);
    if (stat > res.statistic) res.statistic = stat;
    if (std::fabs(z) > max_abs_z) {
      max_abs_z = std::fabs(z);
      signed_z_at_max = z;
    }
  }
  res.new_loss = max_abs_z;  // no loss reference; report the extreme z
  res.signed_statistic = signed_z_at_max;
  res.is_ood = res.statistic > res.threshold;
  if (res.is_ood) {
    std::fill(sum_high_.begin(), sum_high_.end(), 0.0);
    std::fill(sum_low_.begin(), sum_low_.end(), 0.0);
  }
  return res;
}

Status PerColumnCusumDetector::SaveState(io::Serializer* out) const {
  out->WriteU32(kPerColumnStateVersion);
  out->WriteDouble(config_.cusum_k_sigmas);
  out->WriteDouble(config_.cusum_h_sigmas);
  out->WriteBool(config_.two_sided);
  out->WriteBool(fitted_);
  out->WriteI64(static_cast<int64_t>(ref_mean_.size()));
  for (size_t c = 0; c < ref_mean_.size(); ++c) {
    out->WriteDouble(ref_mean_[c]);
    out->WriteDouble(ref_std_[c]);
    out->WriteDouble(sum_high_[c]);
    out->WriteDouble(sum_low_[c]);
  }
  return Status::OK();
}

Status PerColumnCusumDetector::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kPerColumnStateVersion) {
    return Status::InvalidArgument("unsupported percolumn state version " +
                                   std::to_string(version));
  }
  config_.cusum_k_sigmas = in->ReadDouble();
  config_.cusum_h_sigmas = in->ReadDouble();
  config_.two_sided = in->ReadBool();
  fitted_ = in->ReadBool();
  int64_t cols = in->ReadI64();
  if (!in->ok()) return in->status();
  if (cols < 0 || cols > 1 << 20) {
    return Status::InvalidArgument("corrupt percolumn column count");
  }
  ref_mean_.assign(static_cast<size_t>(cols), 0.0);
  ref_std_.assign(static_cast<size_t>(cols), 0.0);
  sum_high_.assign(static_cast<size_t>(cols), 0.0);
  sum_low_.assign(static_cast<size_t>(cols), 0.0);
  for (int64_t c = 0; c < cols; ++c) {
    ref_mean_[static_cast<size_t>(c)] = in->ReadDouble();
    ref_std_[static_cast<size_t>(c)] = in->ReadDouble();
    sum_high_[static_cast<size_t>(c)] = in->ReadDouble();
    sum_low_[static_cast<size_t>(c)] = in->ReadDouble();
  }
  return in->status();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::vector<std::string> DriftDetectorKinds() {
  return {"adwin", "bootstrap", "cusum", "percolumn_cusum"};
}

bool HasDriftDetectorKind(const std::string& kind) {
  for (const auto& k : DriftDetectorKinds()) {
    if (k == kind) return true;
  }
  return false;
}

StatusOr<std::unique_ptr<DriftDetector>> MakeDriftDetector(
    const DetectorConfig& config) {
  std::unique_ptr<DriftDetector> detector;
  if (config.kind == "bootstrap") {
    detector = std::make_unique<OodDetector>(config);
  } else if (config.kind == "cusum") {
    detector = std::make_unique<CusumDetector>(config);
  } else if (config.kind == "adwin") {
    detector = std::make_unique<AdwinDetector>(config);
  } else if (config.kind == "percolumn_cusum") {
    detector = std::make_unique<PerColumnCusumDetector>(config);
  } else {
    std::string known;
    for (const auto& k : DriftDetectorKinds()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    return Status::NotFound("unknown drift detector kind '" + config.kind +
                            "' (known: " + known + ")");
  }
  return detector;
}

}  // namespace ddup::core
