#ifndef DDUP_CORE_DETECTOR_ZOO_H_
#define DDUP_CORE_DETECTOR_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"

namespace ddup::core {

// Sequential and per-column alternatives to the paper's one-shot bootstrap
// test, all behind the DriftDetector interface. The paper's detector judges
// each batch in isolation; the zoo adds detectors that accumulate evidence
// across batches (catching slow/gradual drift the one-shot test under-reacts
// to) and a per-column variant that watches marginal statistics instead of
// the joint model loss (cheap, model-free — but blind to drift that
// preserves every marginal, e.g. a joint-permutation of the columns).

// CUSUM over the per-batch loss z-score. Each Test draws the same
// new_sample_fraction loss sample as the bootstrap detector, standardizes it
// against the fitted bootstrap moments, and accumulates one-sided sums
//   S+ <- max(0, S+ + z - k)     S- <- max(0, S- - z - k)
// with drift allowance k = cusum_k_sigmas. An alarm fires when a sum
// exceeds h = cusum_h_sigmas and resets the accumulation (one alarm per
// drift episode). Fit also resets the sums: evidence against a stale
// reference is meaningless. DriftTestResult.statistic is the larger sum.
class CusumDetector : public LossReferenceDetector {
 public:
  explicit CusumDetector(DetectorConfig config = {});

  DriftTestResult Test(const LossModel& model,
                       const storage::Table& new_batch) override;
  const char* kind() const override { return "cusum"; }

  double sum_high() const { return sum_high_; }
  double sum_low() const { return sum_low_; }

  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

 protected:
  void ResetSequentialState() override;

 private:
  double sum_high_ = 0.0;  // evidence of loss increase
  double sum_low_ = 0.0;   // evidence of loss decrease (two_sided only)
};

// ADWIN-style adaptive window over the per-batch losses. The window keeps
// the most recent adwin_max_window batch losses; every Test checks all
// splits of the window and fires when the two sub-window means differ by
// more than a Hoeffding-style bound
//   eps(n0, n1) = sqrt(R^2 / (2 m) * ln(4 / delta)),  m = harmonic(n0, n1)
// with the loss range R estimated from the fitted bootstrap std (batch
// means under H0 concentrate within a few sigmas). On detection the stale
// prefix (before the best split) is dropped, so the window re-anchors to
// the post-change regime — the adaptive part. DriftTestResult.statistic is
// the largest normalized gap |mean1 - mean0| / eps across splits (alarm at
// threshold 1).
class AdwinDetector : public LossReferenceDetector {
 public:
  explicit AdwinDetector(DetectorConfig config = {});

  DriftTestResult Test(const LossModel& model,
                       const storage::Table& new_batch) override;
  const char* kind() const override { return "adwin"; }

  int64_t window_size() const { return static_cast<int64_t>(window_.size()); }

  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

 protected:
  void ResetSequentialState() override;

 private:
  std::vector<double> window_;  // batch losses, oldest first
};

// Per-column CUSUM on column means — the "per-column vs joint" contrast.
// Fit records each column's reference mean/std from the old data (the model
// is ignored: this detector is model-free). Test standardizes each column's
// batch mean by the CLT null std ref_std / sqrt(batch_rows) and runs an
// independent CUSUM per column; the alarm fires when ANY column's sum
// exceeds h, and every sum resets on alarm or Fit. Catches marginal shifts
// (mean drift, skewed appends) batches earlier than loss-based tests, but
// cannot see drift that preserves the marginals — e.g. the paper's
// joint-permutation OOD transform, which it misses by construction.
// bootstrap_mean()/bootstrap_std() report 0 (no loss reference);
// DriftTestResult.new_loss carries the largest per-column |z| instead.
class PerColumnCusumDetector : public DriftDetector {
 public:
  explicit PerColumnCusumDetector(DetectorConfig config = {});

  void Fit(const LossModel& model, const storage::Table& old_data) override;
  bool fitted() const override { return fitted_; }
  DriftTestResult Test(const LossModel& model,
                       const storage::Table& new_batch) override;
  const char* kind() const override { return "percolumn_cusum"; }

  double bootstrap_mean() const override { return 0.0; }
  double bootstrap_std() const override { return 0.0; }
  const DetectorConfig& config() const { return config_; }

  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

 private:
  DetectorConfig config_;
  std::vector<double> ref_mean_;
  std::vector<double> ref_std_;
  std::vector<double> sum_high_;
  std::vector<double> sum_low_;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

// Registered detector kinds, sorted: {"adwin", "bootstrap", "cusum",
// "percolumn_cusum"}.
std::vector<std::string> DriftDetectorKinds();
bool HasDriftDetectorKind(const std::string& kind);

// Builds the detector named by config.kind; NotFound (listing the known
// kinds) for anything unregistered.
StatusOr<std::unique_ptr<DriftDetector>> MakeDriftDetector(
    const DetectorConfig& config);

}  // namespace ddup::core

#endif  // DDUP_CORE_DETECTOR_ZOO_H_
