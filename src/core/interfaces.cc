#include "core/interfaces.h"

namespace ddup::core {

Status LossModel::SaveState(io::Serializer* out) const {
  (void)out;
  return Status::FailedPrecondition("model '" + name() +
                                    "' does not support checkpointing");
}

Status LossModel::LoadState(io::Deserializer* in) {
  (void)in;
  return Status::FailedPrecondition("model '" + name() +
                                    "' does not support checkpointing");
}

}  // namespace ddup::core
