#include "core/interfaces.h"

namespace ddup::core {

Status LossModel::SaveState(io::Serializer* out) const {
  (void)out;
  return Status::FailedPrecondition("model '" + name() +
                                    "' does not support checkpointing");
}

Status LossModel::LoadState(io::Deserializer* in) {
  (void)in;
  return Status::FailedPrecondition("model '" + name() +
                                    "' does not support checkpointing");
}

namespace {

// Shared fail-fast batch loop: stamps the failing query's index onto the
// scalar path's error so batch callers can locate it.
template <typename ScalarFn>
Status LoopScalar(size_t n, std::vector<double>* out, const ScalarFn& fn) {
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StatusOr<double> one = fn(i);
    if (!one.ok()) {
      return Status(one.status().code(), "query " + std::to_string(i) + ": " +
                                             one.status().message());
    }
    out->push_back(one.value());
  }
  return Status::OK();
}

}  // namespace

Status CardinalityEstimator::TryEstimateCardinalityBatch(
    const std::vector<workload::Query>& queries,
    std::vector<double>* out) const {
  return LoopScalar(queries.size(), out, [&](size_t i) {
    return TryEstimateCardinality(queries[i]);
  });
}

Status AqpEstimator::TryEstimateAqpBatch(
    const std::vector<workload::Query>& queries, const storage::Table& schema,
    std::vector<double>* out) const {
  return LoopScalar(queries.size(), out, [&](size_t i) {
    return TryEstimateAqp(queries[i], schema);
  });
}

}  // namespace ddup::core
