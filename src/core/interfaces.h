#ifndef DDUP_CORE_INTERFACES_H_
#define DDUP_CORE_INTERFACES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::io {
class Serializer;
class Deserializer;
}  // namespace ddup::io

namespace ddup::core {

// A trained model that can score data with its own training loss (§3.2 of
// the paper). "Loss" follows the model's minimized objective (NLL for MDN
// and DARN, ELBO for TVAE): lower means more in-distribution. This is the
// only hook the OOD detector needs, which is what makes DDUp model-agnostic.
class LossModel {
 public:
  virtual ~LossModel() = default;

  // Average per-row training loss over `sample` (no gradient computation).
  virtual double AverageLoss(const storage::Table& sample) const = 0;

  virtual std::string name() const = 0;

  // Checkpoint hooks (src/io, DESIGN.md §9): serialize / restore the model's
  // full mutable state — weights, fitted encoders, task metadata, and the
  // RNG stream — so a reloaded model reproduces predictions bit-for-bit and
  // continues training exactly where the saved one stopped. The default
  // implementations report the model as non-checkpointable.
  virtual Status SaveState(io::Serializer* out) const;
  virtual Status LoadState(io::Deserializer* in);
};

// Hyperparameters of the distillation update (Eq. 5-7).
struct DistillConfig {
  // Weight of the transfer-set term in Eq. 5. Negative means "auto": the
  // old-data share |D_old| / (|D_old| + |D_new|) (see DESIGN.md §6.1 on the
  // paper's ambiguous prose here).
  double alpha = -1.0;
  // Distillation weight inside the transfer-set term (paper tunes over
  // {9/10, 5/6, 1/4, 1/2}).
  double lambda = 0.5;
  // Softmax temperature of the annealed cross-entropy (Eq. 6).
  double temperature = 2.0;
  int epochs = 8;
  int batch_size = 128;
  double learning_rate = 1e-3;
};

// Resolves DistillConfig::alpha given old/new data sizes.
inline double ResolveAlpha(const DistillConfig& config, int64_t old_rows,
                           int64_t new_rows) {
  if (config.alpha >= 0.0) return config.alpha;
  if (old_rows + new_rows <= 0) return 0.5;
  return static_cast<double>(old_rows) /
         static_cast<double>(old_rows + new_rows);
}

// Every piece of mutable per-call state an estimate is allowed to touch
// (DESIGN.md §13). Estimators themselves are immutable during estimation —
// `this` is const and genuinely untouched — so any number of threads can
// estimate against one model (or one published Engine snapshot) with no
// lock. The RNG stream is derived per query from (model seed, query
// fingerprint), never from a shared mutable member: the same query yields
// the same stream at any batch size, batch position or call count, which is
// what lets the differential harness byte-compare engines.
//
// Matrix scratch is NOT carried here — it comes from the calling thread's
// MatrixPool::Local(), which is already per-thread and allocation-free once
// warm.
struct EstimateContext {
  Rng rng{0};
};

// Optional query surfaces a learned component may implement alongside
// UpdatableModel. The Engine facade (src/api) probes for these with
// dynamic_cast once at snapshot-publish time and returns FailedPrecondition
// when a model kind does not serve the requested estimate, so callers never
// need to know the concrete model class behind a table.
//
// Thread safety contract: every method here is const and must be safe for
// concurrent callers on an immutable model. Per-call mutable state (the
// DARN's progressive-sampler RNG) lives in EstimateContext.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  // Estimated number of rows matching the query's conjunctive predicates;
  // InvalidArgument for a query the model cannot evaluate (e.g. predicates
  // on out-of-range columns), never a crash. `ctx` owns all mutable
  // per-call state; pass the result of MakeEstimateContext(query) for the
  // deterministic per-query stream.
  virtual StatusOr<double> TryEstimateCardinality(
      const workload::Query& query, EstimateContext* ctx) const = 0;

  // The deterministic context for `query`: RNG forked from the model's seed
  // keyed by the query fingerprint. Stateless estimators return the default
  // context.
  virtual EstimateContext MakeEstimateContext(
      const workload::Query& query) const {
    (void)query;
    return EstimateContext{};
  }

  // Convenience scalar path: derive the per-query context, then estimate.
  StatusOr<double> TryEstimateCardinality(const workload::Query& query) const {
    EstimateContext ctx = MakeEstimateContext(query);
    return TryEstimateCardinality(query, &ctx);
  }

  // Batched entry point: out[i] = estimate for queries[i] (out is resized).
  // Fails fast on the first invalid query (the error names its index);
  // answers for every query are identical to the scalar path bit for bit.
  // The default loops the scalar path; models override it with vectorized
  // implementations (the DARN batches all queries' progressive-sample paths
  // into one matrix per column and runs a single GEMM-backed forward).
  virtual Status TryEstimateCardinalityBatch(
      const std::vector<workload::Query>& queries,
      std::vector<double>* out) const;
};

class AqpEstimator {
 public:
  virtual ~AqpEstimator() = default;

  // COUNT/SUM/AVG estimate for a DBEst++-style template query (`schema`
  // resolves column names/dictionaries; any table with the base schema).
  // InvalidArgument for a query outside the model's template. Same
  // const/concurrency contract as CardinalityEstimator.
  virtual StatusOr<double> TryEstimateAqp(const workload::Query& query,
                                          const storage::Table& schema,
                                          EstimateContext* ctx) const = 0;

  virtual EstimateContext MakeEstimateContext(
      const workload::Query& query) const {
    (void)query;
    return EstimateContext{};
  }

  StatusOr<double> TryEstimateAqp(const workload::Query& query,
                                  const storage::Table& schema) const {
    EstimateContext ctx = MakeEstimateContext(query);
    return TryEstimateAqp(query, schema, &ctx);
  }

  // Batched entry point, same contract as the cardinality variant. The MDN
  // override computes each distinct category's mixture once per batch.
  virtual Status TryEstimateAqpBatch(
      const std::vector<workload::Query>& queries,
      const storage::Table& schema, std::vector<double>* out) const;
};

// A model supporting DDUp's update actions (§4). Implemented by the MDN,
// DARN and TVAE components in models/ (plus the SPN and GBDT adapters).
class UpdatableModel : public LossModel {
 public:
  // Plain SGD/Adam steps on `new_data` only, with the given learning rate.
  // This is both the paper's "baseline" update and the in-distribution
  // fine-tune policy (with a size-scaled learning rate).
  virtual void FineTune(const storage::Table& new_data, double learning_rate,
                        int epochs) = 0;

  // Sequential self-distillation update (§4.2): snapshots the current model
  // as the teacher, then trains the (same-architecture) student on
  //   alpha * mean_tr[ lambda * L_distill + (1-lambda) * L_task ]
  //   + (1-alpha) * mean_up[ L_task ]                                (Eq. 5)
  // with the model-specific distillation loss (Eq. 9/10/11).
  virtual void DistillUpdate(const storage::Table& transfer_set,
                             const storage::Table& new_data,
                             const DistillConfig& config) = 0;

  // Re-initializes parameters and trains on `data` from scratch (the
  // expensive reference policy).
  virtual void RetrainFromScratch(const storage::Table& data) = 0;

  // Updates task metadata that must track the true table state regardless of
  // whether the network weights change (frequency tables for the MDN,
  // total cardinality for the DARN; §2.2 "updating maybe just the
  // hyper-parameters of the system"). Called by the controller for every
  // insertion, including in-distribution ones handled by the stale policy.
  virtual void AbsorbMetadata(const storage::Table& new_data) = 0;

  // Clears the task metadata so it can be rebuilt with AbsorbMetadata —
  // needed by policies that train weights on a sample but must keep exact
  // metadata for the full table (e.g. NeuroCard-style fast-retrain).
  virtual void ResetMetadata() = 0;
};

}  // namespace ddup::core

#endif  // DDUP_CORE_INTERFACES_H_
