#include "core/policies.h"

#include <algorithm>

#include "common/status.h"

namespace ddup::core {

const char* ActionName(UpdateAction action) {
  switch (action) {
    case UpdateAction::kKeepStale:
      return "stale";
    case UpdateAction::kFineTune:
      return "fine-tune";
    case UpdateAction::kDistill:
      return "distill";
    case UpdateAction::kRetrain:
      return "retrain";
  }
  return "unknown";
}

double ScaledFineTuneLr(const PolicyConfig& policy, int64_t old_rows,
                        int64_t new_rows) {
  DDUP_CHECK(old_rows > 0);
  double ratio = static_cast<double>(new_rows) / static_cast<double>(old_rows);
  return std::min(1.0, ratio) * policy.finetune_base_lr;
}

}  // namespace ddup::core
