#ifndef DDUP_CORE_POLICIES_H_
#define DDUP_CORE_POLICIES_H_

#include <string>

#include "core/interfaces.h"

namespace ddup::core {

// What DDUp did (or a baseline would do) for one insertion batch.
enum class UpdateAction {
  kKeepStale,  // leave weights untouched (metadata may still refresh)
  kFineTune,   // small-lr gradient steps on the new batch only
  kDistill,    // sequential self-distillation (the OOD path)
  kRetrain,    // retrain from scratch on all data (reference)
};

const char* ActionName(UpdateAction action);

// Knobs of the controller's update decisions (§4).
struct PolicyConfig {
  // Base fine-tune learning rate lr_0; the effective in-distribution rate is
  // lr_t = |D_new| / |D_old| * lr_0 (§4 "The in-distribution case").
  double finetune_base_lr = 1e-3;
  int finetune_epochs = 3;
  // If false, in-distribution batches leave the model untouched (metadata
  // still updates).
  bool finetune_on_ind = true;
  // Transfer-set size as a fraction of the accumulated old data (§5.1 uses
  // 10% for MDN/DARN, 5% for TVAE).
  double transfer_fraction = 0.10;
  DistillConfig distill;
};

// The scaled in-distribution fine-tune learning rate.
double ScaledFineTuneLr(const PolicyConfig& policy, int64_t old_rows,
                        int64_t new_rows);

}  // namespace ddup::core

#endif  // DDUP_CORE_POLICIES_H_
