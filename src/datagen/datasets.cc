#include "datagen/datasets.h"

#include "common/status.h"
#include "datagen/latent_class.h"

namespace ddup::datagen {

namespace {

NumericColumnSpec Num(std::string name, std::vector<double> means,
                      std::vector<double> stds, double lo, double hi,
                      bool round_to_int = false, double grid_step = 0.0) {
  NumericColumnSpec n;
  n.name = std::move(name);
  n.class_means = std::move(means);
  n.class_stddevs = std::move(stds);
  n.min_value = lo;
  n.max_value = hi;
  n.round_to_int = round_to_int;
  n.grid_step = grid_step;
  return n;
}

CategoricalColumnSpec Cat(std::string name, int cardinality,
                          std::vector<int> peaks, double decay,
                          std::string prefix) {
  CategoricalColumnSpec c;
  c.name = std::move(name);
  c.cardinality = cardinality;
  for (int p : peaks) c.class_weights.push_back(PeakedWeights(cardinality, p, decay));
  c.label_prefix = std::move(prefix);
  return c;
}

}  // namespace

storage::Table CensusLike(int64_t rows, uint64_t seed) {
  // 4 latent "socio-economic" classes drive correlated age / education /
  // occupation / hours / income.
  LatentClassSpec spec;
  spec.table_name = "census";
  spec.class_priors = {0.35, 0.30, 0.20, 0.15};
  spec.columns = {
      ColumnSpec::OfNumeric(Num("age", {28, 38, 48, 60}, {6, 8, 9, 8}, 17, 90,
                                /*round_to_int=*/true)),
      ColumnSpec::OfCategorical(Cat("workclass", 8, {0, 4, 1, 2}, 0.5, "wc")),
      ColumnSpec::OfNumeric(Num("fnlwgt", {180000, 200000, 210000, 170000},
                                {40000, 50000, 45000, 35000}, 10000, 500000,
                                /*round_to_int=*/false, /*grid_step=*/2000)),
      // Non-monotone in the latent class on purpose: real attribute
      // dependencies are not rank-aligned, so the paper's independent
      // column sort must create genuinely impossible combinations.
      ColumnSpec::OfCategorical(Cat("education", 16, {3, 11, 8, 14}, 0.55, "ed")),
      ColumnSpec::OfNumeric(Num("education_num", {8, 12, 10, 14}, {1.2, 1.5, 1.5, 1.4},
                                1, 16, /*round_to_int=*/true)),
      ColumnSpec::OfCategorical(Cat("marital_status", 7, {1, 2, 2, 4}, 0.5, "ms")),
      ColumnSpec::OfCategorical(Cat("occupation", 14, {9, 2, 12, 5}, 0.55, "oc")),
      ColumnSpec::OfCategorical(Cat("relationship", 6, {3, 0, 4, 1}, 0.5, "rel")),
      ColumnSpec::OfCategorical(Cat("race", 5, {0, 0, 1, 0}, 0.35, "race")),
      ColumnSpec::OfCategorical(Cat("sex", 2, {0, 1, 0, 1}, 0.45, "sex")),
      ColumnSpec::OfNumeric(Num("hours_per_week", {50, 35, 46, 28}, {5, 4, 6, 8},
                                1, 99, /*round_to_int=*/true)),
      ColumnSpec::OfCategorical(Cat("native_country", 10, {1, 0, 2, 0}, 0.4, "cty")),
      ColumnSpec::OfCategorical(Cat("income", 2, {0, 0, 1, 1}, 0.22, "inc")),
  };
  Rng rng(seed);
  return Generate(spec, rows, rng);
}

storage::Table ForestLike(int64_t rows, uint64_t seed) {
  // 5 latent terrain types; cover_type strongly depends on them.
  LatentClassSpec spec;
  spec.table_name = "forest";
  spec.class_priors = {0.28, 0.24, 0.20, 0.16, 0.12};
  spec.columns = {
      ColumnSpec::OfNumeric(Num("elevation", {2100, 2500, 2900, 3200, 3500},
                                {120, 140, 130, 110, 100}, 1800, 3900,
                                /*round_to_int=*/false, /*grid_step=*/10)),
      ColumnSpec::OfNumeric(Num("aspect", {90, 150, 210, 270, 330},
                                {40, 45, 40, 40, 35}, 0, 360,
                                /*round_to_int=*/true)),
      ColumnSpec::OfNumeric(Num("slope", {8, 14, 20, 26, 32}, {3, 4, 4, 5, 5},
                                0, 60, /*round_to_int=*/true)),
      ColumnSpec::OfNumeric(Num("horiz_dist_hydrology", {150, 250, 380, 520, 650},
                                {60, 80, 90, 100, 110}, 0, 1400,
                                /*round_to_int=*/false, /*grid_step=*/10)),
      ColumnSpec::OfNumeric(Num("vert_dist_hydrology", {20, 45, 70, 95, 120},
                                {12, 15, 18, 20, 22}, -150, 600,
                                /*round_to_int=*/false, /*grid_step=*/5)),
      ColumnSpec::OfNumeric(Num("horiz_dist_roadways", {800, 1500, 2300, 3100, 3900},
                                {300, 400, 450, 500, 520}, 0, 7000,
                                /*round_to_int=*/false, /*grid_step=*/50)),
      ColumnSpec::OfNumeric(Num("hillshade_9am", {225, 215, 205, 195, 185},
                                {10, 11, 12, 12, 13}, 0, 255,
                                /*round_to_int=*/true)),
      ColumnSpec::OfNumeric(Num("hillshade_noon", {235, 228, 221, 214, 207},
                                {8, 9, 9, 10, 10}, 0, 255,
                                /*round_to_int=*/true)),
      ColumnSpec::OfNumeric(Num("horiz_dist_fire_points", {900, 1500, 2100, 2700, 3300},
                                {350, 420, 470, 500, 520}, 0, 7000,
                                /*round_to_int=*/false, /*grid_step=*/50)),
      // Scrambled peaks (non-monotone in the latent terrain class).
      ColumnSpec::OfCategorical(Cat("cover_type", 7, {1, 0, 3, 6, 2}, 0.3, "cov")),
  };
  Rng rng(seed);
  return Generate(spec, rows, rng);
}

storage::Table DmvLike(int64_t rows, uint64_t seed) {
  // 4 latent vehicle segments (compact / sedan / SUV / truck).
  LatentClassSpec spec;
  spec.table_name = "dmv";
  spec.class_priors = {0.30, 0.30, 0.25, 0.15};
  spec.columns = {
      ColumnSpec::OfCategorical(Cat("record_type", 4, {0, 0, 1, 2}, 0.35, "rt")),
      ColumnSpec::OfCategorical(Cat("registration_class", 18, {9, 2, 15, 5}, 0.5, "rc")),
      ColumnSpec::OfCategorical(Cat("state", 15, {0, 1, 2, 3}, 0.45, "st")),
      ColumnSpec::OfCategorical(Cat("county", 20, {12, 3, 17, 7}, 0.55, "cnty")),
      // Non-monotone vs. weight: SUVs (heavy) share low peaks with compacts.
      ColumnSpec::OfCategorical(Cat("body_type", 10, {6, 1, 8, 3}, 0.4, "bt")),
      ColumnSpec::OfCategorical(Cat("fuel_type", 5, {0, 0, 1, 3}, 0.3, "fu")),
      ColumnSpec::OfCategorical(Cat("color", 12, {7, 1, 10, 4}, 0.6, "col")),
      ColumnSpec::OfCategorical(Cat("scofflaw", 2, {0, 0, 0, 1}, 0.2, "sc")),
      ColumnSpec::OfCategorical(Cat("suspension", 2, {0, 0, 1, 0}, 0.25, "su")),
      ColumnSpec::OfNumeric(Num("model_year", {2016, 2012, 2008, 2002},
                                {3, 4, 5, 6}, 1980, 2023, /*round_to_int=*/true)),
      ColumnSpec::OfNumeric(Num("max_gross_weight", {2600, 3400, 4600, 7800},
                                {250, 320, 450, 900}, 1500, 12000,
                                /*round_to_int=*/false, /*grid_step=*/100)),
  };
  Rng rng(seed);
  return Generate(spec, rows, rng);
}

storage::Table TpcdsLike(int64_t rows, uint64_t seed) {
  // 4 latent purchase patterns over the store_sales columns used in §5.1.
  LatentClassSpec spec;
  spec.table_name = "tpcds";
  spec.class_priors = {0.4, 0.3, 0.2, 0.1};
  spec.columns = {
      // Anti-monotone vs. the other columns (cheap items sell late).
      ColumnSpec::OfNumeric(Num("ss_sold_date_sk", {2452100, 2451700, 2451300, 2450900},
                                {180, 180, 180, 180}, 2450500, 2452700,
                                /*round_to_int=*/false, /*grid_step=*/10)),
      ColumnSpec::OfNumeric(Num("ss_item_sk", {3000, 8000, 13000, 17000},
                                {1500, 1800, 1700, 1200}, 1, 18000,
                                /*round_to_int=*/false, /*grid_step=*/100)),
      ColumnSpec::OfNumeric(Num("ss_customer_sk", {20000, 45000, 70000, 90000},
                                {9000, 11000, 10000, 6000}, 1, 100000,
                                /*round_to_int=*/false, /*grid_step=*/500)),
      ColumnSpec::OfCategorical(Cat("ss_store_sk", 12, {1, 4, 7, 10}, 0.5, "store")),
      ColumnSpec::OfCategorical(Cat("ss_quantity", 20, {11, 2, 16, 6}, 0.55, "q")),
      ColumnSpec::OfNumeric(Num("ss_sales_price", {18, 45, 85, 140},
                                {6, 12, 20, 30}, 0.5, 250,
                                /*round_to_int=*/false, /*grid_step=*/0.5)),
      ColumnSpec::OfNumeric(Num("ss_net_profit", {2, 9, 20, 38},
                                {2.5, 4, 7, 10}, -20, 90,
                                /*round_to_int=*/false, /*grid_step=*/0.5)),
  };
  Rng rng(seed);
  return Generate(spec, rows, rng);
}

storage::Table MakeDataset(const std::string& name, int64_t rows,
                           uint64_t seed) {
  if (name == "census") return CensusLike(rows, seed);
  if (name == "forest") return ForestLike(rows, seed);
  if (name == "dmv") return DmvLike(rows, seed);
  if (name == "tpcds") return TpcdsLike(rows, seed);
  DDUP_CHECK_MSG(false, "unknown dataset '" + name + "'");
  return storage::Table();
}

std::vector<std::string> DatasetNames() {
  return {"census", "forest", "dmv", "tpcds"};
}

AqpColumns AqpColumnsFor(const std::string& dataset) {
  // Mirrors §5.1.2's (categorical, numeric) template pairs.
  if (dataset == "census") return {"education", "hours_per_week"};
  if (dataset == "forest") return {"cover_type", "elevation"};
  if (dataset == "dmv") return {"body_type", "max_gross_weight"};
  if (dataset == "tpcds") return {"ss_quantity", "ss_sales_price"};
  DDUP_CHECK_MSG(false, "unknown dataset '" + dataset + "'");
  return {};
}

std::string ClassColumnFor(const std::string& dataset) {
  // §5.1.4: income, cover-type, fuel-type targets.
  if (dataset == "census") return "income";
  if (dataset == "forest") return "cover_type";
  if (dataset == "dmv") return "fuel_type";
  if (dataset == "tpcds") return "ss_store_sk";
  DDUP_CHECK_MSG(false, "unknown dataset '" + dataset + "'");
  return {};
}

}  // namespace ddup::datagen
