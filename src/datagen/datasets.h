#ifndef DDUP_DATAGEN_DATASETS_H_
#define DDUP_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ddup::datagen {

// Synthetic stand-ins for the paper's evaluation datasets (Table 1). Shapes
// (column counts, mixed types, correlated attributes) mirror the originals;
// row counts are caller-chosen. All generators are deterministic in `seed`.
//
// Per-dataset AQP column pairs (categorical equality attribute + numeric
// range/aggregate attribute) follow §5.1.2 and are exposed via AqpColumnsFor.

// Census-like: 13 columns, strong education/income/hours correlations.
storage::Table CensusLike(int64_t rows, uint64_t seed);

// Forest-like: 10 columns (9 numeric terrain features + cover_type class).
storage::Table ForestLike(int64_t rows, uint64_t seed);

// DMV-like: 11 columns of vehicle registration attributes.
storage::Table DmvLike(int64_t rows, uint64_t seed);

// TPC-DS store_sales-like: 7 columns.
storage::Table TpcdsLike(int64_t rows, uint64_t seed);

// Dispatch by name ("census", "forest", "dmv", "tpcds").
storage::Table MakeDataset(const std::string& name, int64_t rows,
                           uint64_t seed);
std::vector<std::string> DatasetNames();

struct AqpColumns {
  std::string categorical;  // equality attribute
  std::string numeric;      // range + aggregation attribute
};
// The DBEst++-style query-template columns for each dataset.
AqpColumns AqpColumnsFor(const std::string& dataset);

// The class column used as the TVAE classification target (§5.1.4).
std::string ClassColumnFor(const std::string& dataset);

}  // namespace ddup::datagen

#endif  // DDUP_DATAGEN_DATASETS_H_
