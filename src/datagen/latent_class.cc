#include "datagen/latent_class.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace ddup::datagen {

ColumnSpec ColumnSpec::OfNumeric(NumericColumnSpec spec) {
  ColumnSpec c;
  c.kind = Kind::kNumeric;
  c.numeric = std::move(spec);
  return c;
}

ColumnSpec ColumnSpec::OfCategorical(CategoricalColumnSpec spec) {
  ColumnSpec c;
  c.kind = Kind::kCategorical;
  c.categorical = std::move(spec);
  return c;
}

std::vector<double> PeakedWeights(int cardinality, int peak, double decay) {
  DDUP_CHECK(cardinality > 0 && peak >= 0 && peak < cardinality);
  DDUP_CHECK(decay > 0.0 && decay < 1.0);
  std::vector<double> w(static_cast<size_t>(cardinality));
  for (int i = 0; i < cardinality; ++i) {
    w[static_cast<size_t>(i)] =
        std::pow(decay, std::abs(i - peak)) + 1e-3;  // keep all positive
  }
  return w;
}

namespace {
void Validate(const LatentClassSpec& spec) {
  DDUP_CHECK_MSG(!spec.class_priors.empty(), "need at least one latent class");
  for (double p : spec.class_priors) DDUP_CHECK(p > 0.0);
  size_t k = spec.class_priors.size();
  DDUP_CHECK_MSG(!spec.columns.empty(), "need at least one column");
  for (const auto& col : spec.columns) {
    if (col.kind == ColumnSpec::Kind::kNumeric) {
      const auto& n = col.numeric;
      DDUP_CHECK_MSG(n.class_means.size() == k && n.class_stddevs.size() == k,
                     "numeric column '" + n.name + "' class vectors mismatch");
      DDUP_CHECK(n.min_value < n.max_value);
      for (double s : n.class_stddevs) DDUP_CHECK(s > 0.0);
    } else {
      const auto& c = col.categorical;
      DDUP_CHECK(c.cardinality > 0);
      DDUP_CHECK_MSG(c.class_weights.size() == k,
                     "categorical column '" + c.name + "' class count mismatch");
      for (const auto& w : c.class_weights) {
        DDUP_CHECK(static_cast<int>(w.size()) == c.cardinality);
        for (double wi : w) DDUP_CHECK(wi > 0.0);
      }
    }
  }
}
}  // namespace

storage::Table Generate(const LatentClassSpec& spec, int64_t rows, Rng& rng) {
  Validate(spec);
  DDUP_CHECK(rows >= 0);

  std::vector<int> classes(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    classes[static_cast<size_t>(r)] = rng.Categorical(spec.class_priors);
  }

  storage::Table table(spec.table_name);
  for (const auto& col : spec.columns) {
    if (col.kind == ColumnSpec::Kind::kNumeric) {
      const auto& n = col.numeric;
      std::vector<double> values(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        int k = classes[static_cast<size_t>(r)];
        double v = rng.Normal(n.class_means[static_cast<size_t>(k)],
                              n.class_stddevs[static_cast<size_t>(k)]);
        if (n.grid_step > 0.0) v = std::round(v / n.grid_step) * n.grid_step;
        v = std::clamp(v, n.min_value, n.max_value);
        if (n.round_to_int) v = std::round(v);
        values[static_cast<size_t>(r)] = v;
      }
      table.AddColumn(storage::Column::Numeric(n.name, std::move(values)));
    } else {
      const auto& c = col.categorical;
      std::vector<int32_t> codes(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) {
        int k = classes[static_cast<size_t>(r)];
        codes[static_cast<size_t>(r)] = static_cast<int32_t>(
            rng.Categorical(c.class_weights[static_cast<size_t>(k)]));
      }
      std::vector<std::string> dict;
      dict.reserve(static_cast<size_t>(c.cardinality));
      for (int i = 0; i < c.cardinality; ++i) {
        dict.push_back(c.label_prefix + std::to_string(i));
      }
      table.AddColumn(
          storage::Column::Categorical(c.name, std::move(codes), std::move(dict)));
    }
  }
  return table;
}

}  // namespace ddup::datagen
