#ifndef DDUP_DATAGEN_LATENT_CLASS_H_
#define DDUP_DATAGEN_LATENT_CLASS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"

namespace ddup::datagen {

// Latent-class mixture generator: each row first draws a hidden class, then
// every column draws from that class's distribution. This produces strongly
// correlated columns — exactly the joint structure that the paper's
// "sort each column independently" OOD transform destroys while leaving all
// marginals intact.

struct NumericColumnSpec {
  std::string name;
  std::vector<double> class_means;    // one per latent class
  std::vector<double> class_stddevs;  // one per latent class
  double min_value = 0.0;             // support clamp (keeps the paper's
  double max_value = 1.0;             // support assumption valid for inserts)
  bool round_to_int = false;
  // Snap values to multiples of this step (0 = off). The original datasets
  // are integer/fixed-point valued; coarse grids keep per-value domains
  // small enough for the estimators' dictionary encodings.
  double grid_step = 0.0;
};

struct CategoricalColumnSpec {
  std::string name;
  int cardinality = 0;
  // Per latent class, a weight vector over the categories. Every weight must
  // be strictly positive so each category exists in every class (support
  // assumption: later batches never introduce unseen codes).
  std::vector<std::vector<double>> class_weights;
  std::string label_prefix;  // labels are "<prefix><code>"
};

struct ColumnSpec {
  enum class Kind { kNumeric, kCategorical };
  Kind kind = Kind::kNumeric;
  NumericColumnSpec numeric;
  CategoricalColumnSpec categorical;

  static ColumnSpec OfNumeric(NumericColumnSpec spec);
  static ColumnSpec OfCategorical(CategoricalColumnSpec spec);
};

struct LatentClassSpec {
  std::string table_name;
  std::vector<double> class_priors;  // strictly positive, any scale
  std::vector<ColumnSpec> columns;   // emitted in this order
};

// Validates the spec (CHECKs) and generates `rows` rows.
storage::Table Generate(const LatentClassSpec& spec, int64_t rows, Rng& rng);

// Helper: a smooth weight vector over `cardinality` categories peaked at
// `peak` with decay `decay` in (0,1); all entries positive.
std::vector<double> PeakedWeights(int cardinality, int peak, double decay);

}  // namespace ddup::datagen

#endif  // DDUP_DATAGEN_LATENT_CLASS_H_
