#include "datagen/scenarios.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/status.h"
#include "datagen/datasets.h"
#include "storage/sampling.h"
#include "storage/transforms.h"

namespace ddup::datagen {

namespace {

// Stable 64-bit hash of the scenario name, mixed into the stream seed so
// two scenarios with the same seed draw from unrelated generator states.
// (Deliberately not std::hash: that would tie the byte-identical streams to
// one standard library.)
uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// rows drawn uniformly WITH replacement from `pool` — batch rows are
// appended data, so repeats across (and within) batches are fine.
storage::Table DrawRows(const storage::Table& pool, Rng& rng, int64_t rows) {
  return storage::BootstrapRows(pool, rng, rows);
}

// A batch mixing `fraction` drifted rows into clean ones, shuffled so the
// drift is not confined to a row-range a sampler could miss.
storage::Table MixedBatch(const storage::Table& clean_pool,
                          const storage::Table& drift_pool, Rng& rng,
                          int64_t rows, double fraction) {
  int64_t drift_rows = std::llround(fraction * static_cast<double>(rows));
  drift_rows = std::min(std::max<int64_t>(drift_rows, 0), rows);
  storage::Table batch = DrawRows(clean_pool, rng, rows - drift_rows);
  if (drift_rows > 0) batch.Append(DrawRows(drift_pool, rng, drift_rows));
  return storage::ShuffleRows(batch, rng);
}

// Skewed draw for "append_skew": row ranks follow u^(1 + exponent) over the
// pool sorted descending by `order_col`, over-representing the column's
// upper tail. exponent 0 degenerates to a uniform draw.
storage::Table SkewedDraw(const storage::Table& pool,
                          const std::vector<int64_t>& desc_order, Rng& rng,
                          int64_t rows, double exponent) {
  const auto n = static_cast<double>(pool.num_rows());
  std::vector<int64_t> picks(static_cast<size_t>(rows));
  for (auto& p : picks) {
    const double u = rng.Uniform();
    auto rank = static_cast<int64_t>(std::pow(u, 1.0 + exponent) * n);
    rank = std::min(rank, pool.num_rows() - 1);
    p = desc_order[static_cast<size_t>(rank)];
  }
  return pool.TakeRows(picks);
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  return {"gradual",          "sudden",      "recurring",
          "correlation_flip", "append_skew", "adversarial"};
}

storage::Table FlipColumnAssociation(const storage::Table& table, int column) {
  DDUP_CHECK(column >= 0 && column < table.num_columns());
  DDUP_CHECK_MSG(table.column(column).is_numeric(),
                 "FlipColumnAssociation needs a numeric column");
  const auto n = static_cast<size_t>(table.num_rows());
  const storage::Column& col = table.column(column);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return col.NumericAt(static_cast<int64_t>(a)) <
           col.NumericAt(static_cast<int64_t>(b));
  });
  storage::Table flipped = table;
  storage::Column* out = flipped.mutable_column(column);
  // The row holding the column's i-th smallest value receives the i-th
  // largest: the multiset survives, the association reverses.
  for (size_t i = 0; i < n; ++i) {
    out->SetFromDouble(
        static_cast<int64_t>(order[i]),
        col.NumericAt(static_cast<int64_t>(order[n - 1 - i])));
  }
  return flipped;
}

DriftStream MakeScenario(const ScenarioConfig& config) {
  const auto names = ScenarioNames();
  DDUP_CHECK_MSG(std::find(names.begin(), names.end(), config.scenario) !=
                     names.end(),
                 "unknown drift scenario");
  DDUP_CHECK(config.base_rows > 0);
  DDUP_CHECK(config.batch_rows > 0);
  DDUP_CHECK(config.num_batches > 0);
  DDUP_CHECK(config.onset_batch >= 0 &&
             config.onset_batch <= config.num_batches);
  DDUP_CHECK(config.ramp_batches >= 1);
  DDUP_CHECK(config.period >= 2);
  DDUP_CHECK(config.skew_exponent >= 0.0);
  DDUP_CHECK(config.adversarial_fraction > 0.0 &&
             config.adversarial_fraction <= 1.0);

  DriftStream stream;
  stream.scenario = config.scenario;
  stream.onset_batch = config.onset_batch;
  stream.base = MakeDataset(config.dataset, config.base_rows, config.seed);

  Rng root(config.seed ^ Fnv1a64(config.scenario));
  Rng pool_rng = root.Fork();

  // Build the scenario's drifted pool once, up front (fixed fork order).
  storage::Table drift_pool;
  std::vector<int64_t> desc_order;
  if (config.scenario == "correlation_flip") {
    const int flip_col =
        stream.base.ColumnIndex(AqpColumnsFor(config.dataset).numeric);
    DDUP_CHECK(flip_col >= 0);
    drift_pool = FlipColumnAssociation(stream.base, flip_col);
  } else if (config.scenario == "append_skew") {
    const int skew_col =
        stream.base.ColumnIndex(AqpColumnsFor(config.dataset).numeric);
    DDUP_CHECK(skew_col >= 0);
    const storage::Column& col = stream.base.column(skew_col);
    desc_order.resize(static_cast<size_t>(stream.base.num_rows()));
    std::iota(desc_order.begin(), desc_order.end(), int64_t{0});
    std::stable_sort(desc_order.begin(), desc_order.end(),
                     [&](int64_t a, int64_t b) {
                       return col.NumericAt(a) > col.NumericAt(b);
                     });
  } else {
    drift_pool = storage::PermuteJointDistribution(stream.base, pool_rng);
  }

  const int onset = config.onset_batch;
  for (int i = 0; i < config.num_batches; ++i) {
    Rng batch_rng = root.Fork();  // batch i depends only on (config, i)
    const bool past_onset = i >= onset;
    bool drifted = past_onset;
    storage::Table batch;

    if (config.scenario == "sudden" || config.scenario == "correlation_flip") {
      batch = DrawRows(past_onset ? drift_pool : stream.base, batch_rng,
                       config.batch_rows);
    } else if (config.scenario == "gradual") {
      if (!past_onset) {
        batch = DrawRows(stream.base, batch_rng, config.batch_rows);
      } else {
        const double f =
            std::min(1.0, static_cast<double>(i - onset + 1) /
                              static_cast<double>(config.ramp_batches));
        batch = MixedBatch(stream.base, drift_pool, batch_rng,
                           config.batch_rows, f);
      }
    } else if (config.scenario == "recurring") {
      const bool in_season =
          past_onset && (i - onset) % config.period < config.period / 2;
      drifted = in_season;
      batch = DrawRows(in_season ? drift_pool : stream.base, batch_rng,
                       config.batch_rows);
    } else if (config.scenario == "append_skew") {
      if (!past_onset) {
        batch = DrawRows(stream.base, batch_rng, config.batch_rows);
      } else {
        batch = SkewedDraw(stream.base, desc_order, batch_rng,
                           config.batch_rows, config.skew_exponent);
      }
    } else {  // adversarial
      if (!past_onset) {
        batch = DrawRows(stream.base, batch_rng, config.batch_rows);
      } else {
        batch = MixedBatch(stream.base, drift_pool, batch_rng,
                           config.batch_rows, config.adversarial_fraction);
      }
    }

    stream.batches.push_back(std::move(batch));
    stream.drifted.push_back(drifted);
  }
  return stream;
}

}  // namespace ddup::datagen
