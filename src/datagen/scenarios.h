#ifndef DDUP_DATAGEN_SCENARIOS_H_
#define DDUP_DATAGEN_SCENARIOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ddup::datagen {

// Named drift scenarios: each one turns a base dataset into a time-ordered
// stream of insertion batches with per-batch ground-truth drift labels, so
// detectors can be scored on FPR / FNR / detection delay (bench_drift_grid).
//
//   "sudden"           clean until onset, then every batch drawn from a
//                      joint-permuted pool (the paper's OOD transform: all
//                      marginals preserved, joint destroyed).
//   "gradual"          after onset the permuted fraction ramps linearly
//                      from 1/ramp_batches to 1 over ramp_batches batches.
//   "recurring"        seasonal: after onset, alternating drifted and clean
//                      half-periods of length period/2 (drifted first).
//   "correlation_flip" clean until onset, then batches drawn from a pool
//                      whose AQP numeric column is rank-reversed — the
//                      column's value multiset is exactly preserved but its
//                      association with every other column flips sign.
//   "append_skew"      append-only workload whose sampler develops a bias:
//                      after onset rows are drawn with probability skewed
//                      toward the upper tail of the AQP numeric column.
//   "adversarial"      near-boundary updates: after onset every batch mixes
//                      a small constant fraction (adversarial_fraction) of
//                      permuted rows into clean data — drift that hovers at
//                      the edge of detectability instead of jumping past it.
//
// Determinism: the whole stream is a pure function of the config. A root
// generator is seeded from (seed, scenario name) and forked once for the
// scenario's drift pool and once per batch, in a fixed order — so batch i
// depends only on (config, i). In particular the first k batches are
// byte-identical across two configs that differ only in num_batches > k.
struct ScenarioConfig {
  std::string scenario = "sudden";
  std::string dataset = "census";  // datagen::MakeDataset name
  int64_t base_rows = 4000;
  int64_t batch_rows = 250;
  int num_batches = 24;
  // Index of the first drifted batch; num_batches means "never drifts".
  int onset_batch = 8;
  // gradual: batches from onset to full drift.
  int ramp_batches = 8;
  // recurring: full season length; the first period/2 of each is drifted.
  int period = 8;
  // append_skew: tail bias strength (0 = uniform; rank ~ u^(1+exponent)).
  double skew_exponent = 2.0;
  // adversarial: constant drifted fraction mixed into post-onset batches.
  double adversarial_fraction = 0.25;
  uint64_t seed = 42;
};

struct DriftStream {
  std::string scenario;
  // The reference data detectors Fit against (also what a model trains on).
  storage::Table base;
  std::vector<storage::Table> batches;  // one per time step, in order
  std::vector<bool> drifted;            // ground truth, parallel to batches
  int onset_batch = 0;
};

// All scenario names, in taxonomy order.
std::vector<std::string> ScenarioNames();

// Generates the stream; CHECKs on malformed configs and unknown names.
DriftStream MakeScenario(const ScenarioConfig& config);

// The "correlation_flip" pool transform, exposed for testing: rank-reverses
// the values of numeric column `column` (each row receives the value
// mirrored in the column's sort order), preserving the column's multiset
// exactly while flipping the sign of its association with every other
// column.
storage::Table FlipColumnAssociation(const storage::Table& table, int column);

}  // namespace ddup::datagen

#endif  // DDUP_DATAGEN_SCENARIOS_H_
