#include "datagen/star_schema.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "storage/join.h"

namespace ddup::datagen {

using storage::Column;
using storage::Table;

Table StarDataset::Join() const { return JoinWithFact(fact); }

Table StarDataset::JoinWithFact(const Table& fact_part) const {
  DDUP_CHECK(dims.size() == join_keys.size());
  Table result = fact_part;
  for (size_t i = 0; i < dims.size(); ++i) {
    result = storage::HashJoin(result, join_keys[i].first, dims[i],
                               join_keys[i].second);
  }
  return result;
}

namespace {

std::vector<std::string> NumberedLabels(const std::string& prefix, int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace

StarDataset ImdbLike(int64_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  StarDataset ds;

  constexpr int kInfoTypes = 8;
  constexpr int kCompanies = 40;

  // Dimension 1: info_type(id, info_kind).
  {
    Table t("info_type");
    std::vector<double> ids;
    std::vector<int32_t> kind;
    for (int i = 0; i < kInfoTypes; ++i) {
      ids.push_back(i);
      kind.push_back(static_cast<int32_t>(i % 4));
    }
    t.AddColumn(Column::Numeric("it_id", ids));
    t.AddColumn(Column::Categorical("info_kind", kind, NumberedLabels("kind", 4)));
    ds.dims.push_back(std::move(t));
  }
  // Dimension 2: company(id, country).
  {
    Table t("company");
    std::vector<double> ids;
    std::vector<int32_t> country;
    for (int i = 0; i < kCompanies; ++i) {
      ids.push_back(i);
      country.push_back(static_cast<int32_t>(rng.Zipf(12, 1.1)));
    }
    t.AddColumn(Column::Numeric("co_id", ids));
    t.AddColumn(
        Column::Categorical("country", country, NumberedLabels("ctry", 12)));
    ds.dims.push_back(std::move(t));
  }

  // Fact: one row per title; production era drifts with row index so later
  // partitions are genuinely OOD.
  {
    Table t("title");
    std::vector<int32_t> info_type_id(static_cast<size_t>(fact_rows));
    std::vector<double> company_id(static_cast<size_t>(fact_rows));
    std::vector<double> production_year(static_cast<size_t>(fact_rows));
    std::vector<double> num_votes(static_cast<size_t>(fact_rows));
    for (int64_t r = 0; r < fact_rows; ++r) {
      double time = static_cast<double>(r) / std::max<int64_t>(1, fact_rows - 1);
      // Era drifts from ~1965 to ~2015; popular info types shift too.
      double year_mean = 1965.0 + 50.0 * time;
      production_year[static_cast<size_t>(r)] = std::clamp(
          std::round(rng.Normal(year_mean, 8.0)), 1950.0, 2022.0);
      int it_peak = static_cast<int>(time * (kInfoTypes - 1));
      int it = static_cast<int>(rng.UniformInt(0, kInfoTypes - 1));
      if (rng.Bernoulli(0.7)) it = it_peak;  // 70% mass at the era's type
      info_type_id[static_cast<size_t>(r)] = static_cast<int32_t>(it);
      company_id[static_cast<size_t>(r)] =
          static_cast<double>(rng.Zipf(kCompanies, 0.9 + 0.6 * time));
      num_votes[static_cast<size_t>(r)] = std::max(
          1.0, std::round(std::exp(rng.Normal(5.0 + 2.0 * time, 1.0))));
    }
    t.AddColumn(Column::Categorical("info_type_id", info_type_id,
                                    NumberedLabels("it", kInfoTypes)));
    t.AddColumn(Column::Numeric("company_id", company_id));
    t.AddColumn(Column::Numeric("production_year", production_year));
    t.AddColumn(Column::Numeric("num_votes", num_votes));
    ds.fact = std::move(t);
  }

  // Joining info_type on its numeric id requires the fact key to be numeric;
  // info_type_id is categorical whose codes equal it_id values, so join via a
  // shadow numeric column. Simpler: join company first (numeric keys), then
  // info_type through a numeric copy added below.
  {
    std::vector<double> it_numeric(static_cast<size_t>(fact_rows));
    for (int64_t r = 0; r < fact_rows; ++r) {
      it_numeric[static_cast<size_t>(r)] =
          static_cast<double>(ds.fact.column("info_type_id").CodeAt(r));
    }
    ds.fact.AddColumn(Column::Numeric("it_fk", std::move(it_numeric)));
  }
  ds.join_keys = {{"company_id", "co_id"}, {"it_fk", "it_id"}};
  std::swap(ds.dims[0], ds.dims[1]);  // order dims to match join_keys
  return ds;
}

StarDataset TpchLike(int64_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  StarDataset ds;

  constexpr int kCustomers = 600;
  constexpr int kNations = 25;

  // nation(n_nationkey, n_region).
  {
    Table t("nation");
    std::vector<double> keys;
    std::vector<int32_t> region;
    for (int i = 0; i < kNations; ++i) {
      keys.push_back(i);
      region.push_back(static_cast<int32_t>(i % 5));
    }
    t.AddColumn(Column::Numeric("n_nationkey", keys));
    t.AddColumn(Column::Categorical("n_region", region, NumberedLabels("rg", 5)));
    ds.dims.push_back(std::move(t));
  }
  // customer(c_custkey, c_nationkey, c_mktsegment).
  {
    Table t("customer");
    std::vector<double> keys(static_cast<size_t>(kCustomers));
    std::vector<double> nation(static_cast<size_t>(kCustomers));
    std::vector<int32_t> segment(static_cast<size_t>(kCustomers));
    for (int i = 0; i < kCustomers; ++i) {
      keys[static_cast<size_t>(i)] = i;
      nation[static_cast<size_t>(i)] =
          static_cast<double>(rng.Zipf(kNations, 0.8));
      segment[static_cast<size_t>(i)] = static_cast<int32_t>(rng.Zipf(5, 0.6));
    }
    t.AddColumn(Column::Numeric("c_custkey", keys));
    t.AddColumn(Column::Numeric("c_nationkey", nation));
    t.AddColumn(Column::Categorical("c_mktsegment", segment,
                                    NumberedLabels("seg", 5)));
    ds.dims.push_back(std::move(t));
  }

  // orders fact: o_custkey drifts toward high-id customers over time, but
  // (o_orderdate, o_totalprice) stays stationary by construction.
  {
    Table t("orders");
    std::vector<double> custkey(static_cast<size_t>(fact_rows));
    std::vector<int32_t> orderdate(static_cast<size_t>(fact_rows));
    std::vector<double> totalprice(static_cast<size_t>(fact_rows));
    std::vector<int32_t> priority(static_cast<size_t>(fact_rows));
    constexpr int kMonths = 24;
    for (int64_t r = 0; r < fact_rows; ++r) {
      double time = static_cast<double>(r) / std::max<int64_t>(1, fact_rows - 1);
      double center = time * (kCustomers - 1);
      double ck = rng.Normal(center, kCustomers / 6.0);
      custkey[static_cast<size_t>(r)] =
          std::clamp(std::round(ck), 0.0, static_cast<double>(kCustomers - 1));
      int month = static_cast<int>(rng.UniformInt(0, kMonths - 1));
      orderdate[static_cast<size_t>(r)] = static_cast<int32_t>(month);
      // Price depends on the month (seasonality) but not on time.
      double base = 1000.0 + 150.0 * (month % 12);
      totalprice[static_cast<size_t>(r)] =
          std::max(50.0, rng.Normal(base, 220.0));
      priority[static_cast<size_t>(r)] = static_cast<int32_t>(rng.Zipf(5, 0.5));
    }
    t.AddColumn(Column::Numeric("o_custkey", custkey));
    t.AddColumn(Column::Categorical("o_orderdate", orderdate,
                                    NumberedLabels("m", kMonths)));
    t.AddColumn(Column::Numeric("o_totalprice", totalprice));
    t.AddColumn(Column::Categorical("o_orderpriority", priority,
                                    NumberedLabels("pr", 5)));
    ds.fact = std::move(t);
  }
  ds.join_keys = {{"o_custkey", "c_custkey"}, {"c_nationkey", "n_nationkey"}};
  std::swap(ds.dims[0], ds.dims[1]);  // customer first, then nation
  return ds;
}

std::pair<std::string, std::string> JoinAqpColumnsFor(const std::string& name) {
  // §5.1.2: IMDB:[info_type_id, production_year]; TPCH:[orderdate, totalprice].
  if (name == "imdb") return {"info_type_id", "production_year"};
  if (name == "tpch") return {"o_orderdate", "o_totalprice"};
  DDUP_CHECK_MSG(false, "unknown join dataset '" + name + "'");
  return {};
}

}  // namespace ddup::datagen
