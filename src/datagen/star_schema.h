#ifndef DDUP_DATAGEN_STAR_SCHEMA_H_
#define DDUP_DATAGEN_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/table.h"

namespace ddup::datagen {

// A fact table plus dimension tables joined in a chain, standing in for the
// paper's 3-table JOB (title ⋈ movie_info_idx ⋈ movie_companies) and TPC-H
// (orders ⋈ customer ⋈ nation) joins (§5.4). The fact table is generated in
// "time order": its row index acts as insertion time, so splitting it into
// contiguous partitions yields the paper's update dynamics.
struct StarDataset {
  storage::Table fact;
  std::vector<storage::Table> dims;
  // Join steps applied left-to-right: step i joins the running result's
  // `first` column with dims[i]'s `second` column.
  std::vector<std::pair<std::string, std::string>> join_keys;

  // fact ⋈ dims[0] ⋈ dims[1] ⋈ ... using the steps above.
  storage::Table Join() const;
  // Same, but with `fact_part` substituted for the full fact table — used to
  // compute the new data D_t = (new fact partition) ⋈ dims (§4.5).
  storage::Table JoinWithFact(const storage::Table& fact_part) const;
};

// JOB-like: fact "title" rows with info_type/company foreign keys and a
// production_year that drifts over time (later partitions are OOD).
StarDataset ImdbLike(int64_t fact_rows, uint64_t seed);

// TPCH-like: orders ⋈ customer ⋈ nation chain. The AQP template columns
// (o_orderdate, o_totalprice) are kept stationary over time while customer
// mix drifts — reproducing the paper's observation that DBEst++ saw no OOD
// on TPCH while the full-joint models did.
StarDataset TpchLike(int64_t fact_rows, uint64_t seed);

// AQP template (categorical, numeric) pairs on the *joined* tables.
std::pair<std::string, std::string> JoinAqpColumnsFor(const std::string& name);

}  // namespace ddup::datagen

#endif  // DDUP_DATAGEN_STAR_SCHEMA_H_
