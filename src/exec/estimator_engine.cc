#include "exec/estimator_engine.h"

#include <map>
#include <memory>
#include <utility>

namespace ddup::exec {

namespace {

// Shared fail-fast scalar loop. The "query <i>: " prefix matches the default
// batch implementations in core/interfaces.cc exactly, so engines agree on
// errors as well as answers.
template <typename ScalarFn>
Status LoopScalar(size_t n, std::vector<double>* out, const ScalarFn& fn) {
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StatusOr<double> one = fn(i);
    if (!one.ok()) {
      return Status(one.status().code(), "query " + std::to_string(i) + ": " +
                                             one.status().message());
    }
    out->push_back(one.value());
  }
  return Status::OK();
}

// Ground truth: one scalar estimate per query, each with its own derived
// context — the batch is nothing but a loop. Every other engine is measured
// against this one.
class ReferenceEngine : public EstimatorEngine {
 public:
  std::string name() const override { return "reference"; }

  Status EstimateCardinalityBatch(const core::CardinalityEstimator& estimator,
                                  const workload::QueryBatch& batch,
                                  std::vector<double>* out) const override {
    return LoopScalar(batch.queries.size(), out, [&](size_t i) {
      return estimator.TryEstimateCardinality(batch.queries[i]);
    });
  }

  Status EstimateAqpBatch(const core::AqpEstimator& estimator,
                          const storage::Table& schema,
                          const workload::QueryBatch& batch,
                          std::vector<double>* out) const override {
    return LoopScalar(batch.queries.size(), out, [&](size_t i) {
      return estimator.TryEstimateAqp(batch.queries[i], schema);
    });
  }
};

// Fast path: hand the whole batch to the estimator's batched entry point.
// Models with vectorized overrides amortize per-call setup (weight freeze,
// scratch, kernel dispatch) across the batch; models without one fall back
// to the interface default, which is the reference loop.
class VectorizedEngine : public EstimatorEngine {
 public:
  std::string name() const override { return "vectorized"; }

  Status EstimateCardinalityBatch(const core::CardinalityEstimator& estimator,
                                  const workload::QueryBatch& batch,
                                  std::vector<double>* out) const override {
    return estimator.TryEstimateCardinalityBatch(batch.queries, out);
  }

  Status EstimateAqpBatch(const core::AqpEstimator& estimator,
                          const storage::Table& schema,
                          const workload::QueryBatch& batch,
                          std::vector<double>* out) const override {
    return estimator.TryEstimateAqpBatch(batch.queries, schema, out);
  }
};

const std::map<std::string, std::unique_ptr<EstimatorEngine>>& Registry() {
  static const auto* registry = [] {
    auto* m = new std::map<std::string, std::unique_ptr<EstimatorEngine>>();
    m->emplace("reference", std::make_unique<ReferenceEngine>());
    m->emplace("vectorized", std::make_unique<VectorizedEngine>());
    return m;
  }();
  return *registry;
}

}  // namespace

const EstimatorEngine* FindEstimatorEngine(const std::string& name) {
  const auto& registry = Registry();
  auto it = registry.find(name);
  return it == registry.end() ? nullptr : it->second.get();
}

std::vector<std::string> RegisteredEstimatorEngines() {
  std::vector<std::string> names;
  for (const auto& [name, engine] : Registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace ddup::exec
