#ifndef DDUP_EXEC_ESTIMATOR_ENGINE_H_
#define DDUP_EXEC_ESTIMATOR_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/interfaces.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::exec {

// Batch-estimate execution engine (DESIGN.md §13). The estimator interfaces
// in core/interfaces.h are the *spec*: scalar answers with deterministic
// per-query RNG streams. An engine is one way to execute a whole
// workload::QueryBatch against that spec — crex-style, one spec / many
// engines — and every registered engine must return byte-identical answers
// (and identical error codes/messages) to the "reference" engine, enforced
// by tests/exec_differential_test.cc.
//
// Engines are stateless and const: all per-call state lives in the
// estimator's EstimateContext (derived per query) and the calling thread's
// MatrixPool. Any number of threads may drive the same engine instance
// against the same immutable estimator concurrently.
class EstimatorEngine {
 public:
  virtual ~EstimatorEngine() = default;

  virtual std::string name() const = 0;

  // out[i] = cardinality estimate for batch.queries[i] (out is resized).
  // Fails fast on the first invalid query; the error names its index and
  // `out` is unspecified.
  virtual Status EstimateCardinalityBatch(
      const core::CardinalityEstimator& estimator,
      const workload::QueryBatch& batch, std::vector<double>* out) const = 0;

  // Same contract for AQP estimates (`schema` resolves column names).
  virtual Status EstimateAqpBatch(const core::AqpEstimator& estimator,
                                  const storage::Table& schema,
                                  const workload::QueryBatch& batch,
                                  std::vector<double>* out) const = 0;
};

// Engine registry. "reference" loops the scalar path one query at a time
// (the ground truth); "vectorized" drives the estimator's batched entry
// points (a single fused forward over all queries' sample paths for the
// DARN, per-category mixture reuse for the MDN). Returns nullptr for an
// unknown name. Instances are process-lifetime singletons.
const EstimatorEngine* FindEstimatorEngine(const std::string& name);

// Sorted names of every registered engine (the differential harness and the
// bench iterate these, so new engines are covered without edits there).
std::vector<std::string> RegisteredEstimatorEngines();

}  // namespace ddup::exec

#endif  // DDUP_EXEC_ESTIMATOR_ENGINE_H_
