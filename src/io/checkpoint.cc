#include "io/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "io/serializer.h"

namespace ddup::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    data.append(buf, n);
  }
  if (std::ferror(f.get())) return Status::IoError("read failed: " + path);
  return data;
}

// Little-endian header readers over the raw image. The container is parsed
// by offset (not through Deserializer) so section payloads stay views into
// the image instead of being copied out one by one.
bool ReadU8At(std::string_view d, size_t* pos, uint8_t* v) {
  if (d.size() - *pos < 1) return false;
  *v = static_cast<uint8_t>(d[(*pos)++]);
  return true;
}

bool ReadU32At(std::string_view d, size_t* pos, uint32_t* v) {
  if (d.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(d[(*pos)++]))
          << (8 * i);
  }
  return true;
}

bool ReadU64At(std::string_view d, size_t* pos, uint64_t* v) {
  if (d.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(d[(*pos)++]))
          << (8 * i);
  }
  return true;
}

bool ReadNameAt(std::string_view d, size_t* pos, std::string* name) {
  uint64_t n = 0;
  if (!ReadU64At(d, pos, &n)) return false;
  if (n > d.size() - *pos) return false;
  name->assign(d.data() + *pos, static_cast<size_t>(n));
  *pos += static_cast<size_t>(n);
  return true;
}

}  // namespace

CheckpointWriter::CheckpointWriter(const Codec* codec)
    : codec_(codec != nullptr ? codec
                              : FindCodecByName(kDefaultCheckpointCodec)) {}

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string CheckpointWriter::Encode() const {
  Serializer out;
  out.WriteU64(kCheckpointMagic);
  out.WriteU32(kCheckpointFormatVersion);
  out.WriteU32(static_cast<uint32_t>(sections_.size()));
  std::string encoded;
  for (const auto& [name, payload] : sections_) {
    const Codec* used = codec_;
    if (used->id() != kCodecRaw) {
      encoded.clear();
      used->Compress(payload, &encoded);
      // Store incompressible sections raw: ratio never drops below 1 and
      // the section stays zero-copy on the mmap read path.
      if (encoded.size() >= payload.size()) used = FindCodec(kCodecRaw);
    }
    const std::string& stored = used->id() == kCodecRaw ? payload : encoded;
    out.WriteString(name);
    out.WriteU8(used->id());
    out.WriteU64(payload.size());
    out.WriteU64(stored.size());
    out.WriteU32(Crc32(stored));
    out.WriteRaw(stored);
  }
  return out.Take();
}

Status CheckpointWriter::WriteToFile(const std::string& path) const {
  std::string image = Encode();
  std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::IoError("cannot open for write: " + tmp);
    if (!image.empty() &&
        std::fwrite(image.data(), 1, image.size(), f.get()) != image.size()) {
      f.reset();
      std::remove(tmp.c_str());
      return Status::IoError("short write: " + tmp);
    }
    if (std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return Status::IoError("flush failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  return Status::OK();
}

StatusOr<CheckpointReader> CheckpointReader::Parse(CheckpointReader reader,
                                                   bool verify_eagerly) {
  const std::string_view image = reader.image();
  size_t pos = 0;
  uint64_t magic = 0;
  if (!ReadU64At(image, &pos, &magic) || magic != kCheckpointMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint32_t version = 0;
  if (!ReadU32At(image, &pos, &version)) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (version != 1 && version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (expected " + std::to_string(kCheckpointFormatVersion) + ")");
  }
  reader.format_version_ = version;
  uint32_t count = 0;
  if (!ReadU32At(image, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint section");
  }
  reader.sections_.clear();
  reader.sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry entry;
    if (!ReadNameAt(image, &pos, &entry.name)) {
      return Status::InvalidArgument("truncated checkpoint section");
    }
    if (version >= 2) {
      if (!ReadU8At(image, &pos, &entry.codec) ||
          !ReadU64At(image, &pos, &entry.uncompressed_bytes) ||
          !ReadU64At(image, &pos, &entry.stored_bytes) ||
          !ReadU32At(image, &pos, &entry.crc)) {
        return Status::InvalidArgument("truncated checkpoint section");
      }
      if (FindCodec(entry.codec) == nullptr) {
        return Status::InvalidArgument(
            "unknown checkpoint codec id " + std::to_string(entry.codec) +
            " in section: " + entry.name);
      }
      if (entry.codec == kCodecRaw &&
          entry.stored_bytes != entry.uncompressed_bytes) {
        return Status::InvalidArgument(
            "raw checkpoint section length mismatch: " + entry.name);
      }
    } else {
      if (!ReadU64At(image, &pos, &entry.stored_bytes) ||
          !ReadU32At(image, &pos, &entry.crc)) {
        return Status::InvalidArgument("truncated checkpoint section");
      }
      entry.codec = kCodecRaw;
      entry.uncompressed_bytes = entry.stored_bytes;
    }
    if (entry.stored_bytes > image.size() - pos) {
      return Status::InvalidArgument("truncated checkpoint section");
    }
    entry.offset = pos;
    pos += static_cast<size_t>(entry.stored_bytes);
    if (verify_eagerly) {
      if (Crc32(image.data() + entry.offset, entry.stored_bytes) !=
          entry.crc) {
        return Status::InvalidArgument("checkpoint section CRC mismatch: " +
                                       entry.name);
      }
      entry.verified = true;
    }
    reader.sections_.push_back(std::move(entry));
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes after checkpoint sections");
  }
  return reader;
}

StatusOr<CheckpointReader> CheckpointReader::FromBuffer(std::string buffer) {
  CheckpointReader reader;
  reader.owned_image_ = std::move(buffer);
  reader.use_mapping_ = false;
  return Parse(std::move(reader), /*verify_eagerly=*/true);
}

StatusOr<CheckpointReader> CheckpointReader::FromFile(const std::string& path) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return FromFileBuffered(path);
  CheckpointReader reader;
  reader.mapped_ = std::move(mapped).value();
  reader.use_mapping_ = true;
  return Parse(std::move(reader), /*verify_eagerly=*/false);
}

StatusOr<CheckpointReader> CheckpointReader::FromFileBuffered(
    const std::string& path) {
  StatusOr<std::string> data = ReadWholeFile(path);
  if (!data.ok()) return data.status();
  return FromBuffer(std::move(data).value());
}

std::string_view CheckpointReader::image() const {
  return use_mapping_ ? mapped_.data() : std::string_view(owned_image_);
}

const CheckpointReader::Entry* CheckpointReader::FindEntry(
    const std::string& name) const {
  for (const Entry& e : sections_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

StatusOr<std::string_view> CheckpointReader::Payload(const Entry& entry) const {
  const std::string_view image_view = image();
  const std::string_view stored(image_view.data() + entry.offset,
                                static_cast<size_t>(entry.stored_bytes));
  if (!entry.verified) {
    if (Crc32(stored.data(), stored.size()) != entry.crc) {
      return Status::InvalidArgument("checkpoint section CRC mismatch: " +
                                     entry.name);
    }
    entry.verified = true;
  }
  if (entry.codec == kCodecRaw) return stored;
  if (entry.decoded == nullptr) {
    const Codec* codec = FindCodec(entry.codec);  // validated at parse time
    auto decoded = std::make_unique<std::string>();
    Status status = codec->Decompress(
        stored, static_cast<size_t>(entry.uncompressed_bytes), decoded.get());
    if (!status.ok()) {
      return Status::InvalidArgument("checkpoint section decode failed: " +
                                     entry.name + " (" + status.message() +
                                     ")");
    }
    if (decoded->size() != entry.uncompressed_bytes) {
      return Status::InvalidArgument(
          "checkpoint section decompressed-length mismatch: " + entry.name);
    }
    entry.decoded = std::move(decoded);
  }
  return std::string_view(*entry.decoded);
}

bool CheckpointReader::Has(const std::string& name) const {
  return FindEntry(name) != nullptr;
}

StatusOr<std::string> CheckpointReader::Section(const std::string& name) const {
  StatusOr<std::string_view> view = SectionView(name);
  if (!view.ok()) return view.status();
  return std::string(view.value());
}

StatusOr<std::string_view> CheckpointReader::SectionView(
    const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("checkpoint section not found: " + name);
  }
  return Payload(*entry);
}

StatusOr<CheckpointReader::SectionInfo> CheckpointReader::Info(
    const std::string& name) const {
  const Entry* entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("checkpoint section not found: " + name);
  }
  return SectionInfo{entry->name, entry->codec, entry->stored_bytes,
                     entry->uncompressed_bytes};
}

std::vector<CheckpointReader::SectionInfo> CheckpointReader::Sections() const {
  std::vector<SectionInfo> infos;
  infos.reserve(sections_.size());
  for (const Entry& e : sections_) {
    infos.push_back(SectionInfo{e.name, e.codec, e.stored_bytes,
                                e.uncompressed_bytes});
  }
  return infos;
}

Status WriteSectionFile(const std::string& path, const std::string& kind,
                        std::string payload, const Codec* codec) {
  CheckpointWriter writer(codec);
  writer.AddSection(kind, std::move(payload));
  return writer.WriteToFile(path);
}

StatusOr<std::string> ReadSectionFile(const std::string& path,
                                      const std::string& kind) {
  StatusOr<CheckpointReader> reader = CheckpointReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> payload = reader.value().Section(kind);
  if (!payload.ok()) {
    // Only a missing section means "wrong model kind" — CRC/decode failures
    // must surface as what they are, not be masked as a kind mismatch.
    if (payload.status().code() == StatusCode::kNotFound &&
        reader.value().num_sections() == 1) {
      return Status::InvalidArgument("checkpoint kind mismatch: expected '" +
                                     kind + "'");
    }
    return payload.status();
  }
  return payload;
}

}  // namespace ddup::io
