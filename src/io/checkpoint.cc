#include "io/checkpoint.h"

#include <cstdio>
#include <memory>

#include "io/serializer.h"

namespace ddup::io {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    data.append(buf, n);
  }
  if (std::ferror(f.get())) return Status::IoError("read failed: " + path);
  return data;
}

}  // namespace

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string CheckpointWriter::Encode() const {
  Serializer out;
  out.WriteU64(kCheckpointMagic);
  out.WriteU32(kCheckpointFormatVersion);
  out.WriteU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    out.WriteString(name);
    out.WriteU64(payload.size());
    out.WriteU32(Crc32(payload));
    out.WriteRaw(payload);
  }
  return out.Take();
}

Status CheckpointWriter::WriteToFile(const std::string& path) const {
  std::string image = Encode();
  std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::IoError("cannot open for write: " + tmp);
    if (!image.empty() &&
        std::fwrite(image.data(), 1, image.size(), f.get()) != image.size()) {
      f.reset();
      std::remove(tmp.c_str());
      return Status::IoError("short write: " + tmp);
    }
    if (std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      return Status::IoError("flush failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  return Status::OK();
}

StatusOr<CheckpointReader> CheckpointReader::FromBuffer(std::string buffer) {
  Deserializer in(std::move(buffer));
  uint64_t magic = in.ReadU64();
  if (!in.ok() || magic != kCheckpointMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint32_t version = in.ReadU32();
  if (!in.ok() || version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (expected " + std::to_string(kCheckpointFormatVersion) + ")");
  }
  uint32_t count = in.ReadU32();
  CheckpointReader reader;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = in.ReadString();
    uint64_t length = in.ReadU64();
    uint32_t crc = in.ReadU32();
    if (!in.ok() || length > in.remaining()) {
      return Status::InvalidArgument("truncated checkpoint section");
    }
    std::string payload = in.ReadRaw(length);
    if (!in.ok()) return Status::InvalidArgument("truncated checkpoint section");
    if (Crc32(payload) != crc) {
      return Status::InvalidArgument("checkpoint section CRC mismatch: " + name);
    }
    reader.sections_.emplace_back(std::move(name), std::move(payload));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after checkpoint sections");
  }
  return reader;
}

StatusOr<CheckpointReader> CheckpointReader::FromFile(const std::string& path) {
  StatusOr<std::string> data = ReadWholeFile(path);
  if (!data.ok()) return data.status();
  return FromBuffer(std::move(data).value());
}

bool CheckpointReader::Has(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return true;
  }
  return false;
}

StatusOr<std::string> CheckpointReader::Section(const std::string& name) const {
  for (const auto& [n, p] : sections_) {
    if (n == name) return p;
  }
  return Status::NotFound("checkpoint section not found: " + name);
}

Status WriteSectionFile(const std::string& path, const std::string& kind,
                        std::string payload) {
  CheckpointWriter writer;
  writer.AddSection(kind, std::move(payload));
  return writer.WriteToFile(path);
}

StatusOr<std::string> ReadSectionFile(const std::string& path,
                                      const std::string& kind) {
  StatusOr<CheckpointReader> reader = CheckpointReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> payload = reader.value().Section(kind);
  if (!payload.ok()) {
    if (reader.value().num_sections() == 1) {
      return Status::InvalidArgument(
          "checkpoint kind mismatch: expected '" + kind + "'");
    }
    return payload.status();
  }
  return payload;
}

}  // namespace ddup::io
