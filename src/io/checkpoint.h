#ifndef DDUP_IO_CHECKPOINT_H_
#define DDUP_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ddup::io {

// Versioned checkpoint container (DESIGN.md §9). Layout, all little-endian:
//
//   u64  magic      "DDUPCKP1"
//   u32  format version
//   u32  section count
//   per section:
//     string  name      (u64 length + bytes)
//     u64     payload length
//     u32     CRC-32 of the payload bytes
//     bytes   payload
//
// Sections are opaque byte strings produced by io::Serializer; each model
// family owns its payload schema and versions it independently with a
// leading u32 (see the model Save/Load implementations). The container
// rejects bad magic, unknown format versions, truncation, and per-section
// CRC mismatches before any payload is interpreted.
inline constexpr uint64_t kCheckpointMagic = 0x31504B4350554444ULL;  // "DDUPCKP1"
inline constexpr uint32_t kCheckpointFormatVersion = 1;

class CheckpointWriter {
 public:
  void AddSection(std::string name, std::string payload);

  // The full container image.
  std::string Encode() const;
  // Writes Encode() to `path` via a same-directory temp file + rename, so a
  // concurrent reader never observes a half-written checkpoint.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

class CheckpointReader {
 public:
  // By value: pass an rvalue (as FromFile does) to avoid copying the image.
  static StatusOr<CheckpointReader> FromBuffer(std::string buffer);
  static StatusOr<CheckpointReader> FromFile(const std::string& path);

  bool Has(const std::string& name) const;
  // The named section's payload; NotFound if absent.
  StatusOr<std::string> Section(const std::string& name) const;
  int num_sections() const { return static_cast<int>(sections_.size()); }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

// Single-section conveniences used by the model Save/Load paths: the section
// name doubles as the model-kind tag, so loading a checkpoint of the wrong
// family fails with a clear error instead of misinterpreting bytes.
Status WriteSectionFile(const std::string& path, const std::string& kind,
                        std::string payload);
StatusOr<std::string> ReadSectionFile(const std::string& path,
                                      const std::string& kind);

}  // namespace ddup::io

#endif  // DDUP_IO_CHECKPOINT_H_
