#ifndef DDUP_IO_CHECKPOINT_H_
#define DDUP_IO_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/codec.h"
#include "io/mmap_file.h"

namespace ddup::io {

// Versioned checkpoint container (DESIGN.md §9, §16). Layout, all
// little-endian:
//
//   u64  magic      "DDUPCKP1"
//   u32  format version
//   u32  section count
//   per section (format version 2, the current writer):
//     string  name      (u64 length + bytes)
//     u8      codec id             (io/codec.h; 0 = raw)
//     u64     uncompressed length
//     u64     stored length        (encoded payload bytes that follow)
//     u32     CRC-32 of the STORED bytes
//     bytes   stored payload
//   per section (format version 1, still readable bit-identically):
//     string  name
//     u64     payload length
//     u32     CRC-32 of the payload bytes
//     bytes   payload
//
// Sections are opaque byte strings produced by io::Serializer; each model
// family owns its payload schema and versions it independently with a
// leading u32 (see the model Save/Load implementations). The container
// rejects bad magic, unknown format versions, truncation, unknown codec
// ids and per-section CRC mismatches — the CRC covers the stored (encoded)
// bytes, so corruption is caught before any decompressor touches the data.
// "DDUPCKP1" little-endian.
inline constexpr uint64_t kCheckpointMagic = 0x31504B4350554444ULL;
inline constexpr uint32_t kCheckpointFormatVersion = 2;

class CheckpointWriter {
 public:
  // `codec` encodes every section (nullptr = the default compressed codec,
  // kDefaultCheckpointCodec). A section whose encoding is not smaller than
  // the payload is stored raw instead — ratio never drops below 1 and raw
  // sections stay zero-copy on the mmap read path.
  explicit CheckpointWriter(const Codec* codec = nullptr);

  void AddSection(std::string name, std::string payload);

  // The full container image (format version 2).
  std::string Encode() const;
  // Writes Encode() to `path` via a same-directory temp file + rename, so a
  // concurrent reader never observes a half-written checkpoint.
  Status WriteToFile(const std::string& path) const;

 private:
  const Codec* codec_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

class CheckpointReader {
 public:
  // Per-section metadata; uncompressed_bytes == stored_bytes for raw
  // sections (and every v1 section).
  struct SectionInfo {
    std::string name;
    uint8_t codec = kCodecRaw;
    uint64_t stored_bytes = 0;
    uint64_t uncompressed_bytes = 0;
  };

  // Parses an owned image. Sections reference the image in place — one
  // allocation per container, not one per section. CRCs are verified
  // eagerly here (the whole image is resident anyway).
  static StatusOr<CheckpointReader> FromBuffer(std::string buffer);
  // mmap-backed load: section payloads are views into the mapping, CRC
  // verification and decompression happen lazily on first access, so
  // untouched sections never fault their pages in. Falls back to the
  // buffered path when the file cannot be mapped.
  static StatusOr<CheckpointReader> FromFile(const std::string& path);
  // The pre-mmap path: reads the whole file into memory, verifies every
  // CRC up front. Kept public as the differential twin of FromFile
  // (tests byte-compare the two) and for callers that want eager
  // verification.
  static StatusOr<CheckpointReader> FromFileBuffered(const std::string& path);

  bool Has(const std::string& name) const;
  // The named section's payload as an owned copy (decompressed if needed);
  // NotFound if absent, InvalidArgument on a lazy CRC/decode failure.
  StatusOr<std::string> Section(const std::string& name) const;
  // Zero-copy variant: raw sections return a view into the container image
  // (mmap or owned buffer); compressed sections decode once into a cache
  // owned by the reader. Views are invalidated by destroying or moving the
  // reader — never let one outlive it (DESIGN.md §16). Not thread-safe:
  // lazy verification mutates the cache.
  StatusOr<std::string_view> SectionView(const std::string& name) const;
  StatusOr<SectionInfo> Info(const std::string& name) const;
  // All sections in container order.
  std::vector<SectionInfo> Sections() const;

  int num_sections() const { return static_cast<int>(sections_.size()); }
  uint32_t format_version() const { return format_version_; }
  // The raw container image this reader serves views from (tests use it to
  // pin the zero-copy property).
  std::string_view image() const;

 private:
  struct Entry {
    std::string name;
    uint8_t codec = kCodecRaw;
    size_t offset = 0;  // stored payload position within the image
    uint64_t stored_bytes = 0;
    uint64_t uncompressed_bytes = 0;
    uint32_t crc = 0;
    // Lazy-verification state (mmap path); the buffered paths verify at
    // parse time and construct entries pre-verified.
    mutable bool verified = false;
    // Decode cache for compressed sections. unique_ptr so the cached
    // string's buffer survives moves of the reader.
    mutable std::unique_ptr<std::string> decoded;
  };

  static StatusOr<CheckpointReader> Parse(CheckpointReader reader,
                                          bool verify_eagerly);
  const Entry* FindEntry(const std::string& name) const;
  // Verifies the CRC and (if compressed) decodes `entry`; returns the
  // payload view.
  StatusOr<std::string_view> Payload(const Entry& entry) const;

  uint32_t format_version_ = kCheckpointFormatVersion;
  // Exactly one of the two backs the image: an owned buffer or a mapping.
  std::string owned_image_;
  MappedFile mapped_;
  bool use_mapping_ = false;
  std::vector<Entry> sections_;
};

// Single-section conveniences used by the model Save/Load paths: the section
// name doubles as the model-kind tag, so loading a checkpoint of the wrong
// family fails with a clear error instead of misinterpreting bytes.
// `codec` follows the CheckpointWriter default (nullptr = compressed).
Status WriteSectionFile(const std::string& path, const std::string& kind,
                        std::string payload, const Codec* codec = nullptr);
StatusOr<std::string> ReadSectionFile(const std::string& path,
                                      const std::string& kind);

}  // namespace ddup::io

#endif  // DDUP_IO_CHECKPOINT_H_
