#include "io/codec.h"

#include <cstring>
#include <vector>

namespace ddup::io {

void PutVarint64(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view in, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (*pos >= in.size()) return false;
    uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // over-long encoding (> 10 bytes)
}

namespace {

// ---------------------------------------------------------------------------
// raw
// ---------------------------------------------------------------------------

class RawCodec final : public Codec {
 public:
  uint8_t id() const override { return kCodecRaw; }
  const char* name() const override { return "raw"; }
  void Compress(std::string_view input, std::string* out) const override {
    out->assign(input.data(), input.size());
  }
  Status Decompress(std::string_view input, size_t uncompressed_size,
                    std::string* out) const override {
    if (input.size() != uncompressed_size) {
      return Status::InvalidArgument("raw payload size mismatch");
    }
    out->assign(input.data(), input.size());
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// lz: LZ4-block-style greedy byte matching. Sequences of
//   [token: high nibble = literal length, low nibble = match length - 4]
//   [length extensions as 255-runs] [literals] [u16 LE offset] [extensions]
// with nibble value 15 meaning "extended". The final sequence carries
// literals only (no offset). Offsets are bounded by 64 KiB; matching uses a
// 16 Ki-entry hash table of 4-byte sequences, so compression is one pass
// with no allocation proportional to the input.
// ---------------------------------------------------------------------------

constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxOffset = 0xFFFF;
constexpr int kLzHashBits = 14;

inline uint32_t LzRead32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t LzHash(uint32_t seq) {
  return (seq * 2654435761u) >> (32 - kLzHashBits);
}

void LzPutLength(size_t extra, std::string* out) {
  while (extra >= 255) {
    out->push_back(static_cast<char>(0xFF));
    extra -= 255;
  }
  out->push_back(static_cast<char>(extra));
}

void LzEmit(const unsigned char* src, size_t lit_begin, size_t lit_end,
            size_t offset, size_t match_len, std::string* out) {
  const size_t lit = lit_end - lit_begin;
  const size_t match_code = match_len > 0 ? match_len - kLzMinMatch : 0;
  uint8_t token = static_cast<uint8_t>((lit < 15 ? lit : 15) << 4);
  if (match_len > 0) {
    token |= static_cast<uint8_t>(match_code < 15 ? match_code : 15);
  }
  out->push_back(static_cast<char>(token));
  if (lit >= 15) LzPutLength(lit - 15, out);
  out->append(reinterpret_cast<const char*>(src) + lit_begin, lit);
  if (match_len == 0) return;  // final literal-only sequence
  out->push_back(static_cast<char>(offset & 0xFF));
  out->push_back(static_cast<char>((offset >> 8) & 0xFF));
  if (match_code >= 15) LzPutLength(match_code - 15, out);
}

void LzCompress(std::string_view input, std::string* out) {
  out->clear();
  const size_t n = input.size();
  const auto* src = reinterpret_cast<const unsigned char*>(input.data());
  size_t anchor = 0;
  // The hash table stores pos+1 in 32 bits; inputs at or beyond 4 GiB fall
  // back to a literal-only encoding rather than overflowing positions.
  if (n > kLzMinMatch && n < 0xFFFFFFFFull) {
    std::vector<uint32_t> table(size_t{1} << kLzHashBits, 0);
    size_t pos = 0;
    const size_t limit = n - kLzMinMatch;  // last pos with a 4-byte read
    while (pos <= limit) {
      const uint32_t seq = LzRead32(src + pos);
      const uint32_t h = LzHash(seq);
      const size_t cand = table[h];
      table[h] = static_cast<uint32_t>(pos + 1);
      if (cand != 0 && pos + 1 - cand <= kLzMaxOffset &&
          LzRead32(src + cand - 1) == seq) {
        const size_t match_pos = cand - 1;
        size_t len = kLzMinMatch;
        while (pos + len < n && src[match_pos + len] == src[pos + len]) ++len;
        LzEmit(src, anchor, pos, pos - match_pos, len, out);
        pos += len;
        anchor = pos;
        continue;
      }
      ++pos;
    }
  }
  if (anchor < n) LzEmit(src, anchor, n, 0, 0, out);
}

// Reads a 255-run length extension; false on truncation.
bool LzGetLength(std::string_view in, size_t* ip, size_t* len) {
  for (;;) {
    if (*ip >= in.size()) return false;
    const uint8_t b = static_cast<uint8_t>(in[(*ip)++]);
    *len += b;
    if (b != 255) return true;
  }
}

Status LzCorrupt() { return Status::InvalidArgument("corrupt lz payload"); }

Status LzDecompress(std::string_view in, size_t out_size, std::string* out) {
  out->clear();
  // Reserving the full output up front makes every later append in-place:
  // the self-referencing match copies below rely on the buffer never
  // reallocating mid-append.
  out->reserve(out_size);
  size_t ip = 0;
  const size_t n = in.size();
  while (ip < n) {
    const uint8_t token = static_cast<uint8_t>(in[ip++]);
    size_t lit = token >> 4;
    if (lit == 15 && !LzGetLength(in, &ip, &lit)) return LzCorrupt();
    if (lit > n - ip || lit > out_size - out->size()) return LzCorrupt();
    out->append(in.data() + ip, lit);
    ip += lit;
    if (ip == n) break;  // final literal-only sequence
    if (n - ip < 2) return LzCorrupt();
    const size_t offset = static_cast<uint8_t>(in[ip]) |
                          (static_cast<size_t>(static_cast<uint8_t>(in[ip + 1]))
                           << 8);
    ip += 2;
    if (offset == 0 || offset > out->size()) return LzCorrupt();
    size_t match = token & 0x0F;
    if (match == 15 && !LzGetLength(in, &ip, &match)) return LzCorrupt();
    match += kLzMinMatch;
    if (match > out_size - out->size()) return LzCorrupt();
    const size_t from = out->size() - offset;
    if (offset >= match) {
      // Disjoint ranges; the reserve above keeps data() stable.
      out->append(out->data() + from, match);
    } else {
      // Overlapping (run-length) match: byte-by-byte replication.
      for (size_t i = 0; i < match; ++i) out->push_back((*out)[from + i]);
    }
  }
  if (out->size() != out_size) {
    return Status::InvalidArgument(
        "lz payload decodes to " + std::to_string(out->size()) +
        " bytes, expected " + std::to_string(out_size));
  }
  return Status::OK();
}

class LzCodec final : public Codec {
 public:
  uint8_t id() const override { return kCodecLz; }
  const char* name() const override { return "lz"; }
  void Compress(std::string_view input, std::string* out) const override {
    LzCompress(input, out);
  }
  Status Decompress(std::string_view input, size_t uncompressed_size,
                    std::string* out) const override {
    return LzDecompress(input, uncompressed_size, out);
  }
};

// ---------------------------------------------------------------------------
// shuffle: 8-byte-plane transpose, then lz. Doubles from one column share
// exponent/high-mantissa bytes; grouping byte plane k of every lane makes
// those runs contiguous, which the byte-matcher then collapses. The n % 8
// tail is carried through untransposed.
// ---------------------------------------------------------------------------

void ShuffleBytes(std::string_view in, std::string* out) {
  const size_t n = in.size();
  const size_t lanes = n / 8;
  out->resize(n);
  for (size_t plane = 0; plane < 8; ++plane) {
    char* dst = out->data() + plane * lanes;
    for (size_t i = 0; i < lanes; ++i) dst[i] = in[i * 8 + plane];
  }
  for (size_t i = lanes * 8; i < n; ++i) (*out)[i] = in[i];
}

void UnshuffleBytes(std::string_view in, std::string* out) {
  const size_t n = in.size();
  const size_t lanes = n / 8;
  out->resize(n);
  for (size_t plane = 0; plane < 8; ++plane) {
    const char* src = in.data() + plane * lanes;
    for (size_t i = 0; i < lanes; ++i) (*out)[i * 8 + plane] = src[i];
  }
  for (size_t i = lanes * 8; i < n; ++i) (*out)[i] = in[i];
}

class ShuffleCodec final : public Codec {
 public:
  uint8_t id() const override { return kCodecShuffle; }
  const char* name() const override { return "shuffle"; }
  void Compress(std::string_view input, std::string* out) const override {
    std::string shuffled;
    ShuffleBytes(input, &shuffled);
    LzCompress(shuffled, out);
  }
  Status Decompress(std::string_view input, size_t uncompressed_size,
                    std::string* out) const override {
    std::string shuffled;
    DDUP_RETURN_IF_ERROR(LzDecompress(input, uncompressed_size, &shuffled));
    UnshuffleBytes(shuffled, out);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// delta: little-endian u64 lanes, consecutive-lane deltas, zigzag + varint.
// Built for integer-ish lane streams (dictionary codes widened to u64,
// monotone ids, counters) where deltas are small; on such data a lane costs
// one or two bytes instead of eight. Arbitrary input stays lossless — a
// high-entropy lane just costs up to 10 varint bytes — and the n % 8 tail
// is stored raw.
// ---------------------------------------------------------------------------

class DeltaCodec final : public Codec {
 public:
  uint8_t id() const override { return kCodecDelta; }
  const char* name() const override { return "delta"; }

  void Compress(std::string_view input, std::string* out) const override {
    out->clear();
    const size_t lanes = input.size() / 8;
    uint64_t prev = 0;
    for (size_t i = 0; i < lanes; ++i) {
      uint64_t v = 0;
      std::memcpy(&v, input.data() + i * 8, 8);
      PutVarint64(ZigZagEncode(static_cast<int64_t>(v - prev)), out);
      prev = v;
    }
    out->append(input.data() + lanes * 8, input.size() - lanes * 8);
  }

  Status Decompress(std::string_view input, size_t uncompressed_size,
                    std::string* out) const override {
    out->clear();
    out->reserve(uncompressed_size);
    const size_t lanes = uncompressed_size / 8;
    const size_t tail = uncompressed_size - lanes * 8;
    size_t pos = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < lanes; ++i) {
      uint64_t z = 0;
      if (!GetVarint64(input, &pos, &z)) {
        return Status::InvalidArgument("corrupt delta payload");
      }
      const uint64_t v = prev + static_cast<uint64_t>(ZigZagDecode(z));
      char bytes[8];
      std::memcpy(bytes, &v, 8);
      out->append(bytes, 8);
      prev = v;
    }
    if (input.size() - pos != tail) {
      return Status::InvalidArgument(
          "delta payload decodes to the wrong length");
    }
    out->append(input.data() + pos, tail);
    return Status::OK();
  }
};

// memcpy on little-endian hosts writes the on-disk layout directly; the
// byte-level format is still defined as little-endian, matching the
// Serializer contract. On a big-endian host DeltaCodec would need explicit
// byte swaps — the same (theoretical) portability line the GEMM kernels and
// CRC table already draw.
static_assert(sizeof(double) == 8, "codecs assume 64-bit lanes");

const RawCodec kRaw;
const LzCodec kLz;
const ShuffleCodec kShuffle;
const DeltaCodec kDelta;
const Codec* const kCodecs[] = {&kRaw, &kLz, &kShuffle, &kDelta};

}  // namespace

const Codec* FindCodec(uint8_t id) {
  for (const Codec* codec : kCodecs) {
    if (codec->id() == id) return codec;
  }
  return nullptr;
}

const Codec* FindCodecByName(const std::string& name) {
  for (const Codec* codec : kCodecs) {
    if (name == codec->name()) return codec;
  }
  return nullptr;
}

std::vector<std::string> RegisteredCodecNames() {
  std::vector<std::string> names;
  for (const Codec* codec : kCodecs) names.emplace_back(codec->name());
  return names;
}

}  // namespace ddup::io
