#ifndef DDUP_IO_CODEC_H_
#define DDUP_IO_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ddup::io {

// Section compression codecs for the checkpoint container (DESIGN.md §16)
// and the packed micro-batch accumulator (storage/packed.h). A codec maps an
// arbitrary byte string to an encoded byte string and back, bit-exactly:
// Decompress(Compress(x), x.size()) == x for EVERY input. Codecs carry no
// per-stream state and no header of their own — the container records the
// codec id and the uncompressed length next to each section, and the CRC is
// computed over the ENCODED bytes so corruption is caught before any decode
// logic runs on hostile data.
//
// Ids are part of the on-disk format: never renumber or reuse them.
enum CodecId : uint8_t {
  kCodecRaw = 0,      // passthrough
  kCodecLz = 1,       // LZ4-block-style byte-match compression
  kCodecShuffle = 2,  // 8-byte-plane transpose + lz (doubles / u64 streams)
  kCodecDelta = 3,    // u64-lane delta + zigzag + varint (integer-ish lanes)
};

class Codec {
 public:
  virtual ~Codec() = default;
  virtual uint8_t id() const = 0;
  virtual const char* name() const = 0;
  // Replaces *out with the encoding of `input`. Never fails: every byte
  // string is encodable (the encoding may be larger than the input; the
  // container stores such sections raw instead).
  virtual void Compress(std::string_view input, std::string* out) const = 0;
  // Replaces *out with the decoded bytes; `uncompressed_size` is the decoded
  // size the caller expects (from the container header). Fails with
  // InvalidArgument on malformed input — bounds-checked everywhere, so a
  // hostile payload can never read or write out of range.
  virtual Status Decompress(std::string_view input, size_t uncompressed_size,
                            std::string* out) const = 0;
};

// Registry of the built-in codecs. Lookups return nullptr for unknown
// ids/names; the returned objects are process-lifetime singletons.
const Codec* FindCodec(uint8_t id);
const Codec* FindCodecByName(const std::string& name);
std::vector<std::string> RegisteredCodecNames();  // registration order

// The codec CheckpointWriter and Engine::Save use when the caller does not
// pick one ("compressed by default").
inline constexpr const char* kDefaultCheckpointCodec = "lz";

// --- Encoding primitives (shared with storage/packed.cc) -------------------

// LEB128 varint: 7 bits per byte, high bit = continuation (max 10 bytes).
void PutVarint64(uint64_t v, std::string* out);
// False on truncation or an over-long (>10 byte) encoding; advances *pos
// past the varint on success.
bool GetVarint64(std::string_view in, size_t* pos, uint64_t* v);

// Zigzag maps small-magnitude signed values to small unsigned varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace ddup::io

#endif  // DDUP_IO_CODEC_H_
