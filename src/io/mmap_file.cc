#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ddup::io {

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for mmap: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot stat for mmap: " + path);
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("mmap failed: " + path + " (" +
                             std::strerror(errno) + ")");
    }
    mapped.addr_ = addr;
  }
  // The mapping keeps the file pages referenced after close (POSIX).
  ::close(fd);
  return mapped;
}

}  // namespace ddup::io
