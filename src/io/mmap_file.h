#ifndef DDUP_IO_MMAP_FILE_H_
#define DDUP_IO_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace ddup::io {

// Read-only memory-mapped file. data() is a stable view of the file image
// for the mapping's lifetime: moving a MappedFile moves ownership without
// relocating the bytes, so string_views handed out against data() survive
// the move (unlike views into a moved std::string, whose small-string
// buffer lives inside the object). Views must not outlive the MappedFile —
// the checkpoint reader that owns one documents the same rule for its
// section views (DESIGN.md §16).
//
// Mapping an empty file yields an empty, valid data() view (POSIX mmap
// rejects zero-length mappings, so no mapping is created).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only (MAP_PRIVATE). IoError when the file cannot be
  // opened, stat'd or mapped — callers fall back to a buffered read.
  static StatusOr<MappedFile> Open(const std::string& path);

  std::string_view data() const {
    if (addr_ == nullptr) return {};
    return {static_cast<const char*>(addr_), size_};
  }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ddup::io

#endif  // DDUP_IO_MMAP_FILE_H_
