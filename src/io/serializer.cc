#include "io/serializer.h"

#include <cstring>
#include <sstream>

namespace ddup::io {

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static uint32_t table[256];
  static const bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

uint64_t Fnv1a64(const std::string& data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

void Serializer::WriteU8(uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void Serializer::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Serializer::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Serializer::WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }

void Serializer::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void Serializer::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void Serializer::WriteDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Serializer::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.append(s);
}

void Serializer::WriteRaw(const std::string& bytes) { buffer_.append(bytes); }

void Serializer::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void Serializer::WriteI64Vec(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  for (int64_t x : v) WriteI64(x);
}

void Serializer::WriteI32Vec(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  for (int32_t x : v) WriteI32(x);
}

void Serializer::WriteIntVec(const std::vector<int>& v) {
  WriteU64(v.size());
  for (int x : v) WriteI32(x);
}

void Serializer::WriteStringVec(const std::vector<std::string>& v) {
  WriteU64(v.size());
  for (const auto& s : v) WriteString(s);
}

void Serializer::WriteMatrix(const nn::Matrix& m) {
  WriteI32(m.rows());
  WriteI32(m.cols());
  const double* p = m.data();
  for (int64_t i = 0; i < m.size(); ++i) WriteDouble(p[i]);
}

void Serializer::WriteRng(const Rng& rng) {
  std::ostringstream os;
  os << rng.engine();
  WriteString(os.str());
}

void Serializer::WriteColumn(const storage::Column& c) {
  WriteString(c.name());
  WriteU8(c.is_numeric() ? 0 : 1);
  if (c.is_numeric()) {
    WriteDoubleVec(c.numeric_values());
  } else {
    WriteI32Vec(c.codes());
    WriteStringVec(c.dictionary());
  }
}

void Serializer::WriteTable(const storage::Table& t) {
  WriteString(t.name());
  WriteU32(static_cast<uint32_t>(t.num_columns()));
  for (int c = 0; c < t.num_columns(); ++c) WriteColumn(t.column(c));
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

void Deserializer::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::InvalidArgument(message);
}

bool Deserializer::Need(size_t n) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < n) {
    Fail("truncated checkpoint payload");
    return false;
  }
  return true;
}

bool Deserializer::CheckCount(uint64_t count, size_t elem_size) {
  if (!status_.ok()) return false;
  // Overflow-safe count * elem_size <= remaining; rejects corrupt lengths
  // before any allocation happens.
  if (count > remaining() / elem_size) {
    Fail("element count exceeds checkpoint payload");
    return false;
  }
  return true;
}

uint8_t Deserializer::ReadU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Deserializer::ReadU32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

uint64_t Deserializer::ReadU64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

int32_t Deserializer::ReadI32() { return static_cast<int32_t>(ReadU32()); }

int64_t Deserializer::ReadI64() { return static_cast<int64_t>(ReadU64()); }

bool Deserializer::ReadBool() { return ReadU8() != 0; }

double Deserializer::ReadDouble() {
  uint64_t bits = ReadU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Deserializer::ReadString() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 1)) return {};
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::string Deserializer::ReadRaw(size_t n) {
  if (!Need(n)) return {};
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<double> Deserializer::ReadDoubleVec() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 8)) return {};
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadDouble());
  return v;
}

std::vector<int64_t> Deserializer::ReadI64Vec() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 8)) return {};
  std::vector<int64_t> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadI64());
  return v;
}

std::vector<int32_t> Deserializer::ReadI32Vec() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 4)) return {};
  std::vector<int32_t> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadI32());
  return v;
}

std::vector<int> Deserializer::ReadIntVec() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 4)) return {};
  std::vector<int> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadI32());
  return v;
}

std::vector<std::string> Deserializer::ReadStringVec() {
  uint64_t n = ReadU64();
  if (!CheckCount(n, 8)) return {};  // each entry carries at least a length
  std::vector<std::string> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(ReadString());
  return v;
}

nn::Matrix Deserializer::ReadMatrix() {
  int32_t rows = ReadI32();
  int32_t cols = ReadI32();
  if (rows < 0 || cols < 0) {
    Fail("negative matrix shape in checkpoint");
    return {};
  }
  uint64_t n = static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
  if (!CheckCount(n, 8)) return {};
  nn::Matrix m(rows, cols);
  double* p = m.data();
  for (uint64_t i = 0; i < n; ++i) p[i] = ReadDouble();
  return m;
}

void Deserializer::ReadRng(Rng* rng) {
  std::string state = ReadString();
  if (!ok()) return;
  std::istringstream is(state);
  is >> rng->engine();
  if (is.fail()) Fail("malformed RNG state in checkpoint");
}

storage::Column Deserializer::ReadColumn() {
  std::string name = ReadString();
  uint8_t type = ReadU8();
  if (type == 0) {
    return storage::Column::Numeric(std::move(name), ReadDoubleVec());
  }
  if (type != 1) {
    Fail("unknown column type in checkpoint");
    return {};
  }
  std::vector<int32_t> codes = ReadI32Vec();
  std::vector<std::string> dict = ReadStringVec();
  if (!ok()) return {};
  // Column::Categorical DDUP_CHECKs code range (process abort); corrupt
  // payloads must surface as a Status instead.
  auto k = static_cast<int32_t>(dict.size());
  for (int32_t code : codes) {
    if (code < 0 || code >= k) {
      Fail("categorical code out of dictionary range in checkpoint");
      return {};
    }
  }
  return storage::Column::Categorical(std::move(name), std::move(codes),
                                      std::move(dict));
}

storage::Table Deserializer::ReadTable() {
  std::string name = ReadString();
  uint32_t cols = ReadU32();
  storage::Table t(std::move(name));
  for (uint32_t c = 0; c < cols && ok(); ++c) {
    storage::Column column = ReadColumn();
    if (!ok()) break;
    // Pre-validate what Table::AddColumn would DDUP_CHECK (process abort).
    if (t.num_columns() > 0 && column.size() != t.num_rows()) {
      Fail("column length mismatch in checkpoint table");
      break;
    }
    if (t.ColumnIndex(column.name()) >= 0) {
      Fail("duplicate column name in checkpoint table");
      break;
    }
    t.AddColumn(std::move(column));
  }
  return t;
}

void WriteParameters(Serializer* out, const std::vector<nn::Variable>& params) {
  out->WriteU32(static_cast<uint32_t>(params.size()));
  for (const auto& p : params) out->WriteMatrix(p.value());
}

Status ReadParameters(Deserializer* in, size_t expected_count,
                      std::vector<nn::Variable>* params) {
  uint32_t n = in->ReadU32();
  if (!in->ok()) return in->status();
  if (n != expected_count) {
    return Status::InvalidArgument(
        "checkpoint parameter count mismatch: got " + std::to_string(n) +
        ", expected " + std::to_string(expected_count));
  }
  params->clear();
  params->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    nn::Matrix m = in->ReadMatrix();
    if (!in->ok()) return in->status();
    params->push_back(nn::Parameter(std::move(m)));
  }
  return Status::OK();
}

Status CheckParameterShapes(const std::vector<nn::Variable>& params,
                            const std::vector<std::pair<int, int>>& shapes) {
  if (params.size() != shapes.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& [rows, cols] = shapes[i];
    if (params[i].rows() != rows || params[i].cols() != cols) {
      return Status::InvalidArgument(
          "checkpoint parameter " + std::to_string(i) + " has shape " +
          params[i].value().ShapeString() + ", expected " +
          std::to_string(rows) + "x" + std::to_string(cols));
    }
  }
  return Status::OK();
}

Status Deserializer::Finish() const {
  if (!status_.ok()) return status_;
  if (pos_ != data_.size()) {
    return Status::InvalidArgument("trailing bytes in checkpoint payload");
  }
  return Status::OK();
}

}  // namespace ddup::io
