#ifndef DDUP_IO_SERIALIZER_H_
#define DDUP_IO_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/autograd.h"
#include "nn/matrix.h"
#include "storage/table.h"

namespace ddup::io {

// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains incremental
// updates: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
uint32_t Crc32(const std::string& data);

// FNV-1a 64-bit hash; used for checkpoint cache keys, not integrity.
uint64_t Fnv1a64(const std::string& data);

// Byte-level encoder for the checkpoint format (see DESIGN.md §9). All
// multi-byte values are written little-endian byte by byte, so the encoding
// is identical on every host regardless of native endianness. Doubles are
// written as their IEEE-754 bit pattern (bit-exact round trips, including
// NaN payloads and signed zeros).
class Serializer {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteBool(bool v);
  void WriteDouble(double v);
  // u64 byte length + raw bytes.
  void WriteString(const std::string& s);
  // Raw bytes, no length prefix (the checkpoint container records lengths
  // itself).
  void WriteRaw(const std::string& bytes);

  // u64 element count + elements.
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteI64Vec(const std::vector<int64_t>& v);
  void WriteI32Vec(const std::vector<int32_t>& v);
  void WriteIntVec(const std::vector<int>& v);  // stored as i32
  void WriteStringVec(const std::vector<std::string>& v);

  // i32 rows, i32 cols, row-major doubles.
  void WriteMatrix(const nn::Matrix& m);
  // The mt19937_64 engine state via its standard text serialization — exact
  // (all state words are integers printed in decimal).
  void WriteRng(const Rng& rng);
  // Full column: name, type, payload (values or codes + dictionary).
  void WriteColumn(const storage::Column& c);
  // Name, column count, columns.
  void WriteTable(const storage::Table& t);

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Decoder with sticky-error semantics: the first malformed read records a
// Status and every later read returns a default value, so Load code can be
// written as a straight-line mirror of Save and check `status()` once at the
// end. Length prefixes are validated against the remaining bytes before any
// allocation, so corrupt lengths fail cleanly instead of over-allocating.
class Deserializer {
 public:
  // Owning: keeps the buffer alive for the deserializer's lifetime.
  explicit Deserializer(std::string buffer)
      : owned_(std::move(buffer)), data_(owned_) {}
  // Borrowing (zero-copy): `view` must outlive the Deserializer. Used by the
  // mmap-backed checkpoint reader to parse sections in place.
  explicit Deserializer(std::string_view view) : data_(view) {}

  // data_ may point into owned_, so default copies/moves would dangle.
  Deserializer(const Deserializer&) = delete;
  Deserializer& operator=(const Deserializer&) = delete;

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  int64_t ReadI64();
  bool ReadBool();
  double ReadDouble();
  std::string ReadString();
  // n raw bytes, no length prefix.
  std::string ReadRaw(size_t n);

  std::vector<double> ReadDoubleVec();
  std::vector<int64_t> ReadI64Vec();
  std::vector<int32_t> ReadI32Vec();
  std::vector<int> ReadIntVec();
  std::vector<std::string> ReadStringVec();

  nn::Matrix ReadMatrix();
  void ReadRng(Rng* rng);
  storage::Column ReadColumn();
  storage::Table ReadTable();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }
  // OK iff no read failed and every byte was consumed.
  Status Finish() const;
  // Lets Restore-style callers record a semantic validation failure with the
  // same sticky-error semantics as a malformed read.
  void FailInvalid(const std::string& message) { Fail(message); }

 private:
  // Records the first failure; later reads are no-ops.
  void Fail(const std::string& message);
  // True iff n more bytes are available (records a failure otherwise).
  bool Need(size_t n);
  // True iff count elements of elem_size bytes fit in the remaining buffer;
  // overflow-safe, records a failure otherwise.
  bool CheckCount(uint64_t count, size_t elem_size);

  std::string owned_;       // empty for the borrowing constructor
  std::string_view data_;   // the bytes being decoded (may view owned_)
  size_t pos_ = 0;
  Status status_;
};

// Trainable-parameter vectors (u32 count + matrices). ReadParameters
// replaces `*params` with fresh Parameter leaves; `expected_count` guards
// against loading a checkpoint of a different architecture.
void WriteParameters(Serializer* out, const std::vector<nn::Variable>& params);
Status ReadParameters(Deserializer* in, size_t expected_count,
                      std::vector<nn::Variable>* params);

// Verifies loaded parameters against the architecture implied by the loaded
// config: Matrix access is unchecked in Release builds, so a CRC-valid but
// internally inconsistent checkpoint must be rejected at load time, not
// crash at inference time. `shapes` is (rows, cols) per parameter.
Status CheckParameterShapes(const std::vector<nn::Variable>& params,
                            const std::vector<std::pair<int, int>>& shapes);

}  // namespace ddup::io

#endif  // DDUP_IO_SERIALIZER_H_
