#include "models/darn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/kernels.h"
#include "nn/optim.h"
#include "nn/ops.h"
#include "nn/pool.h"


namespace ddup::models {

namespace {
constexpr uint32_t kDarnStateVersion = 1;
constexpr size_t kDarnParamCount = 6;  // W1,b1,W2,b2,W3,b3
}  // namespace

Darn::Darn(const storage::Table& base_data, DarnConfig config)
    : config_(config), rng_(config.seed) {
  DDUP_CHECK(base_data.num_rows() > 0);
  encoder_ = DiscreteEncoder::Fit(base_data, config_.max_bins);
  num_columns_ = encoder_.num_columns();
  BuildMasks(num_columns_);
  RetrainFromScratch(base_data);
}

void Darn::BuildMasks(int m) {
  using nn::Matrix;
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  // Degrees: input units of column i carry degree i+1; hidden units cycle
  // through [1, m-1] (0 when m == 1); output units of column i carry i+1.
  // MADE connectivity: in->hid iff d_in <= d_hid; hid->hid iff d1 <= d2;
  // hid->out iff d_hid < d_out.
  std::vector<int> hidden_deg(static_cast<size_t>(h));
  for (int j = 0; j < h; ++j) {
    hidden_deg[static_cast<size_t>(j)] = (m == 1) ? 0 : 1 + (j % (m - 1));
  }
  mask1_ = Matrix::Zeros(total, h);
  for (int col = 0; col < m; ++col) {
    int deg = col + 1;
    for (int u = 0; u < encoder_.cardinality(col); ++u) {
      int row = encoder_.offset(col) + u;
      for (int j = 0; j < h; ++j) {
        if (deg <= hidden_deg[static_cast<size_t>(j)]) mask1_.At(row, j) = 1.0;
      }
    }
  }
  mask2_ = Matrix::Zeros(h, h);
  for (int a = 0; a < h; ++a) {
    for (int b = 0; b < h; ++b) {
      if (hidden_deg[static_cast<size_t>(a)] <=
          hidden_deg[static_cast<size_t>(b)]) {
        mask2_.At(a, b) = 1.0;
      }
    }
  }
  mask3_ = Matrix::Zeros(h, total);
  for (int col = 0; col < m; ++col) {
    int deg = col + 1;
    for (int u = 0; u < encoder_.cardinality(col); ++u) {
      int out = encoder_.offset(col) + u;
      for (int j = 0; j < h; ++j) {
        if (hidden_deg[static_cast<size_t>(j)] < deg) mask3_.At(j, out) = 1.0;
      }
    }
  }

  // Active unit sets for the restricted-GEMM execution strategy
  // (SelectivityBatch with active_set). Padding units contribute exact-zero
  // terms everywhere they are read, so their position is irrelevant; the
  // genuinely active units must stay in ascending order to preserve the
  // kernel's per-element accumulation order.
  active_units_.assign(static_cast<size_t>(m), {});
  for (int col = 0; col < m; ++col) {
    auto& act = active_units_[static_cast<size_t>(col)];
    std::vector<int> inactive;
    for (int j = 0; j < h; ++j) {
      if (hidden_deg[static_cast<size_t>(j)] < col + 1) {
        act.push_back(j);
      } else {
        inactive.push_back(j);
      }
    }
    if (!act.empty()) {
      size_t target = std::min<size_t>(static_cast<size_t>(h),
                                       (act.size() + 15) / 16 * 16);
      for (size_t i = 0; act.size() < target && i < inactive.size(); ++i) {
        act.push_back(inactive[i]);
      }
      std::sort(act.begin(), act.end());
    }
  }
}

// The restricted widths are multiples of 16, which keeps every output
// element inside the widest vector tile (2 x 8 lanes for AVX-512) only when
// the dense width h is itself a multiple of 16 — otherwise some elements
// would move between the tiled path and the differently-rounded scalar
// column tail and the bits could change. m == 1 has no autoregressive
// structure to exploit.
bool Darn::ActiveSetSafe() const {
  return config_.hidden_width % 16 == 0 && num_columns_ > 1;
}

void Darn::InitParams() {
  using nn::Matrix;
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  auto xavier = [this](int in, int out) {
    double s = std::sqrt(2.0 / static_cast<double>(in + out));
    return nn::Parameter(Matrix::Randn(rng_, in, out, s));
  };
  params_ = {xavier(total, h), nn::Parameter(Matrix::Zeros(1, h)),
             xavier(h, h),     nn::Parameter(Matrix::Zeros(1, h)),
             xavier(h, total), nn::Parameter(Matrix::Zeros(1, total))};
}

std::vector<std::vector<int>> Darn::GatherCodes(
    const std::vector<std::vector<int>>& all,
    const std::vector<int64_t>& rows) {
  std::vector<std::vector<int>> out(all.size());
  for (size_t c = 0; c < all.size(); ++c) {
    out[c].reserve(rows.size());
    for (int64_t r : rows) out[c].push_back(all[c][static_cast<size_t>(r)]);
  }
  return out;
}

nn::Variable Darn::ForwardLogits(
    const std::vector<nn::Variable>& p,
    const std::vector<std::vector<int>>& codes) const {
  using namespace nn;  // NOLINT: op-heavy function
  DDUP_CHECK(static_cast<int>(codes.size()) == num_columns_);
  // Layer 1 via embedding gathers: the one-hot input selects exactly one row
  // of the masked weight per column, so h = sum_cols row(offset+code) + b.
  Variable masked_w1 = Mul(p[0], Constant(mask1_));
  Variable h;
  for (int col = 0; col < num_columns_; ++col) {
    std::vector<int> idx(codes[static_cast<size_t>(col)].size());
    for (size_t r = 0; r < idx.size(); ++r) {
      idx[r] = encoder_.offset(col) + codes[static_cast<size_t>(col)][r];
    }
    Variable g = Rows(masked_w1, idx);
    h = (col == 0) ? g : Add(h, g);
  }
  h = Relu(Add(h, p[1]));
  // Fused affine kernels over the masked weights; the Mul node routes the
  // accumulated weight gradient through the mask.
  Variable h2 = AffineRelu(h, Mul(p[2], Constant(mask2_)), p[3]);
  return Affine(h2, Mul(p[4], Constant(mask3_)), p[5]);
}

nn::Variable Darn::NllLoss(const std::vector<nn::Variable>& p,
                           const std::vector<std::vector<int>>& codes) const {
  using namespace nn;  // NOLINT
  Variable logits = ForwardLogits(p, codes);
  Variable total;
  for (int col = 0; col < num_columns_; ++col) {
    Variable block =
        SliceCols(logits, encoder_.offset(col), encoder_.cardinality(col));
    Variable ce = SoftmaxCrossEntropy(block, codes[static_cast<size_t>(col)]);
    total = (col == 0) ? ce : Add(total, ce);
  }
  return total;  // mean-per-row joint NLL
}

void Darn::TrainLoop(const storage::Table& data, double lr, int epochs) {
  DDUP_CHECK(data.num_rows() > 0);
  auto all_codes = encoder_.EncodeTable(data);
  nn::Adam opt(params_, lr);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& rows :
         MiniBatches(data.num_rows(), config_.batch_size, rng_)) {
      auto codes = GatherCodes(all_codes, rows);
      opt.ZeroGrad();
      nn::Variable loss = NllLoss(params_, codes);
      nn::Backward(loss);
      opt.Step();
    }
  }
}

void Darn::RetrainFromScratch(const storage::Table& data) {
  InitParams();
  ResetMetadata();
  AbsorbMetadata(data);
  TrainLoop(data, config_.learning_rate, config_.epochs);
}

void Darn::FineTune(const storage::Table& new_data, double learning_rate,
                    int epochs) {
  TrainLoop(new_data, learning_rate, epochs);
}

void Darn::DistillUpdate(const storage::Table& transfer_set,
                         const storage::Table& new_data,
                         const core::DistillConfig& config) {
  using namespace nn;  // NOLINT
  std::vector<Variable> teacher = AsConstants(params_);
  double alpha =
      core::ResolveAlpha(config, transfer_set.num_rows(), new_data.num_rows());
  auto tr_codes_all = encoder_.EncodeTable(transfer_set);
  auto up_codes_all = encoder_.EncodeTable(new_data);

  Adam opt(params_, config.learning_rate);
  for (int e = 0; e < config.epochs; ++e) {
    auto tr_batches =
        MiniBatches(transfer_set.num_rows(), config.batch_size, rng_);
    auto up_batches = MiniBatches(new_data.num_rows(), config.batch_size, rng_);
    size_t steps = std::max(tr_batches.size(), up_batches.size());
    for (size_t s = 0; s < steps; ++s) {
      auto tr = GatherCodes(tr_codes_all, tr_batches[s % tr_batches.size()]);
      auto up = GatherCodes(up_codes_all, up_batches[s % up_batches.size()]);

      Variable s_logits = ForwardLogits(params_, tr);
      Variable t_logits = ForwardLogits(teacher, tr);
      // Eq. 10: annealed CE between teacher and student conditionals,
      // averaged over attributes.
      Variable distill;
      for (int col = 0; col < num_columns_; ++col) {
        Variable sb = SliceCols(s_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable tb = SliceCols(t_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable ce = DistillCrossEntropy(sb, tb, config.temperature);
        distill = (col == 0) ? ce : Add(distill, ce);
      }
      distill = Scale(distill, 1.0 / num_columns_);

      // Task CE on the transfer batch reuses the student logits.
      Variable task_tr;
      for (int col = 0; col < num_columns_; ++col) {
        Variable sb = SliceCols(s_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable ce = SoftmaxCrossEntropy(sb, tr[static_cast<size_t>(col)]);
        task_tr = (col == 0) ? ce : Add(task_tr, ce);
      }
      Variable tr_term = Add(Scale(distill, config.lambda),
                             Scale(task_tr, 1.0 - config.lambda));
      Variable up_term = NllLoss(params_, up);
      Variable loss = Add(Scale(tr_term, alpha), Scale(up_term, 1.0 - alpha));
      opt.ZeroGrad();
      Backward(loss);
      opt.Step();
    }
  }
}

void Darn::AbsorbMetadata(const storage::Table& new_data) {
  total_rows_ += new_data.num_rows();
}

double Darn::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  auto codes = encoder_.EncodeTable(sample);
  std::vector<nn::Variable> frozen = nn::AsConstants(params_);
  // Chunked (and possibly thread-pool parallel) scoring; bit-identical for
  // any pool size because chunk bounds and the combine order are fixed.
  return GlobalChunkMean(
      sample.num_rows(), [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> rows(static_cast<size_t>(hi - lo));
        std::iota(rows.begin(), rows.end(), lo);
        return NllLoss(frozen, GatherCodes(codes, rows)).value().At(0, 0);
      });
}

Darn::FrozenNet Darn::Freeze() const {
  FrozenNet net;
  net.mw1 = params_[0].value();
  for (int64_t i = 0; i < net.mw1.size(); ++i) {
    net.mw1.data()[i] *= mask1_.data()[i];
  }
  net.b1 = params_[1].value();
  net.mw2 = params_[2].value();
  for (int64_t i = 0; i < net.mw2.size(); ++i) {
    net.mw2.data()[i] *= mask2_.data()[i];
  }
  net.b2 = params_[3].value();
  net.mw3 = params_[4].value();
  for (int64_t i = 0; i < net.mw3.size(); ++i) {
    net.mw3.data()[i] *= mask3_.data()[i];
  }
  net.b3 = params_[5].value();
  return net;
}

nn::Matrix Darn::HiddenForward(
    const FrozenNet& net, const std::vector<std::vector<int>>& codes) const {
  int n = static_cast<int>(codes[0].size());
  int h = config_.hidden_width;
  nn::Matrix h1(n, h);
  for (int r = 0; r < n; ++r) {
    double* hrow = h1.data() + static_cast<size_t>(r) * h;
    for (int j = 0; j < h; ++j) hrow[j] = net.b1.At(0, j);
    for (int col = 0; col < num_columns_; ++col) {
      int wrow =
          encoder_.offset(col) + codes[static_cast<size_t>(col)][static_cast<size_t>(r)];
      const double* src = net.mw1.data() + static_cast<size_t>(wrow) * h;
      for (int j = 0; j < h; ++j) hrow[j] += src[j];
    }
    for (int j = 0; j < h; ++j) hrow[j] = std::max(0.0, hrow[j]);
  }
  nn::Matrix h2 = MatMulValue(h1, net.mw2);
  for (int r = 0; r < n; ++r) {
    for (int j = 0; j < h; ++j) {
      h2.At(r, j) = std::max(0.0, h2.At(r, j) + net.b2.At(0, j));
    }
  }
  return h2;
}

nn::Matrix Darn::BlockProbs(const FrozenNet& net, const nn::Matrix& h2,
                            int col) const {
  int n = h2.rows();
  int h = config_.hidden_width;
  int k = encoder_.cardinality(col);
  int off = encoder_.offset(col);
  nn::Matrix probs(n, k);
  for (int r = 0; r < n; ++r) {
    double mx = -1e300;
    for (int u = 0; u < k; ++u) {
      double z = net.b3.At(0, off + u);
      for (int j = 0; j < h; ++j) z += h2.At(r, j) * net.mw3.At(j, off + u);
      probs.At(r, u) = z;
      mx = std::max(mx, z);
    }
    double sum = 0.0;
    for (int u = 0; u < k; ++u) {
      double e = std::exp(probs.At(r, u) - mx);
      probs.At(r, u) = e;
      sum += e;
    }
    for (int u = 0; u < k; ++u) probs.At(r, u) /= sum;
  }
  return probs;
}

// Progressive sampling (Naru) for a whole batch: per column, sum the exact
// conditional mass of each query's allowed codes given each sampled prefix,
// then extend the prefix by sampling within the allowed set. All live
// queries' sample paths are rows of ONE matrix, so the frozen-weight copy
// and the per-column forward (layer-1 gather, GEMM to h2, output-block GEMM)
// are paid once per batch. Scratch comes from the thread's MatrixPool: a
// warm batch performs zero matrix heap allocations.
void Darn::SelectivityBatch(const workload::Query* queries, size_t n,
                            Rng* rngs, double* out, bool active_set) const {
  const int s = config_.progressive_samples;
  const int h = config_.hidden_width;
  const int m = num_columns_;
  const bool fast = active_set && ActiveSetSafe();

  // Queries with an unsatisfiable predicate answer 0 immediately and never
  // enter the path matrix — in particular they consume no RNG draws, which
  // their (per-query) streams would tolerate anyway but the path rows would
  // waste.
  std::vector<size_t> live;
  live.reserve(n);
  std::vector<std::vector<std::pair<int, int>>> ranges;
  ranges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto r = encoder_.AllowedRanges(queries[i]);
    bool empty = false;
    for (const auto& pr : r) {
      if (pr.first > pr.second) {
        empty = true;
        break;
      }
    }
    if (empty) {
      out[i] = 0.0;
      continue;
    }
    live.push_back(i);
    ranges.push_back(std::move(r));
  }
  if (live.empty()) return;

  const int live_n = static_cast<int>(live.size());
  const int rows = live_n * s;
  // Pad to a multiple of 4 rows: every row then runs inside a full 4-row
  // GEMM register panel (kernels.h), never in the differently-rounded
  // ScalarRowTail, so a row's bits do not depend on the batch size. Pad rows
  // carry code 0 (a valid input) and their outputs are ignored.
  const int padded = (rows + 3) & ~3;

  nn::MatrixPool& pool = nn::MatrixPool::Local();
  // Masked weights in pooled buffers (Freeze() would heap-allocate copies);
  // biases are unmasked, so plain references suffice.
  auto masked = [&pool](const nn::Matrix& w, const nn::Matrix& mask) {
    nn::Matrix out_m = pool.Acquire(w.rows(), w.cols());
    const double* wp = w.data();
    const double* mp = mask.data();
    double* op = out_m.data();
    for (int64_t i = 0; i < w.size(); ++i) op[i] = wp[i] * mp[i];
    return out_m;
  };
  nn::Matrix mw1 = masked(params_[0].value(), mask1_);
  nn::Matrix mw2 = masked(params_[2].value(), mask2_);
  nn::Matrix mw3 = masked(params_[4].value(), mask3_);
  const nn::Matrix& b1 = params_[1].value();
  const nn::Matrix& b2 = params_[3].value();
  const nn::Matrix& b3 = params_[5].value();

  // codes(r, c): sampled prefix code of column c on path row r (exact small
  // ints stored as doubles so the buffer pools like any other scratch).
  nn::Matrix codes = pool.AcquireZeroed(padded, m);
  // Dense path: h1 holds the post-relu layer-1 activations, recomputed from
  // all m codes every column (the spec). Fast path: h1 instead holds the
  // PRE-activation prefix accumulator b1 + sum of the sampled columns'
  // embedding rows, extended by one row per column step. The two agree bit
  // for bit on every active unit: an active unit of output block `col` has
  // degree <= col, so mask1 cuts its view of columns >= col — the spec's
  // extra terms for those columns are exact +-0.0, which relu's
  // max(0.0, x) collapses to +0.0 either way. (Padding units DO read future
  // columns, but everything they feed is masked to +-0.0, and
  // finite * +-0.0 has the same bits whatever the finite factor is.)
  nn::Matrix h1 = pool.Acquire(padded, h);
  nn::Matrix h2 = pool.Acquire(padded, h);
  if (fast) {
    for (int r = 0; r < padded; ++r) {
      std::copy(b1.data(), b1.data() + h,
                h1.data() + static_cast<size_t>(r) * h);
    }
  }
  nn::Matrix weight = pool.Acquire(padded, 1);
  for (int r = 0; r < padded; ++r) weight(r, 0) = 1.0;

  int k_max = 0;
  for (int col = 0; col < m; ++col) {
    k_max = std::max(k_max, encoder_.cardinality(col));
  }
  nn::Matrix wcol = pool.Acquire(h, k_max);
  nn::Matrix bcol = pool.Acquire(1, k_max);
  nn::Matrix probs = pool.Acquire(padded, k_max);
  // Active-set scratch: gathered h1 columns and the active mw2/b2 slices.
  nn::Matrix h1a, w2a, b2a;
  if (fast) {
    h1a = pool.Acquire(padded, h);
    w2a = pool.Acquire(h, h);
    b2a = pool.Acquire(1, h);
  }

  for (int col = 0; col < m; ++col) {
    const int k = encoder_.cardinality(col);
    const int off = encoder_.offset(col);
    // Active hidden units for this output block (fast path). ua == 0 means
    // the block reads no hidden unit at all — its logits are exactly the
    // bias (every weight term is a masked zero), identical for all rows, so
    // one softmax row serves the whole batch.
    const std::vector<int>* act =
        fast ? &active_units_[static_cast<size_t>(col)] : nullptr;
    const int ua = fast ? static_cast<int>(act->size()) : h;
    const bool broadcast = fast && ua == 0;

    if (fast) {
      // Extend the prefix accumulator by the column sampled last step. The
      // element chains stay b1 + row_0 + row_1 + ... in ascending column
      // order — exactly the spec's summation order for the prefix terms.
      if (col > 0) {
        for (int r = 0; r < padded; ++r) {
          int wrow =
              encoder_.offset(col - 1) + static_cast<int>(codes(r, col - 1));
          const double* src = mw1.data() + static_cast<size_t>(wrow) * h;
          double* hrow = h1.data() + static_cast<size_t>(r) * h;
          for (int j = 0; j < h; ++j) hrow[j] += src[j];
        }
      }
    } else {
      // Layer 1 via embedding gathers: the one-hot input selects exactly one
      // row of the masked weight per column (same math as HiddenForward).
      for (int r = 0; r < padded; ++r) {
        double* hrow = h1.data() + static_cast<size_t>(r) * h;
        const double* b1p = b1.data();
        for (int j = 0; j < h; ++j) hrow[j] = b1p[j];
        for (int c = 0; c < m; ++c) {
          int wrow = encoder_.offset(c) + static_cast<int>(codes(r, c));
          const double* src = mw1.data() + static_cast<size_t>(wrow) * h;
          for (int j = 0; j < h; ++j) hrow[j] += src[j];
        }
        for (int j = 0; j < h; ++j) hrow[j] = std::max(0.0, hrow[j]);
      }
    }

    if (broadcast) {
      nn::Matrix pk = nn::Matrix::FromBuffer(probs.TakeBuffer(), padded, k);
      std::copy(b3.data() + off, b3.data() + off + k, pk.data());
      probs = std::move(pk);
    } else if (fast) {
      // Restricted forward: both GEMMs shrink to the active submatrix. The
      // skipped weight entries are exact zeros under mask2/mask3, and the
      // gathers keep ascending unit order, so each output element's
      // accumulation chain matches the dense path's nonzero terms exactly.
      // Gather + relu fused: h1 holds pre-activations here, and relu's
      // max(0.0, x) form maps both zero signs to +0.0 (see the h1 comment).
      nn::Matrix ha = nn::Matrix::FromBuffer(h1a.TakeBuffer(), padded, ua);
      for (int r = 0; r < padded; ++r) {
        const double* hrow = h1.data() + static_cast<size_t>(r) * h;
        double* arow = ha.data() + static_cast<size_t>(r) * ua;
        for (int i = 0; i < ua; ++i) {
          arow[i] = std::max(0.0, hrow[(*act)[static_cast<size_t>(i)]]);
        }
      }
      nn::Matrix w2s = nn::Matrix::FromBuffer(w2a.TakeBuffer(), ua, ua);
      nn::Matrix b2s = nn::Matrix::FromBuffer(b2a.TakeBuffer(), 1, ua);
      for (int i = 0; i < ua; ++i) {
        const double* src =
            mw2.data() + static_cast<size_t>((*act)[static_cast<size_t>(i)]) * h;
        double* dst = w2s.data() + static_cast<size_t>(i) * ua;
        for (int j = 0; j < ua; ++j) dst[j] = src[(*act)[static_cast<size_t>(j)]];
        b2s(0, i) = b2(0, (*act)[static_cast<size_t>(i)]);
      }
      nn::Matrix h2s = nn::Matrix::FromBuffer(h2.TakeBuffer(), padded, ua);
      nn::AffineInto(ha, w2s, b2s, /*relu=*/true, &h2s);

      nn::Matrix wk = nn::Matrix::FromBuffer(wcol.TakeBuffer(), ua, k);
      for (int i = 0; i < ua; ++i) {
        const double* src = mw3.data() +
                            static_cast<size_t>((*act)[static_cast<size_t>(i)]) *
                                mw3.cols() +
                            off;
        std::copy(src, src + k, wk.data() + static_cast<size_t>(i) * k);
      }
      nn::Matrix bk = nn::Matrix::FromBuffer(bcol.TakeBuffer(), 1, k);
      std::copy(b3.data() + off, b3.data() + off + k, bk.data());
      nn::Matrix pk = nn::Matrix::FromBuffer(probs.TakeBuffer(), padded, k);
      nn::AffineInto(h2s, wk, bk, /*relu=*/false, &pk);
      h1a = std::move(ha);
      w2a = std::move(w2s);
      b2a = std::move(b2s);
      h2 = std::move(h2s);
      wcol = std::move(wk);
      bcol = std::move(bk);
      probs = std::move(pk);
    } else {
      nn::AffineInto(h1, mw2, b2, /*relu=*/true, &h2);

      // Output block of `col` only: slice the h x k weight block into
      // contiguous scratch (GEMM wants it dense) and run one batched affine
      // for all paths of all queries.
      nn::Matrix wk = nn::Matrix::FromBuffer(wcol.TakeBuffer(), h, k);
      for (int j = 0; j < h; ++j) {
        const double* src = mw3.data() + static_cast<size_t>(j) * mw3.cols() + off;
        std::copy(src, src + k, wk.data() + static_cast<size_t>(j) * k);
      }
      nn::Matrix bk = nn::Matrix::FromBuffer(bcol.TakeBuffer(), 1, k);
      std::copy(b3.data() + off, b3.data() + off + k, bk.data());
      nn::Matrix pk = nn::Matrix::FromBuffer(probs.TakeBuffer(), padded, k);
      nn::AffineInto(h2, wk, bk, /*relu=*/false, &pk);
      wcol = std::move(wk);
      bcol = std::move(bk);
      probs = std::move(pk);
    }
    // Row-wise softmax (same order of operations as BlockProbs); a
    // broadcast column softmaxes its single shared row.
    const int soft_rows = broadcast ? 1 : padded;
    for (int r = 0; r < soft_rows; ++r) {
      double* prow = probs.data() + static_cast<size_t>(r) * probs.cols();
      double mx = -1e300;
      for (int u = 0; u < k; ++u) mx = std::max(mx, prow[u]);
      double sum = 0.0;
      for (int u = 0; u < k; ++u) {
        double e = std::exp(prow[u] - mx);
        prow[u] = e;
        sum += e;
      }
      for (int u = 0; u < k; ++u) prow[u] /= sum;
    }

    // Per-query mass/extend step. Each query draws only from its own stream
    // in (column, path) order — exactly the scalar draw order — so its
    // answer is untouched by whatever else shares the batch.
    for (int q = 0; q < live_n; ++q) {
      auto [lo, hi] = ranges[static_cast<size_t>(q)][static_cast<size_t>(col)];
      Rng& rng = rngs[live[static_cast<size_t>(q)]];
      for (int path = 0; path < s; ++path) {
        const int r = q * s + path;
        if (weight(r, 0) == 0.0) continue;
        const double* prow =
            probs.data() +
            static_cast<size_t>(broadcast ? 0 : r) * probs.cols();
        double mass = 0.0;
        for (int u = lo; u <= hi; ++u) mass += prow[u];
        weight(r, 0) *= mass;
        if (mass <= 0.0) {
          weight(r, 0) = 0.0;
          continue;
        }
        if (col + 1 < m) {
          double u01 = rng.Uniform(0.0, mass);
          double acc = 0.0;
          int chosen = hi;
          for (int u = lo; u <= hi; ++u) {
            acc += prow[u];
            if (u01 < acc) {
              chosen = u;
              break;
            }
          }
          codes(r, col) = static_cast<double>(chosen);
        }
      }
    }
  }

  for (int q = 0; q < live_n; ++q) {
    double total = 0.0;
    for (int path = 0; path < s; ++path) total += weight(q * s + path, 0);
    out[live[static_cast<size_t>(q)]] = total / static_cast<double>(s);
  }

  // Return the sliced scratch at its acquired shape so the next batch's
  // Acquire finds it under the same size key (the buffers' capacity never
  // shrank, so the resizes below cannot allocate).
  pool.Release(nn::Matrix::FromBuffer(probs.TakeBuffer(), padded, k_max));
  pool.Release(nn::Matrix::FromBuffer(bcol.TakeBuffer(), 1, k_max));
  pool.Release(nn::Matrix::FromBuffer(wcol.TakeBuffer(), h, k_max));
  if (fast) {
    pool.Release(nn::Matrix::FromBuffer(b2a.TakeBuffer(), 1, h));
    pool.Release(nn::Matrix::FromBuffer(w2a.TakeBuffer(), h, h));
    pool.Release(nn::Matrix::FromBuffer(h1a.TakeBuffer(), padded, h));
  }
  pool.Release(std::move(weight));
  pool.Release(nn::Matrix::FromBuffer(h2.TakeBuffer(), padded, h));
  pool.Release(std::move(h1));
  pool.Release(std::move(codes));
  pool.Release(std::move(mw3));
  pool.Release(std::move(mw2));
  pool.Release(std::move(mw1));
}

core::EstimateContext Darn::MakeEstimateContext(
    const workload::Query& query) const {
  return core::EstimateContext{
      Rng::ForStream(config_.seed, workload::QueryFingerprint(query))};
}

double Darn::EstimateSelectivity(const workload::Query& query) const {
  core::EstimateContext ctx = MakeEstimateContext(query);
  double sel = 0.0;
  SelectivityBatch(&query, 1, &ctx.rng, &sel, /*active_set=*/false);
  return sel;
}

double Darn::EstimateCardinality(const workload::Query& query) const {
  return EstimateSelectivity(query) * static_cast<double>(total_rows_);
}

StatusOr<double> Darn::TryEstimateCardinality(
    const workload::Query& query, core::EstimateContext* ctx) const {
  for (const auto& p : query.predicates) {
    if (p.column < 0 || p.column >= num_columns_) {
      return Status::InvalidArgument("predicate on out-of-range column " +
                                     std::to_string(p.column));
    }
  }
  double sel = 0.0;
  SelectivityBatch(&query, 1, &ctx->rng, &sel, /*active_set=*/false);
  return sel * static_cast<double>(total_rows_);
}

Status Darn::TryEstimateCardinalityBatch(
    const std::vector<workload::Query>& queries,
    std::vector<double>* out) const {
  for (size_t i = 0; i < queries.size(); ++i) {
    for (const auto& p : queries[i].predicates) {
      if (p.column < 0 || p.column >= num_columns_) {
        return Status::InvalidArgument(
            "query " + std::to_string(i) + ": predicate on out-of-range column " +
            std::to_string(p.column));
      }
    }
  }
  out->assign(queries.size(), 0.0);
  if (queries.empty()) return Status::OK();
  std::vector<Rng> rngs;
  rngs.reserve(queries.size());
  for (const auto& q : queries) rngs.push_back(MakeEstimateContext(q).rng);
  SelectivityBatch(queries.data(), queries.size(), rngs.data(), out->data(),
                   /*active_set=*/true);
  for (double& v : *out) v *= static_cast<double>(total_rows_);
  return Status::OK();
}

Status Darn::SaveState(io::Serializer* out) const {
  out->WriteU32(kDarnStateVersion);
  out->WriteI32(config_.hidden_width);
  out->WriteI32(config_.max_bins);
  out->WriteI32(config_.epochs);
  out->WriteI32(config_.batch_size);
  out->WriteDouble(config_.learning_rate);
  out->WriteI32(config_.progressive_samples);
  out->WriteU64(config_.seed);
  encoder_.SaveState(out);
  out->WriteI32(num_columns_);
  io::WriteParameters(out, params_);
  out->WriteI64(total_rows_);
  out->WriteRng(rng_);
  return Status::OK();
}

Status Darn::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kDarnStateVersion) {
    return Status::InvalidArgument("unsupported darn state version " +
                                   std::to_string(version));
  }
  config_.hidden_width = in->ReadI32();
  config_.max_bins = in->ReadI32();
  config_.epochs = in->ReadI32();
  config_.batch_size = in->ReadI32();
  config_.learning_rate = in->ReadDouble();
  config_.progressive_samples = in->ReadI32();
  config_.seed = in->ReadU64();
  encoder_ = DiscreteEncoder::Restore(in);
  num_columns_ = in->ReadI32();
  DDUP_RETURN_IF_ERROR(io::ReadParameters(in, kDarnParamCount, &params_));
  total_rows_ = in->ReadI64();
  in->ReadRng(&rng_);
  DDUP_RETURN_IF_ERROR(in->status());
  if (num_columns_ != encoder_.num_columns()) {
    return Status::InvalidArgument("darn encoder column count mismatch");
  }
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  if (h < 1 || num_columns_ < 1 || config_.batch_size < 1 ||
      config_.progressive_samples < 1) {
    return Status::InvalidArgument("darn checkpoint config is inconsistent");
  }
  DDUP_RETURN_IF_ERROR(io::CheckParameterShapes(
      params_,
      {{total, h}, {1, h}, {h, h}, {1, h}, {h, total}, {1, total}}));
  BuildMasks(num_columns_);
  return Status::OK();
}

Status Darn::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Darn>> Darn::Restore(io::Deserializer* in) {
  std::unique_ptr<Darn> model(new Darn());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Darn>> Darn::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Darn>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

double Darn::JointProbability(const std::vector<int>& encoded_row) const {
  DDUP_CHECK(static_cast<int>(encoded_row.size()) == num_columns_);
  FrozenNet net = Freeze();
  std::vector<std::vector<int>> codes(static_cast<size_t>(num_columns_),
                                      std::vector<int>(1, 0));
  double p = 1.0;
  for (int col = 0; col < num_columns_; ++col) {
    nn::Matrix h2 = HiddenForward(net, codes);
    nn::Matrix probs = BlockProbs(net, h2, col);
    p *= probs.At(0, encoded_row[static_cast<size_t>(col)]);
    codes[static_cast<size_t>(col)][0] = encoded_row[static_cast<size_t>(col)];
  }
  return p;
}

}  // namespace ddup::models
