#include "models/darn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/optim.h"
#include "nn/ops.h"


namespace ddup::models {

namespace {
constexpr uint32_t kDarnStateVersion = 1;
constexpr size_t kDarnParamCount = 6;  // W1,b1,W2,b2,W3,b3
}  // namespace

Darn::Darn(const storage::Table& base_data, DarnConfig config)
    : config_(config), rng_(config.seed) {
  DDUP_CHECK(base_data.num_rows() > 0);
  encoder_ = DiscreteEncoder::Fit(base_data, config_.max_bins);
  num_columns_ = encoder_.num_columns();
  BuildMasks(num_columns_);
  RetrainFromScratch(base_data);
}

void Darn::BuildMasks(int m) {
  using nn::Matrix;
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  // Degrees: input units of column i carry degree i+1; hidden units cycle
  // through [1, m-1] (0 when m == 1); output units of column i carry i+1.
  // MADE connectivity: in->hid iff d_in <= d_hid; hid->hid iff d1 <= d2;
  // hid->out iff d_hid < d_out.
  std::vector<int> hidden_deg(static_cast<size_t>(h));
  for (int j = 0; j < h; ++j) {
    hidden_deg[static_cast<size_t>(j)] = (m == 1) ? 0 : 1 + (j % (m - 1));
  }
  mask1_ = Matrix::Zeros(total, h);
  for (int col = 0; col < m; ++col) {
    int deg = col + 1;
    for (int u = 0; u < encoder_.cardinality(col); ++u) {
      int row = encoder_.offset(col) + u;
      for (int j = 0; j < h; ++j) {
        if (deg <= hidden_deg[static_cast<size_t>(j)]) mask1_.At(row, j) = 1.0;
      }
    }
  }
  mask2_ = Matrix::Zeros(h, h);
  for (int a = 0; a < h; ++a) {
    for (int b = 0; b < h; ++b) {
      if (hidden_deg[static_cast<size_t>(a)] <=
          hidden_deg[static_cast<size_t>(b)]) {
        mask2_.At(a, b) = 1.0;
      }
    }
  }
  mask3_ = Matrix::Zeros(h, total);
  for (int col = 0; col < m; ++col) {
    int deg = col + 1;
    for (int u = 0; u < encoder_.cardinality(col); ++u) {
      int out = encoder_.offset(col) + u;
      for (int j = 0; j < h; ++j) {
        if (hidden_deg[static_cast<size_t>(j)] < deg) mask3_.At(j, out) = 1.0;
      }
    }
  }
}

void Darn::InitParams() {
  using nn::Matrix;
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  auto xavier = [this](int in, int out) {
    double s = std::sqrt(2.0 / static_cast<double>(in + out));
    return nn::Parameter(Matrix::Randn(rng_, in, out, s));
  };
  params_ = {xavier(total, h), nn::Parameter(Matrix::Zeros(1, h)),
             xavier(h, h),     nn::Parameter(Matrix::Zeros(1, h)),
             xavier(h, total), nn::Parameter(Matrix::Zeros(1, total))};
}

std::vector<std::vector<int>> Darn::GatherCodes(
    const std::vector<std::vector<int>>& all,
    const std::vector<int64_t>& rows) {
  std::vector<std::vector<int>> out(all.size());
  for (size_t c = 0; c < all.size(); ++c) {
    out[c].reserve(rows.size());
    for (int64_t r : rows) out[c].push_back(all[c][static_cast<size_t>(r)]);
  }
  return out;
}

nn::Variable Darn::ForwardLogits(
    const std::vector<nn::Variable>& p,
    const std::vector<std::vector<int>>& codes) const {
  using namespace nn;  // NOLINT: op-heavy function
  DDUP_CHECK(static_cast<int>(codes.size()) == num_columns_);
  // Layer 1 via embedding gathers: the one-hot input selects exactly one row
  // of the masked weight per column, so h = sum_cols row(offset+code) + b.
  Variable masked_w1 = Mul(p[0], Constant(mask1_));
  Variable h;
  for (int col = 0; col < num_columns_; ++col) {
    std::vector<int> idx(codes[static_cast<size_t>(col)].size());
    for (size_t r = 0; r < idx.size(); ++r) {
      idx[r] = encoder_.offset(col) + codes[static_cast<size_t>(col)][r];
    }
    Variable g = Rows(masked_w1, idx);
    h = (col == 0) ? g : Add(h, g);
  }
  h = Relu(Add(h, p[1]));
  // Fused affine kernels over the masked weights; the Mul node routes the
  // accumulated weight gradient through the mask.
  Variable h2 = AffineRelu(h, Mul(p[2], Constant(mask2_)), p[3]);
  return Affine(h2, Mul(p[4], Constant(mask3_)), p[5]);
}

nn::Variable Darn::NllLoss(const std::vector<nn::Variable>& p,
                           const std::vector<std::vector<int>>& codes) const {
  using namespace nn;  // NOLINT
  Variable logits = ForwardLogits(p, codes);
  Variable total;
  for (int col = 0; col < num_columns_; ++col) {
    Variable block =
        SliceCols(logits, encoder_.offset(col), encoder_.cardinality(col));
    Variable ce = SoftmaxCrossEntropy(block, codes[static_cast<size_t>(col)]);
    total = (col == 0) ? ce : Add(total, ce);
  }
  return total;  // mean-per-row joint NLL
}

void Darn::TrainLoop(const storage::Table& data, double lr, int epochs) {
  DDUP_CHECK(data.num_rows() > 0);
  auto all_codes = encoder_.EncodeTable(data);
  nn::Adam opt(params_, lr);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& rows :
         MiniBatches(data.num_rows(), config_.batch_size, rng_)) {
      auto codes = GatherCodes(all_codes, rows);
      opt.ZeroGrad();
      nn::Variable loss = NllLoss(params_, codes);
      nn::Backward(loss);
      opt.Step();
    }
  }
}

void Darn::RetrainFromScratch(const storage::Table& data) {
  InitParams();
  ResetMetadata();
  AbsorbMetadata(data);
  TrainLoop(data, config_.learning_rate, config_.epochs);
}

void Darn::FineTune(const storage::Table& new_data, double learning_rate,
                    int epochs) {
  TrainLoop(new_data, learning_rate, epochs);
}

void Darn::DistillUpdate(const storage::Table& transfer_set,
                         const storage::Table& new_data,
                         const core::DistillConfig& config) {
  using namespace nn;  // NOLINT
  std::vector<Variable> teacher = AsConstants(params_);
  double alpha =
      core::ResolveAlpha(config, transfer_set.num_rows(), new_data.num_rows());
  auto tr_codes_all = encoder_.EncodeTable(transfer_set);
  auto up_codes_all = encoder_.EncodeTable(new_data);

  Adam opt(params_, config.learning_rate);
  for (int e = 0; e < config.epochs; ++e) {
    auto tr_batches =
        MiniBatches(transfer_set.num_rows(), config.batch_size, rng_);
    auto up_batches = MiniBatches(new_data.num_rows(), config.batch_size, rng_);
    size_t steps = std::max(tr_batches.size(), up_batches.size());
    for (size_t s = 0; s < steps; ++s) {
      auto tr = GatherCodes(tr_codes_all, tr_batches[s % tr_batches.size()]);
      auto up = GatherCodes(up_codes_all, up_batches[s % up_batches.size()]);

      Variable s_logits = ForwardLogits(params_, tr);
      Variable t_logits = ForwardLogits(teacher, tr);
      // Eq. 10: annealed CE between teacher and student conditionals,
      // averaged over attributes.
      Variable distill;
      for (int col = 0; col < num_columns_; ++col) {
        Variable sb = SliceCols(s_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable tb = SliceCols(t_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable ce = DistillCrossEntropy(sb, tb, config.temperature);
        distill = (col == 0) ? ce : Add(distill, ce);
      }
      distill = Scale(distill, 1.0 / num_columns_);

      // Task CE on the transfer batch reuses the student logits.
      Variable task_tr;
      for (int col = 0; col < num_columns_; ++col) {
        Variable sb = SliceCols(s_logits, encoder_.offset(col),
                                encoder_.cardinality(col));
        Variable ce = SoftmaxCrossEntropy(sb, tr[static_cast<size_t>(col)]);
        task_tr = (col == 0) ? ce : Add(task_tr, ce);
      }
      Variable tr_term = Add(Scale(distill, config.lambda),
                             Scale(task_tr, 1.0 - config.lambda));
      Variable up_term = NllLoss(params_, up);
      Variable loss = Add(Scale(tr_term, alpha), Scale(up_term, 1.0 - alpha));
      opt.ZeroGrad();
      Backward(loss);
      opt.Step();
    }
  }
}

void Darn::AbsorbMetadata(const storage::Table& new_data) {
  total_rows_ += new_data.num_rows();
}

double Darn::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  auto codes = encoder_.EncodeTable(sample);
  std::vector<nn::Variable> frozen = nn::AsConstants(params_);
  // Chunked (and possibly thread-pool parallel) scoring; bit-identical for
  // any pool size because chunk bounds and the combine order are fixed.
  return GlobalChunkMean(
      sample.num_rows(), [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> rows(static_cast<size_t>(hi - lo));
        std::iota(rows.begin(), rows.end(), lo);
        return NllLoss(frozen, GatherCodes(codes, rows)).value().At(0, 0);
      });
}

Darn::FrozenNet Darn::Freeze() const {
  FrozenNet net;
  net.mw1 = params_[0].value();
  for (int64_t i = 0; i < net.mw1.size(); ++i) {
    net.mw1.data()[i] *= mask1_.data()[i];
  }
  net.b1 = params_[1].value();
  net.mw2 = params_[2].value();
  for (int64_t i = 0; i < net.mw2.size(); ++i) {
    net.mw2.data()[i] *= mask2_.data()[i];
  }
  net.b2 = params_[3].value();
  net.mw3 = params_[4].value();
  for (int64_t i = 0; i < net.mw3.size(); ++i) {
    net.mw3.data()[i] *= mask3_.data()[i];
  }
  net.b3 = params_[5].value();
  return net;
}

nn::Matrix Darn::HiddenForward(
    const FrozenNet& net, const std::vector<std::vector<int>>& codes) const {
  int n = static_cast<int>(codes[0].size());
  int h = config_.hidden_width;
  nn::Matrix h1(n, h);
  for (int r = 0; r < n; ++r) {
    double* hrow = h1.data() + static_cast<size_t>(r) * h;
    for (int j = 0; j < h; ++j) hrow[j] = net.b1.At(0, j);
    for (int col = 0; col < num_columns_; ++col) {
      int wrow =
          encoder_.offset(col) + codes[static_cast<size_t>(col)][static_cast<size_t>(r)];
      const double* src = net.mw1.data() + static_cast<size_t>(wrow) * h;
      for (int j = 0; j < h; ++j) hrow[j] += src[j];
    }
    for (int j = 0; j < h; ++j) hrow[j] = std::max(0.0, hrow[j]);
  }
  nn::Matrix h2 = MatMulValue(h1, net.mw2);
  for (int r = 0; r < n; ++r) {
    for (int j = 0; j < h; ++j) {
      h2.At(r, j) = std::max(0.0, h2.At(r, j) + net.b2.At(0, j));
    }
  }
  return h2;
}

nn::Matrix Darn::BlockProbs(const FrozenNet& net, const nn::Matrix& h2,
                            int col) const {
  int n = h2.rows();
  int h = config_.hidden_width;
  int k = encoder_.cardinality(col);
  int off = encoder_.offset(col);
  nn::Matrix probs(n, k);
  for (int r = 0; r < n; ++r) {
    double mx = -1e300;
    for (int u = 0; u < k; ++u) {
      double z = net.b3.At(0, off + u);
      for (int j = 0; j < h; ++j) z += h2.At(r, j) * net.mw3.At(j, off + u);
      probs.At(r, u) = z;
      mx = std::max(mx, z);
    }
    double sum = 0.0;
    for (int u = 0; u < k; ++u) {
      double e = std::exp(probs.At(r, u) - mx);
      probs.At(r, u) = e;
      sum += e;
    }
    for (int u = 0; u < k; ++u) probs.At(r, u) /= sum;
  }
  return probs;
}

double Darn::EstimateSelectivity(const workload::Query& query) const {
  auto ranges = encoder_.AllowedRanges(query);
  for (const auto& r : ranges) {
    if (r.first > r.second) return 0.0;  // unsatisfiable predicate
  }
  FrozenNet net = Freeze();
  int s = config_.progressive_samples;
  std::vector<double> weight(static_cast<size_t>(s), 1.0);
  std::vector<std::vector<int>> codes(
      static_cast<size_t>(num_columns_),
      std::vector<int>(static_cast<size_t>(s), 0));

  // Progressive sampling (Naru): per column, sum the exact conditional mass
  // of the allowed codes given each sampled prefix, then extend the prefix
  // by sampling within the allowed set.
  for (int col = 0; col < num_columns_; ++col) {
    nn::Matrix h2 = HiddenForward(net, codes);
    nn::Matrix probs = BlockProbs(net, h2, col);
    auto [lo, hi] = ranges[static_cast<size_t>(col)];
    for (int path = 0; path < s; ++path) {
      if (weight[static_cast<size_t>(path)] == 0.0) continue;
      double mass = 0.0;
      for (int u = lo; u <= hi; ++u) mass += probs.At(path, u);
      weight[static_cast<size_t>(path)] *= mass;
      if (mass <= 0.0) {
        weight[static_cast<size_t>(path)] = 0.0;
        continue;
      }
      if (col + 1 < num_columns_) {
        double u01 = rng_.Uniform(0.0, mass);
        double acc = 0.0;
        int chosen = hi;
        for (int u = lo; u <= hi; ++u) {
          acc += probs.At(path, u);
          if (u01 < acc) {
            chosen = u;
            break;
          }
        }
        codes[static_cast<size_t>(col)][static_cast<size_t>(path)] = chosen;
      }
    }
  }
  double total = 0.0;
  for (double w : weight) total += w;
  return total / static_cast<double>(s);
}

double Darn::EstimateCardinality(const workload::Query& query) const {
  return EstimateSelectivity(query) * static_cast<double>(total_rows_);
}

StatusOr<double> Darn::TryEstimateCardinality(
    const workload::Query& query) const {
  for (const auto& p : query.predicates) {
    if (p.column < 0 || p.column >= num_columns_) {
      return Status::InvalidArgument("predicate on out-of-range column " +
                                     std::to_string(p.column));
    }
  }
  return EstimateCardinality(query);
}

Status Darn::SaveState(io::Serializer* out) const {
  out->WriteU32(kDarnStateVersion);
  out->WriteI32(config_.hidden_width);
  out->WriteI32(config_.max_bins);
  out->WriteI32(config_.epochs);
  out->WriteI32(config_.batch_size);
  out->WriteDouble(config_.learning_rate);
  out->WriteI32(config_.progressive_samples);
  out->WriteU64(config_.seed);
  encoder_.SaveState(out);
  out->WriteI32(num_columns_);
  io::WriteParameters(out, params_);
  out->WriteI64(total_rows_);
  out->WriteRng(rng_);
  return Status::OK();
}

Status Darn::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kDarnStateVersion) {
    return Status::InvalidArgument("unsupported darn state version " +
                                   std::to_string(version));
  }
  config_.hidden_width = in->ReadI32();
  config_.max_bins = in->ReadI32();
  config_.epochs = in->ReadI32();
  config_.batch_size = in->ReadI32();
  config_.learning_rate = in->ReadDouble();
  config_.progressive_samples = in->ReadI32();
  config_.seed = in->ReadU64();
  encoder_ = DiscreteEncoder::Restore(in);
  num_columns_ = in->ReadI32();
  DDUP_RETURN_IF_ERROR(io::ReadParameters(in, kDarnParamCount, &params_));
  total_rows_ = in->ReadI64();
  in->ReadRng(&rng_);
  DDUP_RETURN_IF_ERROR(in->status());
  if (num_columns_ != encoder_.num_columns()) {
    return Status::InvalidArgument("darn encoder column count mismatch");
  }
  int h = config_.hidden_width;
  int total = encoder_.total_cardinality();
  if (h < 1 || num_columns_ < 1 || config_.batch_size < 1 ||
      config_.progressive_samples < 1) {
    return Status::InvalidArgument("darn checkpoint config is inconsistent");
  }
  DDUP_RETURN_IF_ERROR(io::CheckParameterShapes(
      params_,
      {{total, h}, {1, h}, {h, h}, {1, h}, {h, total}, {1, total}}));
  BuildMasks(num_columns_);
  return Status::OK();
}

Status Darn::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Darn>> Darn::Restore(io::Deserializer* in) {
  std::unique_ptr<Darn> model(new Darn());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Darn>> Darn::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Darn>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

double Darn::JointProbability(const std::vector<int>& encoded_row) const {
  DDUP_CHECK(static_cast<int>(encoded_row.size()) == num_columns_);
  FrozenNet net = Freeze();
  std::vector<std::vector<int>> codes(static_cast<size_t>(num_columns_),
                                      std::vector<int>(1, 0));
  double p = 1.0;
  for (int col = 0; col < num_columns_; ++col) {
    nn::Matrix h2 = HiddenForward(net, codes);
    nn::Matrix probs = BlockProbs(net, h2, col);
    p *= probs.At(0, encoded_row[static_cast<size_t>(col)]);
    codes[static_cast<size_t>(col)][0] = encoded_row[static_cast<size_t>(col)];
  }
  return p;
}

}  // namespace ddup::models
