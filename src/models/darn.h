#ifndef DDUP_MODELS_DARN_H_
#define DDUP_MODELS_DARN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/interfaces.h"
#include "models/encoding.h"
#include "nn/layers.h"
#include "workload/query.h"

namespace ddup::models {

// Naru/NeuroCard-style deep autoregressive network (§4.3 "Deep
// Autoregressive Networks"): a MADE (masked autoencoder) over the
// dictionary/bin-encoded columns learns the factorized joint
// P(A1) P(A2|A1) ... P(Am|A1..Am-1). Cardinality estimates use progressive
// sampling with exact per-column summation over the predicate's allowed
// codes. The training loss (summed per-column cross-entropy == joint NLL)
// doubles as DDUp's OOD signal.
struct DarnConfig {
  int hidden_width = 64;
  int max_bins = 32;           // numeric columns binned equal-frequency
  int epochs = 6;
  int batch_size = 128;
  double learning_rate = 5e-3;
  int progressive_samples = 16;
  uint64_t seed = 11;
};

class Darn : public core::UpdatableModel, public core::CardinalityEstimator {
 public:
  // Fits the discretizer on `base_data` and trains the base model M0.
  Darn(const storage::Table& base_data, DarnConfig config);

  // core::UpdatableModel:
  double AverageLoss(const storage::Table& sample) const override;
  std::string name() const override { return "darn"; }
  void FineTune(const storage::Table& new_data, double learning_rate,
                int epochs) override;
  void DistillUpdate(const storage::Table& transfer_set,
                     const storage::Table& new_data,
                     const core::DistillConfig& config) override;
  void RetrainFromScratch(const storage::Table& data) override;
  void AbsorbMetadata(const storage::Table& new_data) override;
  void ResetMetadata() override { total_rows_ = 0; }
  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

  // One-file checkpoint (src/io, section kind "darn"). The MADE masks are
  // not stored — they are a pure function of the encoder and config and are
  // rebuilt on load.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<std::unique_ptr<Darn>> LoadFromFile(const std::string& path);
  // Rebuilds a model from a raw SaveState payload (the ModelFactory /
  // engine-manifest restore path; LoadFromFile wraps this).
  static StatusOr<std::unique_ptr<Darn>> Restore(io::Deserializer* in);
  static constexpr const char* kCheckpointKind = "darn";

  double AverageLogLikelihood(const storage::Table& sample) const {
    return -AverageLoss(sample);
  }

  // Estimated number of rows matching the query's conjunctive predicates.
  double EstimateCardinality(const workload::Query& query) const;
  // core::CardinalityEstimator (the surface the Engine dispatches to):
  // validates the predicates before estimating. Estimation never touches
  // `this` — all per-call state is the context's RNG — so any number of
  // threads can estimate concurrently against one (immutable) model.
  using core::CardinalityEstimator::TryEstimateCardinality;
  StatusOr<double> TryEstimateCardinality(
      const workload::Query& query,
      core::EstimateContext* ctx) const override;
  // RNG stream derived from (config seed, query fingerprint): the same query
  // gets the same stream at any batch size or call count.
  core::EstimateContext MakeEstimateContext(
      const workload::Query& query) const override;
  // Vectorized batch entry: all queries' progressive-sample paths share one
  // padded matrix, so weight freezing and the per-column forward passes are
  // paid once per batch instead of once per query. Bit-identical to the
  // scalar path (which routes through the same core with one query).
  Status TryEstimateCardinalityBatch(const std::vector<workload::Query>& queries,
                                     std::vector<double>* out) const override;
  // Selectivity in [0, 1] (EstimateCardinality / total_rows).
  double EstimateSelectivity(const workload::Query& query) const;
  // Exact joint probability of one fully specified encoded row (tests only;
  // enumerating these over a small domain must sum to 1).
  double JointProbability(const std::vector<int>& encoded_row) const;

  int64_t total_rows() const { return total_rows_; }
  const DiscreteEncoder& encoder() const { return encoder_; }

 private:
  // Uninitialized shell for LoadFromFile; LoadState restores every field.
  Darn() = default;

  struct FrozenNet {
    nn::Matrix mw1, b1, mw2, b2, mw3, b3;  // masked weights, biases
  };

  void InitParams();
  void BuildMasks(int num_columns);
  // Autograd forward: logits over all output blocks for the batch encoded as
  // per-column code vectors.
  nn::Variable ForwardLogits(const std::vector<nn::Variable>& params,
                             const std::vector<std::vector<int>>& codes) const;
  // Joint NLL (mean per row) for the batch.
  nn::Variable NllLoss(const std::vector<nn::Variable>& params,
                       const std::vector<std::vector<int>>& codes) const;
  void TrainLoop(const storage::Table& data, double lr, int epochs);

  FrozenNet Freeze() const;
  // Batched progressive sampling over nn/kernels with MatrixPool scratch:
  // selectivities for `n` queries in one padded path matrix, each query
  // drawing from its own stream rngs[i] (DESIGN.md §13). All row counts are
  // padded to a multiple of 4 so every row runs in a full GEMM register
  // panel — per-row results are then independent of what else shares the
  // batch, which is what makes answers batch-size-invariant bit for bit.
  //
  // `active_set` opts into the vectorized engine's MADE-degree execution
  // strategy: output block `col` structurally reads only hidden units of
  // degree < col+1 (mask3) and those read only the same unit set (mask2),
  // so both per-column GEMMs shrink to the active submatrix. This is exact
  // — skipped terms are exact zeros of the masked weights, and the kernel
  // accumulates each output element in one sequential chain — and the
  // differential harness byte-checks it against the dense spec path. It is
  // only taken when hidden_width keeps every output element in the kernel's
  // main register tile (see ActiveSetSafe); otherwise the dense path runs.
  void SelectivityBatch(const workload::Query* queries, size_t n, Rng* rngs,
                        double* out, bool active_set) const;
  bool ActiveSetSafe() const;
  // Value-level hidden pass shared by inference paths: returns the second
  // hidden activation (num_paths x H).
  nn::Matrix HiddenForward(const FrozenNet& net,
                           const std::vector<std::vector<int>>& codes) const;
  // Softmax probabilities of output block `col` from hidden activations.
  nn::Matrix BlockProbs(const FrozenNet& net, const nn::Matrix& h2,
                        int col) const;

  // Gathers minibatch codes from whole-table codes.
  static std::vector<std::vector<int>> GatherCodes(
      const std::vector<std::vector<int>>& all,
      const std::vector<int64_t>& rows);

  DarnConfig config_;
  DiscreteEncoder encoder_;
  int num_columns_ = 0;
  std::vector<nn::Variable> params_;  // W1,b1,W2,b2,W3,b3
  nn::Matrix mask1_, mask2_, mask3_;
  // Per output column: ascending hidden-unit indices with degree < col+1
  // (the units mask3 lets that block read), padded up to a multiple of 16
  // with inactive units so restricted GEMM widths keep every element in the
  // kernel's main register tile. Rebuilt with the masks.
  std::vector<std::vector<int>> active_units_;
  int64_t total_rows_ = 0;
  // Training stream only. Estimates never touch it (they derive per-query
  // streams via MakeEstimateContext), keeping the estimate path const.
  Rng rng_;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_DARN_H_
