#include "models/encoding.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"
#include "io/serializer.h"

namespace ddup::models {

std::vector<std::vector<int64_t>> MiniBatches(int64_t n, int batch_size,
                                              Rng& rng) {
  DDUP_CHECK(n >= 0 && batch_size > 0);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  rng.Shuffle(&idx);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < n; start += batch_size) {
    int64_t end = std::min(n, start + batch_size);
    batches.emplace_back(idx.begin() + start, idx.begin() + end);
  }
  return batches;
}

ColumnDiscretizer ColumnDiscretizer::Fit(const storage::Column& column,
                                         int max_bins) {
  DDUP_CHECK(max_bins >= 1);
  DDUP_CHECK(column.size() > 0);
  ColumnDiscretizer d;
  if (!column.is_numeric()) {
    // One bin per dictionary code; codes are their own edges.
    d.upper_edges_.reserve(static_cast<size_t>(column.cardinality()));
    for (int i = 0; i < column.cardinality(); ++i) {
      d.upper_edges_.push_back(static_cast<double>(i));
    }
    return d;
  }
  std::vector<double> values = column.numeric_values();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (static_cast<int>(values.size()) <= max_bins) {
    d.upper_edges_ = std::move(values);  // one bin per distinct value
    return d;
  }
  // Equal-frequency edges over the sorted distinct values.
  d.upper_edges_.reserve(static_cast<size_t>(max_bins));
  for (int b = 1; b <= max_bins; ++b) {
    size_t pos = static_cast<size_t>(
        std::llround(static_cast<double>(b) / max_bins *
                     static_cast<double>(values.size()))) -
                 1;
    pos = std::min(pos, values.size() - 1);
    double edge = values[pos];
    if (d.upper_edges_.empty() || edge > d.upper_edges_.back()) {
      d.upper_edges_.push_back(edge);
    }
  }
  DDUP_CHECK(!d.upper_edges_.empty());
  return d;
}

int ColumnDiscretizer::Encode(double value) const {
  // First bin whose upper edge is >= value; clamp above the top edge.
  auto it = std::lower_bound(upper_edges_.begin(), upper_edges_.end(), value);
  if (it == upper_edges_.end()) return cardinality() - 1;
  return static_cast<int>(it - upper_edges_.begin());
}

std::pair<int, int> ColumnDiscretizer::BinRange(double lo, double hi) const {
  if (lo > hi) return {0, -1};
  if (lo > upper_edges_.back()) return {0, -1};
  int first = Encode(lo);
  int last = Encode(hi);
  // If hi falls strictly below bin `last`'s interior (i.e. hi <= the previous
  // edge), the bin cannot intersect; Encode already guarantees
  // upper_edges_[last] >= hi or last == K-1, and lower edge < hi holds unless
  // hi <= upper_edges_[last-1], which Encode rules out by construction.
  return {first, last};
}

DiscreteEncoder DiscreteEncoder::Fit(const storage::Table& base, int max_bins) {
  DDUP_CHECK(base.num_columns() > 0);
  DiscreteEncoder e;
  int off = 0;
  for (int c = 0; c < base.num_columns(); ++c) {
    e.columns_.push_back(ColumnDiscretizer::Fit(base.column(c), max_bins));
    e.offsets_.push_back(off);
    off += e.columns_.back().cardinality();
  }
  e.total_ = off;
  return e;
}

int DiscreteEncoder::cardinality(int col) const {
  DDUP_CHECK(col >= 0 && col < num_columns());
  return columns_[static_cast<size_t>(col)].cardinality();
}

int DiscreteEncoder::offset(int col) const {
  DDUP_CHECK(col >= 0 && col < num_columns());
  return offsets_[static_cast<size_t>(col)];
}

const ColumnDiscretizer& DiscreteEncoder::discretizer(int col) const {
  DDUP_CHECK(col >= 0 && col < num_columns());
  return columns_[static_cast<size_t>(col)];
}

std::vector<std::vector<int>> DiscreteEncoder::EncodeTable(
    const storage::Table& table) const {
  DDUP_CHECK_MSG(table.num_columns() == num_columns(),
                 "table does not match fitted schema");
  std::vector<std::vector<int>> codes(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) {
    auto& out = codes[static_cast<size_t>(c)];
    out.resize(static_cast<size_t>(table.num_rows()));
    const storage::Column& col = table.column(c);
    const ColumnDiscretizer& d = columns_[static_cast<size_t>(c)];
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      out[static_cast<size_t>(r)] = d.Encode(col.AsDouble(r));
    }
  }
  return codes;
}

std::vector<std::pair<int, int>> DiscreteEncoder::AllowedRanges(
    const workload::Query& query) const {
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) {
    ranges.emplace_back(0, cardinality(c) - 1);
  }
  for (const auto& p : query.predicates) {
    DDUP_CHECK(p.column >= 0 && p.column < num_columns());
    const ColumnDiscretizer& d = columns_[static_cast<size_t>(p.column)];
    std::pair<int, int> pr;
    switch (p.op) {
      case workload::CompareOp::kEq:
        pr = d.BinRange(p.value, p.value);
        break;
      case workload::CompareOp::kGe:
        pr = d.BinRange(p.value, std::numeric_limits<double>::infinity());
        break;
      case workload::CompareOp::kLe:
        pr = d.BinRange(-std::numeric_limits<double>::infinity(), p.value);
        break;
    }
    auto& r = ranges[static_cast<size_t>(p.column)];
    r.first = std::max(r.first, pr.first);
    r.second = std::min(r.second, pr.second);
  }
  return ranges;
}


MinMaxNormalizer MinMaxNormalizer::Fit(const storage::Column& column) {
  MinMaxNormalizer n;
  n.lo_ = column.MinAsDouble();
  n.hi_ = column.MaxAsDouble();
  if (n.hi_ <= n.lo_) n.hi_ = n.lo_ + 1.0;  // degenerate constant column
  return n;
}

double MinMaxNormalizer::Encode(double value) const {
  double v = std::clamp(value, lo_, hi_);
  return (v - lo_) / (hi_ - lo_) * 2.0 - 1.0;
}

double MinMaxNormalizer::Decode(double normalized) const {
  return (normalized + 1.0) / 2.0 * (hi_ - lo_) + lo_;
}

void ColumnDiscretizer::SaveState(io::Serializer* out) const {
  out->WriteDoubleVec(upper_edges_);
}

ColumnDiscretizer ColumnDiscretizer::Restore(io::Deserializer* in) {
  ColumnDiscretizer d;
  d.upper_edges_ = in->ReadDoubleVec();
  return d;
}

void DiscreteEncoder::SaveState(io::Serializer* out) const {
  // Only the fitted edges are stored; offsets_ and total_ are derived and
  // recomputed on restore so a payload can never make them inconsistent.
  out->WriteU32(static_cast<uint32_t>(columns_.size()));
  for (const auto& c : columns_) c.SaveState(out);
}

DiscreteEncoder DiscreteEncoder::Restore(io::Deserializer* in) {
  DiscreteEncoder e;
  uint32_t n = in->ReadU32();
  int off = 0;
  for (uint32_t i = 0; i < n && in->ok(); ++i) {
    e.columns_.push_back(ColumnDiscretizer::Restore(in));
    if (e.columns_.back().cardinality() < 1) {
      in->FailInvalid("discretizer with no bins in checkpoint");
      return {};
    }
    e.offsets_.push_back(off);
    off += e.columns_.back().cardinality();
  }
  e.total_ = off;
  return e;
}

void MinMaxNormalizer::SaveState(io::Serializer* out) const {
  out->WriteDouble(lo_);
  out->WriteDouble(hi_);
}

MinMaxNormalizer MinMaxNormalizer::Restore(io::Deserializer* in) {
  MinMaxNormalizer n;
  n.lo_ = in->ReadDouble();
  n.hi_ = in->ReadDouble();
  return n;
}

void Standardizer::SaveState(io::Serializer* out) const {
  out->WriteDouble(mean_);
  out->WriteDouble(std_);
}

Standardizer Standardizer::Restore(io::Deserializer* in) {
  Standardizer s;
  s.mean_ = in->ReadDouble();
  s.std_ = in->ReadDouble();
  return s;
}

Standardizer Standardizer::Fit(const storage::Column& column) {
  DDUP_CHECK(column.size() > 0);
  Standardizer s;
  double sum = 0.0, ss = 0.0;
  int64_t n = column.size();
  for (int64_t r = 0; r < n; ++r) sum += column.AsDouble(r);
  s.mean_ = sum / static_cast<double>(n);
  for (int64_t r = 0; r < n; ++r) {
    double d = column.AsDouble(r) - s.mean_;
    ss += d * d;
  }
  s.std_ = std::sqrt(ss / static_cast<double>(n));
  if (s.std_ <= 1e-12) s.std_ = 1.0;  // constant column
  return s;
}

}  // namespace ddup::models
