#ifndef DDUP_MODELS_ENCODING_H_
#define DDUP_MODELS_ENCODING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::io {
class Serializer;
class Deserializer;
}  // namespace ddup::io

namespace ddup::models {

// Shuffled minibatch index lists covering [0, n).
std::vector<std::vector<int64_t>> MiniBatches(int64_t n, int batch_size,
                                              Rng& rng);

// Ordered discretizer for a single column, fit once on base data and reused
// for all later batches (valid under the paper's support assumption).
// Categorical columns pass codes through; numeric columns get equal-frequency
// bins (or one bin per distinct value when there are few).
class ColumnDiscretizer {
 public:
  static ColumnDiscretizer Fit(const storage::Column& column, int max_bins);

  int cardinality() const { return static_cast<int>(upper_edges_.size()); }
  // Value -> bin code (values beyond the fitted support clamp to edge bins).
  int Encode(double value) const;
  // Inclusive bin interval intersecting [lo, hi]; {0, -1} when empty.
  std::pair<int, int> BinRange(double lo, double hi) const;

  // Checkpoint support (src/io): the fitted edges round-trip bit-exactly.
  void SaveState(io::Serializer* out) const;
  static ColumnDiscretizer Restore(io::Deserializer* in);

 private:
  // Bin i covers (upper_edges_[i-1], upper_edges_[i]]; bin 0 is unbounded
  // below. Edges are strictly increasing.
  std::vector<double> upper_edges_;
};

// Whole-table discretizer used by the DARN and SPN models.
class DiscreteEncoder {
 public:
  static DiscreteEncoder Fit(const storage::Table& base, int max_bins);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int cardinality(int col) const;
  // Offset of column `col`'s one-hot block in the concatenated encoding.
  int offset(int col) const;
  int total_cardinality() const { return total_; }
  const ColumnDiscretizer& discretizer(int col) const;

  // codes[col][row]; table must have the fitted schema (column order).
  std::vector<std::vector<int>> EncodeTable(const storage::Table& table) const;

  // Per-column inclusive allowed-code interval implied by the query's
  // conjunctive predicates; unconstrained columns get [0, K-1]; a column
  // whose predicates are unsatisfiable gets {0, -1}.
  std::vector<std::pair<int, int>> AllowedRanges(
      const workload::Query& query) const;

  void SaveState(io::Serializer* out) const;
  static DiscreteEncoder Restore(io::Deserializer* in);

 private:
  std::vector<ColumnDiscretizer> columns_;
  std::vector<int> offsets_;
  int total_ = 0;
};


// Affine map of a numeric column to [-1, 1] (paper §5.1 normalizes the AQP
// range attribute this way). Fit on base data; Encode clamps to the fitted
// support.
class MinMaxNormalizer {
 public:
  static MinMaxNormalizer Fit(const storage::Column& column);
  double Encode(double value) const;
  double Decode(double normalized) const;
  // Derivative d(raw)/d(normalized) = (hi - lo) / 2; used to rescale
  // integrals computed in normalized space.
  double Scale() const { return (hi_ - lo_) / 2.0; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  void SaveState(io::Serializer* out) const;
  static MinMaxNormalizer Restore(io::Deserializer* in);

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
};

// Z-score standardizer for TVAE numeric inputs.
class Standardizer {
 public:
  static Standardizer Fit(const storage::Column& column);
  double Encode(double value) const { return (value - mean_) / std_; }
  double Decode(double encoded) const { return encoded * std_ + mean_; }
  double mean() const { return mean_; }
  double stddev() const { return std_; }

  void SaveState(io::Serializer* out) const;
  static Standardizer Restore(io::Deserializer* in);

 private:
  double mean_ = 0.0;
  double std_ = 1.0;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_ENCODING_H_
