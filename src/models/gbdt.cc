#include "models/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "io/checkpoint.h"
#include "io/serializer.h"

namespace ddup::models {

namespace {
constexpr uint32_t kGbdtStateVersion = 1;
}

Gbdt::Gbdt(GbdtConfig config) : config_(config) {}

double Gbdt::Tree::Predict(const std::vector<double>& x) const {
  DDUP_CHECK(!nodes.empty());
  int i = 0;
  while (nodes[static_cast<size_t>(i)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    i = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(i)].value;
}

std::vector<std::vector<double>> Gbdt::ExtractFeatures(
    const storage::Table& data) const {
  std::vector<std::vector<double>> rows(
      static_cast<size_t>(data.num_rows()),
      std::vector<double>(feature_columns_.size()));
  for (size_t f = 0; f < feature_columns_.size(); ++f) {
    const storage::Column& col = data.column(feature_columns_[f]);
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      rows[static_cast<size_t>(r)][f] = col.AsDouble(r);
    }
  }
  return rows;
}

int Gbdt::BuildTree(Tree* tree, const std::vector<std::vector<double>>& features,
                    const std::vector<double>& grad,
                    const std::vector<double>& hess, std::vector<int> rows,
                    int depth) {
  double g_total = 0.0, h_total = 0.0;
  for (int r : rows) {
    g_total += grad[static_cast<size_t>(r)];
    h_total += hess[static_cast<size_t>(r)];
  }
  const double lambda = config_.l2_regularization;
  auto make_leaf = [&]() {
    TreeNode leaf;
    leaf.value = -g_total / (h_total + lambda);
    tree->nodes.push_back(leaf);
    return static_cast<int>(tree->nodes.size()) - 1;
  };
  if (depth >= config_.max_depth ||
      static_cast<int>(rows.size()) < 2 * config_.min_leaf_size) {
    return make_leaf();
  }

  double parent_score = g_total * g_total / (h_total + lambda);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  size_t num_features = feature_columns_.size();
  std::vector<int> sorted = rows;
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return features[static_cast<size_t>(a)][f] <
             features[static_cast<size_t>(b)][f];
    });
    double g_left = 0.0, h_left = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      int r = sorted[i];
      g_left += grad[static_cast<size_t>(r)];
      h_left += hess[static_cast<size_t>(r)];
      double v = features[static_cast<size_t>(r)][f];
      double v_next = features[static_cast<size_t>(sorted[i + 1])][f];
      if (v == v_next) continue;  // can only split between distinct values
      int n_left = static_cast<int>(i) + 1;
      int n_right = static_cast<int>(sorted.size()) - n_left;
      if (n_left < config_.min_leaf_size || n_right < config_.min_leaf_size) {
        continue;
      }
      double g_right = g_total - g_left;
      double h_right = h_total - h_left;
      double gain = g_left * g_left / (h_left + lambda) +
                    g_right * g_right / (h_right + lambda) - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  std::vector<int> left_rows, right_rows;
  for (int r : rows) {
    if (features[static_cast<size_t>(r)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  TreeNode split;
  split.feature = best_feature;
  split.threshold = best_threshold;
  tree->nodes.push_back(split);
  int self = static_cast<int>(tree->nodes.size()) - 1;
  int left = BuildTree(tree, features, grad, hess, std::move(left_rows),
                       depth + 1);
  int right = BuildTree(tree, features, grad, hess, std::move(right_rows),
                        depth + 1);
  tree->nodes[static_cast<size_t>(self)].left = left;
  tree->nodes[static_cast<size_t>(self)].right = right;
  return self;
}

void Gbdt::Train(const storage::Table& data, const std::string& target_column) {
  int target = data.ColumnIndex(target_column);
  DDUP_CHECK_MSG(target >= 0, "missing target column " + target_column);
  const storage::Column& label_col = data.column(target);
  DDUP_CHECK_MSG(!label_col.is_numeric(), "GBDT target must be categorical");
  target_column_ = target_column;
  num_classes_ = label_col.cardinality();
  feature_columns_.clear();
  for (int c = 0; c < data.num_columns(); ++c) {
    if (c != target) feature_columns_.push_back(c);
  }
  DDUP_CHECK_MSG(!feature_columns_.empty(), "no feature columns");

  auto features = ExtractFeatures(data);
  int64_t n = data.num_rows();
  std::vector<int> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) labels[static_cast<size_t>(r)] = label_col.CodeAt(r);

  std::vector<std::vector<double>> scores(
      static_cast<size_t>(num_classes_),
      std::vector<double>(static_cast<size_t>(n), 0.0));
  rounds_.clear();

  std::vector<int> all_rows(static_cast<size_t>(n));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<double> probs(static_cast<size_t>(num_classes_));

  for (int round = 0; round < config_.num_rounds; ++round) {
    std::vector<Tree> class_trees(static_cast<size_t>(num_classes_));
    // Softmax gradients/hessians for every class from the current scores.
    std::vector<std::vector<double>> grad(
        static_cast<size_t>(num_classes_),
        std::vector<double>(static_cast<size_t>(n)));
    std::vector<std::vector<double>> hess = grad;
    for (int64_t r = 0; r < n; ++r) {
      double mx = -1e300;
      for (int k = 0; k < num_classes_; ++k) {
        mx = std::max(mx, scores[static_cast<size_t>(k)][static_cast<size_t>(r)]);
      }
      double sum = 0.0;
      for (int k = 0; k < num_classes_; ++k) {
        probs[static_cast<size_t>(k)] = std::exp(
            scores[static_cast<size_t>(k)][static_cast<size_t>(r)] - mx);
        sum += probs[static_cast<size_t>(k)];
      }
      for (int k = 0; k < num_classes_; ++k) {
        double p = probs[static_cast<size_t>(k)] / sum;
        double y = labels[static_cast<size_t>(r)] == k ? 1.0 : 0.0;
        grad[static_cast<size_t>(k)][static_cast<size_t>(r)] = p - y;
        hess[static_cast<size_t>(k)][static_cast<size_t>(r)] =
            std::max(1e-6, p * (1.0 - p));
      }
    }
    for (int k = 0; k < num_classes_; ++k) {
      BuildTree(&class_trees[static_cast<size_t>(k)], features,
                grad[static_cast<size_t>(k)], hess[static_cast<size_t>(k)],
                all_rows, 0);
      for (int64_t r = 0; r < n; ++r) {
        scores[static_cast<size_t>(k)][static_cast<size_t>(r)] +=
            config_.learning_rate *
            class_trees[static_cast<size_t>(k)].Predict(
                features[static_cast<size_t>(r)]);
      }
    }
    rounds_.push_back(std::move(class_trees));
  }
}

std::vector<int> Gbdt::Predict(const storage::Table& data) const {
  DDUP_CHECK_MSG(!rounds_.empty(), "Predict before Train");
  auto features = ExtractFeatures(data);
  std::vector<int> preds(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    int best = 0;
    double best_score = -1e300;
    for (int k = 0; k < num_classes_; ++k) {
      double s = 0.0;
      for (const auto& round : rounds_) {
        s += config_.learning_rate *
             round[static_cast<size_t>(k)].Predict(
                 features[static_cast<size_t>(r)]);
      }
      if (s > best_score) {
        best_score = s;
        best = k;
      }
    }
    preds[static_cast<size_t>(r)] = best;
  }
  return preds;
}

double Gbdt::MicroF1(const storage::Table& test) const {
  int target = test.ColumnIndex(target_column_);
  DDUP_CHECK_MSG(target >= 0, "test table missing target column");
  std::vector<int> preds = Predict(test);
  const storage::Column& labels = test.column(target);
  int64_t correct = 0;
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == labels.CodeAt(r)) ++correct;
  }
  // Micro-F1 over all classes == accuracy for single-label classification.
  return test.num_rows() > 0
             ? static_cast<double>(correct) / static_cast<double>(test.num_rows())
             : 0.0;
}

Status Gbdt::SaveState(io::Serializer* out) const {
  out->WriteU32(kGbdtStateVersion);
  out->WriteI32(config_.num_rounds);
  out->WriteI32(config_.max_depth);
  out->WriteDouble(config_.learning_rate);
  out->WriteI32(config_.min_leaf_size);
  out->WriteDouble(config_.l2_regularization);
  out->WriteString(target_column_);
  out->WriteIntVec(feature_columns_);
  out->WriteI32(num_classes_);
  out->WriteU32(static_cast<uint32_t>(rounds_.size()));
  for (const auto& round : rounds_) {
    out->WriteU32(static_cast<uint32_t>(round.size()));
    for (const auto& tree : round) {
      out->WriteU32(static_cast<uint32_t>(tree.nodes.size()));
      for (const auto& n : tree.nodes) {
        out->WriteI32(n.feature);
        out->WriteDouble(n.threshold);
        out->WriteI32(n.left);
        out->WriteI32(n.right);
        out->WriteDouble(n.value);
      }
    }
  }
  return Status::OK();
}

Status Gbdt::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kGbdtStateVersion) {
    return Status::InvalidArgument("unsupported gbdt state version " +
                                   std::to_string(version));
  }
  config_.num_rounds = in->ReadI32();
  config_.max_depth = in->ReadI32();
  config_.learning_rate = in->ReadDouble();
  config_.min_leaf_size = in->ReadI32();
  config_.l2_regularization = in->ReadDouble();
  target_column_ = in->ReadString();
  feature_columns_ = in->ReadIntVec();
  num_classes_ = in->ReadI32();
  rounds_.clear();
  uint32_t num_rounds = in->ReadU32();
  for (uint32_t r = 0; r < num_rounds && in->ok(); ++r) {
    std::vector<Tree> round;
    uint32_t num_trees = in->ReadU32();
    for (uint32_t t = 0; t < num_trees && in->ok(); ++t) {
      Tree tree;
      uint32_t num_nodes = in->ReadU32();
      for (uint32_t i = 0; i < num_nodes && in->ok(); ++i) {
        TreeNode n;
        n.feature = in->ReadI32();
        n.threshold = in->ReadDouble();
        n.left = in->ReadI32();
        n.right = in->ReadI32();
        n.value = in->ReadDouble();
        tree.nodes.push_back(n);
      }
      round.push_back(std::move(tree));
    }
    rounds_.push_back(std::move(round));
  }
  DDUP_RETURN_IF_ERROR(in->status());
  // Structural validation: Tree::Predict walks raw indices, so a CRC-valid
  // but malformed payload must be rejected here, not crash/loop there.
  // BuildTree appends children after their parent, so child indices strictly
  // greater than the parent's are an invariant of genuine checkpoints — and
  // guarantee termination of the Predict walk.
  auto num_features = static_cast<int>(feature_columns_.size());
  for (const auto& round : rounds_) {
    if (static_cast<int>(round.size()) != num_classes_) {
      return Status::InvalidArgument("gbdt round/class count mismatch");
    }
    for (const auto& tree : round) {
      auto num_nodes = static_cast<int>(tree.nodes.size());
      if (num_nodes == 0) {
        return Status::InvalidArgument("gbdt checkpoint has an empty tree");
      }
      for (int i = 0; i < num_nodes; ++i) {
        const TreeNode& n = tree.nodes[static_cast<size_t>(i)];
        if (n.feature < 0) continue;  // leaf
        if (n.feature >= num_features || n.left <= i || n.left >= num_nodes ||
            n.right <= i || n.right >= num_nodes) {
          return Status::InvalidArgument("gbdt checkpoint has a malformed tree");
        }
      }
    }
  }
  return Status::OK();
}

Status Gbdt::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Gbdt>> Gbdt::Restore(io::Deserializer* in) {
  auto model = std::make_unique<Gbdt>();
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Gbdt>> Gbdt::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Gbdt>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

}  // namespace ddup::models
