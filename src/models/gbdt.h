#ifndef DDUP_MODELS_GBDT_H_
#define DDUP_MODELS_GBDT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace ddup::io {
class Serializer;
class Deserializer;
}  // namespace ddup::io

namespace ddup::models {

// Gradient-boosted decision trees with a softmax objective — the stand-in
// for XGBoost in the paper's TVAE evaluation (§5.1.4): train a classifier on
// real vs. synthetic data and compare micro-F1 on held-out real rows.
// Second-order (Newton) leaf values, exact greedy splits.
struct GbdtConfig {
  int num_rounds = 25;
  int max_depth = 3;
  double learning_rate = 0.3;
  int min_leaf_size = 20;
  double l2_regularization = 1.0;
};

class Gbdt {
 public:
  explicit Gbdt(GbdtConfig config = {});

  // Trains on `data` with the named categorical column as the label; all
  // other columns become features via their double view.
  void Train(const storage::Table& data, const std::string& target_column);

  // Predicted class codes for each row of `data` (same schema as training).
  std::vector<int> Predict(const storage::Table& data) const;

  // Micro-averaged F1 on `test` — equal to accuracy for single-label
  // multi-class problems.
  double MicroF1(const storage::Table& test) const;

  int num_classes() const { return num_classes_; }
  const std::string& target_column() const { return target_column_; }
  const GbdtConfig& config() const { return config_; }

  // One-file checkpoint (src/io, section kind "gbdt"): all boosted trees
  // round-trip bit-exactly, so Predict/MicroF1 are identical after reload.
  Status SaveState(io::Serializer* out) const;
  Status LoadState(io::Deserializer* in);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<std::unique_ptr<Gbdt>> LoadFromFile(const std::string& path);
  // Rebuilds a model from a raw SaveState payload (the ModelFactory /
  // engine-manifest restore path; LoadFromFile wraps this).
  static StatusOr<std::unique_ptr<Gbdt>> Restore(io::Deserializer* in);
  static constexpr const char* kCheckpointKind = "gbdt";

 private:
  struct TreeNode {
    int feature = -1;          // -1 marks a leaf
    double threshold = 0.0;    // go left iff x[feature] <= threshold
    int left = -1, right = -1;
    double value = 0.0;        // leaf output
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Predict(const std::vector<double>& x) const;
  };

  std::vector<std::vector<double>> ExtractFeatures(
      const storage::Table& data) const;
  int BuildTree(Tree* tree, const std::vector<std::vector<double>>& features,
                const std::vector<double>& grad, const std::vector<double>& hess,
                std::vector<int> rows, int depth);

  GbdtConfig config_;
  std::string target_column_;
  std::vector<int> feature_columns_;
  int num_classes_ = 0;
  std::vector<std::vector<Tree>> rounds_;  // rounds_[r][class]
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_GBDT_H_
