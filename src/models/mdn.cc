#include "models/mdn.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/ops.h"

namespace ddup::models {

namespace {

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)
constexpr double kSigmaFloor = 1e-3;
constexpr uint32_t kMdnStateVersion = 1;
constexpr size_t kMdnParamCount = 10;  // W1,b1,W2,b2,Wo,bo,Wm,bm,Ws,bs

// Parameter layout: W1,b1,W2,b2, Wo,bo, Wm,bm, Ws,bs.
struct MdnOutputs {
  nn::Variable omega_logits;  // N x M
  nn::Variable mu;            // N x M
  nn::Variable sigma;         // N x M (softplus + floor)
};

MdnOutputs ForwardNet(const std::vector<nn::Variable>& p,
                      const std::vector<int>& codes) {
  using namespace nn;  // NOLINT: op-heavy function
  // Layer 1: the one-hot input would select exactly one row of W1 per
  // example, so x * W1 is an embedding gather — O(N*h) instead of
  // O(N*cardinality*h) — with the scatter-add backward of Rows. The
  // remaining layers use the fused affine kernels.
  Variable h = Relu(Add(Rows(p[0], codes), p[1]));
  h = AffineRelu(h, p[2], p[3]);
  MdnOutputs out;
  out.omega_logits = Affine(h, p[4], p[5]);
  out.mu = Affine(h, p[6], p[7]);
  out.sigma = AddScalar(Softplus(Affine(h, p[8], p[9])), kSigmaFloor);
  return out;
}

// -log p(y|x) per the Gaussian mixture, averaged over the batch.
nn::Variable MixtureNllFromOutputs(const MdnOutputs& out,
                                   const nn::Matrix& y_norm) {
  using namespace nn;  // NOLINT
  int m = out.mu.cols();
  Variable y = BroadcastCol(Constant(y_norm), m);
  Variable inv_sigma = Reciprocal(out.sigma);
  Variable z = Mul(Sub(y, out.mu), inv_sigma);
  // log N(y; mu_i, sigma_i) = -0.5*log(2pi) - log sigma_i - 0.5 z^2
  Variable log_normal = Sub(Scale(Square(z), -0.5),
                            AddScalar(Log(out.sigma), kHalfLog2Pi));
  Variable log_w = LogSoftmax(out.omega_logits);
  Variable loglik = LogSumExp(Add(log_w, log_normal));  // N x 1
  return Neg(Mean(loglik));
}

}  // namespace

Mdn::Mdn(const storage::Table& base_data, const std::string& categorical_column,
         const std::string& numeric_column, MdnConfig config)
    : config_(config),
      cat_name_(categorical_column),
      num_name_(numeric_column),
      rng_(config.seed) {
  cat_index_ = base_data.ColumnIndex(categorical_column);
  num_index_ = base_data.ColumnIndex(numeric_column);
  DDUP_CHECK_MSG(cat_index_ >= 0, "missing categorical column " +
                                      categorical_column);
  DDUP_CHECK_MSG(num_index_ >= 0, "missing numeric column " + numeric_column);
  const storage::Column& cat = base_data.column(cat_index_);
  DDUP_CHECK_MSG(!cat.is_numeric(), "MDN equality attribute must be categorical");
  DDUP_CHECK_MSG(base_data.column(num_index_).is_numeric(),
                 "MDN range attribute must be numeric");
  cardinality_ = cat.cardinality();
  normalizer_ = MinMaxNormalizer::Fit(base_data.column(num_index_));
  RetrainFromScratch(base_data);
}

void Mdn::InitParams() {
  using nn::Matrix;
  auto xavier = [this](int in, int out) {
    double s = std::sqrt(2.0 / static_cast<double>(in + out));
    return nn::Parameter(Matrix::Randn(rng_, in, out, s));
  };
  auto zeros = [](int out) {
    return nn::Parameter(nn::Matrix::Zeros(1, out));
  };
  int h = config_.hidden_width;
  int m = config_.num_components;
  params_ = {xavier(cardinality_, h), zeros(h), xavier(h, h), zeros(h),
             xavier(h, m),            zeros(m), xavier(h, m), zeros(m),
             xavier(h, m),            zeros(m)};
}

Mdn::Batch Mdn::MakeBatch(const storage::Table& data,
                          const std::vector<int64_t>& rows) const {
  Batch b;
  b.codes.reserve(rows.size());
  b.y = nn::Matrix(static_cast<int>(rows.size()), 1);
  const storage::Column& cat = data.column(cat_index_);
  const storage::Column& num = data.column(num_index_);
  for (size_t i = 0; i < rows.size(); ++i) {
    b.codes.push_back(cat.CodeAt(rows[i]));
    b.y.At(static_cast<int>(i), 0) = normalizer_.Encode(num.NumericAt(rows[i]));
  }
  return b;
}

nn::Variable Mdn::NllLoss(const std::vector<nn::Variable>& params,
                          const Batch& batch) const {
  return MixtureNllFromOutputs(ForwardNet(params, batch.codes), batch.y);
}

void Mdn::TrainLoop(const storage::Table& data, double lr, int epochs) {
  DDUP_CHECK(data.num_rows() > 0);
  nn::Adam opt(params_, lr);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& rows : MiniBatches(data.num_rows(), config_.batch_size,
                                        rng_)) {
      Batch batch = MakeBatch(data, rows);
      opt.ZeroGrad();
      nn::Variable loss = NllLoss(params_, batch);
      nn::Backward(loss);
      opt.Step();
    }
  }
}

void Mdn::RetrainFromScratch(const storage::Table& data) {
  InitParams();
  ResetMetadata();
  AbsorbMetadata(data);
  TrainLoop(data, config_.learning_rate, config_.epochs);
}

void Mdn::ResetMetadata() {
  frequency_.assign(static_cast<size_t>(cardinality_), 0);
}

void Mdn::FineTune(const storage::Table& new_data, double learning_rate,
                   int epochs) {
  TrainLoop(new_data, learning_rate, epochs);
}

void Mdn::DistillUpdate(const storage::Table& transfer_set,
                        const storage::Table& new_data,
                        const core::DistillConfig& config) {
  using namespace nn;  // NOLINT
  // Sequential self-distillation: the frozen copy of the current parameters
  // is the teacher; this model continues training as the student.
  std::vector<Variable> teacher = AsConstants(params_);
  double alpha =
      core::ResolveAlpha(config, transfer_set.num_rows(), new_data.num_rows());

  Adam opt(params_, config.learning_rate);
  for (int e = 0; e < config.epochs; ++e) {
    auto tr_batches =
        MiniBatches(transfer_set.num_rows(), config.batch_size, rng_);
    auto up_batches = MiniBatches(new_data.num_rows(), config.batch_size, rng_);
    size_t steps = std::max(tr_batches.size(), up_batches.size());
    for (size_t s = 0; s < steps; ++s) {
      Batch tr = MakeBatch(transfer_set, tr_batches[s % tr_batches.size()]);
      Batch up = MakeBatch(new_data, up_batches[s % up_batches.size()]);

      MdnOutputs s_out = ForwardNet(params_, tr.codes);
      MdnOutputs t_out = ForwardNet(teacher, tr.codes);
      // Eq. 9: annealed CE on mixture weights + MSE on means and sigmas.
      Variable distill = Add(
          DistillCrossEntropy(s_out.omega_logits, t_out.omega_logits,
                              config.temperature),
          Add(MseLoss(s_out.mu, Detach(t_out.mu)),
              MseLoss(s_out.sigma, Detach(t_out.sigma))));
      Variable task_tr = MixtureNllFromOutputs(s_out, tr.y);
      Variable tr_term = Add(Scale(distill, config.lambda),
                             Scale(task_tr, 1.0 - config.lambda));
      Variable up_term = NllLoss(params_, up);
      // Eq. 5.
      Variable loss =
          Add(Scale(tr_term, alpha), Scale(up_term, 1.0 - alpha));
      opt.ZeroGrad();
      Backward(loss);
      opt.Step();
    }
  }
}

void Mdn::AbsorbMetadata(const storage::Table& new_data) {
  const storage::Column& cat = new_data.column(cat_index_);
  for (int64_t r = 0; r < new_data.num_rows(); ++r) {
    ++frequency_[static_cast<size_t>(cat.CodeAt(r))];
  }
}

double Mdn::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  // Forward over frozen parameters: no gradient graph is built. Rows are
  // scored in fixed-size chunks (possibly across the shared thread pool);
  // the chunked combine is bit-identical for any pool size.
  std::vector<nn::Variable> frozen = nn::AsConstants(params_);
  return GlobalChunkMean(
      sample.num_rows(), [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> rows(static_cast<size_t>(hi - lo));
        std::iota(rows.begin(), rows.end(), lo);
        Batch b = MakeBatch(sample, rows);
        return NllLoss(frozen, b).value().At(0, 0);
      });
}

double Mdn::AverageLogLikelihood(const storage::Table& sample) const {
  return -AverageLoss(sample);
}

int64_t Mdn::frequency(int category) const {
  DDUP_CHECK(category >= 0 && category < cardinality_);
  return frequency_[static_cast<size_t>(category)];
}

Mdn::MixtureParams Mdn::MixtureFor(int category) const {
  DDUP_CHECK(category >= 0 && category < cardinality_);
  std::vector<nn::Variable> frozen = nn::AsConstants(params_);
  MdnOutputs out = ForwardNet(frozen, {category});
  nn::Variable w = nn::Softmax(out.omega_logits);
  MixtureParams mp;
  for (int i = 0; i < config_.num_components; ++i) {
    mp.weight.push_back(w.value().At(0, i));
    mp.mean.push_back(out.mu.value().At(0, i));
    mp.sigma.push_back(out.sigma.value().At(0, i));
  }
  return mp;
}

double Mdn::ConditionalDensity(int category, double y_raw) const {
  MixtureParams mp = MixtureFor(category);
  double y = normalizer_.Encode(y_raw);
  double p = 0.0;
  for (size_t i = 0; i < mp.weight.size(); ++i) {
    p += mp.weight[i] * NormalPdf(y, mp.mean[i], mp.sigma[i]);
  }
  // Densities transform with the normalization Jacobian dy_norm/dy_raw.
  return p / normalizer_.Scale();
}

std::optional<AqpQueryView> Mdn::ParseQuery(const workload::Query& query,
                                            const storage::Table& schema) const {
  AqpQueryView view;
  view.agg = query.agg;
  bool have_cat = false, have_lo = false, have_hi = false;
  view.lo = normalizer_.lo();
  view.hi = normalizer_.hi();
  for (const auto& p : query.predicates) {
    const std::string& col = schema.column(p.column).name();
    if (col == cat_name_ && p.op == workload::CompareOp::kEq) {
      view.category = static_cast<int>(std::llround(p.value));
      have_cat = true;
    } else if (col == num_name_ && p.op == workload::CompareOp::kGe) {
      view.lo = p.value;
      have_lo = true;
    } else if (col == num_name_ && p.op == workload::CompareOp::kLe) {
      view.hi = p.value;
      have_hi = true;
    } else {
      return std::nullopt;
    }
  }
  if (!have_cat || (!have_lo && !have_hi)) return std::nullopt;
  return view;
}

double Mdn::EstimateAqp(const AqpQueryView& view) const {
  DDUP_CHECK(view.category >= 0 && view.category < cardinality_);
  return EstimateFromMixture(view, MixtureFor(view.category));
}

double Mdn::EstimateFromMixture(const AqpQueryView& view,
                                const MixtureParams& mp) const {
  double lo_n = normalizer_.Encode(view.lo);
  double hi_n = normalizer_.Encode(view.hi);
  double mass = 0.0;          // P(lo <= y <= hi | x)
  double partial_mean = 0.0;  // E[y_norm * 1{lo<=y<=hi} | x]
  for (size_t i = 0; i < mp.weight.size(); ++i) {
    mass += mp.weight[i] * (NormalCdf(hi_n, mp.mean[i], mp.sigma[i]) -
                            NormalCdf(lo_n, mp.mean[i], mp.sigma[i]));
    partial_mean += mp.weight[i] * TruncatedNormalPartialExpectation(
                                       mp.mean[i], mp.sigma[i], lo_n, hi_n);
  }
  double freq = static_cast<double>(frequency_[static_cast<size_t>(view.category)]);
  double count = freq * mass;
  // y_raw = scale * y_norm + center.
  double scale = normalizer_.Scale();
  double center = (normalizer_.hi() + normalizer_.lo()) / 2.0;
  double sum = freq * (scale * partial_mean + center * mass);
  switch (view.agg) {
    case workload::AggFunc::kCount:
      return count;
    case workload::AggFunc::kSum:
      return sum;
    case workload::AggFunc::kAvg:
      return count > 1e-9 ? sum / count : center;
  }
  return count;
}

double Mdn::EstimateAqp(const workload::Query& query,
                        const storage::Table& schema) const {
  auto view = ParseQuery(query, schema);
  DDUP_CHECK_MSG(view.has_value(), "query does not match the AQP template");
  return EstimateAqp(*view);
}

StatusOr<double> Mdn::TryEstimateAqp(const workload::Query& query,
                                     const storage::Table& schema,
                                     core::EstimateContext* ctx) const {
  (void)ctx;  // analytic estimate: no per-call mutable state
  for (const auto& p : query.predicates) {
    if (p.column < 0 || p.column >= schema.num_columns()) {
      return Status::InvalidArgument("predicate on out-of-range column " +
                                     std::to_string(p.column));
    }
  }
  auto view = ParseQuery(query, schema);
  if (!view.has_value()) {
    return Status::InvalidArgument(
        "query does not match the DBEst++ template (one equality on '" +
        cat_name_ + "', one range + aggregate on '" + num_name_ + "')");
  }
  if (view->category < 0 || view->category >= cardinality_) {
    return Status::InvalidArgument("category " +
                                   std::to_string(view->category) +
                                   " outside the fitted dictionary");
  }
  return EstimateAqp(*view);
}

Status Mdn::TryEstimateAqpBatch(const std::vector<workload::Query>& queries,
                                const storage::Table& schema,
                                std::vector<double>* out) const {
  // Parse everything first (fail fast with the query's index), collecting
  // the distinct categories whose mixtures the batch needs.
  std::vector<AqpQueryView> views;
  views.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (const auto& p : queries[i].predicates) {
      if (p.column < 0 || p.column >= schema.num_columns()) {
        return Status::InvalidArgument(
            "query " + std::to_string(i) + ": predicate on out-of-range column " +
            std::to_string(p.column));
      }
    }
    auto view = ParseQuery(queries[i], schema);
    if (!view.has_value()) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) +
          ": query does not match the DBEst++ template (one equality on '" +
          cat_name_ + "', one range + aggregate on '" + num_name_ + "')");
    }
    if (view->category < 0 || view->category >= cardinality_) {
      return Status::InvalidArgument(
          "query " + std::to_string(i) + ": category " +
          std::to_string(view->category) + " outside the fitted dictionary");
    }
    views.push_back(*view);
  }
  // One network forward per distinct category, not per query. MixtureFor is
  // deterministic, so reusing a mixture across queries is bit-identical to
  // recomputing it.
  std::unordered_map<int, MixtureParams> mixtures;
  out->clear();
  out->reserve(views.size());
  for (const AqpQueryView& view : views) {
    auto it = mixtures.find(view.category);
    if (it == mixtures.end()) {
      it = mixtures.emplace(view.category, MixtureFor(view.category)).first;
    }
    out->push_back(EstimateFromMixture(view, it->second));
  }
  return Status::OK();
}

Status Mdn::SaveState(io::Serializer* out) const {
  out->WriteU32(kMdnStateVersion);
  out->WriteI32(config_.num_components);
  out->WriteI32(config_.hidden_width);
  out->WriteI32(config_.epochs);
  out->WriteI32(config_.batch_size);
  out->WriteDouble(config_.learning_rate);
  out->WriteU64(config_.seed);
  out->WriteString(cat_name_);
  out->WriteString(num_name_);
  out->WriteI32(cat_index_);
  out->WriteI32(num_index_);
  out->WriteI32(cardinality_);
  normalizer_.SaveState(out);
  io::WriteParameters(out, params_);
  out->WriteI64Vec(frequency_);
  out->WriteRng(rng_);
  return Status::OK();
}

Status Mdn::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kMdnStateVersion) {
    return Status::InvalidArgument("unsupported mdn state version " +
                                   std::to_string(version));
  }
  config_.num_components = in->ReadI32();
  config_.hidden_width = in->ReadI32();
  config_.epochs = in->ReadI32();
  config_.batch_size = in->ReadI32();
  config_.learning_rate = in->ReadDouble();
  config_.seed = in->ReadU64();
  cat_name_ = in->ReadString();
  num_name_ = in->ReadString();
  cat_index_ = in->ReadI32();
  num_index_ = in->ReadI32();
  cardinality_ = in->ReadI32();
  normalizer_ = MinMaxNormalizer::Restore(in);
  DDUP_RETURN_IF_ERROR(io::ReadParameters(in, kMdnParamCount, &params_));
  frequency_ = in->ReadI64Vec();
  in->ReadRng(&rng_);
  DDUP_RETURN_IF_ERROR(in->status());
  if (static_cast<int>(frequency_.size()) != cardinality_) {
    return Status::InvalidArgument("mdn frequency table size mismatch");
  }
  int h = config_.hidden_width;
  int m = config_.num_components;
  if (cardinality_ < 1 || h < 1 || m < 1 || config_.batch_size < 1 ||
      cat_index_ < 0 || num_index_ < 0) {
    return Status::InvalidArgument("mdn checkpoint config is inconsistent");
  }
  return io::CheckParameterShapes(
      params_, {{cardinality_, h}, {1, h}, {h, h}, {1, h}, {h, m},
                {1, m},           {h, m}, {1, m}, {h, m}, {1, m}});
}

Status Mdn::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Mdn>> Mdn::Restore(io::Deserializer* in) {
  std::unique_ptr<Mdn> model(new Mdn());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Mdn>> Mdn::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Mdn>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

}  // namespace ddup::models
