#ifndef DDUP_MODELS_MDN_H_
#define DDUP_MODELS_MDN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/interfaces.h"
#include "models/encoding.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "workload/query.h"

namespace ddup::models {

// DBEst++-style AQP engine (§4.3 "Mixture Density Networks"): a mixture
// density network models the conditional density p(y | x) of a numeric
// attribute y given a categorical attribute x, and a per-category frequency
// table tracks group sizes. COUNT/SUM/AVG range aggregates are answered with
// analytic Gaussian integrals — no data access at query time.
struct MdnConfig {
  int num_components = 8;
  int hidden_width = 64;
  int epochs = 25;
  int batch_size = 128;
  double learning_rate = 5e-3;
  uint64_t seed = 7;
};

// View of a DBEst++-style query (one equality on the categorical column,
// a [lo, hi] range on the numeric column).
struct AqpQueryView {
  int category = 0;
  double lo = 0.0;
  double hi = 0.0;
  workload::AggFunc agg = workload::AggFunc::kCount;
};

class Mdn : public core::UpdatableModel, public core::AqpEstimator {
 public:
  // Fits encoders on `base_data` and trains the base model M0 on it.
  Mdn(const storage::Table& base_data, const std::string& categorical_column,
      const std::string& numeric_column, MdnConfig config);

  // core::UpdatableModel:
  double AverageLoss(const storage::Table& sample) const override;
  std::string name() const override { return "mdn"; }
  void FineTune(const storage::Table& new_data, double learning_rate,
                int epochs) override;
  void DistillUpdate(const storage::Table& transfer_set,
                     const storage::Table& new_data,
                     const core::DistillConfig& config) override;
  void RetrainFromScratch(const storage::Table& data) override;
  void AbsorbMetadata(const storage::Table& new_data) override;
  void ResetMetadata() override;
  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

  // One-file checkpoint (src/io, section kind "mdn"): a loaded model
  // reproduces the saved model's predictions bit-for-bit and continues
  // training on the identical RNG stream.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<std::unique_ptr<Mdn>> LoadFromFile(const std::string& path);
  // Rebuilds a model from a raw SaveState payload (the ModelFactory /
  // engine-manifest restore path; LoadFromFile wraps this).
  static StatusOr<std::unique_ptr<Mdn>> Restore(io::Deserializer* in);
  static constexpr const char* kCheckpointKind = "mdn";

  // Average log-likelihood (= -AverageLoss); the paper reports this signal.
  double AverageLogLikelihood(const storage::Table& sample) const;

  // Parses a workload query against this model's columns; nullopt if the
  // query does not match the template.
  std::optional<AqpQueryView> ParseQuery(const workload::Query& query,
                                         const storage::Table& schema) const;
  // COUNT/SUM/AVG estimate for a template query.
  double EstimateAqp(const AqpQueryView& view) const;
  // Convenience: parse + estimate (CHECKs that the query matches).
  double EstimateAqp(const workload::Query& query,
                     const storage::Table& schema) const;
  // core::AqpEstimator (the surface the Engine dispatches to): like the
  // convenience overload, but a query outside the template is an
  // InvalidArgument instead of a CHECK failure. Estimation is analytic and
  // RNG-free — the context is unused — and never touches `this`, so
  // concurrent estimates need no lock.
  using core::AqpEstimator::TryEstimateAqp;
  StatusOr<double> TryEstimateAqp(const workload::Query& query,
                                  const storage::Table& schema,
                                  core::EstimateContext* ctx) const override;
  // Batched entry: each distinct category's mixture (a full network forward
  // in MixtureFor) is computed once per batch instead of once per query.
  // MixtureFor is a pure function of the frozen weights, so the cached
  // mixture gives bit-identical answers to the scalar path.
  Status TryEstimateAqpBatch(const std::vector<workload::Query>& queries,
                             const storage::Table& schema,
                             std::vector<double>* out) const override;

  // Conditional density of normalized y given a category (used by tests and
  // the quickstart example).
  double ConditionalDensity(int category, double y_raw) const;
  const MinMaxNormalizer& normalizer() const { return normalizer_; }
  int64_t frequency(int category) const;

 private:
  // Uninitialized shell for LoadFromFile; every field is restored by
  // LoadState before the instance escapes.
  Mdn() = default;

  struct Batch {
    std::vector<int> codes;
    nn::Matrix y;  // N x 1 normalized targets
  };

  struct MixtureParams {
    std::vector<double> weight, mean, sigma;
  };

  Batch MakeBatch(const storage::Table& data,
                  const std::vector<int64_t>& rows) const;
  // Analytic aggregate from an already-computed mixture (shared by the
  // scalar and batched estimate paths).
  double EstimateFromMixture(const AqpQueryView& view,
                             const MixtureParams& mp) const;
  nn::Variable NllLoss(const std::vector<nn::Variable>& params,
                       const Batch& batch) const;
  void InitParams();
  void TrainLoop(const storage::Table& data, double lr, int epochs);
  MixtureParams MixtureFor(int category) const;

  MdnConfig config_;
  std::string cat_name_, num_name_;
  int cat_index_ = -1, num_index_ = -1;
  int cardinality_ = 0;
  MinMaxNormalizer normalizer_;
  std::vector<nn::Variable> params_;
  std::vector<int64_t> frequency_;
  mutable Rng rng_;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_MDN_H_
