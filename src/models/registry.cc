#include "models/registry.h"

#include <memory>
#include <string>

#include "api/model_factory.h"
#include "models/darn.h"
#include "models/gbdt.h"
#include "models/mdn.h"
#include "models/spn.h"
#include "models/tvae.h"
#include "models/updatable_adapters.h"

namespace ddup::models {

namespace {

using api::ModelOptions;
using api::OptionReader;
using ModelOr = StatusOr<std::unique_ptr<core::UpdatableModel>>;

// First column of the given type, or "" if the table has none.
std::string FirstColumnOfType(const storage::Table& base, bool numeric) {
  for (int i = 0; i < base.num_columns(); ++i) {
    if (base.column(i).is_numeric() == numeric) return base.column(i).name();
  }
  return "";
}

// Resolves a column-name option against the base schema, requiring the
// given type; falls back to the first column of that type.
StatusOr<std::string> ResolveColumn(const storage::Table& base,
                                    OptionReader* reader,
                                    const std::string& key, bool numeric) {
  std::string name = reader->String(key, FirstColumnOfType(base, numeric));
  if (name.empty()) {
    return Status::InvalidArgument(
        std::string("base table has no ") +
        (numeric ? "numeric" : "categorical") + " column for option '" + key +
        "'");
  }
  int index = base.ColumnIndex(name);
  if (index < 0) {
    return Status::InvalidArgument("option '" + key + "': no column named '" +
                                   name + "'");
  }
  if (base.column(index).is_numeric() != numeric) {
    return Status::InvalidArgument(
        "option '" + key + "': column '" + name + "' is not " +
        (numeric ? "numeric" : "categorical"));
  }
  return name;
}

ModelOr CreateMdn(const storage::Table& base, const ModelOptions& options) {
  OptionReader reader(options);
  MdnConfig config;
  StatusOr<std::string> cat = ResolveColumn(base, &reader, "categorical",
                                            /*numeric=*/false);
  StatusOr<std::string> num = ResolveColumn(base, &reader, "numeric",
                                            /*numeric=*/true);
  config.num_components =
      reader.PositiveInt("num_components", config.num_components);
  config.hidden_width =
      reader.PositiveInt("hidden_width", config.hidden_width);
  config.epochs = reader.PositiveInt("epochs", config.epochs);
  config.batch_size =
      reader.PositiveInt("batch_size", config.batch_size);
  config.learning_rate = reader.Double("learning_rate", config.learning_rate);
  config.seed = reader.U64("seed", config.seed);
  DDUP_RETURN_IF_ERROR(reader.Finish("mdn"));
  if (!cat.ok()) return cat.status();
  if (!num.ok()) return num.status();
  return ModelOr(std::make_unique<Mdn>(base, cat.value(), num.value(), config));
}

ModelOr CreateDarn(const storage::Table& base, const ModelOptions& options) {
  OptionReader reader(options);
  DarnConfig config;
  config.hidden_width =
      reader.PositiveInt("hidden_width", config.hidden_width);
  config.max_bins = reader.PositiveInt("max_bins", config.max_bins);
  config.epochs = reader.PositiveInt("epochs", config.epochs);
  config.batch_size =
      reader.PositiveInt("batch_size", config.batch_size);
  config.learning_rate = reader.Double("learning_rate", config.learning_rate);
  config.progressive_samples =
      reader.PositiveInt("progressive_samples", config.progressive_samples);
  config.seed = reader.U64("seed", config.seed);
  DDUP_RETURN_IF_ERROR(reader.Finish("darn"));
  return ModelOr(std::make_unique<Darn>(base, config));
}

ModelOr CreateTvae(const storage::Table& base, const ModelOptions& options) {
  OptionReader reader(options);
  TvaeConfig config;
  config.latent_dim =
      reader.PositiveInt("latent_dim", config.latent_dim);
  config.hidden_width =
      reader.PositiveInt("hidden_width", config.hidden_width);
  config.epochs = reader.PositiveInt("epochs", config.epochs);
  config.batch_size =
      reader.PositiveInt("batch_size", config.batch_size);
  config.learning_rate = reader.Double("learning_rate", config.learning_rate);
  config.seed = reader.U64("seed", config.seed);
  DDUP_RETURN_IF_ERROR(reader.Finish("tvae"));
  return ModelOr(std::make_unique<Tvae>(base, config));
}

ModelOr CreateSpn(const storage::Table& base, const ModelOptions& options) {
  OptionReader reader(options);
  SpnConfig config;
  config.min_instances_slice =
      reader.PositiveInt("min_instances_slice", config.min_instances_slice);
  config.correlation_threshold =
      reader.Double("correlation_threshold", config.correlation_threshold);
  config.max_bins = reader.PositiveInt("max_bins", config.max_bins);
  config.max_depth =
      reader.PositiveInt("max_depth", config.max_depth);
  config.seed = reader.U64("seed", config.seed);
  DDUP_RETURN_IF_ERROR(reader.Finish("spn"));
  return ModelOr(std::make_unique<SpnModel>(base, config));
}

ModelOr CreateGbdt(const storage::Table& base, const ModelOptions& options) {
  OptionReader reader(options);
  GbdtConfig config;
  StatusOr<std::string> target = ResolveColumn(base, &reader, "target",
                                               /*numeric=*/false);
  config.num_rounds =
      reader.PositiveInt("num_rounds", config.num_rounds);
  config.max_depth =
      reader.PositiveInt("max_depth", config.max_depth);
  config.learning_rate = reader.Double("learning_rate", config.learning_rate);
  config.min_leaf_size =
      reader.PositiveInt("min_leaf_size", config.min_leaf_size);
  config.l2_regularization =
      reader.Double("l2_regularization", config.l2_regularization);
  DDUP_RETURN_IF_ERROR(reader.Finish("gbdt"));
  if (!target.ok()) return target.status();
  return ModelOr(std::make_unique<GbdtModel>(base, target.value(), config));
}

// Adapts a concrete model's Restore into the factory's UpdatableModel
// signature.
template <typename ModelT>
ModelOr RestoreAs(io::Deserializer* in) {
  StatusOr<std::unique_ptr<ModelT>> model = ModelT::Restore(in);
  if (!model.ok()) return model.status();
  return ModelOr(std::move(model).value());
}

}  // namespace

void RegisterBuiltinModels(api::ModelFactory* factory) {
  DDUP_CHECK(factory->Register("mdn", CreateMdn, RestoreAs<Mdn>).ok());
  DDUP_CHECK(factory->Register("darn", CreateDarn, RestoreAs<Darn>).ok());
  DDUP_CHECK(factory->Register("tvae", CreateTvae, RestoreAs<Tvae>).ok());
  DDUP_CHECK(factory->Register("spn", CreateSpn, RestoreAs<SpnModel>).ok());
  DDUP_CHECK(factory->Register("gbdt", CreateGbdt, RestoreAs<GbdtModel>).ok());
}

}  // namespace ddup::models
