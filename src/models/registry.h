#ifndef DDUP_MODELS_REGISTRY_H_
#define DDUP_MODELS_REGISTRY_H_

namespace ddup::api {
class ModelFactory;
}  // namespace ddup::api

namespace ddup::models {

// Registers the five in-tree model families ("mdn", "darn", "tvae", "spn",
// "gbdt") with `factory`, including their per-kind option parsing.
// ModelFactory::Global() calls this once; tests may call it on a fresh
// factory instance.
void RegisterBuiltinModels(api::ModelFactory* factory);

}  // namespace ddup::models

#endif  // DDUP_MODELS_REGISTRY_H_
