#include "models/spn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.h"
#include "common/status.h"
#include "io/checkpoint.h"
#include "io/serializer.h"

namespace ddup::models {

namespace {
constexpr double kLaplace = 0.1;  // histogram smoothing pseudo-count
constexpr uint32_t kSpnStateVersion = 1;
// Restore recursion guard: far above any tree Build can produce (max_depth
// caps structure learning), but bounds stack use on corrupt checkpoints.
constexpr int kMaxRestoreDepth = 64;
}

Spn::Spn(const storage::Table& base_data, SpnConfig config)
    : config_(config), rng_(config.seed) {
  DDUP_CHECK(base_data.num_rows() > 0);
  encoder_ = DiscreteEncoder::Fit(base_data, config_.max_bins);
  Rebuild(base_data);
}

std::unique_ptr<Spn::Node> Spn::MakeLeaf(const CodeRows& codes,
                                         const std::vector<int64_t>& rows,
                                         int column) {
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kLeaf;
  node->column = column;
  node->scope = {column};
  node->bin_counts.assign(static_cast<size_t>(encoder_.cardinality(column)),
                          0.0);
  for (int64_t r : rows) {
    node->bin_counts[static_cast<size_t>(
        codes[static_cast<size_t>(column)][static_cast<size_t>(r)])] += 1.0;
  }
  node->leaf_total = static_cast<double>(rows.size());
  return node;
}

std::unique_ptr<Spn::Node> Spn::MakeProductOfLeaves(
    const CodeRows& codes, const std::vector<int64_t>& rows,
    const std::vector<int>& scope) {
  if (scope.size() == 1) return MakeLeaf(codes, rows, scope[0]);
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kProduct;
  node->scope = scope;
  for (int col : scope) node->children.push_back(MakeLeaf(codes, rows, col));
  return node;
}

std::unique_ptr<Spn::Node> Spn::Build(const CodeRows& codes,
                                      const std::vector<int64_t>& rows,
                                      std::vector<int> scope, int depth,
                                      Rng& rng) {
  if (scope.size() == 1) return MakeLeaf(codes, rows, scope[0]);
  if (static_cast<int>(rows.size()) < config_.min_instances_slice ||
      depth >= config_.max_depth) {
    return MakeProductOfLeaves(codes, rows, scope);
  }

  // Try an independence split: connected components of the |pearson| >=
  // threshold graph over the scope columns.
  size_t m = scope.size();
  std::vector<std::vector<double>> values(m);
  for (size_t i = 0; i < m; ++i) {
    values[i].reserve(rows.size());
    for (int64_t r : rows) {
      values[i].push_back(static_cast<double>(
          codes[static_cast<size_t>(scope[i])][static_cast<size_t>(r)]));
    }
  }
  std::vector<int> component(m, -1);
  int num_components = 0;
  for (size_t i = 0; i < m; ++i) {
    if (component[i] >= 0) continue;
    // BFS from i.
    std::vector<size_t> frontier = {i};
    component[i] = num_components;
    while (!frontier.empty()) {
      size_t a = frontier.back();
      frontier.pop_back();
      for (size_t b = 0; b < m; ++b) {
        if (component[b] >= 0) continue;
        if (std::fabs(PearsonCorrelation(values[a], values[b])) >=
            config_.correlation_threshold) {
          component[b] = num_components;
          frontier.push_back(b);
        }
      }
    }
    ++num_components;
  }
  if (num_components > 1) {
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kProduct;
    node->scope = scope;
    for (int comp = 0; comp < num_components; ++comp) {
      std::vector<int> sub;
      for (size_t i = 0; i < m; ++i) {
        if (component[i] == comp) sub.push_back(scope[i]);
      }
      node->children.push_back(Build(codes, rows, sub, depth + 1, rng));
    }
    return node;
  }

  // Row clustering: 2-means over standardized encoded values of the scope.
  std::vector<double> mean(m, 0.0), std(m, 1.0);
  for (size_t i = 0; i < m; ++i) {
    mean[i] = Mean(values[i]);
    std[i] = std::max(1e-9, StdDev(values[i]));
  }
  size_t n = rows.size();
  std::vector<std::vector<double>> centroid(2, std::vector<double>(m));
  size_t seed_a = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  size_t seed_b = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  for (size_t i = 0; i < m; ++i) {
    centroid[0][i] = (values[i][seed_a] - mean[i]) / std[i];
    centroid[1][i] = (values[i][seed_b] - mean[i]) / std[i];
  }
  std::vector<int> assign(n, 0);
  for (int iter = 0; iter < 8; ++iter) {
    for (size_t r = 0; r < n; ++r) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t i = 0; i < m; ++i) {
        double v = (values[i][r] - mean[i]) / std[i];
        d0 += (v - centroid[0][i]) * (v - centroid[0][i]);
        d1 += (v - centroid[1][i]) * (v - centroid[1][i]);
      }
      assign[r] = d1 < d0 ? 1 : 0;
    }
    for (int k = 0; k < 2; ++k) {
      double cnt = 0.0;
      std::vector<double> acc(m, 0.0);
      for (size_t r = 0; r < n; ++r) {
        if (assign[r] != k) continue;
        cnt += 1.0;
        for (size_t i = 0; i < m; ++i) {
          acc[i] += (values[i][r] - mean[i]) / std[i];
        }
      }
      if (cnt > 0) {
        for (size_t i = 0; i < m; ++i) centroid[static_cast<size_t>(k)][i] = acc[i] / cnt;
      }
    }
  }
  std::vector<int64_t> rows0, rows1;
  for (size_t r = 0; r < n; ++r) {
    (assign[r] == 0 ? rows0 : rows1).push_back(rows[r]);
  }
  if (rows0.empty() || rows1.empty()) {
    // Degenerate clustering: model the slice as independent columns.
    return MakeProductOfLeaves(codes, rows, scope);
  }

  auto node = std::make_unique<Node>();
  node->type = Node::Type::kSum;
  node->scope = scope;
  node->child_counts = {static_cast<double>(rows0.size()),
                        static_cast<double>(rows1.size())};
  // Store de-standardized centroids for insert routing.
  node->centroids.assign(2, std::vector<double>(m));
  for (int k = 0; k < 2; ++k) {
    for (size_t i = 0; i < m; ++i) {
      node->centroids[static_cast<size_t>(k)][i] =
          centroid[static_cast<size_t>(k)][i] * std[i] + mean[i];
    }
  }
  node->children.push_back(Build(codes, rows0, scope, depth + 1, rng));
  node->children.push_back(Build(codes, rows1, scope, depth + 1, rng));
  return node;
}

void Spn::Rebuild(const storage::Table& all_data) {
  CodeRows codes = encoder_.EncodeTable(all_data);
  std::vector<int64_t> rows(static_cast<size_t>(all_data.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int> scope(static_cast<size_t>(encoder_.num_columns()));
  std::iota(scope.begin(), scope.end(), 0);
  root_ = Build(codes, rows, scope, 0, rng_);
  total_rows_ = all_data.num_rows();
}

double Spn::NodeProbability(
    const Node& node, const std::vector<std::pair<int, int>>& ranges) const {
  switch (node.type) {
    case Node::Type::kLeaf: {
      auto [lo, hi] = ranges[static_cast<size_t>(node.column)];
      if (lo > hi) return 0.0;
      int k = static_cast<int>(node.bin_counts.size());
      double total = node.leaf_total + kLaplace * k;
      double mass = 0.0;
      for (int b = lo; b <= hi; ++b) {
        mass += node.bin_counts[static_cast<size_t>(b)] + kLaplace;
      }
      return mass / total;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (const auto& child : node.children) {
        p *= NodeProbability(*child, ranges);
        if (p == 0.0) break;
      }
      return p;
    }
    case Node::Type::kSum: {
      double total = 0.0;
      for (double c : node.child_counts) total += c;
      double p = 0.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        p += node.child_counts[i] / total *
             NodeProbability(*node.children[i], ranges);
      }
      return p;
    }
  }
  return 0.0;
}

double Spn::EstimateProbability(const workload::Query& query) const {
  auto ranges = encoder_.AllowedRanges(query);
  return NodeProbability(*root_, ranges);
}

double Spn::EstimateCardinality(const workload::Query& query) const {
  return EstimateProbability(query) * static_cast<double>(total_rows_);
}

void Spn::RouteRow(Node* node, const std::vector<int>& row_codes) {
  switch (node->type) {
    case Node::Type::kLeaf:
      node->bin_counts[static_cast<size_t>(
          row_codes[static_cast<size_t>(node->column)])] += 1.0;
      node->leaf_total += 1.0;
      return;
    case Node::Type::kProduct:
      for (auto& child : node->children) RouteRow(child.get(), row_codes);
      return;
    case Node::Type::kSum: {
      // Route toward the nearest stored centroid (DeepDB's cluster routing).
      size_t best = 0;
      double best_dist = 1e300;
      for (size_t k = 0; k < node->centroids.size(); ++k) {
        double d = 0.0;
        for (size_t i = 0; i < node->scope.size(); ++i) {
          double v = static_cast<double>(
              row_codes[static_cast<size_t>(node->scope[i])]);
          d += (v - node->centroids[k][i]) * (v - node->centroids[k][i]);
        }
        if (d < best_dist) {
          best_dist = d;
          best = k;
        }
      }
      node->child_counts[best] += 1.0;
      RouteRow(node->children[best].get(), row_codes);
      return;
    }
  }
}

void Spn::Update(const storage::Table& new_data) {
  CodeRows codes = encoder_.EncodeTable(new_data);
  std::vector<int> row_codes(static_cast<size_t>(encoder_.num_columns()));
  for (int64_t r = 0; r < new_data.num_rows(); ++r) {
    for (int c = 0; c < encoder_.num_columns(); ++c) {
      row_codes[static_cast<size_t>(c)] =
          codes[static_cast<size_t>(c)][static_cast<size_t>(r)];
    }
    RouteRow(root_.get(), row_codes);
  }
  total_rows_ += new_data.num_rows();
}

int Spn::CountNodes(const Node& node) {
  int n = 1;
  for (const auto& c : node.children) n += CountNodes(*c);
  return n;
}

int Spn::NodeCount() const { return root_ ? CountNodes(*root_) : 0; }

void Spn::SaveNode(const Node& node, io::Serializer* out) {
  out->WriteU8(static_cast<uint8_t>(node.type));
  out->WriteIntVec(node.scope);
  out->WriteI32(node.column);
  out->WriteDoubleVec(node.bin_counts);
  out->WriteDouble(node.leaf_total);
  out->WriteDoubleVec(node.child_counts);
  out->WriteU32(static_cast<uint32_t>(node.centroids.size()));
  for (const auto& c : node.centroids) out->WriteDoubleVec(c);
  out->WriteU32(static_cast<uint32_t>(node.children.size()));
  for (const auto& child : node.children) SaveNode(*child, out);
}

std::unique_ptr<Spn::Node> Spn::RestoreNode(io::Deserializer* in, int depth) {
  if (depth > kMaxRestoreDepth) return nullptr;
  auto node = std::make_unique<Node>();
  uint8_t type = in->ReadU8();
  if (type > static_cast<uint8_t>(Node::Type::kLeaf)) return nullptr;
  node->type = static_cast<Node::Type>(type);
  node->scope = in->ReadIntVec();
  node->column = in->ReadI32();
  node->bin_counts = in->ReadDoubleVec();
  node->leaf_total = in->ReadDouble();
  node->child_counts = in->ReadDoubleVec();
  uint32_t num_centroids = in->ReadU32();
  for (uint32_t i = 0; i < num_centroids && in->ok(); ++i) {
    node->centroids.push_back(in->ReadDoubleVec());
  }
  uint32_t num_children = in->ReadU32();
  for (uint32_t i = 0; i < num_children && in->ok(); ++i) {
    auto child = RestoreNode(in, depth + 1);
    if (child == nullptr) return nullptr;
    node->children.push_back(std::move(child));
  }
  if (!in->ok()) return nullptr;
  return node;
}

Status Spn::SaveState(io::Serializer* out) const {
  out->WriteU32(kSpnStateVersion);
  out->WriteI32(config_.min_instances_slice);
  out->WriteDouble(config_.correlation_threshold);
  out->WriteI32(config_.max_bins);
  out->WriteI32(config_.max_depth);
  out->WriteU64(config_.seed);
  encoder_.SaveState(out);
  out->WriteI64(total_rows_);
  out->WriteRng(rng_);
  out->WriteBool(root_ != nullptr);
  if (root_ != nullptr) SaveNode(*root_, out);
  return Status::OK();
}

// Structural validation of a restored tree against the restored encoder:
// NodeProbability and RouteRow index bin_counts / child_counts / centroids /
// row_codes without bounds checks, so a CRC-valid but malformed payload must
// be rejected at load time, not crash at query time.
bool Spn::ValidNode(const Node& node, const DiscreteEncoder& encoder) {
  for (int col : node.scope) {
    if (col < 0 || col >= encoder.num_columns()) return false;
  }
  switch (node.type) {
    case Node::Type::kLeaf: {
      if (!node.children.empty()) return false;
      if (node.column < 0 || node.column >= encoder.num_columns()) return false;
      return static_cast<int>(node.bin_counts.size()) ==
             encoder.cardinality(node.column);
    }
    case Node::Type::kProduct: {
      if (node.children.empty()) return false;
      break;
    }
    case Node::Type::kSum: {
      if (node.children.empty() ||
          node.child_counts.size() != node.children.size() ||
          node.centroids.size() != node.children.size()) {
        return false;
      }
      double total = 0.0;
      for (double c : node.child_counts) {
        if (!(c >= 0.0)) return false;  // rejects negatives and NaN
        total += c;
      }
      if (total <= 0.0) return false;
      for (const auto& centroid : node.centroids) {
        if (centroid.size() != node.scope.size()) return false;
      }
      break;
    }
  }
  for (const auto& child : node.children) {
    if (!ValidNode(*child, encoder)) return false;
  }
  return true;
}

Status Spn::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kSpnStateVersion) {
    return Status::InvalidArgument("unsupported spn state version " +
                                   std::to_string(version));
  }
  config_.min_instances_slice = in->ReadI32();
  config_.correlation_threshold = in->ReadDouble();
  config_.max_bins = in->ReadI32();
  config_.max_depth = in->ReadI32();
  config_.seed = in->ReadU64();
  encoder_ = DiscreteEncoder::Restore(in);
  total_rows_ = in->ReadI64();
  in->ReadRng(&rng_);
  bool has_root = in->ReadBool();
  root_.reset();
  if (in->ok() && has_root) {
    root_ = RestoreNode(in, 0);
    if (root_ == nullptr && in->ok()) {
      return Status::InvalidArgument("malformed spn node tree in checkpoint");
    }
    if (root_ != nullptr && !ValidNode(*root_, encoder_)) {
      root_.reset();
      return Status::InvalidArgument("inconsistent spn node tree in checkpoint");
    }
  }
  return in->status();
}

Status Spn::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Spn>> Spn::Restore(io::Deserializer* in) {
  std::unique_ptr<Spn> model(new Spn());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Spn>> Spn::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Spn>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

}  // namespace ddup::models
