#ifndef DDUP_MODELS_SPN_H_
#define DDUP_MODELS_SPN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "models/encoding.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::io {
class Serializer;
class Deserializer;
}  // namespace ddup::io

namespace ddup::models {

// DeepDB-style sum-product network (§5.7's non-NN reference point).
// Structure learning alternates independence-based column splits (product
// nodes) with k-means row clustering (sum nodes); leaves are histograms over
// the shared DiscreteEncoder's bins. Insert-updates route each new row down
// the network, adjusting sum weights and leaf histograms — cheap, but it
// never restructures, which is exactly the degradation the paper observes.
struct SpnConfig {
  int min_instances_slice = 300;
  double correlation_threshold = 0.3;
  int max_bins = 32;
  int max_depth = 12;
  uint64_t seed = 17;
};

class Spn {
 public:
  Spn(const storage::Table& base_data, SpnConfig config);

  // P(conjunctive predicates) under the learned joint.
  double EstimateProbability(const workload::Query& query) const;
  // P * total_rows.
  double EstimateCardinality(const workload::Query& query) const;

  // DeepDB-style incremental insert: routes rows down the existing
  // structure (weights + histograms only).
  void Update(const storage::Table& new_data);
  // Full rebuild (retrain-from-scratch reference).
  void Rebuild(const storage::Table& all_data);

  int64_t total_rows() const { return total_rows_; }
  int NodeCount() const;
  const DiscreteEncoder& encoder() const { return encoder_; }

  // One-file checkpoint (src/io, section kind "spn"): the learned structure
  // (sum/product/leaf tree, weights, centroids, histograms) round-trips
  // bit-exactly, so estimates and incremental updates continue identically.
  Status SaveState(io::Serializer* out) const;
  Status LoadState(io::Deserializer* in);
  Status SaveToFile(const std::string& path) const;
  static StatusOr<std::unique_ptr<Spn>> LoadFromFile(const std::string& path);
  // Rebuilds an SPN from a raw SaveState payload (the ModelFactory /
  // engine-manifest restore path; LoadFromFile wraps this).
  static StatusOr<std::unique_ptr<Spn>> Restore(io::Deserializer* in);
  static constexpr const char* kCheckpointKind = "spn";

 private:
  // Uninitialized shell for LoadFromFile; LoadState restores every field.
  Spn() = default;

  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type = Type::kLeaf;
    // All node types: columns this subtree models.
    std::vector<int> scope;
    std::vector<std::unique_ptr<Node>> children;
    // Sum nodes: child pseudo-counts (weights) and per-child centroids over
    // `scope` (encoded space) used to route inserted rows.
    std::vector<double> child_counts;
    std::vector<std::vector<double>> centroids;
    // Leaf nodes.
    int column = -1;
    std::vector<double> bin_counts;
    double leaf_total = 0.0;
  };

  using CodeRows = std::vector<std::vector<int>>;  // codes[col][row]

  std::unique_ptr<Node> Build(const CodeRows& codes,
                              const std::vector<int64_t>& rows,
                              std::vector<int> scope, int depth, Rng& rng);
  std::unique_ptr<Node> MakeLeaf(const CodeRows& codes,
                                 const std::vector<int64_t>& rows, int column);
  std::unique_ptr<Node> MakeProductOfLeaves(const CodeRows& codes,
                                            const std::vector<int64_t>& rows,
                                            const std::vector<int>& scope);
  double NodeProbability(const Node& node,
                         const std::vector<std::pair<int, int>>& ranges) const;
  void RouteRow(Node* node, const std::vector<int>& row_codes);
  static int CountNodes(const Node& node);
  static void SaveNode(const Node& node, io::Serializer* out);
  static std::unique_ptr<Node> RestoreNode(io::Deserializer* in, int depth);
  static bool ValidNode(const Node& node, const DiscreteEncoder& encoder);

  SpnConfig config_;
  DiscreteEncoder encoder_;
  std::unique_ptr<Node> root_;
  int64_t total_rows_ = 0;
  Rng rng_;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_SPN_H_
