#include "models/tvae.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "nn/optim.h"
#include "nn/ops.h"

namespace ddup::models {

namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;
constexpr uint32_t kTvaeStateVersion = 1;
constexpr size_t kTvaeParamCount = 11;  // encoder 6 + decoder 4 + log_sigma
// Parameter layout:
//   0 We, 1 be, 2 Wmu, 3 bmu, 4 Wlv, 5 blv   (encoder)
//   6 Wd, 7 bd, 8 Wout, 9 bout               (decoder)
//   10 log_sigma (1 x num_numeric)           (per-column output noise)
constexpr int kLogSigmaIdx = 10;
}  // namespace

Tvae::Tvae(const storage::Table& base_data, TvaeConfig config)
    : config_(config), rng_(config.seed) {
  DDUP_CHECK(base_data.num_rows() > 0);
  schema_ = base_data.Head(0);
  int off = 0;
  for (int c = 0; c < base_data.num_columns(); ++c) {
    const storage::Column& col = base_data.column(c);
    ColumnCoding cc;
    cc.offset = off;
    if (col.is_numeric()) {
      cc.is_numeric = true;
      cc.cardinality = 1;
      cc.standardizer = Standardizer::Fit(col);
      cc.raw_min = col.MinAsDouble();
      cc.raw_max = col.MaxAsDouble();
      off += 1;
    } else {
      cc.is_numeric = false;
      cc.cardinality = col.cardinality();
      categorical_columns_.push_back(c);
      off += cc.cardinality;
    }
    coding_.push_back(cc);
  }
  input_dim_ = off;
  RetrainFromScratch(base_data);
}

void Tvae::InitParams() {
  using nn::Matrix;
  int h = config_.hidden_width;
  int l = config_.latent_dim;
  int num_numeric = 0;
  for (const auto& cc : coding_) num_numeric += cc.is_numeric ? 1 : 0;
  auto xavier = [this](int in, int out) {
    double s = std::sqrt(2.0 / static_cast<double>(in + out));
    return nn::Parameter(Matrix::Randn(rng_, in, out, s));
  };
  auto zeros = [](int out) { return nn::Parameter(Matrix::Zeros(1, out)); };
  params_ = {xavier(input_dim_, h), zeros(h),
             xavier(h, l),          zeros(l),
             xavier(h, l),          zeros(l),
             xavier(l, h),          zeros(h),
             xavier(h, input_dim_), zeros(input_dim_),
             nn::Parameter(Matrix::Zeros(1, std::max(1, num_numeric)))};
}

Tvae::EncodedBatch Tvae::Encode(const storage::Table& data,
                                const std::vector<int64_t>& rows) const {
  EncodedBatch b;
  int n = static_cast<int>(rows.size());
  b.x = nn::Matrix(n, input_dim_, 0.0);
  b.codes.assign(categorical_columns_.size(), {});
  for (auto& v : b.codes) v.reserve(rows.size());
  for (int c = 0, cat_i = 0; c < static_cast<int>(coding_.size()); ++c) {
    const ColumnCoding& cc = coding_[static_cast<size_t>(c)];
    const storage::Column& col = data.column(c);
    if (cc.is_numeric) {
      for (int i = 0; i < n; ++i) {
        b.x.At(i, cc.offset) =
            cc.standardizer.Encode(col.NumericAt(rows[static_cast<size_t>(i)]));
      }
    } else {
      for (int i = 0; i < n; ++i) {
        int code = col.CodeAt(rows[static_cast<size_t>(i)]);
        b.x.At(i, cc.offset + code) = 1.0;
        b.codes[static_cast<size_t>(cat_i)].push_back(code);
      }
      ++cat_i;
    }
  }
  return b;
}

Tvae::VaeGraph Tvae::ForwardGraph(const std::vector<nn::Variable>& p,
                                  const nn::Matrix& x,
                                  const nn::Matrix& eps) const {
  using namespace nn;  // NOLINT: op-heavy function
  Variable xin = Constant(x);
  Variable h = AffineRelu(xin, p[0], p[1]);
  VaeGraph g;
  g.mu = Affine(h, p[2], p[3]);
  // Bounded log-variance keeps the KL term numerically tame.
  g.logvar = Scale(Tanh(Affine(h, p[4], p[5])), 4.0);
  Variable std = Exp(Scale(g.logvar, 0.5));
  g.z = Add(g.mu, Mul(std, Constant(eps)));
  Variable hd = AffineRelu(g.z, p[6], p[7]);
  g.out = Affine(hd, p[8], p[9]);
  return g;
}

nn::Variable Tvae::ElboLoss(const std::vector<nn::Variable>& p,
                            const VaeGraph& g,
                            const EncodedBatch& batch) const {
  using namespace nn;  // NOLINT
  int n = batch.x.rows();
  Variable recon;
  bool have_recon = false;

  // Numeric columns: Gaussian NLL with learned per-column log sigma.
  int num_numeric = 0;
  for (const auto& cc : coding_) num_numeric += cc.is_numeric ? 1 : 0;
  if (num_numeric > 0) {
    // Gather numeric targets and predictions into N x num_numeric blocks.
    nn::Matrix targets(n, num_numeric);
    std::vector<Variable> pred_cols;
    int ni = 0;
    for (const auto& cc : coding_) {
      if (!cc.is_numeric) continue;
      for (int r = 0; r < n; ++r) targets.At(r, ni) = batch.x.At(r, cc.offset);
      pred_cols.push_back(SliceCols(g.out, cc.offset, 1));
      ++ni;
    }
    Variable mean_block = ConcatCols(pred_cols);
    Variable log_sigma = SliceCols(p[kLogSigmaIdx], 0, num_numeric);
    Variable inv_sigma = Exp(Neg(log_sigma));  // 1 x C, broadcast below
    Variable diff = Sub(Constant(targets), mean_block);
    Variable z = Mul(diff, inv_sigma);
    Variable per_entry =
        Add(Scale(Square(z), 0.5), AddScalar(log_sigma, kHalfLog2Pi));
    recon = Mean(RowSum(per_entry));
    have_recon = true;
  }

  // Categorical columns: softmax cross-entropy per column.
  for (size_t cat_i = 0; cat_i < categorical_columns_.size(); ++cat_i) {
    const ColumnCoding& cc =
        coding_[static_cast<size_t>(categorical_columns_[cat_i])];
    Variable block = SliceCols(g.out, cc.offset, cc.cardinality);
    Variable ce = SoftmaxCrossEntropy(block, batch.codes[cat_i]);
    recon = have_recon ? Add(recon, ce) : ce;
    have_recon = true;
  }
  DDUP_CHECK(have_recon);

  // KL(q(z|x) || N(0, I)) = -0.5 * sum(1 + logvar - mu^2 - exp(logvar)).
  Variable kl_terms = Sub(AddScalar(g.logvar, 1.0),
                          Add(Square(g.mu), Exp(g.logvar)));
  Variable kl = Scale(Mean(RowSum(kl_terms)), -0.5);
  return Add(recon, kl);
}

nn::Matrix Tvae::SampleEps(int n) const {
  return nn::Matrix::Randn(rng_, n, config_.latent_dim, 1.0);
}

void Tvae::TrainLoop(const storage::Table& data, double lr, int epochs) {
  DDUP_CHECK(data.num_rows() > 0);
  nn::Adam opt(params_, lr);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& rows :
         MiniBatches(data.num_rows(), config_.batch_size, rng_)) {
      EncodedBatch batch = Encode(data, rows);
      VaeGraph g = ForwardGraph(params_, batch.x,
                                SampleEps(static_cast<int>(rows.size())));
      opt.ZeroGrad();
      nn::Variable loss = ElboLoss(params_, g, batch);
      nn::Backward(loss);
      opt.Step();
    }
  }
}

void Tvae::RetrainFromScratch(const storage::Table& data) {
  InitParams();
  TrainLoop(data, config_.learning_rate, config_.epochs);
}

void Tvae::FineTune(const storage::Table& new_data, double learning_rate,
                    int epochs) {
  TrainLoop(new_data, learning_rate, epochs);
}

void Tvae::DistillUpdate(const storage::Table& transfer_set,
                         const storage::Table& new_data,
                         const core::DistillConfig& config) {
  using namespace nn;  // NOLINT
  std::vector<Variable> teacher = AsConstants(params_);
  double alpha =
      core::ResolveAlpha(config, transfer_set.num_rows(), new_data.num_rows());

  Adam opt(params_, config.learning_rate);
  for (int e = 0; e < config.epochs; ++e) {
    auto tr_batches =
        MiniBatches(transfer_set.num_rows(), config.batch_size, rng_);
    auto up_batches = MiniBatches(new_data.num_rows(), config.batch_size, rng_);
    size_t steps = std::max(tr_batches.size(), up_batches.size());
    for (size_t s = 0; s < steps; ++s) {
      EncodedBatch tr = Encode(transfer_set, tr_batches[s % tr_batches.size()]);
      EncodedBatch up = Encode(new_data, up_batches[s % up_batches.size()]);

      nn::Matrix eps = SampleEps(tr.x.rows());
      VaeGraph sg = ForwardGraph(params_, tr.x, eps);
      // Eq. 11: the teacher's own latent noise is removed — it reuses the
      // student's eps — then encoder and decoder logits are compared by MSE.
      VaeGraph tg = ForwardGraph(teacher, tr.x, eps);
      Variable enc_s = ConcatCols({sg.mu, sg.logvar});
      Variable enc_t = ConcatCols({tg.mu, tg.logvar});
      Variable distill = Scale(Add(MseLoss(enc_s, Detach(enc_t)),
                                   MseLoss(sg.out, Detach(tg.out))),
                               0.5);
      Variable task_tr = ElboLoss(params_, sg, tr);
      Variable tr_term = Add(Scale(distill, config.lambda),
                             Scale(task_tr, 1.0 - config.lambda));

      VaeGraph ug = ForwardGraph(params_, up.x, SampleEps(up.x.rows()));
      Variable up_term = ElboLoss(params_, ug, up);
      Variable loss = Add(Scale(tr_term, alpha), Scale(up_term, 1.0 - alpha));
      opt.ZeroGrad();
      Backward(loss);
      opt.Step();
    }
  }
}

double Tvae::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  std::vector<nn::Variable> frozen = nn::AsConstants(params_);
  // Deterministic ELBO evaluation (z = mu): reproducible detection signal.
  // Chunked (and possibly thread-pool parallel) scoring; bit-identical for
  // any pool size because chunk bounds and the combine order are fixed.
  return GlobalChunkMean(
      sample.num_rows(), [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> rows(static_cast<size_t>(hi - lo));
        std::iota(rows.begin(), rows.end(), lo);
        EncodedBatch batch = Encode(sample, rows);
        nn::Matrix eps0(batch.x.rows(), config_.latent_dim, 0.0);
        VaeGraph g = ForwardGraph(frozen, batch.x, eps0);
        return ElboLoss(frozen, g, batch).value().At(0, 0);
      });
}

Status Tvae::SaveState(io::Serializer* out) const {
  out->WriteU32(kTvaeStateVersion);
  out->WriteI32(config_.latent_dim);
  out->WriteI32(config_.hidden_width);
  out->WriteI32(config_.epochs);
  out->WriteI32(config_.batch_size);
  out->WriteDouble(config_.learning_rate);
  out->WriteU64(config_.seed);
  out->WriteTable(schema_);
  out->WriteU32(static_cast<uint32_t>(coding_.size()));
  for (const auto& cc : coding_) {
    out->WriteBool(cc.is_numeric);
    out->WriteI32(cc.offset);
    out->WriteI32(cc.cardinality);
    cc.standardizer.SaveState(out);
    out->WriteDouble(cc.raw_min);
    out->WriteDouble(cc.raw_max);
  }
  out->WriteIntVec(categorical_columns_);
  out->WriteI32(input_dim_);
  io::WriteParameters(out, params_);
  out->WriteRng(rng_);
  return Status::OK();
}

Status Tvae::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kTvaeStateVersion) {
    return Status::InvalidArgument("unsupported tvae state version " +
                                   std::to_string(version));
  }
  config_.latent_dim = in->ReadI32();
  config_.hidden_width = in->ReadI32();
  config_.epochs = in->ReadI32();
  config_.batch_size = in->ReadI32();
  config_.learning_rate = in->ReadDouble();
  config_.seed = in->ReadU64();
  schema_ = in->ReadTable();
  uint32_t num_codings = in->ReadU32();
  coding_.clear();
  for (uint32_t c = 0; c < num_codings && in->ok(); ++c) {
    ColumnCoding cc;
    cc.is_numeric = in->ReadBool();
    cc.offset = in->ReadI32();
    cc.cardinality = in->ReadI32();
    cc.standardizer = Standardizer::Restore(in);
    cc.raw_min = in->ReadDouble();
    cc.raw_max = in->ReadDouble();
    coding_.push_back(cc);
  }
  categorical_columns_ = in->ReadIntVec();
  input_dim_ = in->ReadI32();
  DDUP_RETURN_IF_ERROR(io::ReadParameters(in, kTvaeParamCount, &params_));
  in->ReadRng(&rng_);
  DDUP_RETURN_IF_ERROR(in->status());
  if (static_cast<int>(coding_.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("tvae coding/schema column count mismatch");
  }
  // Cross-validate the codings against the flat layout: Encode/ElboLoss
  // index batch.x and g.out by offset + cardinality with no bounds checks.
  int off = 0;
  int num_numeric = 0;
  std::vector<int> expect_categorical;
  for (int c = 0; c < static_cast<int>(coding_.size()); ++c) {
    const ColumnCoding& cc = coding_[static_cast<size_t>(c)];
    if (cc.offset != off || cc.cardinality < 1 ||
        (cc.is_numeric && cc.cardinality != 1)) {
      return Status::InvalidArgument("tvae checkpoint coding is inconsistent");
    }
    if (cc.is_numeric) {
      ++num_numeric;
    } else {
      expect_categorical.push_back(c);
    }
    off += cc.cardinality;
  }
  int h = config_.hidden_width;
  int l = config_.latent_dim;
  if (off != input_dim_ || input_dim_ < 1 || h < 1 || l < 1 ||
      config_.batch_size < 1 || categorical_columns_ != expect_categorical) {
    return Status::InvalidArgument("tvae checkpoint config is inconsistent");
  }
  return io::CheckParameterShapes(
      params_, {{input_dim_, h},
                {1, h},
                {h, l},
                {1, l},
                {h, l},
                {1, l},
                {l, h},
                {1, h},
                {h, input_dim_},
                {1, input_dim_},
                {1, std::max(1, num_numeric)}});
}

Status Tvae::SaveToFile(const std::string& path) const {
  io::Serializer state;
  DDUP_RETURN_IF_ERROR(SaveState(&state));
  return io::WriteSectionFile(path, kCheckpointKind, state.Take());
}

StatusOr<std::unique_ptr<Tvae>> Tvae::Restore(io::Deserializer* in) {
  std::unique_ptr<Tvae> model(new Tvae());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

StatusOr<std::unique_ptr<Tvae>> Tvae::LoadFromFile(const std::string& path) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, kCheckpointKind);
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  StatusOr<std::unique_ptr<Tvae>> model = Restore(&in);
  if (!model.ok()) return model;
  Status st = in.Finish();
  if (!st.ok()) return st;
  return model;
}

storage::Table Tvae::Sample(int64_t n, Rng& rng) const {
  using namespace nn;  // NOLINT
  std::vector<Variable> frozen = AsConstants(params_);
  Matrix z = Matrix::Randn(rng, static_cast<int>(n), config_.latent_dim, 1.0);
  Variable hd = AffineRelu(Constant(z), frozen[6], frozen[7]);
  Variable out_v = Affine(hd, frozen[8], frozen[9]);
  const Matrix& out = out_v.value();
  const Matrix& log_sigma = frozen[kLogSigmaIdx].value();

  storage::Table table(schema_.name() + "_synthetic");
  int ni = 0;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const ColumnCoding& cc = coding_[static_cast<size_t>(c)];
    const storage::Column& proto = schema_.column(c);
    if (cc.is_numeric) {
      double sigma = std::exp(log_sigma.At(0, ni));
      std::vector<double> values(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        double v_std = out.At(static_cast<int>(r), cc.offset) +
                       rng.Normal(0.0, sigma);
        double raw = cc.standardizer.Decode(v_std);
        values[static_cast<size_t>(r)] =
            std::clamp(raw, cc.raw_min, cc.raw_max);
      }
      table.AddColumn(storage::Column::Numeric(proto.name(), std::move(values)));
      ++ni;
    } else {
      std::vector<int32_t> codes(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        // Sample from the softmax over this column's logits.
        std::vector<double> w(static_cast<size_t>(cc.cardinality));
        double mx = -1e300;
        for (int u = 0; u < cc.cardinality; ++u) {
          mx = std::max(mx, out.At(static_cast<int>(r), cc.offset + u));
        }
        for (int u = 0; u < cc.cardinality; ++u) {
          w[static_cast<size_t>(u)] =
              std::exp(out.At(static_cast<int>(r), cc.offset + u) - mx);
        }
        codes[static_cast<size_t>(r)] = static_cast<int32_t>(rng.Categorical(w));
      }
      table.AddColumn(storage::Column::Categorical(proto.name(), std::move(codes),
                                                   proto.dictionary()));
    }
  }
  return table;
}

}  // namespace ddup::models
