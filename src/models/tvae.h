#ifndef DDUP_MODELS_TVAE_H_
#define DDUP_MODELS_TVAE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/interfaces.h"
#include "models/encoding.h"
#include "nn/layers.h"
#include "workload/query.h"

namespace ddup::models {

// TVAE-style tabular variational autoencoder (§4.3 "Variational
// Autoencoders"): a Gaussian encoder/decoder pair trained with the ELBO
// loss. Numeric columns are z-scored and reconstructed with per-column
// learned output noise; categorical columns are one-hot encoded and
// reconstructed with softmax heads. Synthesis draws z ~ N(0, I) and decodes.
// The ELBO doubles as DDUp's OOD signal (higher = more out-of-distribution).
struct TvaeConfig {
  int latent_dim = 8;
  int hidden_width = 64;
  int epochs = 20;
  int batch_size = 128;
  double learning_rate = 2e-3;
  uint64_t seed = 13;
};

class Tvae : public core::UpdatableModel {
 public:
  Tvae(const storage::Table& base_data, TvaeConfig config);

  // core::UpdatableModel:
  double AverageLoss(const storage::Table& sample) const override;  // ELBO
  std::string name() const override { return "tvae"; }
  void FineTune(const storage::Table& new_data, double learning_rate,
                int epochs) override;
  void DistillUpdate(const storage::Table& transfer_set,
                     const storage::Table& new_data,
                     const core::DistillConfig& config) override;
  void RetrainFromScratch(const storage::Table& data) override;
  void AbsorbMetadata(const storage::Table& new_data) override {
    (void)new_data;  // the generator keeps no query-time metadata
  }
  void ResetMetadata() override {}
  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

  // One-file checkpoint (src/io, section kind "tvae"), including the
  // zero-row schema table (dictionaries) and per-column codings.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<std::unique_ptr<Tvae>> LoadFromFile(const std::string& path);
  // Rebuilds a model from a raw SaveState payload (the ModelFactory /
  // engine-manifest restore path; LoadFromFile wraps this).
  static StatusOr<std::unique_ptr<Tvae>> Restore(io::Deserializer* in);
  static constexpr const char* kCheckpointKind = "tvae";

  double Elbo(const storage::Table& sample) const { return AverageLoss(sample); }

  // Synthesizes n rows with the base schema (dictionaries preserved,
  // numerics clamped to the base support).
  storage::Table Sample(int64_t n, Rng& rng) const;

  int latent_dim() const { return config_.latent_dim; }

 private:
  // Uninitialized shell for LoadFromFile; LoadState restores every field.
  Tvae() = default;

  struct ColumnCoding {
    bool is_numeric = false;
    int offset = 0;       // offset in the flat input/output layout
    int cardinality = 1;  // 1 for numeric, K for categorical
    Standardizer standardizer;
    double raw_min = 0.0, raw_max = 0.0;  // clamp bounds for sampling
  };

  struct EncodedBatch {
    nn::Matrix x;                          // N x D flat input
    std::vector<std::vector<int>> codes;   // per categorical column
  };

  struct VaeGraph {
    nn::Variable mu, logvar;  // encoder outputs
    nn::Variable z;           // reparameterized latent
    nn::Variable out;         // decoder flat output
  };

  void InitParams();
  EncodedBatch Encode(const storage::Table& data,
                      const std::vector<int64_t>& rows) const;
  VaeGraph ForwardGraph(const std::vector<nn::Variable>& params,
                        const nn::Matrix& x, const nn::Matrix& eps) const;
  nn::Variable ElboLoss(const std::vector<nn::Variable>& params,
                        const VaeGraph& g, const EncodedBatch& batch) const;
  void TrainLoop(const storage::Table& data, double lr, int epochs);
  nn::Matrix SampleEps(int n) const;

  TvaeConfig config_;
  storage::Table schema_;  // zero-row table carrying column schemas
  std::vector<ColumnCoding> coding_;
  std::vector<int> categorical_columns_;  // indices into schema
  int input_dim_ = 0;
  std::vector<nn::Variable> params_;
  mutable Rng rng_;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_TVAE_H_
