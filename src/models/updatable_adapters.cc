#include "models/updatable_adapters.h"

#include <algorithm>
#include <cmath>

#include "io/serializer.h"

namespace ddup::models {

namespace {
constexpr uint32_t kSpnAdapterVersion = 1;
constexpr uint32_t kGbdtAdapterVersion = 1;
}  // namespace

// ---------------------------------------------------------------------------
// SpnModel
// ---------------------------------------------------------------------------

SpnModel::SpnModel(const storage::Table& base_data, SpnConfig config)
    : spn_(std::make_unique<Spn>(base_data, config)) {}

double SpnModel::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  // Each row becomes an all-columns equality query, so EstimateProbability
  // returns the mass of the row's discretized cell; -log of that is the
  // per-row NLL over the SPN's joint.
  double total = 0.0;
  for (int64_t r = 0; r < sample.num_rows(); ++r) {
    workload::Query q;
    q.predicates.reserve(static_cast<size_t>(sample.num_columns()));
    for (int c = 0; c < sample.num_columns(); ++c) {
      workload::Predicate p;
      p.column = c;
      p.op = workload::CompareOp::kEq;
      p.value = sample.column(c).AsDouble(r);
      q.predicates.push_back(p);
    }
    double prob = spn_->EstimateProbability(q);
    total += -std::log(std::max(prob, 1e-300));
  }
  return total / static_cast<double>(sample.num_rows());
}

void SpnModel::FineTune(const storage::Table& new_data, double learning_rate,
                        int epochs) {
  (void)learning_rate;
  (void)epochs;
  spn_->Update(new_data);
}

void SpnModel::DistillUpdate(const storage::Table& transfer_set,
                             const storage::Table& new_data,
                             const core::DistillConfig& config) {
  (void)transfer_set;
  (void)config;
  spn_->Update(new_data);
}

void SpnModel::RetrainFromScratch(const storage::Table& data) {
  spn_->Rebuild(data);
}

StatusOr<double> SpnModel::TryEstimateCardinality(
    const workload::Query& query, core::EstimateContext* ctx) const {
  (void)ctx;  // deterministic tree walk: no per-call mutable state
  for (const auto& p : query.predicates) {
    if (p.column < 0 || p.column >= spn_->encoder().num_columns()) {
      return Status::InvalidArgument("predicate on out-of-range column " +
                                     std::to_string(p.column));
    }
  }
  return spn_->EstimateCardinality(query);
}

Status SpnModel::SaveState(io::Serializer* out) const {
  out->WriteU32(kSpnAdapterVersion);
  return spn_->SaveState(out);
}

Status SpnModel::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kSpnAdapterVersion) {
    return Status::InvalidArgument("unsupported spn adapter version " +
                                   std::to_string(version));
  }
  StatusOr<std::unique_ptr<Spn>> spn = Spn::Restore(in);
  if (!spn.ok()) return spn.status();
  spn_ = std::move(spn).value();
  return Status::OK();
}

StatusOr<std::unique_ptr<SpnModel>> SpnModel::Restore(io::Deserializer* in) {
  std::unique_ptr<SpnModel> model(new SpnModel());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

// ---------------------------------------------------------------------------
// GbdtModel
// ---------------------------------------------------------------------------

GbdtModel::GbdtModel(const storage::Table& base_data,
                     const std::string& target_column, GbdtConfig config)
    : config_(config),
      target_column_(target_column),
      gbdt_(std::make_unique<Gbdt>(config)) {
  gbdt_->Train(base_data, target_column_);
}

double GbdtModel::AverageLoss(const storage::Table& sample) const {
  DDUP_CHECK(sample.num_rows() > 0);
  return 1.0 - gbdt_->MicroF1(sample);
}

void GbdtModel::FineTune(const storage::Table& new_data, double learning_rate,
                         int epochs) {
  (void)learning_rate;
  (void)epochs;
  gbdt_ = std::make_unique<Gbdt>(config_);
  gbdt_->Train(new_data, target_column_);
}

void GbdtModel::DistillUpdate(const storage::Table& transfer_set,
                              const storage::Table& new_data,
                              const core::DistillConfig& config) {
  (void)config;
  storage::Table both = transfer_set;
  both.Append(new_data);
  gbdt_ = std::make_unique<Gbdt>(config_);
  gbdt_->Train(both, target_column_);
}

void GbdtModel::RetrainFromScratch(const storage::Table& data) {
  gbdt_ = std::make_unique<Gbdt>(config_);
  gbdt_->Train(data, target_column_);
}

Status GbdtModel::SaveState(io::Serializer* out) const {
  out->WriteU32(kGbdtAdapterVersion);
  out->WriteString(target_column_);
  return gbdt_->SaveState(out);
}

Status GbdtModel::LoadState(io::Deserializer* in) {
  uint32_t version = in->ReadU32();
  if (in->ok() && version != kGbdtAdapterVersion) {
    return Status::InvalidArgument("unsupported gbdt adapter version " +
                                   std::to_string(version));
  }
  target_column_ = in->ReadString();
  StatusOr<std::unique_ptr<Gbdt>> gbdt = Gbdt::Restore(in);
  if (!gbdt.ok()) return gbdt.status();
  gbdt_ = std::move(gbdt).value();
  // Retrains after a restore grow trees with the restored hyperparameters.
  config_ = gbdt_->config();
  return Status::OK();
}

StatusOr<std::unique_ptr<GbdtModel>> GbdtModel::Restore(io::Deserializer* in) {
  std::unique_ptr<GbdtModel> model(new GbdtModel());
  DDUP_RETURN_IF_ERROR(model->LoadState(in));
  return model;
}

}  // namespace ddup::models
