#ifndef DDUP_MODELS_UPDATABLE_ADAPTERS_H_
#define DDUP_MODELS_UPDATABLE_ADAPTERS_H_

#include <memory>
#include <string>

#include "core/interfaces.h"
#include "models/gbdt.h"
#include "models/spn.h"

namespace ddup::models {

// Adapters lifting the non-NN reference models (Spn, Gbdt) onto the
// core::UpdatableModel contract, so the DdupController and the Engine's
// ModelFactory treat all five model families uniformly. The NN models
// implement the contract natively; these two approximate it with the
// operations each family actually supports (documented per method).

// DeepDB-style SPN behind the DDUp loop. "Loss" is the mean negative log
// probability of each row's fully specified (all-columns equality) cell in
// the discretized joint — the SPN analog of the NN models' training NLL.
// In-distribution fine-tunes and distillation updates both map onto the
// SPN's incremental insert (weights + histograms, never restructuring):
// that is precisely the update the paper's §5.7 study shows degrading,
// which the detector can now observe through this adapter.
class SpnModel : public core::UpdatableModel, public core::CardinalityEstimator {
 public:
  SpnModel(const storage::Table& base_data, SpnConfig config);

  // core::UpdatableModel:
  double AverageLoss(const storage::Table& sample) const override;
  std::string name() const override { return "spn"; }
  // Incremental insert of `new_data` (learning_rate/epochs are meaningless
  // for histogram routing and are ignored).
  void FineTune(const storage::Table& new_data, double learning_rate,
                int epochs) override;
  // The SPN has no distillation objective; the transfer set's knowledge is
  // already embedded in the structure, so only `new_data` is inserted.
  void DistillUpdate(const storage::Table& transfer_set,
                     const storage::Table& new_data,
                     const core::DistillConfig& config) override;
  void RetrainFromScratch(const storage::Table& data) override;
  // Row accounting lives inside Spn::Update; nothing separate to absorb.
  void AbsorbMetadata(const storage::Table& new_data) override { (void)new_data; }
  void ResetMetadata() override {}
  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

  // core::CardinalityEstimator: the SPN tree walk is deterministic and
  // RNG-free, so the context is unused and the default (stateless)
  // MakeEstimateContext applies. The default batch loop is already optimal —
  // there is no per-call setup to amortize.
  StatusOr<double> TryEstimateCardinality(
      const workload::Query& query,
      core::EstimateContext* ctx) const override;
  using core::CardinalityEstimator::TryEstimateCardinality;

  const Spn& spn() const { return *spn_; }

  static StatusOr<std::unique_ptr<SpnModel>> Restore(io::Deserializer* in);

 private:
  SpnModel() = default;  // shell for Restore

  std::unique_ptr<Spn> spn_;
};

// XGBoost-style classifier behind the DDUp loop (the paper's §5.1.4
// evaluation model). "Loss" is the misclassification rate on the sample
// (1 - micro-F1): label-distribution drift raises it exactly like the NN
// models' NLL rises under covariate drift. Boosted trees cannot be
// fine-tuned incrementally, so the update actions retrain: FineTune on the
// new batch only (the forget-prone baseline), DistillUpdate on transfer
// set + new batch (old knowledge carried by the transfer sample instead of
// a teacher network), RetrainFromScratch on everything.
class GbdtModel : public core::UpdatableModel {
 public:
  GbdtModel(const storage::Table& base_data, const std::string& target_column,
            GbdtConfig config);

  // core::UpdatableModel:
  double AverageLoss(const storage::Table& sample) const override;
  std::string name() const override { return "gbdt"; }
  void FineTune(const storage::Table& new_data, double learning_rate,
                int epochs) override;
  void DistillUpdate(const storage::Table& transfer_set,
                     const storage::Table& new_data,
                     const core::DistillConfig& config) override;
  void RetrainFromScratch(const storage::Table& data) override;
  void AbsorbMetadata(const storage::Table& new_data) override { (void)new_data; }
  void ResetMetadata() override {}
  Status SaveState(io::Serializer* out) const override;
  Status LoadState(io::Deserializer* in) override;

  const Gbdt& gbdt() const { return *gbdt_; }

  static StatusOr<std::unique_ptr<GbdtModel>> Restore(io::Deserializer* in);

 private:
  GbdtModel() = default;  // shell for Restore

  GbdtConfig config_;
  std::string target_column_;
  std::unique_ptr<Gbdt> gbdt_;
};

}  // namespace ddup::models

#endif  // DDUP_MODELS_UPDATABLE_ADAPTERS_H_
