#include "nn/autograd.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "common/status.h"
#include "nn/pool.h"

namespace ddup::nn {

namespace {
std::atomic<uint64_t> g_sequence{0};
}  // namespace

Node::~Node() {
  // Recycle both buffers; whoever tears the graph down feeds the next step.
  MatrixPool& pool = MatrixPool::Local();
  if (!value.empty()) pool.Release(std::move(value));
  if (!grad.empty()) pool.Release(std::move(grad));
}

void Node::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    if (!grad.empty()) MatrixPool::Local().Release(std::move(grad));
    grad = MatrixPool::Local().AcquireZeroed(value.rows(), value.cols());
  }
}

Variable::Variable(Matrix value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
}

const Matrix& Variable::value() const {
  DDUP_CHECK(defined());
  return node_->value;
}

Matrix& Variable::mutable_value() {
  DDUP_CHECK(defined());
  return node_->value;
}

const Matrix& Variable::grad() const {
  DDUP_CHECK(defined());
  return node_->grad;
}

bool Variable::requires_grad() const {
  DDUP_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  DDUP_CHECK(defined());
  if (!node_->grad.empty()) node_->grad.Fill(0.0);
}

Variable Variable::Wrap(std::shared_ptr<Node> node) {
  node->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(Matrix value) { return Variable(std::move(value), false); }

Variable ConstantScalar(double value) {
  return Variable(Matrix::Constant(1, 1, value), false);
}

Variable Parameter(Matrix value) { return Variable(std::move(value), true); }

void Backward(const Variable& root) {
  DDUP_CHECK(root.defined());
  DDUP_CHECK_MSG(root.rows() == 1 && root.cols() == 1,
                 "Backward root must be a scalar");
  // Collect the subgraph reachable from the root (iterative DFS; graphs can
  // be thousands of nodes deep for long sequential losses).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<Node*> stack = {root.node().get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    order.push_back(n);
    for (const auto& p : n->parents) stack.push_back(p.get());
  }
  // Creation order is a topological order for this DAG (parents are always
  // created before children), so descending sequence is a valid reverse
  // topological order for backprop.
  std::sort(order.begin(), order.end(),
            [](const Node* a, const Node* b) { return a->sequence > b->sequence; });

  root.node()->EnsureGrad();
  root.node()->grad.At(0, 0) += 1.0;
  for (Node* n : order) {
    if (n->backward && !n->grad.empty()) {
      n->backward(*n);
      // Children precede parents in this order, so n's gradient is complete
      // and has just been consumed — retire the buffer immediately instead
      // of waiting for graph teardown. Leaf (parameter) gradients have no
      // backward closure and are kept for the optimizer.
      MatrixPool::Local().Release(std::move(n->grad));
    }
  }
}

}  // namespace ddup::nn
