#ifndef DDUP_NN_AUTOGRAD_H_
#define DDUP_NN_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace ddup::nn {

// Reverse-mode automatic differentiation over a dynamically built DAG.
// Each op in ops.h creates a Node whose `backward` closure scatters the
// node's gradient into its parents. There is no global tape: the graph is
// owned by shared_ptr edges (child -> parents) and freed when the last
// Variable handle goes out of scope.
//
// Buffer lifecycle: value and grad storage is drawn from the thread-local
// MatrixPool (pool.h). EnsureGrad acquires a zeroed pool buffer, Backward
// returns each interior node's gradient to the pool as soon as that node has
// propagated, and ~Node returns both buffers — so a steady-state training
// step allocates (almost) nothing.
struct Node {
  Matrix value;
  Matrix grad;  // Allocated lazily; same shape as value once used.
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Accumulates into parents' grads given this node's grad. Null for leaves.
  std::function<void(Node&)> backward;
  // Monotonic creation index; gives a valid reverse-topological order.
  uint64_t sequence = 0;

  Node() = default;
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  void EnsureGrad();
};

// Value-semantic handle to a Node. Copies alias the same node.
class Variable {
 public:
  Variable() = default;
  // Wraps `value`; `requires_grad` marks trainable leaves (parameters).
  explicit Variable(Matrix value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  Matrix& mutable_value();
  const Matrix& grad() const;
  bool requires_grad() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  void ZeroGrad();
  const std::shared_ptr<Node>& node() const { return node_; }

  // Internal: used by ops.cc to wrap freshly built nodes.
  static Variable Wrap(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

// Convenience constructors.
Variable Constant(Matrix value);
Variable ConstantScalar(double value);
Variable Parameter(Matrix value);

// Runs backpropagation from `root`, which must be a 1x1 scalar. Seeds the
// root gradient with 1 and applies each node's backward closure in reverse
// topological order. Gradients of parameters accumulate across calls until
// ZeroGrad.
void Backward(const Variable& root);

}  // namespace ddup::nn

#endif  // DDUP_NN_AUTOGRAD_H_
