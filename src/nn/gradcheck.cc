#include "nn/gradcheck.h"

#include <cmath>

#include "common/status.h"

namespace ddup::nn {

double MaxGradientError(const std::function<Variable()>& loss_fn,
                        std::vector<Variable>* params, double epsilon) {
  // Analytic pass.
  for (auto& p : *params) p.ZeroGrad();
  Variable loss = loss_fn();
  Backward(loss);
  std::vector<Matrix> analytic;
  analytic.reserve(params->size());
  for (auto& p : *params) {
    analytic.push_back(p.grad().empty()
                           ? Matrix::Zeros(p.rows(), p.cols())
                           : p.grad());
  }

  double max_err = 0.0;
  for (size_t pi = 0; pi < params->size(); ++pi) {
    Matrix& value = (*params)[pi].mutable_value();
    for (int64_t j = 0; j < value.size(); ++j) {
      double orig = value.data()[j];
      value.data()[j] = orig + epsilon;
      double up = loss_fn().value().At(0, 0);
      value.data()[j] = orig - epsilon;
      double down = loss_fn().value().At(0, 0);
      value.data()[j] = orig;
      double numeric = (up - down) / (2.0 * epsilon);
      double err = std::fabs(numeric - analytic[pi].data()[j]);
      max_err = std::max(max_err, err);
    }
  }
  return max_err;
}

}  // namespace ddup::nn
