#ifndef DDUP_NN_GRADCHECK_H_
#define DDUP_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/autograd.h"

namespace ddup::nn {

// Verifies autodiff gradients against central finite differences.
//
// `loss_fn` must rebuild the graph from the current parameter values and
// return a scalar Variable. Returns the maximum absolute difference between
// the analytic and numeric gradient across all parameter entries.
double MaxGradientError(const std::function<Variable()>& loss_fn,
                        std::vector<Variable>* params, double epsilon = 1e-5);

}  // namespace ddup::nn

#endif  // DDUP_NN_GRADCHECK_H_
