#include "nn/kernels.h"

#include <algorithm>

#include "common/status.h"

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

namespace ddup::nn {

namespace {

// All variants implement the same contract:
//   C[i][j] = (accumulate ? C[i][j] : 0) + sum_k A[i][k] * B[k][j]
//             (+ bias[j] if bias) ; relu clamps at 0 last.
// A: n x k, B: k x m, C: n x m, bias: 1 x m or null. Row-major, no aliasing.
//
// The epilogue semantics live in exactly two scalar helpers shared by every
// ISA variant; the tiled main loop reimplements them only in vector form.

// Columns [j0, m) of `nrows` row pairs (arow[r], crow[r]): strided dot per
// element. Used for the j tail of the register-tiled panels.
inline void ScalarColumnTail(const double* const* arow, double* const* crow,
                             int nrows, const double* B, int j0, int k, int m,
                             bool accumulate, const double* bias, bool relu) {
  for (int j = j0; j < m; ++j) {
    const double* bp = B + j;
    for (int r = 0; r < nrows; ++r) {
      double s = accumulate ? crow[r][j] : 0.0;
      const double* a = arow[r];
      for (int kk = 0; kk < k; ++kk) s += a[kk] * bp[static_cast<size_t>(kk) * m];
      if (bias != nullptr) s += bias[j];
      if (relu) s = std::max(0.0, s);
      crow[r][j] = s;
    }
  }
}

// Full-width rows [i0, n): SAXPY per row with the bias folded into the row
// initialization. Used for the n % 4 row tail (and the generic fallback's).
inline void ScalarRowTail(const double* A, const double* B, double* C, int i0,
                          int n, int k, int m, bool accumulate,
                          const double* bias, bool relu) {
  for (int i = i0; i < n; ++i) {
    const double* arow = A + static_cast<size_t>(i) * k;
    double* crow = C + static_cast<size_t>(i) * m;
    if (!accumulate) {
      if (bias != nullptr) {
        std::copy(bias, bias + m, crow);
      } else {
        std::fill(crow, crow + m, 0.0);
      }
    } else if (bias != nullptr) {
      for (int j = 0; j < m; ++j) crow[j] += bias[j];
    }
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      const double* brow = B + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
    if (relu) {
      for (int j = 0; j < m; ++j) crow[j] = std::max(0.0, crow[j]);
    }
  }
}

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))

// One intrinsic wrapper per vector ISA; the tiled GemmImpl below is written
// once against it, so the AVX-512 and AVX2 kernels cannot diverge.
#if defined(__AVX512F__)

constexpr const char kGemmKernelName[] = "avx512";

struct Simd {
  using V = __m512d;
  static constexpr int kLanes = 8;
  static V Zero() { return _mm512_setzero_pd(); }
  static V Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V Set1(double x) { return _mm512_set1_pd(x); }
  static V Fmadd(V a, V b, V c) { return _mm512_fmadd_pd(a, b, c); }
  static V Add(V a, V b) { return _mm512_add_pd(a, b); }
  static V Max(V a, V b) { return _mm512_max_pd(a, b); }
};

#else

constexpr const char kGemmKernelName[] = "avx2";

struct Simd {
  using V = __m256d;
  static constexpr int kLanes = 4;
  static V Zero() { return _mm256_setzero_pd(); }
  static V Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V Set1(double x) { return _mm256_set1_pd(x); }
  static V Fmadd(V a, V b, V c) { return _mm256_fmadd_pd(a, b, c); }
  static V Add(V a, V b) { return _mm256_add_pd(a, b); }
  static V Max(V a, V b) { return _mm256_max_pd(a, b); }
};

#endif

// GCC's _mm512_set1_pd expands through _mm512_undefined_pd, which trips
// -Wmaybe-uninitialized under -O2+; the value is fully overwritten.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Register-tiled kernel: a 4 x 2L C tile (L = vector lanes) lives in
// registers across the whole K loop; then a 4 x L tile for medium tails,
// then the shared scalar tails.
void GemmImpl(const double* A, const double* B, double* C, int n, int k,
              int m, bool accumulate, const double* bias, bool relu) {
  using V = Simd::V;
  constexpr int L = Simd::kLanes;
  const int n4 = n - n % 4;
  const int m2l = m - m % (2 * L);
  const int ml = m - m % L;
  const V vzero = Simd::Zero();
  for (int i = 0; i < n4; i += 4) {
    const double* a0 = A + static_cast<size_t>(i) * k;
    const double* a1 = a0 + k;
    const double* a2 = a1 + k;
    const double* a3 = a2 + k;
    double* c0 = C + static_cast<size_t>(i) * m;
    double* c1 = c0 + m;
    double* c2 = c1 + m;
    double* c3 = c2 + m;
    int j = 0;
    for (; j < m2l; j += 2 * L) {
      V s00, s01, s10, s11, s20, s21, s30, s31;
      if (accumulate) {
        s00 = Simd::Load(c0 + j);
        s01 = Simd::Load(c0 + j + L);
        s10 = Simd::Load(c1 + j);
        s11 = Simd::Load(c1 + j + L);
        s20 = Simd::Load(c2 + j);
        s21 = Simd::Load(c2 + j + L);
        s30 = Simd::Load(c3 + j);
        s31 = Simd::Load(c3 + j + L);
      } else {
        s00 = s01 = s10 = s11 = s20 = s21 = s30 = s31 = vzero;
      }
      const double* bp = B + j;
      for (int kk = 0; kk < k; ++kk) {
        const double* brow = bp + static_cast<size_t>(kk) * m;
        const V b0 = Simd::Load(brow);
        const V b1 = Simd::Load(brow + L);
        V av = Simd::Set1(a0[kk]);
        s00 = Simd::Fmadd(av, b0, s00);
        s01 = Simd::Fmadd(av, b1, s01);
        av = Simd::Set1(a1[kk]);
        s10 = Simd::Fmadd(av, b0, s10);
        s11 = Simd::Fmadd(av, b1, s11);
        av = Simd::Set1(a2[kk]);
        s20 = Simd::Fmadd(av, b0, s20);
        s21 = Simd::Fmadd(av, b1, s21);
        av = Simd::Set1(a3[kk]);
        s30 = Simd::Fmadd(av, b0, s30);
        s31 = Simd::Fmadd(av, b1, s31);
      }
      if (bias != nullptr) {
        const V bb0 = Simd::Load(bias + j);
        const V bb1 = Simd::Load(bias + j + L);
        s00 = Simd::Add(s00, bb0);
        s01 = Simd::Add(s01, bb1);
        s10 = Simd::Add(s10, bb0);
        s11 = Simd::Add(s11, bb1);
        s20 = Simd::Add(s20, bb0);
        s21 = Simd::Add(s21, bb1);
        s30 = Simd::Add(s30, bb0);
        s31 = Simd::Add(s31, bb1);
      }
      if (relu) {
        s00 = Simd::Max(s00, vzero);
        s01 = Simd::Max(s01, vzero);
        s10 = Simd::Max(s10, vzero);
        s11 = Simd::Max(s11, vzero);
        s20 = Simd::Max(s20, vzero);
        s21 = Simd::Max(s21, vzero);
        s30 = Simd::Max(s30, vzero);
        s31 = Simd::Max(s31, vzero);
      }
      Simd::Store(c0 + j, s00);
      Simd::Store(c0 + j + L, s01);
      Simd::Store(c1 + j, s10);
      Simd::Store(c1 + j + L, s11);
      Simd::Store(c2 + j, s20);
      Simd::Store(c2 + j + L, s21);
      Simd::Store(c3 + j, s30);
      Simd::Store(c3 + j + L, s31);
    }
    // 4 x L tile for medium tails (covers whole heads like M = 8 mixtures).
    for (; j < ml; j += L) {
      V s0, s1, s2, s3;
      if (accumulate) {
        s0 = Simd::Load(c0 + j);
        s1 = Simd::Load(c1 + j);
        s2 = Simd::Load(c2 + j);
        s3 = Simd::Load(c3 + j);
      } else {
        s0 = s1 = s2 = s3 = vzero;
      }
      const double* bp = B + j;
      for (int kk = 0; kk < k; ++kk) {
        const V b0 = Simd::Load(bp + static_cast<size_t>(kk) * m);
        s0 = Simd::Fmadd(Simd::Set1(a0[kk]), b0, s0);
        s1 = Simd::Fmadd(Simd::Set1(a1[kk]), b0, s1);
        s2 = Simd::Fmadd(Simd::Set1(a2[kk]), b0, s2);
        s3 = Simd::Fmadd(Simd::Set1(a3[kk]), b0, s3);
      }
      if (bias != nullptr) {
        const V bb = Simd::Load(bias + j);
        s0 = Simd::Add(s0, bb);
        s1 = Simd::Add(s1, bb);
        s2 = Simd::Add(s2, bb);
        s3 = Simd::Add(s3, bb);
      }
      if (relu) {
        s0 = Simd::Max(s0, vzero);
        s1 = Simd::Max(s1, vzero);
        s2 = Simd::Max(s2, vzero);
        s3 = Simd::Max(s3, vzero);
      }
      Simd::Store(c0 + j, s0);
      Simd::Store(c1 + j, s1);
      Simd::Store(c2 + j, s2);
      Simd::Store(c3 + j, s3);
    }
    if (j < m) {
      const double* ar[4] = {a0, a1, a2, a3};
      double* cr[4] = {c0, c1, c2, c3};
      ScalarColumnTail(ar, cr, 4, B, j, k, m, accumulate, bias, relu);
    }
  }
  ScalarRowTail(A, B, C, n4, n, k, m, accumulate, bias, relu);
}

#pragma GCC diagnostic pop

#else

constexpr const char kGemmKernelName[] = "generic";

// Portable fallback: 4-row SAXPY panels under a K-cache block; the inner
// j loop is a contiguous stream the autovectorizer handles.
void GemmImpl(const double* A, const double* B, double* C, int n, int k,
              int m, bool accumulate, const double* bias, bool relu) {
  const int n4 = n - n % 4;
  // Initialize the panel rows once (bias folds into the initialization);
  // ScalarRowTail below does the same for the n % 4 tail rows.
  for (int i = 0; i < n4; ++i) {
    double* crow = C + static_cast<size_t>(i) * m;
    if (!accumulate) {
      if (bias != nullptr) {
        std::copy(bias, bias + m, crow);
      } else {
        std::fill(crow, crow + m, 0.0);
      }
    } else if (bias != nullptr) {
      for (int j = 0; j < m; ++j) crow[j] += bias[j];
    }
  }
  constexpr int kKc = 240;  // K block: keeps the active B slice in cache.
  for (int k0 = 0; k0 < k; k0 += kKc) {
    const int k1 = std::min(k0 + kKc, k);
    for (int i = 0; i < n4; i += 4) {
      const double* a0 = A + static_cast<size_t>(i) * k;
      const double* a1 = a0 + k;
      const double* a2 = a1 + k;
      const double* a3 = a2 + k;
      double* c0 = C + static_cast<size_t>(i) * m;
      double* c1 = c0 + m;
      double* c2 = c1 + m;
      double* c3 = c2 + m;
      for (int kk = k0; kk < k1; ++kk) {
        const double* brow = B + static_cast<size_t>(kk) * m;
        const double v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
        for (int j = 0; j < m; ++j) {
          const double bv = brow[j];
          c0[j] += v0 * bv;
          c1[j] += v1 * bv;
          c2[j] += v2 * bv;
          c3[j] += v3 * bv;
        }
      }
    }
  }
  if (relu) {
    for (int64_t i = 0; i < static_cast<int64_t>(n4) * m; ++i) {
      C[i] = std::max(0.0, C[i]);
    }
  }
  ScalarRowTail(A, B, C, n4, n, k, m, accumulate, bias, relu);
}

#endif

}  // namespace

void GemmInto(const Matrix& a, const Matrix& b, bool accumulate, Matrix* c) {
  DDUP_CHECK_MSG(a.cols() == b.rows(),
                 "gemm shape mismatch " + a.ShapeString() + " * " +
                     b.ShapeString());
  DDUP_CHECK(c->rows() == a.rows() && c->cols() == b.cols());
  GemmImpl(a.data(), b.data(), c->data(), a.rows(), a.cols(), b.cols(),
           accumulate, /*bias=*/nullptr, /*relu=*/false);
}

void AffineInto(const Matrix& x, const Matrix& w, const Matrix& bias,
                bool relu, Matrix* out) {
  DDUP_CHECK_MSG(x.cols() == w.rows(),
                 "affine shape mismatch " + x.ShapeString() + " * " +
                     w.ShapeString());
  DDUP_CHECK(bias.rows() == 1 && bias.cols() == w.cols());
  DDUP_CHECK(out->rows() == x.rows() && out->cols() == w.cols());
  GemmImpl(x.data(), w.data(), out->data(), x.rows(), x.cols(), w.cols(),
           /*accumulate=*/false, bias.data(), relu);
}

void TransposeInto(const Matrix& src, Matrix* dst) {
  DDUP_CHECK(dst->rows() == src.cols() && dst->cols() == src.rows());
  const int rows = src.rows(), cols = src.cols();
  constexpr int kBlock = 32;
  for (int r0 = 0; r0 < rows; r0 += kBlock) {
    const int r1 = std::min(r0 + kBlock, rows);
    for (int c0 = 0; c0 < cols; c0 += kBlock) {
      const int c1 = std::min(c0 + kBlock, cols);
      for (int r = r0; r < r1; ++r) {
        const double* srow = src.data() + static_cast<size_t>(r) * cols;
        for (int c = c0; c < c1; ++c) {
          dst->data()[static_cast<size_t>(c) * rows + r] = srow[c];
        }
      }
    }
  }
}

void AddInto(const Matrix& src, Matrix* dst) {
  DDUP_CHECK(src.rows() == dst->rows() && src.cols() == dst->cols());
  double* d = dst->data();
  const double* s = src.data();
  for (int64_t i = 0; i < src.size(); ++i) d[i] += s[i];
}

void AxpyInto(double alpha, const Matrix& x, Matrix* y) {
  DDUP_CHECK(x.rows() == y->rows() && x.cols() == y->cols());
  double* d = y->data();
  const double* s = x.data();
  for (int64_t i = 0; i < x.size(); ++i) d[i] += alpha * s[i];
}

void ColSumInto(const Matrix& src, bool accumulate, Matrix* out) {
  DDUP_CHECK(out->rows() == 1 && out->cols() == src.cols());
  double* o = out->data();
  if (!accumulate) std::fill(o, o + src.cols(), 0.0);
  const int cols = src.cols();
  for (int r = 0; r < src.rows(); ++r) {
    const double* srow = src.data() + static_cast<size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) o[j] += srow[j];
  }
}

const char* GemmKernelName() { return kGemmKernelName; }

}  // namespace ddup::nn
