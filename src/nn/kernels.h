#ifndef DDUP_NN_KERNELS_H_
#define DDUP_NN_KERNELS_H_

#include "nn/matrix.h"

namespace ddup::nn {

// Dense kernels behind the autograd ops. All of them write into
// caller-provided buffers (no allocation), are single-threaded and
// deterministic (output depends only on the inputs, never on thread count),
// and pick a register-tiled micro-kernel at compile time:
//   - AVX-512: 4x16 C tile resident in registers across the K loop,
//   - AVX2+FMA: 4x8 C tile,
//   - otherwise: a 4-row panel SAXPY kernel the autovectorizer handles well.
// Shapes are CHECKed; row-major layout throughout.

// c = a * b, or c += a * b when `accumulate` (shapes NxK * KxM -> NxM).
void GemmInto(const Matrix& a, const Matrix& b, bool accumulate, Matrix* c);

// out = x * w + bias with bias broadcast over rows (bias is 1xM), optionally
// followed by ReLU. The fused forward path of Linear / the model nets.
void AffineInto(const Matrix& x, const Matrix& w, const Matrix& bias,
                bool relu, Matrix* out);

// dst = src^T. dst must be src.cols() x src.rows() and distinct from src.
void TransposeInto(const Matrix& src, Matrix* dst);

// dst += src (same shape).
void AddInto(const Matrix& src, Matrix* dst);

// y += alpha * x (same shape).
void AxpyInto(double alpha, const Matrix& x, Matrix* y);

// out(0, j) = [accumulate ? out(0, j) : 0] + sum_r src(r, j); out is 1xM.
// The bias-gradient reduction of the fused affine backward.
void ColSumInto(const Matrix& src, bool accumulate, Matrix* out);

// Name of the compiled micro-kernel variant ("avx512" / "avx2" / "generic");
// surfaced by the bench harness so recorded numbers are attributable.
const char* GemmKernelName();

}  // namespace ddup::nn

#endif  // DDUP_NN_KERNELS_H_
