#include "nn/layers.h"

#include <cmath>

#include "common/status.h"

namespace ddup::nn {

namespace {
Matrix XavierInit(Rng& rng, int in, int out) {
  double scale = std::sqrt(2.0 / static_cast<double>(in + out));
  return Matrix::Randn(rng, in, out, scale);
}
}  // namespace

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Parameter(XavierInit(rng, in_features, out_features))),
      bias_(Parameter(Matrix::Zeros(1, out_features))) {}

Variable Linear::Forward(const Variable& x) const {
  DDUP_CHECK_MSG(x.cols() == in_features_, "Linear input width mismatch");
  return Affine(x, weight_, bias_);
}

void Linear::CollectParameters(std::vector<Variable>* out) const {
  out->push_back(weight_);
  out->push_back(bias_);
}

MaskedLinear::MaskedLinear(int in_features, int out_features, Matrix mask,
                           Rng& rng)
    : weight_(Parameter(XavierInit(rng, in_features, out_features))),
      bias_(Parameter(Matrix::Zeros(1, out_features))),
      mask_(std::move(mask)) {
  DDUP_CHECK(mask_.rows() == in_features && mask_.cols() == out_features);
}

Variable MaskedLinear::Forward(const Variable& x) const {
  Variable masked_w = Mul(weight_, Constant(mask_));
  return Affine(x, masked_w, bias_);
}

void MaskedLinear::CollectParameters(std::vector<Variable>* out) const {
  out->push_back(weight_);
  out->push_back(bias_);
}

Mlp::Mlp(const std::vector<int>& sizes, Rng& rng) {
  DDUP_CHECK_MSG(sizes.size() >= 2, "Mlp needs at least input and output size");
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  DDUP_CHECK(!layers_.empty());
  Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Linear& l = layers_[i];
    DDUP_CHECK_MSG(h.cols() == l.in_features(), "Mlp layer width mismatch");
    h = (i + 1 < layers_.size()) ? AffineRelu(h, l.weight(), l.bias())
                                 : l.Forward(h);
  }
  return h;
}

void Mlp::CollectParameters(std::vector<Variable>* out) const {
  for (const auto& layer : layers_) layer.CollectParameters(out);
}

std::vector<Variable> AsConstants(const std::vector<Variable>& params) {
  std::vector<Variable> out;
  out.reserve(params.size());
  for (const auto& p : params) out.push_back(Constant(p.value()));
  return out;
}

std::vector<Matrix> SnapshotValues(const std::vector<Variable>& params) {
  std::vector<Matrix> snap;
  snap.reserve(params.size());
  for (const auto& p : params) snap.push_back(p.value());
  return snap;
}

void RestoreValues(const std::vector<Matrix>& snapshot,
                   std::vector<Variable>* params) {
  DDUP_CHECK(snapshot.size() == params->size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    Matrix& dst = (*params)[i].mutable_value();
    DDUP_CHECK(dst.rows() == snapshot[i].rows() &&
               dst.cols() == snapshot[i].cols());
    dst = snapshot[i];
  }
}

}  // namespace ddup::nn
