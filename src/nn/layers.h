#ifndef DDUP_NN_LAYERS_H_
#define DDUP_NN_LAYERS_H_

#include <vector>

#include "common/rng.h"
#include "nn/ops.h"

namespace ddup::nn {

// Fully connected layer: y = x * W + b, with W of shape in x out and b 1 x out.
// Weights use Xavier/Glorot initialization.
class Linear {
 public:
  Linear() = default;
  Linear(int in_features, int out_features, Rng& rng);

  Variable Forward(const Variable& x) const;

  // Appends this layer's parameters to `out` (for optimizers/serialization).
  void CollectParameters(std::vector<Variable>* out) const;

  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }
  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_ = 0;
  int out_features_ = 0;
  Variable weight_;
  Variable bias_;
};

// MADE-style masked fully connected layer: y = x * (W .* M) + b where the
// binary mask M (same shape as W) is fixed at construction and enforces the
// autoregressive property of a DARN. The mask participates in the forward
// pass only; gradients flow to W through the masked product.
class MaskedLinear {
 public:
  MaskedLinear() = default;
  MaskedLinear(int in_features, int out_features, Matrix mask, Rng& rng);

  Variable Forward(const Variable& x) const;
  void CollectParameters(std::vector<Variable>* out) const;

  const Matrix& mask() const { return mask_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  Variable weight_;
  Variable bias_;
  Matrix mask_;
};

// Multi-layer perceptron with ReLU activations between Linear layers and a
// linear output head. Layout: sizes = {in, h1, ..., out}.
class Mlp {
 public:
  Mlp() = default;
  Mlp(const std::vector<int>& sizes, Rng& rng);

  Variable Forward(const Variable& x) const;
  void CollectParameters(std::vector<Variable>* out) const;

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
};

// Deep copies of parameter tensors (used to snapshot a teacher or to clone a
// model before self-distillation).
std::vector<Matrix> SnapshotValues(const std::vector<Variable>& params);
// Frozen copies of the parameters (requires_grad=false). A forward pass over
// these is exactly the teacher network of the distillation update.
std::vector<Variable> AsConstants(const std::vector<Variable>& params);
// Restores values captured by SnapshotValues into `params` (shape-checked).
void RestoreValues(const std::vector<Matrix>& snapshot,
                   std::vector<Variable>* params);

}  // namespace ddup::nn

#endif  // DDUP_NN_LAYERS_H_
