#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "nn/kernels.h"

namespace ddup::nn {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  DDUP_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n, 0.0);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

Matrix Matrix::Randn(Rng& rng, int rows, int cols, double stddev) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Rand(Rng& rng, int rows, int cols, double lo, double hi) {
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::FromBuffer(std::vector<double>&& buffer, int rows, int cols) {
  DDUP_CHECK(rows >= 0 && cols >= 0);
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(buffer);
  m.data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols));
  return m;
}

std::vector<double> Matrix::TakeBuffer() {
  rows_ = 0;
  cols_ = 0;
  return std::move(data_);
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  TransposeInto(*this, &t);
  return t;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ShapeString() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

Matrix MatMulValue(const Matrix& a, const Matrix& b) {
  DDUP_CHECK_MSG(a.cols() == b.rows(),
                 "matmul shape mismatch " + a.ShapeString() + " * " +
                     b.ShapeString());
  Matrix c(a.rows(), b.cols());
  GemmInto(a, b, /*accumulate=*/false, &c);
  return c;
}

}  // namespace ddup::nn
