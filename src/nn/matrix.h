#ifndef DDUP_NN_MATRIX_H_
#define DDUP_NN_MATRIX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ddup::nn {

// Dense row-major double matrix. This is the only numeric container the NN
// stack uses; vectors are 1xN or Nx1 matrices. Element access through At()
// is bounds-checked in debug builds only; kernels use the raw operator() /
// data() paths. Heavy arithmetic lives in kernels.h (register-tiled GEMM and
// fused affine paths), not here.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  // Moves leave the source empty (0 x 0) so pooled buffers can be handed
  // around without stale shape metadata.
  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    return *this;
  }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Constant(int rows, int cols, double v) {
    return Matrix(rows, cols, v);
  }
  static Matrix Identity(int n);
  // Column vector (n x 1) from values.
  static Matrix FromVector(const std::vector<double>& values);
  // Entries i.i.d. Normal(0, stddev).
  static Matrix Randn(Rng& rng, int rows, int cols, double stddev = 1.0);
  // Entries i.i.d. Uniform[lo, hi).
  static Matrix Rand(Rng& rng, int rows, int cols, double lo = 0.0,
                     double hi = 1.0);
  // Adopts `buffer` as backing storage (resized to rows*cols; existing
  // capacity is reused). Contents are whatever the buffer held — the
  // MatrixPool fast path.
  static Matrix FromBuffer(std::vector<double>&& buffer, int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  // Checked in debug builds (NDEBUG off); a plain load/store in release —
  // this is the hot path of every op backward closure.
  double& At(int r, int c) {
#ifndef NDEBUG
    DDUP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
#endif
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
#ifndef NDEBUG
    DDUP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
#endif
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  // Never-checked raw access for kernel code that has already validated its
  // index arithmetic.
  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Relinquishes the backing storage (the matrix becomes 0 x 0). Used by the
  // MatrixPool to recycle buffers without freeing them.
  std::vector<double> TakeBuffer();

  void Fill(double v);
  Matrix Transpose() const;
  // Sum of all entries.
  double Sum() const;
  // Max absolute entry; 0 for empty.
  double MaxAbs() const;
  // True iff same shape and all entries within `tol`.
  bool AllClose(const Matrix& other, double tol = 1e-9) const;

  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

// C = A * B (shapes NxK, KxM -> NxM). Implemented on the register-tiled
// kernel in kernels.h.
Matrix MatMulValue(const Matrix& a, const Matrix& b);

}  // namespace ddup::nn

#endif  // DDUP_NN_MATRIX_H_
