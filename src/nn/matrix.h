#ifndef DDUP_NN_MATRIX_H_
#define DDUP_NN_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ddup::nn {

// Dense row-major double matrix. This is the only numeric container the NN
// stack uses; vectors are 1xN or Nx1 matrices. Sized for the small models in
// this repo (hidden widths <= a few hundred), so the implementation favors
// clarity over SIMD tuning.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0);

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix Constant(int rows, int cols, double v) {
    return Matrix(rows, cols, v);
  }
  static Matrix Identity(int n);
  // Column vector (n x 1) from values.
  static Matrix FromVector(const std::vector<double>& values);
  // Entries i.i.d. Normal(0, stddev).
  static Matrix Randn(Rng& rng, int rows, int cols, double stddev = 1.0);
  // Entries i.i.d. Uniform[lo, hi).
  static Matrix Rand(Rng& rng, int rows, int cols, double lo = 0.0,
                     double hi = 1.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  double& At(int r, int c);
  double At(int r, int c) const;
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v);
  Matrix Transpose() const;
  // Sum of all entries.
  double Sum() const;
  // Max absolute entry; 0 for empty.
  double MaxAbs() const;
  // True iff same shape and all entries within `tol`.
  bool AllClose(const Matrix& other, double tol = 1e-9) const;

  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

// C = A * B (shapes NxK, KxM -> NxM).
Matrix MatMulValue(const Matrix& a, const Matrix& b);

}  // namespace ddup::nn

#endif  // DDUP_NN_MATRIX_H_
