#include "nn/ops.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/status.h"
#include "nn/kernels.h"
#include "nn/pool.h"

namespace ddup::nn {

namespace {

bool AnyRequiresGrad(const std::vector<std::shared_ptr<Node>>& parents) {
  for (const auto& p : parents) {
    if (p->requires_grad) return true;
  }
  return false;
}

// Builds a node for `value` with the given parents. `make_backward` is only
// invoked when some parent participates in differentiation.
template <typename BackwardFactory>
Variable MakeNode(Matrix value, std::vector<std::shared_ptr<Node>> parents,
                  BackwardFactory&& make_backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (AnyRequiresGrad(parents)) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward = make_backward();
  }
  return Variable::Wrap(std::move(node));
}

// Broadcast helper shared by Add/Sub/Mul: b must match a, be a 1xC row, or a
// 1x1 scalar.
enum class BroadcastKind { kSame, kRow, kScalar };

BroadcastKind CheckBroadcast(const Matrix& a, const Matrix& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) return BroadcastKind::kSame;
  if (b.rows() == 1 && b.cols() == a.cols()) return BroadcastKind::kRow;
  if (b.rows() == 1 && b.cols() == 1) return BroadcastKind::kScalar;
  DDUP_CHECK_MSG(false, "incompatible broadcast shapes " + a.ShapeString() +
                            " vs " + b.ShapeString());
  return BroadcastKind::kSame;
}

double BroadcastGet(const Matrix& b, BroadcastKind kind, int r, int c) {
  switch (kind) {
    case BroadcastKind::kSame:
      return b.At(r, c);
    case BroadcastKind::kRow:
      return b.At(0, c);
    case BroadcastKind::kScalar:
      return b.At(0, 0);
  }
  return 0.0;
}

void BroadcastAccumulate(Matrix* grad_b, BroadcastKind kind, int r, int c,
                         double g) {
  switch (kind) {
    case BroadcastKind::kSame:
      grad_b->At(r, c) += g;
      break;
    case BroadcastKind::kRow:
      grad_b->At(0, c) += g;
      break;
    case BroadcastKind::kScalar:
      grad_b->At(0, 0) += g;
      break;
  }
}

// Elementwise unary op: value[i] = f(a[i]); da[i] += grad[i] * dfda(a[i], out[i]).
template <typename F, typename DF>
Variable UnaryOp(const Variable& a, F f, DF dfda) {
  const Matrix& av = a.value();
  Matrix out = MatrixPool::Local().Acquire(av.rows(), av.cols());
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = f(av.data()[i]);
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa, dfda]() {
    return [pa, dfda](Node& n) {
      pa->EnsureGrad();
      const Matrix& av = pa->value;
      for (int64_t i = 0; i < av.size(); ++i) {
        pa->grad.data()[i] +=
            n.grad.data()[i] * dfda(av.data()[i], n.value.data()[i]);
      }
    };
  });
}

}  // namespace

namespace {

// Shared backward of MatMul / Affine / AffineRelu. `dout` is the gradient
// w.r.t. the pre-bias product x*w (already relu-masked by the caller when
// applicable); accumulates into whichever of x / w / bias require gradients.
// The transposes go through pooled scratch buffers so the backward pass, like
// the forward, performs no heap allocation in steady state.
void MatMulBackward(const std::shared_ptr<Node>& px,
                    const std::shared_ptr<Node>& pw,
                    const std::shared_ptr<Node>& pbias, const Matrix& dout) {
  MatrixPool& pool = MatrixPool::Local();
  if (px->requires_grad) {
    px->EnsureGrad();
    // dX += dOut * W^T
    Matrix wt = pool.Acquire(pw->value.cols(), pw->value.rows());
    TransposeInto(pw->value, &wt);
    GemmInto(dout, wt, /*accumulate=*/true, &px->grad);
    pool.Release(std::move(wt));
  }
  if (pw->requires_grad) {
    pw->EnsureGrad();
    // dW += X^T * dOut
    Matrix xt = pool.Acquire(px->value.cols(), px->value.rows());
    TransposeInto(px->value, &xt);
    GemmInto(xt, dout, /*accumulate=*/true, &pw->grad);
    pool.Release(std::move(xt));
  }
  if (pbias != nullptr && pbias->requires_grad) {
    pbias->EnsureGrad();
    // dB += column sums of dOut (the row broadcast's adjoint).
    ColSumInto(dout, /*accumulate=*/true, &pbias->grad);
  }
}

Variable AffineImpl(const Variable& x, const Variable& w, const Variable& b,
                    bool relu) {
  const Matrix& bv = b.value();
  DDUP_CHECK_MSG(bv.rows() == 1 && bv.cols() == w.value().cols(),
                 "affine bias must be 1 x out_features");
  Matrix out = MatrixPool::Local().Acquire(x.rows(), w.cols());
  AffineInto(x.value(), w.value(), bv, relu, &out);
  auto px = x.node(), pw = w.node(), pb = b.node();
  return MakeNode(std::move(out), {px, pw, pb}, [px, pw, pb, relu]() {
    return [px, pw, pb, relu](Node& n) {
      if (!relu) {
        MatMulBackward(px, pw, pb, n.grad);
        return;
      }
      // Mask the incoming gradient by the post-relu activation sign.
      MatrixPool& pool = MatrixPool::Local();
      Matrix masked = pool.Acquire(n.grad.rows(), n.grad.cols());
      const double* g = n.grad.data();
      const double* y = n.value.data();
      double* o = masked.data();
      for (int64_t i = 0; i < n.grad.size(); ++i) {
        o[i] = y[i] > 0.0 ? g[i] : 0.0;
      }
      MatMulBackward(px, pw, pb, masked);
      pool.Release(std::move(masked));
    };
  });
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Matrix out = MatrixPool::Local().Acquire(a.rows(), b.cols());
  GemmInto(a.value(), b.value(), /*accumulate=*/false, &out);
  auto pa = a.node(), pb = b.node();
  return MakeNode(std::move(out), {pa, pb}, [pa, pb]() {
    return [pa, pb](Node& n) {
      MatMulBackward(pa, pb, /*pbias=*/nullptr, n.grad);
    };
  });
}

Variable Affine(const Variable& x, const Variable& w, const Variable& b) {
  return AffineImpl(x, w, b, /*relu=*/false);
}

Variable AffineRelu(const Variable& x, const Variable& w, const Variable& b) {
  return AffineImpl(x, w, b, /*relu=*/true);
}

namespace {

Variable BinaryBroadcastOp(const Variable& a, const Variable& b, bool is_mul,
                           double b_sign) {
  // is_mul=false implements a + b_sign * b; is_mul=true implements a .* b.
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  BroadcastKind kind = CheckBroadcast(av, bv);
  Matrix out = MatrixPool::Local().Acquire(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) {
      double x = av.At(r, c);
      double y = BroadcastGet(bv, kind, r, c);
      out.At(r, c) = is_mul ? x * y : x + b_sign * y;
    }
  }
  auto pa = a.node(), pb = b.node();
  return MakeNode(std::move(out), {pa, pb}, [pa, pb, kind, is_mul, b_sign]() {
    return [pa, pb, kind, is_mul, b_sign](Node& n) {
      const Matrix& av = pa->value;
      const Matrix& bv = pb->value;
      if (pa->requires_grad) pa->EnsureGrad();
      if (pb->requires_grad) pb->EnsureGrad();
      for (int r = 0; r < av.rows(); ++r) {
        for (int c = 0; c < av.cols(); ++c) {
          double g = n.grad.At(r, c);
          if (pa->requires_grad) {
            pa->grad.At(r, c) += is_mul ? g * BroadcastGet(bv, kind, r, c) : g;
          }
          if (pb->requires_grad) {
            double gb = is_mul ? g * av.At(r, c) : g * b_sign;
            BroadcastAccumulate(&pb->grad, kind, r, c, gb);
          }
        }
      }
    };
  });
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return BinaryBroadcastOp(a, b, /*is_mul=*/false, /*b_sign=*/1.0);
}

Variable Sub(const Variable& a, const Variable& b) {
  return BinaryBroadcastOp(a, b, /*is_mul=*/false, /*b_sign=*/-1.0);
}

Variable Mul(const Variable& a, const Variable& b) {
  return BinaryBroadcastOp(a, b, /*is_mul=*/true, /*b_sign=*/1.0);
}

Variable Neg(const Variable& a) { return Scale(a, -1.0); }

Variable Scale(const Variable& a, double s) {
  return UnaryOp(
      a, [s](double x) { return s * x; },
      [s](double, double) { return s; });
}

Variable AddScalar(const Variable& a, double s) {
  return UnaryOp(
      a, [s](double x) { return x + s; }, [](double, double) { return 1.0; });
}

Variable Relu(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Variable Tanh(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Variable Sigmoid(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Variable Exp(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Variable Log(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return std::log(x); },
      [](double x, double) { return 1.0 / x; });
}

Variable Softplus(const Variable& a) {
  return UnaryOp(
      a,
      [](double x) {
        // Stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
        return std::max(x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](double x, double) { return 1.0 / (1.0 + std::exp(-x)); });
}

Variable Square(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Variable Reciprocal(const Variable& a) {
  return UnaryOp(
      a, [](double x) { return 1.0 / x; },
      [](double, double y) { return -y * y; });
}

namespace {

// Row-wise log-sum-exp, computed stably: lse[r] = max + log sum exp(a - max).
// Shared by LogSoftmax/LogSumExp (Softmax computes the probabilities too).
void RowLse(const Matrix& a, std::vector<double>* lse) {
  lse->resize(static_cast<size_t>(a.rows()));
  for (int r = 0; r < a.rows(); ++r) {
    double mx = a.At(r, 0);
    for (int c = 1; c < a.cols(); ++c) mx = std::max(mx, a.At(r, c));
    double sum = 0.0;
    for (int c = 0; c < a.cols(); ++c) sum += std::exp(a.At(r, c) - mx);
    (*lse)[static_cast<size_t>(r)] = mx + std::log(sum);
  }
}

// Row-wise softmax probabilities of `a` into `probs`, expressed on the same
// stable core as RowLse: probs[r][c] = exp(a[r][c] - lse[r]).
void RowSoftmax(const Matrix& a, Matrix* probs) {
  std::vector<double> lse;
  RowLse(a, &lse);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      probs->At(r, c) = std::exp(a.At(r, c) - lse[static_cast<size_t>(r)]);
    }
  }
}

}  // namespace

Variable Softmax(const Variable& a) {
  const Matrix& av = a.value();
  DDUP_CHECK(av.cols() >= 1);
  Matrix probs = MatrixPool::Local().Acquire(av.rows(), av.cols());
  RowSoftmax(av, &probs);
  auto pa = a.node();
  return MakeNode(std::move(probs), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      const Matrix& y = n.value;
      for (int r = 0; r < y.rows(); ++r) {
        double dot = 0.0;
        for (int c = 0; c < y.cols(); ++c) dot += n.grad.At(r, c) * y.At(r, c);
        for (int c = 0; c < y.cols(); ++c) {
          pa->grad.At(r, c) += y.At(r, c) * (n.grad.At(r, c) - dot);
        }
      }
    };
  });
}

Variable LogSoftmax(const Variable& a) {
  const Matrix& av = a.value();
  DDUP_CHECK(av.cols() >= 1);
  std::vector<double> lse;
  RowLse(av, &lse);
  Matrix out = MatrixPool::Local().Acquire(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) {
      out.At(r, c) = av.At(r, c) - lse[static_cast<size_t>(r)];
    }
  }
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      for (int r = 0; r < n.value.rows(); ++r) {
        double gsum = 0.0;
        for (int c = 0; c < n.value.cols(); ++c) gsum += n.grad.At(r, c);
        for (int c = 0; c < n.value.cols(); ++c) {
          double y = std::exp(n.value.At(r, c));  // softmax prob
          pa->grad.At(r, c) += n.grad.At(r, c) - y * gsum;
        }
      }
    };
  });
}

Variable LogSumExp(const Variable& a) {
  const Matrix& av = a.value();
  DDUP_CHECK(av.cols() >= 1);
  std::vector<double> lse;
  RowLse(av, &lse);
  Matrix out = MatrixPool::Local().Acquire(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) out.At(r, 0) = lse[static_cast<size_t>(r)];
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      // d(lse)/d(a) is the softmax probability exp(a - lse); recompute it
      // from the input and this node's value instead of caching a buffer
      // across the forward/backward gap (which would pin pool memory).
      const Matrix& av = pa->value;
      for (int r = 0; r < av.rows(); ++r) {
        double g = n.grad.At(r, 0);
        double row_lse = n.value.At(r, 0);
        for (int c = 0; c < av.cols(); ++c) {
          pa->grad.At(r, c) += g * std::exp(av.At(r, c) - row_lse);
        }
      }
    };
  });
}

Variable Sum(const Variable& a) {
  Matrix out(1, 1, a.value().Sum());
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      double g = n.grad.At(0, 0);
      for (int64_t i = 0; i < pa->grad.size(); ++i) pa->grad.data()[i] += g;
    };
  });
}

Variable Mean(const Variable& a) {
  DDUP_CHECK(a.value().size() > 0);
  double inv = 1.0 / static_cast<double>(a.value().size());
  Matrix out(1, 1, a.value().Sum() * inv);
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa, inv]() {
    return [pa, inv](Node& n) {
      pa->EnsureGrad();
      double g = n.grad.At(0, 0) * inv;
      for (int64_t i = 0; i < pa->grad.size(); ++i) pa->grad.data()[i] += g;
    };
  });
}

Variable RowSum(const Variable& a) {
  const Matrix& av = a.value();
  Matrix out = MatrixPool::Local().AcquireZeroed(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out.At(r, 0) += av.At(r, c);
  }
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      for (int r = 0; r < pa->grad.rows(); ++r) {
        double g = n.grad.At(r, 0);
        for (int c = 0; c < pa->grad.cols(); ++c) pa->grad.At(r, c) += g;
      }
    };
  });
}

Variable BroadcastCol(const Variable& a, int m) {
  const Matrix& av = a.value();
  DDUP_CHECK_MSG(av.cols() == 1, "BroadcastCol expects an Nx1 input");
  Matrix out = MatrixPool::Local().Acquire(av.rows(), m);
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < m; ++c) out.At(r, c) = av.At(r, 0);
  }
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa]() {
    return [pa](Node& n) {
      pa->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        double g = 0.0;
        for (int c = 0; c < n.grad.cols(); ++c) g += n.grad.At(r, c);
        pa->grad.At(r, 0) += g;
      }
    };
  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  DDUP_CHECK(!parts.empty());
  int rows = parts[0].rows();
  int total = 0;
  for (const auto& p : parts) {
    DDUP_CHECK(p.rows() == rows);
    total += p.cols();
  }
  Matrix out = MatrixPool::Local().Acquire(rows, total);
  std::vector<int> offsets;
  int off = 0;
  for (const auto& p : parts) {
    offsets.push_back(off);
    const Matrix& pv = p.value();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < pv.cols(); ++c) out.At(r, off + c) = pv.At(r, c);
    }
    off += pv.cols();
  }
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& p : parts) parents.push_back(p.node());
  return MakeNode(std::move(out), parents, [parents, offsets]() {
    return [parents, offsets](Node& n) {
      for (size_t i = 0; i < parents.size(); ++i) {
        auto& p = parents[i];
        if (!p->requires_grad) continue;
        p->EnsureGrad();
        int off = offsets[i];
        for (int r = 0; r < p->grad.rows(); ++r) {
          for (int c = 0; c < p->grad.cols(); ++c) {
            p->grad.At(r, c) += n.grad.At(r, off + c);
          }
        }
      }
    };
  });
}

Variable SliceCols(const Variable& a, int begin, int len) {
  const Matrix& av = a.value();
  DDUP_CHECK(begin >= 0 && len >= 0 && begin + len <= av.cols());
  Matrix out = MatrixPool::Local().Acquire(av.rows(), len);
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < len; ++c) out.At(r, c) = av.At(r, begin + c);
  }
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa, begin]() {
    return [pa, begin](Node& n) {
      pa->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        for (int c = 0; c < n.grad.cols(); ++c) {
          pa->grad.At(r, begin + c) += n.grad.At(r, c);
        }
      }
    };
  });
}

Variable Rows(const Variable& table, const std::vector<int>& idx) {
  const Matrix& tv = table.value();
  Matrix out = MatrixPool::Local().Acquire(static_cast<int>(idx.size()), tv.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    DDUP_CHECK(idx[i] >= 0 && idx[i] < tv.rows());
    for (int c = 0; c < tv.cols(); ++c) {
      out.At(static_cast<int>(i), c) = tv.At(idx[i], c);
    }
  }
  auto pt = table.node();
  return MakeNode(std::move(out), {pt}, [pt, idx]() {
    return [pt, idx](Node& n) {
      pt->EnsureGrad();
      for (size_t i = 0; i < idx.size(); ++i) {
        for (int c = 0; c < n.grad.cols(); ++c) {
          pt->grad.At(idx[i], c) += n.grad.At(static_cast<int>(i), c);
        }
      }
    };
  });
}

Variable PickCols(const Variable& a, const std::vector<int>& idx) {
  const Matrix& av = a.value();
  DDUP_CHECK(static_cast<int>(idx.size()) == av.rows());
  Matrix out = MatrixPool::Local().Acquire(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    DDUP_CHECK(idx[static_cast<size_t>(r)] >= 0 &&
               idx[static_cast<size_t>(r)] < av.cols());
    out.At(r, 0) = av.At(r, idx[static_cast<size_t>(r)]);
  }
  auto pa = a.node();
  return MakeNode(std::move(out), {pa}, [pa, idx]() {
    return [pa, idx](Node& n) {
      pa->EnsureGrad();
      for (int r = 0; r < n.grad.rows(); ++r) {
        pa->grad.At(r, idx[static_cast<size_t>(r)]) += n.grad.At(r, 0);
      }
    };
  });
}

Variable Detach(const Variable& a) { return Constant(a.value()); }

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& targets) {
  Variable logp = LogSoftmax(logits);
  Variable picked = PickCols(logp, targets);
  return Neg(Mean(picked));
}

Variable MseLoss(const Variable& a, const Variable& b) {
  DDUP_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  return Mean(Square(Sub(a, b)));
}

Variable DistillCrossEntropy(const Variable& student_logits,
                             const Variable& teacher_logits,
                             double temperature) {
  DDUP_CHECK(temperature > 0.0);
  DDUP_CHECK(student_logits.rows() == teacher_logits.rows() &&
             student_logits.cols() == teacher_logits.cols());
  Variable t_probs = Softmax(Scale(Detach(teacher_logits), 1.0 / temperature));
  Variable s_logp = LogSoftmax(Scale(student_logits, 1.0 / temperature));
  Variable per_row = Neg(RowSum(Mul(s_logp, Detach(t_probs))));
  return Mean(per_row);
}

}  // namespace ddup::nn
