#ifndef DDUP_NN_OPS_H_
#define DDUP_NN_OPS_H_

#include <vector>

#include "nn/autograd.h"

namespace ddup::nn {

// Differentiable operations. All functions build graph nodes; gradients flow
// to any input with requires_grad (directly or transitively). When no input
// requires a gradient the node is created without a backward closure, so
// inference-only paths pay no autodiff cost.

// C = A * B  (NxK * KxM -> NxM).
Variable MatMul(const Variable& a, const Variable& b);

// Fused y = x * w + b with b a 1xM row broadcast over rows. One kernel call
// in the forward pass (kernels.h) instead of a MatMul node plus an Add node;
// the backward accumulates dX, dW and db directly with the same kernels.
Variable Affine(const Variable& x, const Variable& w, const Variable& b);
// Fused relu(x * w + b): the hidden-layer step of the MDN/DARN/TVAE nets.
Variable AffineRelu(const Variable& x, const Variable& w, const Variable& b);

// Elementwise a + b. `b` may be 1xC (broadcast over rows) or 1x1 (scalar).
Variable Add(const Variable& a, const Variable& b);
// Elementwise a - b (same broadcast rules as Add).
Variable Sub(const Variable& a, const Variable& b);
// Elementwise a * b (same broadcast rules as Add).
Variable Mul(const Variable& a, const Variable& b);

Variable Neg(const Variable& a);
Variable Scale(const Variable& a, double s);
Variable AddScalar(const Variable& a, double s);

Variable Relu(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Exp(const Variable& a);
// Natural log; inputs must be positive.
Variable Log(const Variable& a);
// log(1 + exp(a)), computed stably.
Variable Softplus(const Variable& a);
Variable Square(const Variable& a);
// 1 / a; inputs must be nonzero.
Variable Reciprocal(const Variable& a);

// Row-wise softmax / log-softmax over columns.
Variable Softmax(const Variable& a);
Variable LogSoftmax(const Variable& a);
// Row-wise log-sum-exp: NxC -> Nx1.
Variable LogSumExp(const Variable& a);

// Reductions.
Variable Sum(const Variable& a);   // -> 1x1
Variable Mean(const Variable& a);  // -> 1x1
Variable RowSum(const Variable& a);  // NxC -> Nx1

// Replicates an Nx1 column across `m` columns -> NxM.
Variable BroadcastCol(const Variable& a, int m);

// Column-wise concatenation; all inputs share the row count.
Variable ConcatCols(const std::vector<Variable>& parts);
// Columns [begin, begin+len) of a.
Variable SliceCols(const Variable& a, int begin, int len);

// Embedding gather: rows of `table` (VxD) selected by `idx` -> NxD.
// Gradients scatter-add into the selected rows.
Variable Rows(const Variable& table, const std::vector<int>& idx);

// One entry per row: out[r,0] = a[r, idx[r]] -> Nx1.
Variable PickCols(const Variable& a, const std::vector<int>& idx);

// Identity value with the gradient path cut (teacher outputs, constants).
Variable Detach(const Variable& a);

// Convenience losses built from the ops above.
// Mean over rows of -log softmax(logits)[target]: standard CE with integer
// targets.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int>& targets);
// Mean squared error between equally-shaped a and b (mean over all entries).
Variable MseLoss(const Variable& a, const Variable& b);
// Hinton-style distillation CE with temperature: mean over rows of
// -sum_j softmax(teacher/T)_j * log_softmax(student/T)_j. The teacher side is
// detached. (Paper Eq. 6.)
Variable DistillCrossEntropy(const Variable& student_logits,
                             const Variable& teacher_logits, double temperature);

}  // namespace ddup::nn

#endif  // DDUP_NN_OPS_H_
