#include "nn/optim.h"

#include <cmath>

#include "common/status.h"

namespace ddup::nn {

Optimizer::Optimizer(std::vector<Variable> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    DDUP_CHECK_MSG(p.defined() && p.requires_grad(),
                   "optimizer parameters must require gradients");
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Variable> params, double lr, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (p.grad().empty()) continue;  // never touched by a Backward pass
    Matrix& value = p.mutable_value();
    Matrix& vel = velocity_[i];
    const Matrix& g = p.grad();
    for (int64_t j = 0; j < value.size(); ++j) {
      vel.data()[j] = momentum_ * vel.data()[j] - lr_ * g.data()[j];
      value.data()[j] += vel.data()[j];
    }
  }
}

Adam::Adam(std::vector<Variable> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Matrix::Zeros(p.rows(), p.cols()));
    v_.push_back(Matrix::Zeros(p.rows(), p.cols()));
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (p.grad().empty()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int64_t j = 0; j < value.size(); ++j) {
      double gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * gj * gj;
      double mhat = m.data()[j] / bc1;
      double vhat = v.data()[j] / bc2;
      value.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace ddup::nn
