#ifndef DDUP_NN_OPTIM_H_
#define DDUP_NN_OPTIM_H_

#include <cstdint>
#include <vector>

#include "nn/autograd.h"

namespace ddup::nn {

// Base class for gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;
  // Clears all parameter gradients.
  void ZeroGrad();

  // Learning-rate accessors: DDUp's fine-tune policy rescales lr on the fly.
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  std::vector<Variable> params_;
  double lr_ = 1e-3;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, double lr, double momentum = 0.0);
  void Step() override;

 private:
  double momentum_;
  std::vector<Matrix> velocity_;
};

// Adam (Kingma & Ba). Default hyperparameters match the usual
// beta1=0.9, beta2=0.999, eps=1e-8.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace ddup::nn

#endif  // DDUP_NN_OPTIM_H_
