#include "nn/pool.h"

#include <algorithm>
#include <mutex>

#include "common/status.h"

namespace ddup::nn {

namespace {

// Registry of live pools for cross-thread counter aggregation. Deliberately
// leaked: worker threads of the (static) global ThreadPool unregister their
// thread-local pools during static destruction, which must not race with the
// registry's own teardown.
struct PoolRegistry {
  std::mutex mu;
  std::vector<const MatrixPool*> live;
  MatrixPool::Counters retired;  // counters of pools whose threads exited
};

PoolRegistry& Registry() {
  static PoolRegistry* registry = new PoolRegistry();
  return *registry;
}

void Accumulate(MatrixPool::Counters* into, const MatrixPool::Counters& c) {
  into->acquires += c.acquires;
  into->reuses += c.reuses;
  into->heap_allocs += c.heap_allocs;
  into->releases += c.releases;
}

}  // namespace

MatrixPool::MatrixPool() {
  PoolRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.push_back(this);
}

MatrixPool::~MatrixPool() {
  PoolRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), this),
                 reg.live.end());
  Accumulate(&reg.retired, counters());
}

MatrixPool& MatrixPool::Local() {
  thread_local MatrixPool pool;
  return pool;
}

Matrix MatrixPool::Acquire(int rows, int cols) {
  DDUP_CHECK(rows >= 0 && cols >= 0);
  const int64_t n = static_cast<int64_t>(rows) * cols;
  if (n == 0) return Matrix(rows, cols);
  acquires_.fetch_add(1, std::memory_order_relaxed);
  auto it = free_.find(n);
  if (it != free_.end() && !it->second.empty()) {
    std::vector<double> buf = std::move(it->second.back());
    it->second.pop_back();
    --cached_buffers_;
    cached_doubles_ -= n;
    reuses_.fetch_add(1, std::memory_order_relaxed);
    return Matrix::FromBuffer(std::move(buf), rows, cols);
  }
  heap_allocs_.fetch_add(1, std::memory_order_relaxed);
  return Matrix(rows, cols);
}

Matrix MatrixPool::AcquireZeroed(int rows, int cols) {
  Matrix m = Acquire(rows, cols);
  m.Fill(0.0);
  return m;
}

void MatrixPool::Release(Matrix&& m) {
  const int64_t n = m.size();
  if (n == 0) return;
  releases_.fetch_add(1, std::memory_order_relaxed);
  // Always consume the matrix, whether the buffer is cached or dropped —
  // callers (and ~Node) rely on a released matrix being empty, and a buffer
  // must never be counted as released twice.
  std::vector<double> buf = std::move(m).TakeBuffer();
  if (cached_doubles_ + n > kMaxCachedDoubles) return;  // freed with `buf`
  auto& bucket = free_[n];
  if (bucket.size() >= kMaxBuffersPerSize) return;  // freed with `buf`
  bucket.push_back(std::move(buf));
  ++cached_buffers_;
  cached_doubles_ += n;
}

void MatrixPool::Clear() {
  free_.clear();
  cached_buffers_ = 0;
  cached_doubles_ = 0;
}

MatrixPool::Counters MatrixPool::counters() const {
  Counters c;
  c.acquires = acquires_.load(std::memory_order_relaxed);
  c.reuses = reuses_.load(std::memory_order_relaxed);
  c.heap_allocs = heap_allocs_.load(std::memory_order_relaxed);
  c.releases = releases_.load(std::memory_order_relaxed);
  return c;
}

void MatrixPool::ResetCounters() {
  acquires_.store(0, std::memory_order_relaxed);
  reuses_.store(0, std::memory_order_relaxed);
  heap_allocs_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
}

MatrixPool::Counters MatrixPool::AggregateCounters() {
  PoolRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Counters total = reg.retired;
  for (const MatrixPool* p : reg.live) Accumulate(&total, p->counters());
  return total;
}

void MatrixPool::ResetAggregateCounters() {
  PoolRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired = Counters();
  for (const MatrixPool* p : reg.live) {
    const_cast<MatrixPool*>(p)->ResetCounters();
  }
}

}  // namespace ddup::nn
