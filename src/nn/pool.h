#ifndef DDUP_NN_POOL_H_
#define DDUP_NN_POOL_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/matrix.h"

namespace ddup::nn {

// Thread-local free list of Matrix backing buffers, keyed by element count.
// Training loops build and tear down the same graph shapes every step, so
// after warm-up virtually every op output and gradient buffer is a reuse
// instead of a heap allocation. Node teardown (autograd.cc) returns both the
// value and gradient buffers here; Backward returns interior gradients as
// soon as their node has propagated.
//
// Thread safety: Local() hands each thread its own pool, so the free list
// needs no locking. Buffers released on a different thread than they were
// acquired on simply migrate pools. Counters are relaxed atomics so
// AggregateCounters() can sum them race-free from any thread while owners
// keep incrementing.
class MatrixPool {
 public:
  // Snapshot of the counters (plain values, safe to copy and diff).
  struct Counters {
    uint64_t acquires = 0;     // Acquire/AcquireZeroed calls
    uint64_t reuses = 0;       // served from the free list
    uint64_t heap_allocs = 0;  // fell through to operator new
    uint64_t releases = 0;     // buffers returned (cached or dropped)
  };

  MatrixPool();
  ~MatrixPool();
  MatrixPool(const MatrixPool&) = delete;
  MatrixPool& operator=(const MatrixPool&) = delete;

  // The calling thread's pool.
  static MatrixPool& Local();

  // A rows x cols matrix with unspecified contents. Callers must write every
  // entry (or use AcquireZeroed) — reused buffers carry old values.
  Matrix Acquire(int rows, int cols);
  // A rows x cols matrix with every entry 0.
  Matrix AcquireZeroed(int rows, int cols);
  // Consumes the matrix (it becomes 0 x 0): the buffer is cached for reuse,
  // or freed immediately when the caps below are hit.
  void Release(Matrix&& m);

  Counters counters() const;
  void ResetCounters();
  // Drops all cached buffers (memory pressure valve; tests).
  void Clear();
  // Number of cached buffers.
  size_t cached_buffers() const { return cached_buffers_; }

  // Sum of counters across all pools ever created in the process.
  static Counters AggregateCounters();
  // Resets the counters of every live pool and the retired tally.
  static void ResetAggregateCounters();

 private:
  // Caps bound each pool's cache memory (a shape-diverse workload can
  // otherwise pin arbitrarily many large buffers). Both are per thread-local
  // pool, so the process-wide worst case scales with the thread count.
  static constexpr size_t kMaxBuffersPerSize = 64;
  static constexpr int64_t kMaxCachedDoubles = int64_t{1} << 24;  // 128 MiB

  std::unordered_map<int64_t, std::vector<std::vector<double>>> free_;
  size_t cached_buffers_ = 0;
  int64_t cached_doubles_ = 0;
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> reuses_{0};
  std::atomic<uint64_t> heap_allocs_{0};
  std::atomic<uint64_t> releases_{0};
};

}  // namespace ddup::nn

#endif  // DDUP_NN_POOL_H_
