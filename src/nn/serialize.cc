#include "nn/serialize.h"

#include "io/checkpoint.h"
#include "io/serializer.h"

namespace ddup::nn {

// Since PR 3 this rides on the versioned io/ checkpoint container (magic +
// format version + per-section CRC), section kind "nn_params". The public
// contract is unchanged: values only, shapes must match on load.

Status SaveParameters(const std::vector<Variable>& params,
                      const std::string& path) {
  io::Serializer state;
  io::WriteParameters(&state, params);
  return io::WriteSectionFile(path, "nn_params", state.Take());
}

Status LoadParameters(const std::string& path, std::vector<Variable>* params) {
  StatusOr<std::string> payload = io::ReadSectionFile(path, "nn_params");
  if (!payload.ok()) return payload.status();
  io::Deserializer in(std::move(payload).value());
  std::vector<Variable> loaded;
  DDUP_RETURN_IF_ERROR(io::ReadParameters(&in, params->size(), &loaded));
  DDUP_RETURN_IF_ERROR(in.Finish());
  for (size_t i = 0; i < params->size(); ++i) {
    const Matrix& m = loaded[i].value();
    Variable& p = (*params)[i];
    if (m.rows() != p.rows() || m.cols() != p.cols()) {
      return Status::InvalidArgument("checkpoint shape mismatch in " + path);
    }
  }
  // All shapes verified; install the values into the existing Variables so
  // optimizer references and graph aliases keep pointing at the same nodes.
  for (size_t i = 0; i < params->size(); ++i) {
    (*params)[i].mutable_value() = std::move(loaded[i].mutable_value());
  }
  return Status::OK();
}

}  // namespace ddup::nn
