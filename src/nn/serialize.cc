#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace ddup::nn {

namespace {
constexpr uint64_t kMagic = 0x646475705F6E6E31ULL;  // "ddup_nn1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveParameters(const std::vector<Variable>& params,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  uint64_t count = params.size();
  if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::IoError("short write: " + path);
  }
  for (const auto& p : params) {
    int64_t rows = p.rows(), cols = p.cols();
    if (std::fwrite(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fwrite(&cols, sizeof(cols), 1, f.get()) != 1) {
      return Status::IoError("short write: " + path);
    }
    size_t n = static_cast<size_t>(p.value().size());
    if (n > 0 &&
        std::fwrite(p.value().data(), sizeof(double), n, f.get()) != n) {
      return Status::IoError("short write: " + path);
    }
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path, std::vector<Variable>* params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  uint64_t magic = 0, count = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
      count != params->size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch in " +
                                   path);
  }
  for (auto& p : *params) {
    int64_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f.get()) != 1) {
      return Status::IoError("short read: " + path);
    }
    if (rows != p.rows() || cols != p.cols()) {
      return Status::InvalidArgument("checkpoint shape mismatch in " + path);
    }
    size_t n = static_cast<size_t>(p.value().size());
    if (n > 0 &&
        std::fread(p.mutable_value().data(), sizeof(double), n, f.get()) != n) {
      return Status::IoError("short read: " + path);
    }
  }
  return Status::OK();
}

}  // namespace ddup::nn
