#ifndef DDUP_NN_SERIALIZE_H_
#define DDUP_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/autograd.h"

namespace ddup::nn {

// Parameter-values-only checkpoint on the versioned io/ container (see
// DESIGN.md §9): per-parameter (rows, cols, row-major doubles). Optimizer
// state is not saved. For whole-model checkpoints (weights + encoders +
// metadata + RNG) use the model-level SaveToFile/LoadFromFile instead.
Status SaveParameters(const std::vector<Variable>& params,
                      const std::string& path);

// Loads a checkpoint produced by SaveParameters into `params`. Shapes must
// match the checkpoint exactly.
Status LoadParameters(const std::string& path, std::vector<Variable>* params);

}  // namespace ddup::nn

#endif  // DDUP_NN_SERIALIZE_H_
