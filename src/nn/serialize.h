#ifndef DDUP_NN_SERIALIZE_H_
#define DDUP_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/autograd.h"

namespace ddup::nn {

// Binary parameter checkpoint format: magic, count, then per-parameter
// (rows, cols, row-major doubles). Values only; optimizer state is not saved.
Status SaveParameters(const std::vector<Variable>& params,
                      const std::string& path);

// Loads a checkpoint produced by SaveParameters into `params`. Shapes must
// match the checkpoint exactly.
Status LoadParameters(const std::string& path, std::vector<Variable>* params);

}  // namespace ddup::nn

#endif  // DDUP_NN_SERIALIZE_H_
