#include "serving/admission.h"

#include <algorithm>

namespace ddup::serving {

namespace {

constexpr const char kShedTag[] = "[admission:shed]";

class BlockAdmission : public AdmissionPolicy {
 public:
  std::string name() const override { return "block"; }
  AdmissionAction Admit(const AdmissionContext& ctx) const override {
    (void)ctx;
    return AdmissionAction::kWait;
  }
};

class ShedAdmission : public AdmissionPolicy {
 public:
  std::string name() const override { return "shed"; }
  AdmissionAction Admit(const AdmissionContext& ctx) const override {
    (void)ctx;
    return AdmissionAction::kShed;
  }
};

class CoalesceAdmission : public AdmissionPolicy {
 public:
  std::string name() const override { return "coalesce"; }
  AdmissionAction Admit(const AdmissionContext& ctx) const override {
    (void)ctx;
    return AdmissionAction::kCoalesce;
  }
  int64_t GroupSize(int64_t available) const override { return available; }
};

}  // namespace

const AdmissionPolicy* FindAdmissionPolicy(const std::string& name) {
  static const BlockAdmission* block = new BlockAdmission();
  static const ShedAdmission* shed = new ShedAdmission();
  static const CoalesceAdmission* coalesce = new CoalesceAdmission();
  if (name == block->name()) return block;
  if (name == shed->name()) return shed;
  if (name == coalesce->name()) return coalesce;
  return nullptr;
}

std::vector<std::string> RegisteredAdmissionPolicies() {
  return {"block", "coalesce", "shed"};
}

Status MakeShedError(const std::string& table, int64_t backlog, int64_t bound) {
  return Status::ResourceExhausted(
      std::string(kShedTag) + " table '" + table +
      "' ingest backlog is saturated (" + std::to_string(backlog) + "/" +
      std::to_string(bound) +
      " micro-batches queued); retry after the update workers drain");
}

bool IsAdmissionShed(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().find(kShedTag) != std::string::npos;
}

}  // namespace ddup::serving
