#ifndef DDUP_SERVING_ADMISSION_H_
#define DDUP_SERVING_ADMISSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ddup::serving {

// ---------------------------------------------------------------------------
// Engine-side admission control (DESIGN.md §15). With
// EngineConfig::max_backlog_batches > 0 the api::Engine bounds each table's
// queued micro-batch updates and consults an AdmissionPolicy whenever an
// Ingest finds the backlog at the bound. The policy decides what happens to
// the overload — the engine supplies the mechanism (the bound, the wait
// queue, the coalescing group tasks), the policy the decision. This
// replaces the PR 5 caller-side pattern of polling
// TableReport::backlog_batches and backing off by hand; that field is now
// advisory.
//
// Registered policies:
//
//   "block" (default): the ingesting caller waits until a worker drains the
//     backlog below the bound, then enqueues. No data is dropped and no
//     error surfaces; overload turns into caller latency (the classic
//     bounded-queue producer stall). Ordering is unchanged.
//
//   "shed": a call arriving at a saturated backlog is refused outright with
//     a typed `[admission:shed]` ResourceExhausted Status before any of its
//     rows are buffered — the caller retries later (HTTP-429 semantics).
//     Admission is per call: a call admitted below the bound may enqueue
//     several micro-batches (the bound is a high-watermark, not a hard cap);
//     once it is reached mid-call the remaining full batches stay in the
//     accumulator for a later admitted call to enqueue.
//
//   "coalesce": rows are always admitted into the accumulator; when the
//     backlog is at the bound nothing new is enqueued, and once a slot
//     frees the next Ingest/Flush merges ALL buffered full micro-batches
//     into one strand task. The task still runs the DDUp loop once per
//     micro-batch — models stay byte-identical to unbatched ingest — but
//     queue entries, per-task overhead and snapshot publishes amortize
//     across the group (one publish per group). Overload adaptively grows
//     the group size instead of growing the queue.
// ---------------------------------------------------------------------------

// What the engine does with work that found the backlog at the bound.
enum class AdmissionAction {
  kAdmit,     // enqueue anyway (policy overrides the bound)
  kWait,      // block the caller until the backlog drains below the bound
  kShed,      // refuse the call with a typed [admission:shed] Status
  kCoalesce,  // keep the rows buffered; merge into one group task later
};

// One admission decision's inputs. `backlog_batches >= bound` always holds
// when Admit is called — the engine only consults the policy on overload.
struct AdmissionContext {
  std::string table;
  int64_t backlog_batches = 0;  // micro-batches queued or running
  int64_t bound = 0;            // EngineConfig::max_backlog_batches
  int64_t buffered_batches = 0;  // full micro-batches waiting to enqueue
};

// Stateless process-lifetime singletons, like the exec engines and the join
// combiners. A policy sees every overload decision and the group-size
// question; anything load-dependent (shed only above 2x the bound, coalesce
// with a group cap...) slots in as a new policy without engine changes.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  virtual std::string name() const = 0;

  // Decision for an overloaded table. Called with the engine's table mutex
  // held — must not block or call back into the engine.
  virtual AdmissionAction Admit(const AdmissionContext& ctx) const = 0;

  // Micro-batches to merge into one strand task when `available` full
  // batches are buffered and the backlog has room. 1 = one task per
  // micro-batch (the PR 5 behavior, kept by block/shed); coalesce returns
  // `available`. Clamped to [1, available] by the engine.
  virtual int64_t GroupSize(int64_t available) const {
    (void)available;
    return 1;
  }
};

// nullptr for an unknown name.
const AdmissionPolicy* FindAdmissionPolicy(const std::string& name);
// Sorted names of every registered policy.
std::vector<std::string> RegisteredAdmissionPolicies();
inline constexpr const char* kDefaultAdmissionPolicy = "block";

// The typed shed refusal: StatusCode::kResourceExhausted with the stable
// machine-readable "[admission:shed]" message prefix, so callers can branch
// on the cause without string-matching prose (same pattern as the router's
// "[plan:<tag>]" errors).
Status MakeShedError(const std::string& table, int64_t backlog, int64_t bound);
// True exactly for Statuses minted by MakeShedError (possibly re-wrapped
// with a prefix by a batch layer).
bool IsAdmissionShed(const Status& status);

}  // namespace ddup::serving

#endif  // DDUP_SERVING_ADMISSION_H_
