#include "serving/cluster.h"

#include <algorithm>
#include <utility>

#include "api/router.h"
#include "io/checkpoint.h"
#include "io/serializer.h"

namespace ddup::serving {

namespace {

constexpr uint32_t kClusterManifestVersion = 1;
constexpr const char* kClusterSection = "cluster";

std::string ShardPath(const std::string& path, int shard) {
  return path + ".shard" + std::to_string(shard);
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      map_(config_.shards, config_.virtual_nodes) {
  shards_.reserve(static_cast<size_t>(map_.num_shards()));
  for (int i = 0; i < map_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<api::Engine>(config_.engine));
  }
}

Status Cluster::CreateTable(const std::string& name,
                            const storage::Table& base_data,
                            const api::TableOptions& options) {
  return Owner(name)->CreateTable(name, base_data, options);
}

Status Cluster::AttachModel(const std::string& name,
                            const api::ModelSpec& spec) {
  return Owner(name)->AttachModel(name, spec);
}

StatusOr<api::IngestResult> Cluster::Ingest(const std::string& name,
                                            const storage::Table& batch) {
  return Owner(name)->Ingest(name, batch);
}

StatusOr<api::IngestResult> Cluster::Flush(const std::string& name) {
  return Owner(name)->Flush(name);
}

StatusOr<api::FlushReport> Cluster::FlushAll() {
  api::FlushReport sweep;
  for (const auto& shard : shards_) {
    StatusOr<api::FlushReport> report = shard->FlushAll();
    if (!report.ok()) return report.status();
    sweep.tables_flushed += report.value().tables_flushed;
    sweep.tables_skipped += report.value().tables_skipped;
    sweep.rows_flushed += report.value().rows_flushed;
    sweep.updates_triggered += report.value().updates_triggered;
  }
  return sweep;
}

StatusOr<api::EstimateResponse> Cluster::Estimate(
    const api::EstimateRequest& request) const {
  const bool join = !request.joins.empty();
  if (!join) {
    // Single-table shape: the owning shard serves it whole (including the
    // empty-table-name error path — Owner("") still picks a shard, whose
    // registry lookup reports it exactly like a plain engine would).
    return Owner(request.table)->Estimate(request);
  }
  if (!request.table.empty()) {
    return Status::InvalidArgument(
        "EstimateRequest sets both the single-table shape (table '" +
        request.table + "') and join queries; populate exactly one");
  }
  if (request.kind == api::EstimateRequest::Kind::kAqp) {
    return Status::InvalidArgument(
        "join requests serve cardinality only; AQP over joins is not "
        "supported yet (DESIGN.md §14)");
  }
  // Cross-shard join: the router fans each planned per-table subquery
  // batch out to the shard that owns the table. Shard 0 stands in for the
  // shared engine-level config (every shard was built from one
  // EngineConfig).
  api::QueryRouter router(
      shards_.front().get(),
      [this](const std::string& table) -> const api::Engine* {
        return Owner(table);
      });
  StatusOr<std::vector<double>> answers =
      router.EstimateCardinalityBatch(request.joins, request.combiner);
  if (!answers.ok()) return answers.status();
  api::EstimateResponse response;
  response.answers = std::move(answers).value();
  return response;
}

StatusOr<api::TableReport> Cluster::Report(const std::string& name) const {
  return Owner(name)->Report(name);
}

std::vector<std::string> Cluster::TableNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::vector<std::string> shard_names = shard->TableNames();
    names.insert(names.end(), shard_names.begin(), shard_names.end());
  }
  // Shards are disjoint by construction (placement is a function), so this
  // is a merge, not a dedup.
  std::sort(names.begin(), names.end());
  return names;
}

bool Cluster::HasTable(const std::string& name) const {
  return Owner(name)->HasTable(name);
}

void Cluster::Quiesce() {
  for (const auto& shard : shards_) shard->Quiesce();
}

void Cluster::PauseUpdates() {
  for (const auto& shard : shards_) shard->PauseUpdates();
}

void Cluster::ResumeUpdates() {
  for (const auto& shard : shards_) shard->ResumeUpdates();
}

Status Cluster::Save(const std::string& path) const {
  // Quiesce EVERY shard before writing ANY shard file: Engine::Save only
  // quiesces its own strands, so without this barrier shard 0's file could
  // hit disk while shard 1 still trains — a crash between the two would
  // leave a manifest-less torn set, and more subtly the checkpoint would
  // not represent any single "all updates ingested up to here" cut.
  for (const auto& shard : shards_) shard->Quiesce();
  for (size_t i = 0; i < shards_.size(); ++i) {
    DDUP_RETURN_IF_ERROR(
        shards_[i]->Save(ShardPath(path, static_cast<int>(i))));
  }
  // The cluster manifest is written LAST (itself via tmp+rename inside the
  // checkpoint writer): if it exists, every shard file it names exists.
  io::Serializer manifest;
  manifest.WriteU32(kClusterManifestVersion);
  manifest.WriteU32(static_cast<uint32_t>(shards_.size()));
  manifest.WriteU32(static_cast<uint32_t>(map_.virtual_nodes()));
  io::CheckpointWriter writer;
  writer.AddSection(kClusterSection, manifest.Take());
  return writer.WriteToFile(path);
}

StatusOr<std::unique_ptr<Cluster>> Cluster::Load(const std::string& path,
                                                 ClusterConfig config) {
  StatusOr<io::CheckpointReader> reader = io::CheckpointReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  StatusOr<std::string> payload = reader.value().Section(kClusterSection);
  if (!payload.ok()) return payload.status();
  io::Deserializer manifest(std::move(payload).value());
  const uint32_t version = manifest.ReadU32();
  if (manifest.ok() && version != kClusterManifestVersion) {
    return Status::InvalidArgument("unsupported cluster manifest version " +
                                   std::to_string(version));
  }
  const uint32_t shards = manifest.ReadU32();
  const uint32_t virtual_nodes = manifest.ReadU32();
  DDUP_RETURN_IF_ERROR(manifest.Finish());
  if (shards == 0 || virtual_nodes == 0) {
    return Status::InvalidArgument(
        "cluster manifest names zero shards or ring points");
  }
  // Placement parameters are the manifest's; engine knobs are the caller's.
  config.shards = static_cast<int>(shards);
  config.virtual_nodes = static_cast<int>(virtual_nodes);
  auto cluster = std::unique_ptr<Cluster>(new Cluster(std::move(config)));
  for (int i = 0; i < cluster->num_shards(); ++i) {
    StatusOr<std::unique_ptr<api::Engine>> engine =
        api::Engine::Load(ShardPath(path, i), cluster->config_.engine);
    if (!engine.ok()) return engine.status();
    cluster->shards_[static_cast<size_t>(i)] = std::move(engine).value();
  }
  return cluster;
}

}  // namespace ddup::serving
