#ifndef DDUP_SERVING_CLUSTER_H_
#define DDUP_SERVING_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/status.h"
#include "serving/shard_map.h"

namespace ddup::serving {

// Cluster-level knobs. Every shard is an ordinary api::Engine built from
// the SAME EngineConfig — update workers, micro-batch default, estimate
// engine, and the engine-side admission bound/policy (DESIGN.md §15) all
// apply per shard.
struct ClusterConfig {
  // Number of engine shards (>= 1; clamped). shards=1 with
  // engine.update_workers=0 and the default admission policy is
  // byte-identical to a plain api::Engine — pinned in
  // tests/serving_test.cc.
  int shards = 1;
  // Consistent-hash ring points per shard (see serving/shard_map.h).
  // Persisted in the cluster manifest; must match across Save/Load.
  int virtual_nodes = ShardMap::kDefaultVirtualNodes;
  // The per-shard engine configuration.
  api::EngineConfig engine;
};

// ---------------------------------------------------------------------------
// serving::Cluster — the sharded serving layer (DESIGN.md §15).
//
// A Cluster consistent-hashes tables across `shards` independent
// api::Engine instances and re-exposes the full engine surface. Placement
// is by table name only (ShardMap): deterministic, platform-stable, and
// monotone under growth, so a table's owner never depends on registration
// order and a grown cluster only moves tables onto the new shard.
//
// What sharding buys: each shard has its own registry stripes, its own
// TaskExecutor worker pool and its own admission state, so tables on
// different shards contend on nothing — ingest backpressure on one shard's
// tables (bounded backlog + admission policy) never stalls another shard's
// producers, and estimate traffic scales across shard-local lock-free read
// paths.
//
// Estimates: single-table requests route to the owning shard untouched.
// Join requests may span shards — the cluster runs the QueryRouter in
// cross-shard mode (api/router.h): the plan's per-table subquery batches
// fan out to each table's owning shard, and the combiner merges the
// per-shard answers. Answers are bit-identical to the same tables living
// on one engine: routing changes where a subquery runs, never what it
// computes (pinned in tests/serving_test.cc).
//
// Checkpoints: Save quiesces EVERY shard first (Engine::Quiesce — all
// queued updates run to completion) before any shard file is written, then
// saves each shard to "<path>.shard<k>" and writes the cluster manifest
// (shard count + ring parameters) to "<path>" last, so a manifest that
// exists always describes a complete, un-torn set of shard files. Load
// reverses it; placement parameters come from the manifest, so every table
// loads into the shard that owns it.
//
// Thread-safety matches api::Engine: Ingest/Estimate/Flush/Report are safe
// against each other and against running updates; the setup calls
// (CreateTable, AttachModel, Load) are not — run them before clients.
// ---------------------------------------------------------------------------
class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  // The shard index that owns `table` (pure placement; the table need not
  // exist).
  int ShardOf(const std::string& table) const { return map_.ShardOf(table); }
  // Direct shard access for tests/benches/diagnostics. The cluster keeps
  // ownership.
  api::Engine* shard(int index) {
    return shards_[static_cast<size_t>(index)].get();
  }
  const api::Engine* shard(int index) const {
    return shards_[static_cast<size_t>(index)].get();
  }

  // The engine surface, routed to the owning shard.
  Status CreateTable(const std::string& name, const storage::Table& base_data,
                     const api::TableOptions& options = {});
  Status AttachModel(const std::string& name, const api::ModelSpec& spec);
  StatusOr<api::IngestResult> Ingest(const std::string& name,
                                     const storage::Table& batch);
  StatusOr<api::IngestResult> Flush(const std::string& name);
  // Sweeps every shard; reports aggregate across shards. Stops at the
  // first shard error (lower-index shards' flushes still completed).
  StatusOr<api::FlushReport> FlushAll();
  // Single-table requests go to the owning shard; join requests fan their
  // per-table subqueries out across shards (see the class comment).
  StatusOr<api::EstimateResponse> Estimate(
      const api::EstimateRequest& request) const;
  StatusOr<api::TableReport> Report(const std::string& name) const;
  std::vector<std::string> TableNames() const;  // sorted, across shards
  bool HasTable(const std::string& name) const;

  // Barrier over every shard's update workers (Engine::Quiesce per shard).
  void Quiesce();
  // Pause/resume every shard's workers (deterministic tests, maintenance).
  void PauseUpdates();
  void ResumeUpdates();

  // Cluster checkpoint: quiesce all shards, save each to
  // "<path>.shard<k>", then write the cluster manifest to "<path>" last.
  Status Save(const std::string& path) const;
  // Restores a Save'd cluster. Shard count and ring parameters come from
  // the manifest — they define placement, so resharding a checkpoint is
  // not supported and config.shards/config.virtual_nodes are ignored here.
  // `config.engine` supplies the non-persisted per-shard knobs, exactly
  // like Engine::Load.
  static StatusOr<std::unique_ptr<Cluster>> Load(const std::string& path,
                                                 ClusterConfig config = {});

 private:
  api::Engine* Owner(const std::string& table) {
    return shards_[static_cast<size_t>(map_.ShardOf(table))].get();
  }
  const api::Engine* Owner(const std::string& table) const {
    return shards_[static_cast<size_t>(map_.ShardOf(table))].get();
  }

  ClusterConfig config_;
  ShardMap map_;
  std::vector<std::unique_ptr<api::Engine>> shards_;
};

}  // namespace ddup::serving

#endif  // DDUP_SERVING_CLUSTER_H_
