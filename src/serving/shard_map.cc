#include "serving/shard_map.h"

#include <algorithm>

namespace ddup::serving {

uint64_t ShardHash(const std::string& key) {
  // FNV-1a, 64-bit offset basis / prime...
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  // ...then the murmur3 fmix64 finalizer. Raw FNV-1a mixes its LOW bits
  // well but leaves the high bits weak for short, similar strings — and
  // ring placement is ordered by the high bits, so without this the
  // virtual-node points cluster badly (measured: a 4-shard/64-point ring
  // left two shards owning zero of 400 tables). The finalizer's avalanche
  // restores the near-uniform arc lengths consistent hashing assumes.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardMap::ShardMap(int num_shards, int virtual_nodes)
    : num_shards_(std::max(1, num_shards)),
      virtual_nodes_(std::max(1, virtual_nodes)) {
  ring_.reserve(static_cast<size_t>(num_shards_) *
                static_cast<size_t>(virtual_nodes_));
  for (int shard = 0; shard < num_shards_; ++shard) {
    for (int v = 0; v < virtual_nodes_; ++v) {
      // Each shard's points depend only on its own index, which is what
      // makes growth monotone: shard k's points are identical in an N-shard
      // and an (N+1)-shard ring.
      const std::string point_key =
          "shard-" + std::to_string(shard) + "#" + std::to_string(v);
      ring_.emplace_back(ShardHash(point_key), shard);
    }
  }
  // Sort by point; break the (astronomically unlikely) point collision by
  // shard index so the ring order is fully deterministic.
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::ShardOf(const std::string& table) const {
  const uint64_t h = ShardHash(table);
  // First point at or after h, wrapping to the ring start.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<uint64_t, int>& p, uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace ddup::serving
