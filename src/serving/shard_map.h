#ifndef DDUP_SERVING_SHARD_MAP_H_
#define DDUP_SERVING_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ddup::serving {

// FNV-1a 64-bit followed by the murmur3 fmix64 finalizer (raw FNV's high
// bits — the ones ring placement sorts by — mix poorly for short similar
// strings). The shard placement function must be platform-stable — a
// cluster checkpoint written on one host has to route every table to the
// same shard file when loaded on another — so std::hash (implementation-
// defined, may differ across standard libraries and even process runs) is
// ruled out.
uint64_t ShardHash(const std::string& key);

// Consistent-hash placement of table names onto shard indices
// (DESIGN.md §15): each shard owns `virtual_nodes` pseudo-random points on
// a 64-bit ring, and a table belongs to the shard owning the first point at
// or after the table's own hash (wrapping). Properties the cluster relies
// on, pinned in tests/serving_test.cc:
//
//   - Deterministic and platform-stable: placement depends only on
//     (num_shards, virtual_nodes, name), never on registration order,
//     pointer values or the standard library.
//   - Monotone under growth: going from N to N+1 shards only moves tables
//     onto the new shard N — the ring points of shards 0..N-1 do not move,
//     so a table changes owner only when one of shard N's new points lands
//     between the table and its old successor. No table ever moves between
//     two pre-existing shards (the classic consistent-hashing guarantee;
//     mod-N hashing would reshuffle nearly everything).
//   - Balanced in expectation: virtual nodes smooth the per-shard arc
//     length; 64 points per shard keeps the imbalance within a few percent
//     for realistic table counts.
class ShardMap {
 public:
  // num_shards >= 1 (clamped). virtual_nodes >= 1 (clamped); every shard
  // contributes the same count, and the value must match across save/load
  // for placement to be stable (the cluster manifest persists it).
  explicit ShardMap(int num_shards, int virtual_nodes = kDefaultVirtualNodes);

  int num_shards() const { return num_shards_; }
  int virtual_nodes() const { return virtual_nodes_; }

  // Shard index in [0, num_shards) owning `table`.
  int ShardOf(const std::string& table) const;

  static constexpr int kDefaultVirtualNodes = 64;

 private:
  int num_shards_ = 1;
  int virtual_nodes_ = kDefaultVirtualNodes;
  // The ring: (point, shard), sorted by point.
  std::vector<std::pair<uint64_t, int>> ring_;
};

}  // namespace ddup::serving

#endif  // DDUP_SERVING_SHARD_MAP_H_
