#include "storage/column.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/status.h"

namespace ddup::storage {

Column Column::Numeric(std::string name, std::vector<double> values) {
  Column c;
  c.name_ = std::move(name);
  c.type_ = ColumnType::kNumeric;
  c.numeric_ = std::move(values);
  return c;
}

Column Column::Categorical(std::string name, std::vector<int32_t> codes,
                           std::vector<std::string> dictionary) {
  Column c;
  c.name_ = std::move(name);
  c.type_ = ColumnType::kCategorical;
  c.codes_ = std::move(codes);
  c.dictionary_ = std::move(dictionary);
  for (int32_t code : c.codes_) {
    DDUP_CHECK_MSG(code >= 0 && code < c.cardinality(),
                   "categorical code out of dictionary range");
  }
  return c;
}

int64_t Column::size() const {
  return is_numeric() ? static_cast<int64_t>(numeric_.size())
                      : static_cast<int64_t>(codes_.size());
}

double Column::NumericAt(int64_t row) const {
  DDUP_CHECK(is_numeric());
  DDUP_CHECK(row >= 0 && row < size());
  return numeric_[static_cast<size_t>(row)];
}

const std::vector<double>& Column::numeric_values() const {
  DDUP_CHECK(is_numeric());
  return numeric_;
}

std::vector<double>* Column::mutable_numeric_values() {
  DDUP_CHECK(is_numeric());
  return &numeric_;
}

int32_t Column::CodeAt(int64_t row) const {
  DDUP_CHECK(!is_numeric());
  DDUP_CHECK(row >= 0 && row < size());
  return codes_[static_cast<size_t>(row)];
}

const std::vector<int32_t>& Column::codes() const {
  DDUP_CHECK(!is_numeric());
  return codes_;
}

std::vector<int32_t>* Column::mutable_codes() {
  DDUP_CHECK(!is_numeric());
  return &codes_;
}

const std::vector<std::string>& Column::dictionary() const {
  DDUP_CHECK(!is_numeric());
  return dictionary_;
}

double Column::AsDouble(int64_t row) const {
  if (is_numeric()) return NumericAt(row);
  return static_cast<double>(CodeAt(row));
}

void Column::SetFromDouble(int64_t row, double v) {
  DDUP_CHECK(row >= 0 && row < size());
  if (is_numeric()) {
    numeric_[static_cast<size_t>(row)] = v;
  } else {
    auto code = static_cast<int32_t>(std::llround(v));
    DDUP_CHECK(code >= 0 && code < cardinality());
    codes_[static_cast<size_t>(row)] = code;
  }
}

int64_t Column::CountDistinct() const {
  if (is_numeric()) {
    std::unordered_set<double> seen(numeric_.begin(), numeric_.end());
    return static_cast<int64_t>(seen.size());
  }
  std::unordered_set<int32_t> seen(codes_.begin(), codes_.end());
  return static_cast<int64_t>(seen.size());
}

double Column::MinAsDouble() const {
  DDUP_CHECK(size() > 0);
  double m = AsDouble(0);
  for (int64_t i = 1; i < size(); ++i) m = std::min(m, AsDouble(i));
  return m;
}

double Column::MaxAsDouble() const {
  DDUP_CHECK(size() > 0);
  double m = AsDouble(0);
  for (int64_t i = 1; i < size(); ++i) m = std::max(m, AsDouble(i));
  return m;
}

bool Column::SchemaEquals(const Column& other) const {
  return name_ == other.name_ && type_ == other.type_ &&
         dictionary_ == other.dictionary_;
}

Column Column::TakeRows(const std::vector<int64_t>& rows) const {
  Column out;
  out.name_ = name_;
  out.type_ = type_;
  out.dictionary_ = dictionary_;
  if (is_numeric()) {
    out.numeric_.reserve(rows.size());
    for (int64_t r : rows) {
      DDUP_CHECK(r >= 0 && r < size());
      out.numeric_.push_back(numeric_[static_cast<size_t>(r)]);
    }
  } else {
    out.codes_.reserve(rows.size());
    for (int64_t r : rows) {
      DDUP_CHECK(r >= 0 && r < size());
      out.codes_.push_back(codes_[static_cast<size_t>(r)]);
    }
  }
  return out;
}

void Column::Append(const Column& other) {
  DDUP_CHECK_MSG(SchemaEquals(other), "appending schema-incompatible column");
  if (is_numeric()) {
    numeric_.insert(numeric_.end(), other.numeric_.begin(),
                    other.numeric_.end());
  } else {
    codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
  }
}

}  // namespace ddup::storage
