#ifndef DDUP_STORAGE_COLUMN_H_
#define DDUP_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ddup::storage {

enum class ColumnType {
  kNumeric,      // double values
  kCategorical,  // int32 dictionary codes + string dictionary
};

// A single named column. Numeric columns store doubles; categorical columns
// store dictionary codes with an attached dictionary (code -> label). The
// dictionary is part of the column's schema: two columns are
// schema-compatible iff name, type and dictionary agree.
class Column {
 public:
  Column() = default;

  static Column Numeric(std::string name, std::vector<double> values);
  static Column Categorical(std::string name, std::vector<int32_t> codes,
                            std::vector<std::string> dictionary);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }

  int64_t size() const;

  // Numeric accessors (CHECK on type).
  double NumericAt(int64_t row) const;
  const std::vector<double>& numeric_values() const;
  std::vector<double>* mutable_numeric_values();

  // Categorical accessors (CHECK on type).
  int32_t CodeAt(int64_t row) const;
  const std::vector<int32_t>& codes() const;
  std::vector<int32_t>* mutable_codes();
  const std::vector<std::string>& dictionary() const;
  int cardinality() const { return static_cast<int>(dictionary_.size()); }

  // Value as double regardless of type (codes cast for categoricals); this
  // is how the query executor and the permute transform see columns.
  double AsDouble(int64_t row) const;
  void SetFromDouble(int64_t row, double v);

  // Distinct value count (numeric: exact distinct doubles).
  int64_t CountDistinct() const;

  // Min/max over AsDouble view; CHECKs non-empty.
  double MinAsDouble() const;
  double MaxAsDouble() const;

  // Schema compatibility: same name/type/dictionary.
  bool SchemaEquals(const Column& other) const;

  // Returns a column with the same schema and the selected rows.
  Column TakeRows(const std::vector<int64_t>& rows) const;
  // Appends rows of `other` (schema-compatible) to this column.
  void Append(const Column& other);

 private:
  std::string name_;
  ColumnType type_ = ColumnType::kNumeric;
  std::vector<double> numeric_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
};

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_COLUMN_H_
