#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace ddup::storage {

namespace {
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}
}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (int c = 0; c < table.num_columns(); ++c) {
    out << (c > 0 ? "," : "") << table.column(c).name();
  }
  out << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      const Column& col = table.column(c);
      if (col.is_numeric()) {
        out << col.NumericAt(r);
      } else {
        out << col.dictionary()[static_cast<size_t>(col.CodeAt(r))];
      }
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: " + path);
  }
  std::vector<std::string> header = SplitCsvLine(line);
  if (header.empty()) return Status::InvalidArgument("no header: " + path);

  std::vector<std::vector<std::string>> cells(header.size());
  int64_t row_count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> row = SplitCsvLine(line);
    if (row.size() != header.size()) {
      return Status::InvalidArgument("ragged row " +
                                     std::to_string(row_count + 1) + " in " +
                                     path);
    }
    for (size_t c = 0; c < row.size(); ++c) cells[c].push_back(row[c]);
    ++row_count;
  }

  Table table(path);
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_numeric = true;
    std::vector<double> nums;
    nums.reserve(cells[c].size());
    for (const auto& s : cells[c]) {
      double v = 0.0;
      if (!ParseDouble(s, &v)) {
        all_numeric = false;
        break;
      }
      nums.push_back(v);
    }
    if (all_numeric && !cells[c].empty()) {
      table.AddColumn(Column::Numeric(header[c], std::move(nums)));
    } else {
      std::vector<int32_t> codes;
      std::vector<std::string> dict;
      std::unordered_map<std::string, int32_t> lookup;
      codes.reserve(cells[c].size());
      for (const auto& s : cells[c]) {
        auto [it, inserted] =
            lookup.emplace(s, static_cast<int32_t>(dict.size()));
        if (inserted) dict.push_back(s);
        codes.push_back(it->second);
      }
      table.AddColumn(
          Column::Categorical(header[c], std::move(codes), std::move(dict)));
    }
  }
  return table;
}

}  // namespace ddup::storage
