#ifndef DDUP_STORAGE_CSV_H_
#define DDUP_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace ddup::storage {

// Writes the table as a header-ed CSV (categoricals emit their labels).
Status WriteCsv(const Table& table, const std::string& path);

// Reads a header-ed CSV. A column becomes numeric if every non-empty cell
// parses as a double, otherwise categorical with labels dictionary-encoded
// in first-appearance order. Empty files and ragged rows are errors.
StatusOr<Table> ReadCsv(const std::string& path);

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_CSV_H_
