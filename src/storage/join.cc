#include "storage/join.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ddup::storage {

namespace {
// Join keys are compared via their int64 view: numeric keys are expected to
// hold integral values (row ids); categorical keys join on codes.
int64_t KeyAt(const Column& col, int64_t row) {
  if (col.is_numeric()) return static_cast<int64_t>(col.NumericAt(row));
  return col.CodeAt(row);
}
}  // namespace

Table HashJoin(const Table& left, const std::string& left_key,
               const Table& right, const std::string& right_key) {
  int lk = left.ColumnIndex(left_key);
  int rk = right.ColumnIndex(right_key);
  DDUP_CHECK_MSG(lk >= 0, "left key not found: " + left_key);
  DDUP_CHECK_MSG(rk >= 0, "right key not found: " + right_key);
  const Column& lcol = left.column(lk);
  const Column& rcol = right.column(rk);

  // Build phase over the smaller logical side (dimension tables here), which
  // is conventionally `right`.
  std::unordered_multimap<int64_t, int64_t> index;
  index.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    index.emplace(KeyAt(rcol, r), r);
  }

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    auto [lo, hi] = index.equal_range(KeyAt(lcol, l));
    for (auto it = lo; it != hi; ++it) {
      left_rows.push_back(l);
      right_rows.push_back(it->second);
    }
  }

  Table out(left.name() + "_join_" + right.name());
  Table left_part = left.TakeRows(left_rows);
  for (int i = 0; i < left_part.num_columns(); ++i) {
    out.AddColumn(left_part.column(i));
  }
  Table right_part = right.TakeRows(right_rows);
  for (int i = 0; i < right_part.num_columns(); ++i) {
    if (i == rk) continue;  // drop duplicated key
    Column c = right_part.column(i);
    if (out.ColumnIndex(c.name()) >= 0) {
      // Disambiguate collisions with the right table's name.
      std::string renamed = right.name() + "." + c.name();
      if (c.is_numeric()) {
        c = Column::Numeric(renamed, c.numeric_values());
      } else {
        c = Column::Categorical(renamed, c.codes(), c.dictionary());
      }
    }
    out.AddColumn(std::move(c));
  }
  return out;
}

}  // namespace ddup::storage
