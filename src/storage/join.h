#ifndef DDUP_STORAGE_JOIN_H_
#define DDUP_STORAGE_JOIN_H_

#include <string>

#include "storage/table.h"

namespace ddup::storage {

// Inner hash equi-join of `left` and `right` on the named key columns (which
// may be numeric or categorical; categorical keys join on dictionary codes
// and require identical dictionaries). Output contains all left columns
// followed by all right columns except the right key; name collisions on
// non-key columns are disambiguated with a "<right-table-name>." prefix.
Table HashJoin(const Table& left, const std::string& left_key,
               const Table& right, const std::string& right_key);

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_JOIN_H_
