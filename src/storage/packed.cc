#include "storage/packed.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/status.h"
#include "io/codec.h"

namespace ddup::storage {

namespace {

// Per-column packing mode, the first byte of each encoded column payload.
enum PackMode : uint8_t {
  kPackDeltaInt = 0,  // numeric, every double survives an int64 round trip
  kPackShuffle = 1,   // numeric, byte-plane shuffle + LZ over raw bits
  kPackCodes = 2,     // categorical codes
};

Table SliceTable(const Table& t, int64_t begin, int64_t end) {
  std::vector<int64_t> rows(static_cast<size_t>(end - begin));
  std::iota(rows.begin(), rows.end(), begin);
  return t.TakeRows(rows);
}

// True iff every value's bit pattern survives double -> int64 -> double.
// Checked per value: rejects out-of-range magnitudes, fractions, NaN and
// -0.0, so delta mode can never change a single bit.
bool IntegralBits(const std::vector<double>& values) {
  for (double d : values) {
    if (!(d >= -9223372036854775808.0 && d < 9223372036854775808.0)) {
      return false;
    }
    const double back = static_cast<double>(static_cast<int64_t>(d));
    uint64_t bits = 0, back_bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    std::memcpy(&back_bits, &back, sizeof(back_bits));
    if (bits != back_bits) return false;
  }
  return true;
}

// Deltas in unsigned arithmetic (wraps instead of overflowing), then
// zigzag + varint.
void PutDelta(int64_t value, uint64_t* prev, std::string* out) {
  const uint64_t delta = static_cast<uint64_t>(value) - *prev;
  io::PutVarint64(io::ZigZagEncode(static_cast<int64_t>(delta)), out);
  *prev = static_cast<uint64_t>(value);
}

int64_t GetDelta(std::string_view in, size_t* pos, uint64_t* prev) {
  uint64_t encoded = 0;
  DDUP_CHECK(io::GetVarint64(in, pos, &encoded));
  *prev += static_cast<uint64_t>(io::ZigZagDecode(encoded));
  return static_cast<int64_t>(*prev);
}

}  // namespace

void MicroBatchBuffer::Reset(const Table& schema, int64_t seal_rows,
                             bool pack) {
  proto_ = schema.TakeRows({});
  seal_rows_ = seal_rows;
  pack_ = pack && seal_rows > 0;
  num_rows_ = 0;
  segments_.clear();
}

bool MicroBatchBuffer::HasOpenTail() const {
  return !segments_.empty() && !segments_.back().packed;
}

void MicroBatchBuffer::Append(const Table& batch) {
  if (batch.num_rows() == 0) return;
  if (!HasOpenTail()) {
    Segment tail;
    tail.plain = proto_;
    segments_.push_back(std::move(tail));
  }
  Segment& tail = segments_.back();
  tail.plain.Append(batch);
  tail.rows = tail.plain.num_rows();
  num_rows_ += batch.num_rows();
  if (pack_) SealFullChunks();
}

void MicroBatchBuffer::SealFullChunks() {
  if (segments_.back().rows < seal_rows_) return;
  Table rest = std::move(segments_.back().plain);
  segments_.pop_back();
  const int64_t total = rest.num_rows();
  int64_t offset = 0;
  while (total - offset >= seal_rows_) {
    segments_.push_back(
        PackChunk(SliceTable(rest, offset, offset + seal_rows_)));
    offset += seal_rows_;
  }
  if (offset < total) {
    Segment tail;
    tail.rows = total - offset;
    tail.plain = SliceTable(rest, offset, total);
    segments_.push_back(std::move(tail));
  }
}

MicroBatchBuffer::Segment MicroBatchBuffer::PackChunk(
    const Table& chunk) const {
  Segment segment;
  segment.packed = true;
  segment.rows = chunk.num_rows();
  segment.columns.reserve(static_cast<size_t>(chunk.num_columns()));
  for (int i = 0; i < chunk.num_columns(); ++i) {
    const Column& column = chunk.column(i);
    std::string encoded;
    if (column.is_numeric()) {
      const std::vector<double>& values = column.numeric_values();
      if (IntegralBits(values)) {
        encoded.push_back(static_cast<char>(kPackDeltaInt));
        uint64_t prev = 0;
        for (double d : values) {
          PutDelta(static_cast<int64_t>(d), &prev, &encoded);
        }
      } else {
        encoded.push_back(static_cast<char>(kPackShuffle));
        std::string raw(values.size() * sizeof(double), '\0');
        if (!values.empty()) {
          std::memcpy(raw.data(), values.data(), raw.size());
        }
        std::string compressed;
        io::FindCodec(io::kCodecShuffle)->Compress(raw, &compressed);
        encoded.append(compressed);
      }
    } else {
      encoded.push_back(static_cast<char>(kPackCodes));
      uint64_t prev = 0;
      for (int32_t code : column.codes()) {
        PutDelta(code, &prev, &encoded);
      }
    }
    segment.columns.push_back(std::move(encoded));
  }
  return segment;
}

Table MicroBatchBuffer::UnpackSegment(const Segment& segment) const {
  if (!segment.packed) return segment.plain;
  Table out(proto_.name());
  const size_t rows = static_cast<size_t>(segment.rows);
  for (int i = 0; i < proto_.num_columns(); ++i) {
    const Column& proto_column = proto_.column(i);
    const std::string& encoded = segment.columns[static_cast<size_t>(i)];
    DDUP_CHECK(!encoded.empty());
    const uint8_t mode = static_cast<uint8_t>(encoded[0]);
    const std::string_view payload(encoded.data() + 1, encoded.size() - 1);
    if (mode == kPackShuffle) {
      std::string raw;
      const Status status = io::FindCodec(io::kCodecShuffle)
                                ->Decompress(payload, rows * sizeof(double),
                                             &raw);
      DDUP_CHECK_MSG(status.ok(), status.message());
      std::vector<double> values(rows);
      if (rows > 0) std::memcpy(values.data(), raw.data(), raw.size());
      out.AddColumn(Column::Numeric(proto_column.name(), std::move(values)));
      continue;
    }
    size_t pos = 0;
    uint64_t prev = 0;
    if (mode == kPackDeltaInt) {
      std::vector<double> values;
      values.reserve(rows);
      for (size_t r = 0; r < rows; ++r) {
        values.push_back(static_cast<double>(GetDelta(payload, &pos, &prev)));
      }
      DDUP_CHECK(pos == payload.size());
      out.AddColumn(Column::Numeric(proto_column.name(), std::move(values)));
    } else {
      DDUP_CHECK(mode == kPackCodes);
      std::vector<int32_t> codes;
      codes.reserve(rows);
      for (size_t r = 0; r < rows; ++r) {
        codes.push_back(static_cast<int32_t>(GetDelta(payload, &pos, &prev)));
      }
      DDUP_CHECK(pos == payload.size());
      out.AddColumn(Column::Categorical(proto_column.name(), std::move(codes),
                                        proto_column.dictionary()));
    }
  }
  return out;
}

Table MicroBatchBuffer::Slice(int64_t begin, int64_t end) const {
  DDUP_CHECK(begin >= 0 && begin <= end && end <= num_rows_);
  Table out = proto_;
  int64_t pos = 0;
  for (const Segment& segment : segments_) {
    if (pos >= end) break;
    const int64_t seg_begin = pos;
    const int64_t seg_end = pos + segment.rows;
    pos = seg_end;
    if (seg_end <= begin) continue;
    const int64_t lo = std::max(begin, seg_begin) - seg_begin;
    const int64_t hi = std::min(end, seg_end) - seg_begin;
    const Table t = UnpackSegment(segment);
    if (lo == 0 && hi == segment.rows) {
      out.Append(t);
    } else {
      out.Append(SliceTable(t, lo, hi));
    }
  }
  return out;
}

Table MicroBatchBuffer::Materialize() const { return Slice(0, num_rows_); }

void MicroBatchBuffer::DropFront(int64_t n) {
  DDUP_CHECK(n >= 0 && n <= num_rows_);
  while (n > 0) {
    Segment& front = segments_.front();
    if (front.rows <= n) {
      n -= front.rows;
      num_rows_ -= front.rows;
      segments_.pop_front();
      continue;
    }
    // Partial drop: the surviving suffix reopens as a plain front segment
    // (appends still go to the back only).
    Segment reopened;
    reopened.rows = front.rows - n;
    reopened.plain = SliceTable(UnpackSegment(front), n, front.rows);
    num_rows_ -= n;
    n = 0;
    front = std::move(reopened);
  }
}

int64_t MicroBatchBuffer::buffered_bytes() const {
  int64_t bytes = 0;
  for (const Segment& segment : segments_) {
    if (segment.packed) {
      for (const std::string& column : segment.columns) {
        bytes += static_cast<int64_t>(column.size());
      }
    } else {
      for (int i = 0; i < proto_.num_columns(); ++i) {
        bytes += segment.rows * (proto_.column(i).is_numeric() ? 8 : 4);
      }
    }
  }
  return bytes;
}

}  // namespace ddup::storage
