#ifndef DDUP_STORAGE_PACKED_H_
#define DDUP_STORAGE_PACKED_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ddup::storage {

// Columnar, dictionary-packed micro-batch accumulator (DESIGN.md §16).
//
// The engine's per-table accumulator used to be a plain storage::Table — 8
// bytes per numeric value and 4 per categorical code, even though buffered
// rows are write-once and read exactly once (when they leave for the DDUp
// loop). MicroBatchBuffer keeps an open plain-Table tail and seals every
// full `seal_rows` chunk into a packed block: one encoded byte string per
// column, using the checkpoint transform codecs (io/codec.h) —
//   - numeric columns whose doubles all survive an int64 round trip
//     bit-exactly: value delta + zigzag + varint;
//   - other numeric columns: byte-plane shuffle + LZ over the raw IEEE-754
//     bits;
//   - categorical columns: code delta + zigzag + varint (the dictionary
//     lives in the shared schema prototype, never per block).
// Unpacking reproduces the original tables bit-exactly (the integral-mode
// check is per value and rejects -0.0 and NaN, so no double is ever
// round-tripped through an int64 unless its bit pattern survives), which is
// what keeps drain order and model bytes identical to the unpacked
// accumulator — pinned by tests/packed_test.cc.
//
// The drain pattern is strictly front-to-back (Slice a prefix, then
// DropFront it), so blocks decode at most twice and a partial DropFront
// simply reopens the front block as a plain segment. Not thread-safe; the
// engine guards it with the table mutex like the Table it replaces.
class MicroBatchBuffer {
 public:
  MicroBatchBuffer() = default;

  // Installs the schema prototype (column names/types/dictionaries and the
  // table name of `schema`) and the packing threshold, and drops all rows.
  // `pack` false keeps every segment a plain Table — the byte-equality
  // escape hatch (EngineConfig::packed_accumulator).
  void Reset(const Table& schema, int64_t seal_rows, bool pack);

  int64_t num_rows() const { return num_rows_; }

  // Appends `batch` (must be schema-compatible; the engine validates) and
  // seals any newly completed chunks.
  void Append(const Table& batch);

  // Rows [begin, end) as a plain table. CHECKs 0 <= begin <= end <= rows.
  Table Slice(int64_t begin, int64_t end) const;
  // All buffered rows as a plain table (the checkpoint path).
  Table Materialize() const;
  // Drops the first n rows. CHECKs 0 <= n <= rows.
  void DropFront(int64_t n);

  // Bytes currently held: encoded sizes for packed blocks, 8 bytes per
  // numeric and 4 per categorical value for plain segments. The packed-vs-
  // plain footprint metric behind TableReport::buffered_bytes.
  int64_t buffered_bytes() const;

 private:
  // Either a sealed packed block (`packed` true: one encoded payload per
  // column, in schema order) or a plain row run.
  struct Segment {
    bool packed = false;
    int64_t rows = 0;
    std::vector<std::string> columns;
    Table plain;
  };

  // True when the last segment is an open plain tail appends can extend.
  bool HasOpenTail() const;
  void SealFullChunks();
  Segment PackChunk(const Table& chunk) const;
  Table UnpackSegment(const Segment& segment) const;

  Table proto_;  // zero-row schema prototype
  int64_t seal_rows_ = 0;
  bool pack_ = false;
  int64_t num_rows_ = 0;
  std::deque<Segment> segments_;
};

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_PACKED_H_
