#include "storage/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace ddup::storage {

Table SampleRows(const Table& table, Rng& rng, int64_t n) {
  DDUP_CHECK(n >= 0 && n <= table.num_rows());
  return table.TakeRows(rng.SampleWithoutReplacement(table.num_rows(), n));
}

Table BootstrapRows(const Table& table, Rng& rng, int64_t n) {
  DDUP_CHECK(table.num_rows() > 0);
  return table.TakeRows(rng.SampleWithReplacement(table.num_rows(), n));
}

Table ShuffleRows(const Table& table, Rng& rng) {
  std::vector<int64_t> rows(static_cast<size_t>(table.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  rng.Shuffle(&rows);
  return table.TakeRows(rows);
}

std::vector<Table> SplitIntoBatches(const Table& table, int parts) {
  DDUP_CHECK(parts > 0);
  std::vector<Table> out;
  int64_t n = table.num_rows();
  int64_t base = n / parts;
  int64_t rem = n % parts;
  int64_t start = 0;
  for (int p = 0; p < parts; ++p) {
    int64_t len = base + (p < rem ? 1 : 0);
    std::vector<int64_t> rows(static_cast<size_t>(len));
    std::iota(rows.begin(), rows.end(), start);
    out.push_back(table.TakeRows(rows));
    start += len;
  }
  return out;
}

Table SampleFraction(const Table& table, Rng& rng, double fraction) {
  DDUP_CHECK(fraction > 0.0 && fraction <= 1.0);
  auto n = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(table.num_rows())));
  n = std::clamp<int64_t>(n, 1, table.num_rows());
  return SampleRows(table, rng, n);
}

}  // namespace ddup::storage
