#ifndef DDUP_STORAGE_SAMPLING_H_
#define DDUP_STORAGE_SAMPLING_H_

#include "common/rng.h"
#include "storage/table.h"

namespace ddup::storage {

// n rows sampled uniformly without replacement (n <= num_rows).
Table SampleRows(const Table& table, Rng& rng, int64_t n);

// n rows sampled uniformly with replacement (bootstrap draw).
Table BootstrapRows(const Table& table, Rng& rng, int64_t n);

// Random row permutation of the whole table.
Table ShuffleRows(const Table& table, Rng& rng);

// Splits rows into `parts` contiguous chunks of (near-)equal size, in row
// order — used to form time-ordered insertion batches.
std::vector<Table> SplitIntoBatches(const Table& table, int parts);

// fraction in (0,1]: random sample of round(fraction * num_rows) rows
// without replacement.
Table SampleFraction(const Table& table, Rng& rng, double fraction);

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_SAMPLING_H_
