#include "storage/stats.h"

#include <cstring>

#include "common/status.h"

namespace ddup::storage {

namespace {

uint64_t CanonicalBits(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

int TableStats::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return static_cast<int>(i);
  }
  return -1;
}

int64_t TableStats::NdvOf(const std::string& column) const {
  int idx = ColumnIndex(column);
  return idx < 0 ? 0 : ndv[static_cast<size_t>(idx)];
}

TableStatsBuilder::TableStatsBuilder(const Table& schema) {
  columns_.reserve(static_cast<size_t>(schema.num_columns()));
  types_.reserve(static_cast<size_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    columns_.push_back(schema.column(c).name());
    types_.push_back(schema.column(c).type());
  }
  distinct_.resize(columns_.size());
  Absorb(schema);
}

void TableStatsBuilder::Absorb(const Table& batch) {
  DDUP_CHECK_MSG(static_cast<size_t>(batch.num_columns()) == columns_.size(),
                 "TableStatsBuilder::Absorb: column count mismatch");
  const int64_t n = batch.num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = batch.column(static_cast<int>(c));
    std::unordered_set<uint64_t>& seen = distinct_[c];
    for (int64_t r = 0; r < n; ++r) {
      seen.insert(CanonicalBits(col.AsDouble(r)));
    }
  }
  rows_ += n;
}

std::shared_ptr<const TableStats> TableStatsBuilder::Snapshot() const {
  auto stats = std::make_shared<TableStats>();
  stats->rows = rows_;
  stats->columns = columns_;
  stats->types = types_;
  stats->ndv.reserve(distinct_.size());
  for (const auto& seen : distinct_) {
    stats->ndv.push_back(static_cast<int64_t>(seen.size()));
  }
  return stats;
}

}  // namespace ddup::storage
