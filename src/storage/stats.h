#ifndef DDUP_STORAGE_STATS_H_
#define DDUP_STORAGE_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/table.h"

namespace ddup::storage {

// Immutable per-table statistics snapshot: the row count and the exact
// per-column distinct-value counts the join combiners (api/router) need.
// Snapshots are plain values published through an atomic shared_ptr by the
// Engine, so any number of router threads read them lock-free while ingest
// keeps folding new batches into the builder below.
struct TableStats {
  int64_t rows = 0;
  // One entry per schema column, in schema order.
  std::vector<std::string> columns;
  std::vector<ColumnType> types;
  std::vector<int64_t> ndv;

  // Index of the named column; -1 for an unknown name.
  int ColumnIndex(const std::string& column) const;
  // NDV of the named column; 0 for an unknown name.
  int64_t NdvOf(const std::string& column) const;
};

// Incremental exact-distinct counter over a fixed schema. Absorb() folds a
// batch in O(rows x columns); Snapshot() materializes an immutable
// TableStats. Values are counted on their AsDouble view (categorical codes
// cast to double) with -0.0 canonicalized to +0.0, matching the equality
// the query executor uses.
class TableStatsBuilder {
 public:
  TableStatsBuilder() = default;
  // Captures the schema and absorbs any rows `schema` already carries.
  explicit TableStatsBuilder(const Table& schema);

  // Folds `batch` (same schema) into the running counts.
  void Absorb(const Table& batch);

  std::shared_ptr<const TableStats> Snapshot() const;

 private:
  int64_t rows_ = 0;
  std::vector<std::string> columns_;
  std::vector<ColumnType> types_;
  std::vector<std::unordered_set<uint64_t>> distinct_;  // double bit patterns
};

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_STATS_H_
