#include "storage/table.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace ddup::storage {

int64_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_[0].size();
}

void Table::AddColumn(Column column) {
  if (!columns_.empty()) {
    DDUP_CHECK_MSG(column.size() == num_rows(),
                   "column length mismatch when adding '" + column.name() + "'");
  }
  DDUP_CHECK_MSG(ColumnIndex(column.name()) < 0,
                 "duplicate column name '" + column.name() + "'");
  columns_.push_back(std::move(column));
}

const Column& Table::column(int i) const {
  DDUP_CHECK(i >= 0 && i < num_columns());
  return columns_[static_cast<size_t>(i)];
}

Column* Table::mutable_column(int i) {
  DDUP_CHECK(i >= 0 && i < num_columns());
  return &columns_[static_cast<size_t>(i)];
}

const Column& Table::column(const std::string& name) const {
  int i = ColumnIndex(name);
  DDUP_CHECK_MSG(i >= 0, "no column named '" + name + "'");
  return columns_[static_cast<size_t>(i)];
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name());
  return names;
}

bool Table::SchemaEquals(const Table& other) const {
  if (num_columns() != other.num_columns()) return false;
  for (int i = 0; i < num_columns(); ++i) {
    if (!columns_[static_cast<size_t>(i)].SchemaEquals(
            other.columns_[static_cast<size_t>(i)])) {
      return false;
    }
  }
  return true;
}

Table Table::TakeRows(const std::vector<int64_t>& rows) const {
  Table out(name_);
  for (const auto& c : columns_) out.AddColumn(c.TakeRows(rows));
  return out;
}

Table Table::Head(int64_t n) const {
  n = std::min(n, num_rows());
  std::vector<int64_t> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  return TakeRows(rows);
}

void Table::Append(const Table& other) {
  DDUP_CHECK_MSG(SchemaEquals(other),
                 CheckSchemaCompatible(*this, other).message());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].Append(other.column(i));
  }
}

namespace {
const char* TypeName(ColumnType type) {
  return type == ColumnType::kNumeric ? "numeric" : "categorical";
}
}  // namespace

Status CheckSchemaCompatible(const Table& expected, const Table& actual) {
  if (expected.num_columns() != actual.num_columns()) {
    return Status::InvalidArgument(
        "schema mismatch: expected " + std::to_string(expected.num_columns()) +
        " column(s), got " + std::to_string(actual.num_columns()));
  }
  for (int i = 0; i < expected.num_columns(); ++i) {
    const Column& want = expected.column(i);
    const Column& got = actual.column(i);
    if (want.name() != got.name()) {
      return Status::InvalidArgument(
          "schema mismatch at column " + std::to_string(i) + ": expected '" +
          want.name() + "', got '" + got.name() + "'");
    }
    if (want.type() != got.type()) {
      return Status::InvalidArgument(
          "schema mismatch at column '" + want.name() + "': expected " +
          TypeName(want.type()) + ", got " + TypeName(got.type()));
    }
    if (!want.is_numeric() && want.dictionary() != got.dictionary()) {
      return Status::InvalidArgument(
          "schema mismatch at column '" + want.name() +
          "': dictionaries differ (" + std::to_string(want.cardinality()) +
          " vs " + std::to_string(got.cardinality()) + " entries)");
    }
  }
  return Status::OK();
}

}  // namespace ddup::storage
