#ifndef DDUP_STORAGE_TABLE_H_
#define DDUP_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace ddup::storage {

// Columnar in-memory relation. All columns have equal length. Tables are
// value types (copyable); the datasets in this repo are small enough that
// copy-on-sample is the simplest correct ownership model.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const;

  // Adds a column; must match the current row count (or be the first column).
  void AddColumn(Column column);

  const Column& column(int i) const;
  Column* mutable_column(int i);
  const Column& column(const std::string& name) const;
  // Index of the named column, or -1.
  int ColumnIndex(const std::string& name) const;
  std::vector<std::string> ColumnNames() const;

  // True iff both tables have the same column schemas in the same order.
  bool SchemaEquals(const Table& other) const;

  // New table containing the given rows (in order, duplicates allowed).
  Table TakeRows(const std::vector<int64_t>& rows) const;
  // First n rows (n clamped to num_rows).
  Table Head(int64_t n) const;
  // Appends all rows of `other`; schemas must match.
  void Append(const Table& other);

 private:
  std::string name_;
  std::vector<Column> columns_;
};

// Diagnostic counterpart of Table::SchemaEquals: OK iff `actual` is
// schema-compatible with `expected`; otherwise an InvalidArgument naming the
// first mismatch (column count, name, type, or dictionary) so ingestion
// surfaces a recoverable error instead of aborting inside Append.
Status CheckSchemaCompatible(const Table& expected, const Table& actual);

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_TABLE_H_
