#include "storage/transforms.h"

#include <algorithm>

#include "common/status.h"
#include "storage/sampling.h"

namespace ddup::storage {

namespace {
void SortColumnInPlace(Column* col) {
  if (col->is_numeric()) {
    std::sort(col->mutable_numeric_values()->begin(),
              col->mutable_numeric_values()->end());
  } else {
    std::sort(col->mutable_codes()->begin(), col->mutable_codes()->end());
  }
}
}  // namespace

Table PermuteJointDistributionOfColumns(const Table& table,
                                        const std::vector<int>& column_indices,
                                        Rng& rng) {
  Table copy = table;
  for (int ci : column_indices) {
    DDUP_CHECK(ci >= 0 && ci < copy.num_columns());
    SortColumnInPlace(copy.mutable_column(ci));
  }
  return ShuffleRows(copy, rng);
}

Table PermuteJointDistribution(const Table& table, Rng& rng) {
  std::vector<int> all;
  all.reserve(static_cast<size_t>(table.num_columns()));
  for (int i = 0; i < table.num_columns(); ++i) all.push_back(i);
  return PermuteJointDistributionOfColumns(table, all, rng);
}

Table InDistributionSample(const Table& table, Rng& rng, double fraction) {
  return SampleFraction(table, rng, fraction);
}

Table OutOfDistributionSample(const Table& table, Rng& rng, double fraction) {
  Table permuted = PermuteJointDistribution(table, rng);
  return SampleFraction(permuted, rng, fraction);
}

}  // namespace ddup::storage
