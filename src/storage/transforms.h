#ifndef DDUP_STORAGE_TRANSFORMS_H_
#define DDUP_STORAGE_TRANSFORMS_H_

#include <vector>

#include "common/rng.h"
#include "storage/table.h"

namespace ddup::storage {

// The paper's OOD transform (§5.1): copy the table, sort every column
// individually in place (this permutes the joint distribution while keeping
// every marginal identical), then shuffle the rows. Passing a subset of
// column indices sorts only those columns (used by the finer-grained
// perturbations of §5.2.3).
Table PermuteJointDistribution(const Table& table, Rng& rng);
Table PermuteJointDistributionOfColumns(const Table& table,
                                        const std::vector<int>& column_indices,
                                        Rng& rng);

// In-distribution "new data" (§5.1): a plain random sample of `fraction` of
// the rows of a straight copy.
Table InDistributionSample(const Table& table, Rng& rng, double fraction);

// Out-of-distribution "new data" (§5.1): permute the joint distribution,
// shuffle, then take `fraction` of rows.
Table OutOfDistributionSample(const Table& table, Rng& rng, double fraction);

}  // namespace ddup::storage

#endif  // DDUP_STORAGE_TRANSFORMS_H_
