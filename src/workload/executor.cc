#include "workload/executor.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace ddup::workload {

QueryResult Execute(const storage::Table& table, const Query& query) {
  if (query.agg != AggFunc::kCount) {
    DDUP_CHECK_MSG(query.agg_column >= 0 &&
                       query.agg_column < table.num_columns(),
                   "SUM/AVG requires a valid agg_column");
  }
  QueryResult res;
  double sum = 0.0;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (!RowMatches(table, query, r)) continue;
    ++res.matching_rows;
    if (query.agg != AggFunc::kCount) {
      sum += table.column(query.agg_column).AsDouble(r);
    }
  }
  switch (query.agg) {
    case AggFunc::kCount:
      res.value = static_cast<double>(res.matching_rows);
      break;
    case AggFunc::kSum:
      res.value = sum;
      break;
    case AggFunc::kAvg:
      res.value = res.matching_rows > 0
                      ? sum / static_cast<double>(res.matching_rows)
                      : std::numeric_limits<double>::quiet_NaN();
      break;
  }
  return res;
}

std::vector<double> ExecuteAll(const storage::Table& table,
                               const std::vector<Query>& queries) {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(Execute(table, q).value);
  return out;
}

}  // namespace ddup::workload
