#ifndef DDUP_WORKLOAD_EXECUTOR_H_
#define DDUP_WORKLOAD_EXECUTOR_H_

#include "storage/table.h"
#include "workload/query.h"

namespace ddup::workload {

struct QueryResult {
  double value = 0.0;        // aggregate value; NaN for AVG over empty set
  int64_t matching_rows = 0;
};

// Exact full-scan evaluation; the ground truth for every experiment.
QueryResult Execute(const storage::Table& table, const Query& query);

// Ground truths for a batch of queries (values only).
std::vector<double> ExecuteAll(const storage::Table& table,
                               const std::vector<Query>& queries);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_EXECUTOR_H_
