#include "workload/generator.h"

#include <algorithm>

#include "common/status.h"
#include "workload/executor.h"

namespace ddup::workload {

Query GenerateNaruQuery(const storage::Table& table,
                        const NaruWorkloadConfig& config, Rng& rng) {
  DDUP_CHECK(table.num_rows() > 0);
  int num_cols = table.num_columns();
  int max_f = std::min(config.max_filters, num_cols);
  int min_f = std::min(config.min_filters, max_f);
  int num_filters = static_cast<int>(rng.UniformInt(min_f, max_f));

  std::vector<int64_t> cols =
      rng.SampleWithoutReplacement(num_cols, num_filters);
  int64_t anchor = rng.UniformInt(0, table.num_rows() - 1);

  Query q;
  q.agg = AggFunc::kCount;
  for (int64_t c : cols) {
    const storage::Column& col = table.column(static_cast<int>(c));
    Predicate p;
    p.column = static_cast<int>(c);
    p.value = col.AsDouble(anchor);
    bool categorical_like =
        col.CountDistinct() < config.categorical_domain_threshold;
    if (categorical_like) {
      p.op = CompareOp::kEq;
    } else {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          p.op = CompareOp::kEq;
          break;
        case 1:
          p.op = CompareOp::kGe;
          break;
        default:
          p.op = CompareOp::kLe;
          break;
      }
    }
    q.predicates.push_back(p);
  }
  return q;
}

Query GenerateAqpQuery(const storage::Table& table,
                       const AqpWorkloadConfig& config, Rng& rng) {
  DDUP_CHECK(table.num_rows() > 0);
  int cat_idx = table.ColumnIndex(config.categorical_column);
  int num_idx = table.ColumnIndex(config.numeric_column);
  DDUP_CHECK_MSG(cat_idx >= 0, "missing categorical column " +
                                   config.categorical_column);
  DDUP_CHECK_MSG(num_idx >= 0, "missing numeric column " +
                                   config.numeric_column);
  const storage::Column& cat = table.column(cat_idx);
  const storage::Column& num = table.column(num_idx);

  // Category observed in the data (uniform over rows, like the paper's
  // uniform category selection restricted to non-empty groups).
  int64_t row = rng.UniformInt(0, table.num_rows() - 1);
  double cat_value = cat.AsDouble(row);

  // Range endpoints anchored at two random rows.
  double a = num.AsDouble(rng.UniformInt(0, table.num_rows() - 1));
  double b = num.AsDouble(rng.UniformInt(0, table.num_rows() - 1));
  if (a > b) std::swap(a, b);

  Query q;
  q.agg = config.agg;
  q.agg_column = num_idx;
  q.predicates.push_back({cat_idx, CompareOp::kEq, cat_value});
  q.predicates.push_back({num_idx, CompareOp::kGe, a});
  q.predicates.push_back({num_idx, CompareOp::kLe, b});
  return q;
}

namespace {
template <typename GenFn>
std::vector<Query> GenerateNonEmpty(const storage::Table& table, int n,
                                    GenFn gen) {
  std::vector<Query> out;
  out.reserve(static_cast<size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    int attempts = 0;
    for (;; ++attempts) {
      DDUP_CHECK_MSG(attempts < 200,
                     "could not generate a non-empty query in 200 attempts");
      Query q = gen();
      QueryResult res = Execute(table, q);
      if (res.matching_rows > 0 && res.value != 0.0) {
        out.push_back(std::move(q));
        break;
      }
    }
  }
  return out;
}
}  // namespace

std::vector<Query> GenerateNonEmptyNaruQueries(const storage::Table& table,
                                               const NaruWorkloadConfig& config,
                                               int n, Rng& rng) {
  return GenerateNonEmpty(table, n, [&]() {
    return GenerateNaruQuery(table, config, rng);
  });
}

std::vector<Query> GenerateNonEmptyAqpQueries(const storage::Table& table,
                                              const AqpWorkloadConfig& config,
                                              int n, Rng& rng) {
  return GenerateNonEmpty(table, n, [&]() {
    return GenerateAqpQuery(table, config, rng);
  });
}

}  // namespace ddup::workload
