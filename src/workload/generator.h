#ifndef DDUP_WORKLOAD_GENERATOR_H_
#define DDUP_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/table.h"
#include "workload/query.h"

namespace ddup::workload {

// Naru-style generator (§5.1.2): draw the number of filters from
// [min_filters, max_filters], pick that many distinct columns, anchor the
// predicate values at a uniformly chosen row, and assign operators uniformly
// from {=, >=, <=}; columns with domain < categorical_domain_threshold get
// equality only.
struct NaruWorkloadConfig {
  int min_filters = 3;
  int max_filters = 8;
  int categorical_domain_threshold = 10;
};

Query GenerateNaruQuery(const storage::Table& table,
                        const NaruWorkloadConfig& config, Rng& rng);

// DBEst++-style generator (§5.1.2): one equality filter on a categorical
// column and one [lower, upper] range on a numeric column; the aggregate
// (COUNT/SUM/AVG) runs over the numeric column.
struct AqpWorkloadConfig {
  std::string categorical_column;
  std::string numeric_column;
  AggFunc agg = AggFunc::kCount;
};

Query GenerateAqpQuery(const storage::Table& table,
                       const AqpWorkloadConfig& config, Rng& rng);

// Generates `n` queries whose ground truth on `table` is non-zero (the paper
// discards zero-answer queries). Gives up on a draw after 200 rejections and
// CHECK-fails — that signals a degenerate workload configuration.
std::vector<Query> GenerateNonEmptyNaruQueries(const storage::Table& table,
                                               const NaruWorkloadConfig& config,
                                               int n, Rng& rng);
std::vector<Query> GenerateNonEmptyAqpQueries(const storage::Table& table,
                                              const AqpWorkloadConfig& config,
                                              int n, Rng& rng);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_GENERATOR_H_
