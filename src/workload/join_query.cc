#include "workload/join_query.h"

#include <algorithm>
#include <cstring>
#include <tuple>

namespace ddup::workload {

namespace {

// FNV-1a step shared with QueryFingerprint's encoding conventions.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= kFnvPrime;
  }
}

void MixString(uint64_t* h, const std::string& s) {
  // Length-prefixed so ("ab","c") never collides with ("a","bc").
  MixU64(h, static_cast<uint64_t>(s.size()));
  for (unsigned char c : s) {
    *h ^= c;
    *h *= kFnvPrime;
  }
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t HashBoundPredicate(const BoundPredicate& p) {
  uint64_t h = kFnvOffset;
  MixString(&h, p.table);
  MixU64(&h, static_cast<uint64_t>(static_cast<int64_t>(p.predicate.column)));
  MixU64(&h, static_cast<uint64_t>(p.predicate.op));
  MixU64(&h, DoubleBits(p.predicate.value));
  return h;
}

// (table, column) pair ordering used to orient edges canonically.
bool SideLess(const std::string& ta, const std::string& ca,
              const std::string& tb, const std::string& cb) {
  return std::tie(ta, ca) < std::tie(tb, cb);
}

void OrientEdge(JoinEdge* e) {
  if (SideLess(e->right_table, e->right_column, e->left_table,
               e->left_column)) {
    std::swap(e->left_table, e->right_table);
    std::swap(e->left_column, e->right_column);
  }
}

uint64_t HashOrientedEdge(const JoinEdge& e) {
  uint64_t h = kFnvOffset;
  MixString(&h, e.left_table);
  MixString(&h, e.left_column);
  MixString(&h, e.right_table);
  MixString(&h, e.right_column);
  return h;
}

bool PredicateLess(const BoundPredicate& a, const BoundPredicate& b) {
  return std::tie(a.table, a.predicate.column) <
             std::tie(b.table, b.predicate.column) ||
         (std::tie(a.table, a.predicate.column) ==
              std::tie(b.table, b.predicate.column) &&
          (a.predicate.op < b.predicate.op ||
           (a.predicate.op == b.predicate.op &&
            DoubleBits(a.predicate.value) < DoubleBits(b.predicate.value))));
}

bool EdgeLess(const JoinEdge& a, const JoinEdge& b) {
  return std::tie(a.left_table, a.left_column, a.right_table, a.right_column) <
         std::tie(b.left_table, b.left_column, b.right_table, b.right_column);
}

}  // namespace

std::vector<std::string> JoinQuery::ReferencedTables() const {
  std::vector<std::string> tables;
  for (const BoundPredicate& p : predicates) tables.push_back(p.table);
  for (const JoinEdge& e : joins) {
    tables.push_back(e.left_table);
    tables.push_back(e.right_table);
  }
  if (!agg_table.empty()) tables.push_back(agg_table);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

void CanonicalizeJoinQuery(JoinQuery* query) {
  for (JoinEdge& e : query->joins) OrientEdge(&e);
  std::sort(query->joins.begin(), query->joins.end(), EdgeLess);
  std::sort(query->predicates.begin(), query->predicates.end(), PredicateLess);
}

uint64_t JoinQueryFingerprint(const JoinQuery& query) {
  // Order-invariant combination: per-element FNV hashes are summed (mod
  // 2^64), so reordering predicates or edges cannot change the result, but
  // duplicated elements still do (unlike XOR, which would cancel pairs).
  uint64_t pred_sum = 0;
  for (const BoundPredicate& p : query.predicates) {
    pred_sum += HashBoundPredicate(p);
  }
  uint64_t edge_sum = 0;
  for (JoinEdge e : query.joins) {
    OrientEdge(&e);
    edge_sum += HashOrientedEdge(e);
  }
  uint64_t h = kFnvOffset;
  MixU64(&h, static_cast<uint64_t>(query.predicates.size()));
  MixU64(&h, pred_sum);
  MixU64(&h, static_cast<uint64_t>(query.joins.size()));
  MixU64(&h, edge_sum);
  MixU64(&h, static_cast<uint64_t>(query.agg));
  MixString(&h, query.agg_table);
  MixU64(&h, static_cast<uint64_t>(static_cast<int64_t>(query.agg_column)));
  return h;
}

}  // namespace ddup::workload
