#ifndef DDUP_WORKLOAD_JOIN_QUERY_H_
#define DDUP_WORKLOAD_JOIN_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/query.h"

namespace ddup::workload {

// Structured multi-table queries (DESIGN.md §14). `Query` knows only column
// indices of a single table; everything that spans tables is expressed here:
// predicates qualified by table name, equi-join edges between named tables,
// and an aggregate spec. The api::QueryRouter plans these against an
// api::Engine's registered tables.

// A single-table query bound to a named engine table — the unit the legacy
// string-keyed Engine::Estimate* overloads are shims for, and the unit the
// router's planner emits per table.
struct BoundQuery {
  std::string table;
  Query query;
};

// One table-qualified conjunct of a multi-table query. The column index is
// relative to the named table's schema (same convention as Predicate).
struct BoundPredicate {
  std::string table;
  Predicate predicate;
};

// One equi-join edge: left_table.left_column = right_table.right_column.
// Columns are named (the storage::HashJoin convention); the router resolves
// and type-checks them against the registered schemas at plan time. Edges
// are undirected — flipping left and right does not change the query (the
// fingerprint canonicalizes the orientation away).
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

// SELECT COUNT(*) FROM t_1 ⋈ ... ⋈ t_k WHERE conj_1 AND ... AND conj_d,
// with the equi-join edges as the join graph. The graph must form a tree
// over the referenced tables (acyclic, connected); the router rejects
// anything else with a typed plan error. SUM/AVG over joins is not served
// yet — agg must be kCount (see DESIGN.md §14 for the roadmap).
struct JoinQuery {
  std::vector<BoundPredicate> predicates;
  std::vector<JoinEdge> joins;
  AggFunc agg = AggFunc::kCount;
  std::string agg_table;  // reserved for SUM/AVG
  int agg_column = -1;    // reserved for SUM/AVG

  // Sorted, de-duplicated names of every table the query references
  // (through a predicate, an edge, or the aggregate).
  std::vector<std::string> ReferencedTables() const;
};

// A set of join queries submitted as one unit, mirroring QueryBatch: the
// router groups the per-table subqueries of all queries in the batch into
// one QueryBatch per table, so the exec engines amortize their per-call
// work across the whole join workload.
struct JoinQueryBatch {
  std::vector<JoinQuery> queries;

  JoinQueryBatch() = default;
  explicit JoinQueryBatch(std::vector<JoinQuery> qs) : queries(std::move(qs)) {}

  int64_t size() const { return static_cast<int64_t>(queries.size()); }
  bool empty() const { return queries.empty(); }
  void Add(JoinQuery q) { queries.push_back(std::move(q)); }
};

// Canonical 64-bit fingerprint over the join query's *content*, extending
// QueryFingerprint to the multi-table case. Unlike the (deliberately
// order-sensitive) single-table fingerprint, this one is canonical:
// reordering predicates, reordering edges, or flipping an edge's sides
// yields the same fingerprint, because none of those change the query.
// Together with CanonicalizeJoinQuery below this is what carries the PR 7
// batch-/call-order-invariance guarantees over to joins: one logical join
// query maps to one fingerprint and to one set of per-table subquery
// fingerprints, no matter how the caller spelled it.
uint64_t JoinQueryFingerprint(const JoinQuery& query);

// In-place canonical form: predicates sorted by (table, column, op, value
// bits), edges each oriented so (left_table, left_column) <=
// (right_table, right_column) lexicographically and then sorted. The
// router's planner works on the canonical form, so the per-table subqueries
// it emits — and therefore their QueryFingerprints and RNG streams — are
// identical for every spelling of the same query.
void CanonicalizeJoinQuery(JoinQuery* query);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_JOIN_QUERY_H_
