#include "workload/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "common/status.h"

namespace ddup::workload {

double QError(double predicted, double actual) {
  double p = std::max(predicted, 1.0);
  double a = std::max(actual, 1.0);
  return std::max(p, a) / std::min(p, a);
}

double RelativeErrorPercent(double predicted, double actual) {
  DDUP_CHECK_MSG(actual != 0.0, "relative error undefined for zero actual");
  return std::fabs(predicted - actual) / std::fabs(actual) * 100.0;
}

ErrorSummary Summarize(const std::vector<double>& errors) {
  ErrorSummary s;
  if (errors.empty()) return s;
  s.median = Percentile(errors, 50.0);
  s.p95 = Percentile(errors, 95.0);
  s.p99 = Percentile(errors, 99.0);
  s.max = *std::max_element(errors.begin(), errors.end());
  s.mean = Mean(errors);
  return s;
}

std::string FormatSummary(const ErrorSummary& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%8.2f %9.2f %9.2f %10.2f", s.median, s.p95,
                s.p99, s.max);
  return buf;
}

FwtBwtSplit SplitByGroundTruthChange(const std::vector<double>& truth_before,
                                     const std::vector<double>& truth_after) {
  DDUP_CHECK(truth_before.size() == truth_after.size());
  FwtBwtSplit split;
  for (size_t i = 0; i < truth_before.size(); ++i) {
    if (truth_before[i] == truth_after[i]) {
      split.fixed.push_back(static_cast<int>(i));
    } else {
      split.changed.push_back(static_cast<int>(i));
    }
  }
  return split;
}

std::vector<double> Select(const std::vector<double>& values,
                           const std::vector<int>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int i : indices) {
    DDUP_CHECK(i >= 0 && i < static_cast<int>(values.size()));
    out.push_back(values[static_cast<size_t>(i)]);
  }
  return out;
}

}  // namespace ddup::workload
