#ifndef DDUP_WORKLOAD_METRICS_H_
#define DDUP_WORKLOAD_METRICS_H_

#include <string>
#include <vector>

namespace ddup::workload {

// Q-error (paper Eq. 12): max(pred, real) / min(pred, real). Both inputs are
// clamped to >= 1 first (counts; matches how learned CE systems report it).
double QError(double predicted, double actual);

// Relative error in percent (paper Eq. 13): |pred - real| / |real| * 100.
double RelativeErrorPercent(double predicted, double actual);

struct ErrorSummary {
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

ErrorSummary Summarize(const std::vector<double>& errors);

// Formats "median 95th 99th max" with sensible precision.
std::string FormatSummary(const ErrorSummary& s);

// FWT/BWT query grouping (§5.1.3): queries are generated once at time 0;
// after inserting a batch, a query whose ground truth changed belongs to
// G_changed (contributes to FWT), otherwise to G_fix (contributes to BWT).
struct FwtBwtSplit {
  std::vector<int> fixed;    // indices with unchanged ground truth
  std::vector<int> changed;  // indices with changed ground truth
};

FwtBwtSplit SplitByGroundTruthChange(const std::vector<double>& truth_before,
                                     const std::vector<double>& truth_after);

// Extracts errors[i] for the given indices.
std::vector<double> Select(const std::vector<double>& values,
                           const std::vector<int>& indices);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_METRICS_H_
