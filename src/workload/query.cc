#include "workload/query.h"

#include <cstring>

#include "common/status.h"

namespace ddup::workload {

namespace {
const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLe:
      return "<=";
  }
  return "?";
}

const char* AggName(AggFunc agg) {
  switch (agg) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}
}  // namespace

std::string Query::ToString(const storage::Table& table) const {
  std::string s = "SELECT ";
  s += AggName(agg);
  s += "(";
  s += agg == AggFunc::kCount ? "*" : table.column(agg_column).name();
  s += ") WHERE ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) s += " AND ";
    const Predicate& p = predicates[i];
    s += table.column(p.column).name();
    s += OpName(p.op);
    s += std::to_string(p.value);
  }
  return s;
}

uint64_t QueryFingerprint(const Query& query) {
  // FNV-1a, 64-bit. Doubles hash by bit pattern, so 0.0 and -0.0 (or any
  // two values that merely compare equal) are distinct queries — exactly
  // the granularity at which estimates must be reproducible.
  constexpr uint64_t kOffset = 1469598103934665603ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t h = kOffset;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= kPrime;
    }
  };
  for (const Predicate& p : query.predicates) {
    mix(static_cast<uint64_t>(static_cast<int64_t>(p.column)));
    mix(static_cast<uint64_t>(p.op));
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p.value), "double is 64-bit");
    std::memcpy(&bits, &p.value, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(query.agg));
  mix(static_cast<uint64_t>(static_cast<int64_t>(query.agg_column)));
  return h;
}

bool RowMatches(const storage::Table& table, const Query& query, int64_t row) {
  for (const Predicate& p : query.predicates) {
    double v = table.column(p.column).AsDouble(row);
    switch (p.op) {
      case CompareOp::kEq:
        if (v != p.value) return false;
        break;
      case CompareOp::kGe:
        if (!(v >= p.value)) return false;
        break;
      case CompareOp::kLe:
        if (!(v <= p.value)) return false;
        break;
    }
  }
  return true;
}

}  // namespace ddup::workload
