#include "workload/query.h"

#include "common/status.h"

namespace ddup::workload {

namespace {
const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLe:
      return "<=";
  }
  return "?";
}

const char* AggName(AggFunc agg) {
  switch (agg) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}
}  // namespace

std::string Query::ToString(const storage::Table& table) const {
  std::string s = "SELECT ";
  s += AggName(agg);
  s += "(";
  s += agg == AggFunc::kCount ? "*" : table.column(agg_column).name();
  s += ") WHERE ";
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) s += " AND ";
    const Predicate& p = predicates[i];
    s += table.column(p.column).name();
    s += OpName(p.op);
    s += std::to_string(p.value);
  }
  return s;
}

bool RowMatches(const storage::Table& table, const Query& query, int64_t row) {
  for (const Predicate& p : query.predicates) {
    double v = table.column(p.column).AsDouble(row);
    switch (p.op) {
      case CompareOp::kEq:
        if (v != p.value) return false;
        break;
      case CompareOp::kGe:
        if (!(v >= p.value)) return false;
        break;
      case CompareOp::kLe:
        if (!(v <= p.value)) return false;
        break;
    }
  }
  return true;
}

}  // namespace ddup::workload
