#ifndef DDUP_WORKLOAD_QUERY_H_
#define DDUP_WORKLOAD_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace ddup::workload {

enum class CompareOp { kEq, kGe, kLe };

// One conjunct: column <op> value. For categorical columns the value is the
// dictionary code (equality only in generated workloads, matching §5.1.2).
struct Predicate {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;
};

enum class AggFunc { kCount, kSum, kAvg };

// SELECT AGG(agg_column) FROM T WHERE pred_1 AND ... AND pred_d  (§5.1.2).
struct Query {
  std::vector<Predicate> predicates;
  AggFunc agg = AggFunc::kCount;
  int agg_column = -1;  // required for SUM/AVG

  std::string ToString(const storage::Table& table) const;
};

// True iff row `row` of `table` satisfies every predicate.
bool RowMatches(const storage::Table& table, const Query& query, int64_t row);

// A set of queries submitted for estimation as one unit, so execution
// engines (src/exec) can amortize per-call work — weight freezing, scratch
// acquisition, kernel dispatch — across all of them. The batch carries no
// execution state; it is a plain value the caller can reuse and re-split.
// Estimate results are defined per query (keyed on each query's content,
// see QueryFingerprint), so splitting or concatenating batches never
// changes any individual answer.
struct QueryBatch {
  std::vector<Query> queries;

  QueryBatch() = default;
  explicit QueryBatch(std::vector<Query> qs) : queries(std::move(qs)) {}

  int64_t size() const { return static_cast<int64_t>(queries.size()); }
  bool empty() const { return queries.empty(); }
  void Add(Query q) { queries.push_back(std::move(q)); }
};

// Order-sensitive 64-bit FNV-1a hash over the query's canonical encoding
// (predicates in stored order: column, op, value bits; then agg and
// agg_column). Stateful estimators derive their per-query RNG stream from
// (model seed, fingerprint), which is what makes estimates batch-size- and
// call-order-independent: the same query gets the same stream whether it is
// estimated alone, first in a batch of 64, or repeated twice.
uint64_t QueryFingerprint(const Query& query);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_QUERY_H_
