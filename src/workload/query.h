#ifndef DDUP_WORKLOAD_QUERY_H_
#define DDUP_WORKLOAD_QUERY_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace ddup::workload {

enum class CompareOp { kEq, kGe, kLe };

// One conjunct: column <op> value. For categorical columns the value is the
// dictionary code (equality only in generated workloads, matching §5.1.2).
struct Predicate {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;
};

enum class AggFunc { kCount, kSum, kAvg };

// SELECT AGG(agg_column) FROM T WHERE pred_1 AND ... AND pred_d  (§5.1.2).
struct Query {
  std::vector<Predicate> predicates;
  AggFunc agg = AggFunc::kCount;
  int agg_column = -1;  // required for SUM/AVG

  std::string ToString(const storage::Table& table) const;
};

// True iff row `row` of `table` satisfies every predicate.
bool RowMatches(const storage::Table& table, const Query& query, int64_t row);

}  // namespace ddup::workload

#endif  // DDUP_WORKLOAD_QUERY_H_
