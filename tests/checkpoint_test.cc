// Checkpoint subsystem tests (src/io + model Save/Load, DESIGN.md §9):
// byte-level serializer round trips, container integrity (magic / version /
// CRC / truncation), per-model save→load→predict bit-identity, RNG stream
// continuation, and detector/controller snapshot resume.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "gtest/gtest.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "models/darn.h"
#include "models/gbdt.h"
#include "models/mdn.h"
#include "models/spn.h"
#include "models/tvae.h"
#include "workload/generator.h"

namespace ddup {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

storage::Table SmallCensus() { return datagen::CensusLike(500, 14); }

// Bitwise double equality: the round-trip contract is exact, not approximate.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in their bit patterns";
}

// ---------------------------------------------------------------------------
// Serializer layer
// ---------------------------------------------------------------------------

TEST(SerializerTest, PrimitiveRoundTrip) {
  io::Serializer out;
  out.WriteU8(0xAB);
  out.WriteU32(0xDEADBEEFu);
  out.WriteU64(0x0123456789ABCDEFull);
  out.WriteI32(-42);
  out.WriteI64(-1234567890123ll);
  out.WriteBool(true);
  out.WriteDouble(-0.0);
  out.WriteDouble(1.0 / 3.0);
  out.WriteString("ddup");
  out.WriteDoubleVec({1.5, -2.5});
  out.WriteIntVec({3, -4, 5});

  io::Deserializer in(out.Take());
  EXPECT_EQ(in.ReadU8(), 0xAB);
  EXPECT_EQ(in.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(in.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.ReadI32(), -42);
  EXPECT_EQ(in.ReadI64(), -1234567890123ll);
  EXPECT_TRUE(in.ReadBool());
  EXPECT_TRUE(BitEqual(in.ReadDouble(), -0.0));
  EXPECT_TRUE(BitEqual(in.ReadDouble(), 1.0 / 3.0));
  EXPECT_EQ(in.ReadString(), "ddup");
  EXPECT_EQ(in.ReadDoubleVec(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(in.ReadIntVec(), (std::vector<int>{3, -4, 5}));
  EXPECT_TRUE(in.Finish().ok());
}

TEST(SerializerTest, LittleEndianLayout) {
  io::Serializer out;
  out.WriteU32(0x01020304u);
  const std::string& buf = out.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(SerializerTest, TruncatedReadSetsStickyError) {
  io::Serializer out;
  out.WriteU32(7);
  io::Deserializer in(out.Take());
  (void)in.ReadU64();  // asks for more than is there
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.ReadU32(), 0u);  // later reads are inert
  EXPECT_FALSE(in.Finish().ok());
}

TEST(SerializerTest, CorruptVectorLengthRejectedBeforeAllocation) {
  io::Serializer out;
  out.WriteU64(static_cast<uint64_t>(1) << 60);  // absurd element count
  io::Deserializer in(out.Take());
  EXPECT_TRUE(in.ReadDoubleVec().empty());
  EXPECT_FALSE(in.ok());
}

TEST(SerializerTest, RngStateContinuesIdentically) {
  Rng a(123);
  (void)a.Uniform();  // advance past the seed state
  io::Serializer out;
  out.WriteRng(a);
  Rng b(999);
  io::Deserializer in(out.Take());
  in.ReadRng(&b);
  ASSERT_TRUE(in.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BitEqual(a.Normal(), b.Normal()));
  }
}

TEST(SerializerTest, TableRoundTrip) {
  storage::Table t = SmallCensus();
  io::Serializer out;
  out.WriteTable(t);
  io::Deserializer in(out.Take());
  storage::Table restored = in.ReadTable();
  ASSERT_TRUE(in.Finish().ok());
  ASSERT_TRUE(restored.SchemaEquals(t));
  ASSERT_EQ(restored.num_rows(), t.num_rows());
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_TRUE(BitEqual(restored.column(c).AsDouble(r),
                           t.column(c).AsDouble(r)));
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint container integrity
// ---------------------------------------------------------------------------

TEST(CheckpointContainerTest, SectionRoundTrip) {
  io::CheckpointWriter writer;
  writer.AddSection("alpha", "payload-a");
  writer.AddSection("beta", std::string("\x00\x01\x02", 3));
  std::string path = TempPath("container.ckpt");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto reader = io::CheckpointReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().Has("alpha"));
  EXPECT_FALSE(reader.value().Has("gamma"));
  EXPECT_EQ(reader.value().Section("alpha").value(), "payload-a");
  EXPECT_EQ(reader.value().Section("beta").value().size(), 3u);
  std::remove(path.c_str());
}

TEST(CheckpointContainerTest, RejectsBadMagic) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "x");
  std::string image = writer.Encode();
  image[0] ^= 0x5A;
  EXPECT_FALSE(io::CheckpointReader::FromBuffer(image).ok());
}

TEST(CheckpointContainerTest, RejectsUnknownFormatVersion) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "x");
  std::string image = writer.Encode();
  image[8] = 99;  // format version is the u32 after the 8-byte magic
  EXPECT_FALSE(io::CheckpointReader::FromBuffer(image).ok());
}

TEST(CheckpointContainerTest, RejectsPayloadCorruption) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "the payload bytes");
  std::string image = writer.Encode();
  image[image.size() - 3] ^= 0x01;  // flip one payload bit
  auto reader = io::CheckpointReader::FromBuffer(image);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsTruncation) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "the payload bytes");
  std::string image = writer.Encode();
  for (size_t cut : {image.size() - 1, image.size() / 2, size_t{5}}) {
    EXPECT_FALSE(io::CheckpointReader::FromBuffer(image.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(CheckpointContainerTest, KindMismatchRejected) {
  std::string path = TempPath("kind.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "mdn", "payload").ok());
  EXPECT_FALSE(io::ReadSectionFile(path, "darn").ok());
  EXPECT_TRUE(io::ReadSectionFile(path, "mdn").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Format version 2: per-section codecs, header tampering, v1 compatibility
// and the mmap/buffered differential (DESIGN.md §16).
// ---------------------------------------------------------------------------

// v2 section header layout after the 16-byte container header:
//   u64 name length, name bytes, u8 codec id, u64 uncompressed length, ...
// The CRC covers only the STORED payload bytes, so these header offsets can
// be tampered without tripping the checksum — exactly what the tests below
// exploit to reach the decode-time validation paths.
size_t FirstCodecByteOffset(const std::string& section_name) {
  return 16 + 8 + section_name.size();
}

std::string CompressiblePayload() {
  std::string payload;
  for (int i = 0; i < 400; ++i) payload += "model weights shard ";
  return payload;
}

std::string IncompressiblePayload(size_t n) {
  Rng rng(1234);
  std::string payload(n, '\0');
  for (char& c : payload) c = static_cast<char>(rng.UniformInt(0, 255));
  return payload;
}

std::string ReadFileRaw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buffer[4096];
  size_t n = 0;
  while (f != nullptr && (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  if (f != nullptr) std::fclose(f);
  return bytes;
}

void WriteFileRaw(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(CheckpointV2Test, CompressedSectionsRoundTripAndShrinkTheImage) {
  const std::string payload = CompressiblePayload();
  io::CheckpointWriter writer;  // default codec: compressed
  writer.AddSection("s", payload);
  const std::string image = writer.Encode();
  EXPECT_LT(image.size(), payload.size());

  auto reader = io::CheckpointReader::FromBuffer(image);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().format_version(), 2u);
  EXPECT_EQ(reader.value().Section("s").value(), payload);
  auto info = reader.value().Info("s");
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info.value().codec, io::kCodecRaw);
  EXPECT_EQ(info.value().uncompressed_bytes, payload.size());
  EXPECT_LT(info.value().stored_bytes, info.value().uncompressed_bytes);
}

TEST(CheckpointV2Test, UnknownCodecIdRejected) {
  io::CheckpointWriter writer;
  writer.AddSection("s", CompressiblePayload());
  std::string image = writer.Encode();
  image[FirstCodecByteOffset("s")] = static_cast<char>(200);
  auto reader = io::CheckpointReader::FromBuffer(image);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("unknown checkpoint codec id"),
            std::string::npos)
      << reader.status().ToString();
}

TEST(CheckpointV2Test, CorruptedCompressedPayloadFailsCrcBeforeDecode) {
  io::CheckpointWriter writer;
  writer.AddSection("s", CompressiblePayload());
  std::string image = writer.Encode();
  image[image.size() - 2] ^= 0x40;  // inside the stored (encoded) bytes

  // Eager path: the corruption is a parse error.
  auto eager = io::CheckpointReader::FromBuffer(image);
  ASSERT_FALSE(eager.ok());
  EXPECT_NE(eager.status().message().find("CRC"), std::string::npos);

  // Lazy mmap path: parsing succeeds (CRCs untouched), the first access
  // fails the checksum — before the decoder ever sees the hostile bytes.
  const std::string path = TempPath("corrupt_v2.ckpt");
  WriteFileRaw(path, image);
  auto lazy = io::CheckpointReader::FromFile(path);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  auto section = lazy.value().Section("s");
  ASSERT_FALSE(section.ok());
  EXPECT_NE(section.status().message().find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointV2Test, DecompressedLengthMismatchRejected) {
  const std::string payload = CompressiblePayload();
  io::CheckpointWriter writer;
  writer.AddSection("s", payload);
  std::string image = writer.Encode();
  // Patch the uncompressed-length u64 (not covered by the payload CRC):
  // the stored bytes still decode cleanly, but to the wrong size.
  const uint64_t lie = payload.size() + 1;
  std::memcpy(image.data() + FirstCodecByteOffset("s") + 1, &lie, sizeof(lie));
  auto reader = io::CheckpointReader::FromBuffer(image);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto section = reader.value().Section("s");
  ASSERT_FALSE(section.ok());
  // The lie is caught either by the codec (decoded size != requested) or
  // by the reader's own post-decode length check — both surface as a
  // decode failure naming the section, never as silently-wrong bytes.
  EXPECT_NE(section.status().message().find("decode"), std::string::npos)
      << section.status().ToString();
  EXPECT_NE(section.status().message().find("s"), std::string::npos);
}

TEST(CheckpointV2Test, HandCraftedV1ContainerStillLoadsBitIdentically) {
  // A format-version-1 container built byte by byte from the documented
  // layout: no codec byte, no uncompressed length, CRC over the payload
  // itself. Readers must serve it unchanged forever.
  const std::string payload = IncompressiblePayload(257);
  io::Serializer v1;
  v1.WriteU64(io::kCheckpointMagic);
  v1.WriteU32(1);  // format version
  v1.WriteU32(1);  // section count
  v1.WriteString("blob");
  v1.WriteU64(payload.size());
  v1.WriteU32(io::Crc32(payload));
  v1.WriteRaw(payload);

  auto reader = io::CheckpointReader::FromBuffer(v1.Take());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().format_version(), 1u);
  EXPECT_EQ(reader.value().Section("blob").value(), payload);
  auto info = reader.value().Info("blob");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().codec, io::kCodecRaw);
  EXPECT_EQ(info.value().stored_bytes, payload.size());
  EXPECT_EQ(info.value().uncompressed_bytes, payload.size());
}

TEST(CheckpointV2Test, MmapAndBufferedReadersAgreeByteForByte) {
  // One compressible section (stored encoded) and one incompressible
  // section (the writer falls back to raw storage): the mmap reader and
  // the buffered reader must serve identical bytes for both, and the raw
  // section must be served zero-copy — a view into the mapped image.
  const std::string compressible = CompressiblePayload();
  const std::string incompressible = IncompressiblePayload(4096);
  io::CheckpointWriter writer;
  writer.AddSection("packed", compressible);
  writer.AddSection("raw", incompressible);
  const std::string path = TempPath("differential.ckpt");
  ASSERT_TRUE(writer.WriteToFile(path).ok());

  auto mapped = io::CheckpointReader::FromFile(path);
  auto buffered = io::CheckpointReader::FromFileBuffered(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_EQ(mapped.value().format_version(), buffered.value().format_version());
  ASSERT_EQ(mapped.value().num_sections(), buffered.value().num_sections());
  for (const auto& info : mapped.value().Sections()) {
    EXPECT_EQ(mapped.value().Section(info.name).value(),
              buffered.value().Section(info.name).value())
        << info.name;
  }
  EXPECT_EQ(mapped.value().Section("packed").value(), compressible);
  EXPECT_EQ(mapped.value().Section("raw").value(), incompressible);

  // Zero-copy pin: the raw section's view aliases the container image.
  auto view = mapped.value().SectionView("raw");
  ASSERT_TRUE(view.ok());
  std::string_view image = mapped.value().image();
  EXPECT_GE(view.value().data(), image.data());
  EXPECT_LE(view.value().data() + view.value().size(),
            image.data() + image.size());
  std::remove(path.c_str());
}

TEST(CheckpointV2Test, WriteSectionFileCompressesByDefault) {
  const std::string payload = CompressiblePayload();
  const std::string compressed_path = TempPath("section_default.ckpt");
  const std::string raw_path = TempPath("section_raw.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(compressed_path, "kind", payload).ok());
  ASSERT_TRUE(io::WriteSectionFile(raw_path, "kind", payload,
                                   io::FindCodecByName("raw"))
                  .ok());
  EXPECT_LT(ReadFileRaw(compressed_path).size(), payload.size());
  EXPECT_GT(ReadFileRaw(raw_path).size(), payload.size());
  EXPECT_EQ(io::ReadSectionFile(compressed_path, "kind").value(), payload);
  EXPECT_EQ(io::ReadSectionFile(raw_path, "kind").value(), payload);
  std::remove(compressed_path.c_str());
  std::remove(raw_path.c_str());
}

TEST(CheckpointV2Test, SectionFileCrcErrorIsNotMaskedAsKindMismatch) {
  const std::string path = TempPath("section_crc.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "kind", CompressiblePayload()).ok());
  std::string bytes = ReadFileRaw(path);
  bytes[bytes.size() - 2] ^= 0x08;
  WriteFileRaw(path, bytes);
  auto result = io::ReadSectionFile(path, "kind");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("CRC"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(result.status().message().find("kind mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Model round trips: save → load must be bit-identical, and the restored
// RNG stream must continue exactly (so later updates reproduce cold runs).
// ---------------------------------------------------------------------------

TEST(ModelCheckpointTest, MdnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::MdnConfig config;
  config.epochs = 3;
  models::Mdn model(base, "education", "hours_per_week", config);
  std::string path = TempPath("mdn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Mdn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  for (int cat = 0; cat < 5; ++cat) {
    EXPECT_EQ(loaded.value()->frequency(cat), model.frequency(cat));
    for (double y : {5.0, 20.0, 40.0, 60.0}) {
      EXPECT_TRUE(BitEqual(loaded.value()->ConditionalDensity(cat, y),
                           model.ConditionalDensity(cat, y)));
    }
  }

  // The RNG stream continues identically: a post-load fine-tune reproduces
  // the live model's fine-tune bit for bit.
  model.FineTune(base, 1e-3, 1);
  loaded.value()->FineTune(base, 1e-3, 1);
  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, DarnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::DarnConfig config;
  config.epochs = 2;
  models::Darn model(base, config);
  std::string path = TempPath("darn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Darn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  Rng qrng(7);
  workload::NaruWorkloadConfig wconfig;
  wconfig.max_filters = 3;
  auto queries = workload::GenerateNonEmptyNaruQueries(base, wconfig, 10, qrng);
  for (const auto& q : queries) {
    // Progressive-sample streams are derived per query from (config seed,
    // query fingerprint), so a weight-identical reload answers identically
    // regardless of estimate call history on either model.
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, TvaeRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::TvaeConfig config;
  config.epochs = 2;
  models::Tvae model(base, config);
  std::string path = TempPath("tvae.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Tvae::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(BitEqual(loaded.value()->Elbo(base), model.Elbo(base)));
  // Synthesis through an external RNG must match row for row.
  Rng ra(5), rb(5);
  storage::Table sa = model.Sample(50, ra);
  storage::Table sb = loaded.value()->Sample(50, rb);
  ASSERT_TRUE(sa.SchemaEquals(sb));
  for (int c = 0; c < sa.num_columns(); ++c) {
    for (int64_t r = 0; r < sa.num_rows(); ++r) {
      EXPECT_TRUE(BitEqual(sa.column(c).AsDouble(r), sb.column(c).AsDouble(r)));
    }
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, SpnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::Spn model(base, {});
  std::string path = TempPath("spn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Spn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->NodeCount(), model.NodeCount());
  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  Rng qrng(9);
  workload::NaruWorkloadConfig wconfig;
  wconfig.max_filters = 3;
  auto queries = workload::GenerateNonEmptyNaruQueries(base, wconfig, 10, qrng);
  for (const auto& q : queries) {
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  // Incremental updates route identically through the restored structure.
  storage::Table more = datagen::CensusLike(100, 15);
  model.Update(more);
  loaded.value()->Update(more);
  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  for (const auto& q : queries) {
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, GbdtRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::GbdtConfig config;
  config.num_rounds = 5;
  models::Gbdt model(config);
  model.Train(base, datagen::ClassColumnFor("census"));
  std::string path = TempPath("gbdt.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Gbdt::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->num_classes(), model.num_classes());
  EXPECT_EQ(loaded.value()->Predict(base), model.Predict(base));
  EXPECT_TRUE(BitEqual(loaded.value()->MicroF1(base), model.MicroF1(base)));
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, WrongKindAndCorruptionRejected) {
  storage::Table base = SmallCensus();
  models::MdnConfig config;
  config.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", config);
  std::string path = TempPath("cross.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());

  // A DARN refuses an MDN checkpoint outright (kind tag mismatch).
  EXPECT_FALSE(models::Darn::LoadFromFile(path).ok());

  // A flipped payload byte is caught by the section CRC.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -9, SEEK_END);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  auto corrupt = models::Mdn::LoadFromFile(path);
  EXPECT_FALSE(corrupt.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Detector / controller snapshots
// ---------------------------------------------------------------------------

TEST(SnapshotResumeTest, DetectorResumesIdenticalDecisions) {
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  models::Mdn model(base, "education", "hours_per_week", mconfig);

  core::DetectorConfig dconfig;
  dconfig.bootstrap_iterations = 32;
  core::OodDetector detector(dconfig);
  detector.Fit(model, base);

  std::string path = TempPath("detector.ckpt");
  ASSERT_TRUE(detector.SaveToFile(path).ok());
  auto restored = core::OodDetector::LoadFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_TRUE(restored.value().fitted());
  EXPECT_TRUE(BitEqual(restored.value().bootstrap_mean(),
                       detector.bootstrap_mean()));
  EXPECT_TRUE(BitEqual(restored.value().bootstrap_std(),
                       detector.bootstrap_std()));

  // Test() samples through the detector RNG — a restored detector must issue
  // the same decision sequence as the live one.
  storage::Table batch = datagen::CensusLike(200, 21);
  for (int i = 0; i < 3; ++i) {
    auto a = detector.Test(model, batch);
    auto b = restored.value().Test(model, batch);
    EXPECT_TRUE(BitEqual(a.new_loss, b.new_loss));
    EXPECT_TRUE(BitEqual(a.statistic, b.statistic));
    EXPECT_EQ(a.is_ood, b.is_ood);
  }
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ControllerResumesMidStream) {
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  // Two identical models via the checkpoint path itself.
  models::Mdn live(base, "education", "hours_per_week", mconfig);
  std::string model_path = TempPath("resume_model.ckpt");
  ASSERT_TRUE(live.SaveToFile(model_path).ok());
  auto twin = models::Mdn::LoadFromFile(model_path);
  ASSERT_TRUE(twin.ok());

  core::ControllerConfig cconfig;
  cconfig.detector.bootstrap_iterations = 16;
  cconfig.policy.distill.epochs = 1;
  cconfig.policy.finetune_epochs = 1;
  core::DdupController controller(&live, base, cconfig);

  std::string path = TempPath("controller.ckpt");
  ASSERT_TRUE(controller.SaveSnapshot(path).ok());
  auto resumed = core::DdupController::Resume(twin.value().get(), cconfig, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->data().num_rows(), base.num_rows());

  // The resumed loop handles the next insertion exactly like the live one:
  // same detector decision, same action, same post-update model state.
  storage::Table batch = datagen::CensusLike(150, 33);
  auto ra = controller.HandleInsertion(batch);
  auto rb = resumed.value()->HandleInsertion(batch);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(BitEqual(ra.value().test.statistic, rb.value().test.statistic));
  EXPECT_EQ(ra.value().test.is_ood, rb.value().test.is_ood);
  EXPECT_EQ(ra.value().action, rb.value().action);
  EXPECT_TRUE(BitEqual(live.AverageLoss(base),
                       twin.value()->AverageLoss(base)));
  EXPECT_TRUE(BitEqual(controller.detector().bootstrap_mean(),
                       resumed.value()->detector().bootstrap_mean()));
  std::remove(model_path.c_str());
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ResumeRejectsUnfittedSnapshot) {
  // A snapshot whose payload is valid container-wise but not resumable.
  core::OodDetector unfitted;
  io::Serializer state;
  state.WriteU32(2);  // controller state version
  state.WriteString("bootstrap");
  ASSERT_TRUE(unfitted.SaveState(&state).ok());
  Rng rng(1);
  state.WriteRng(rng);
  state.WriteTable(storage::Table("empty"));
  std::string path = TempPath("unfitted.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "controller", state.Take()).ok());

  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", mconfig);
  EXPECT_FALSE(core::DdupController::Resume(&model, {}, path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ResumeRejectsUnknownDetectorKind) {
  io::Serializer state;
  state.WriteU32(2);
  state.WriteString("not_a_detector");
  std::string path = TempPath("unknown_kind.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "controller", state.Take()).ok());

  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", mconfig);
  auto resumed = core::DdupController::Resume(&model, {}, path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("detector kind"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, SnapshotDetectorKindWinsOverResumeConfig) {
  // A controller built with a named zoo detector snapshots the kind (v2
  // format); Resume with a config that names a DIFFERENT kind must restore
  // the snapshot's detector — state bytes only make sense for the kind that
  // wrote them.
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  models::Mdn live(base, "education", "hours_per_week", mconfig);
  std::string model_path = TempPath("kind_model.ckpt");
  ASSERT_TRUE(live.SaveToFile(model_path).ok());
  auto twin = models::Mdn::LoadFromFile(model_path);
  ASSERT_TRUE(twin.ok());

  core::ControllerConfig cconfig;
  cconfig.detector.kind = "cusum";
  cconfig.detector.bootstrap_iterations = 16;
  cconfig.policy.distill.epochs = 1;
  cconfig.policy.finetune_epochs = 1;
  core::DdupController controller(&live, base, cconfig);
  EXPECT_STREQ(controller.detector().kind(), "cusum");

  std::string path = TempPath("kind_controller.ckpt");
  ASSERT_TRUE(controller.SaveSnapshot(path).ok());
  core::ControllerConfig other = cconfig;
  other.detector.kind = "bootstrap";
  auto resumed = core::DdupController::Resume(twin.value().get(), other, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_STREQ(resumed.value()->detector().kind(), "cusum");

  // And the restored CUSUM issues the same decision as the live one.
  storage::Table batch = datagen::CensusLike(150, 34);
  auto ra = controller.HandleInsertion(batch);
  auto rb = resumed.value()->HandleInsertion(batch);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(BitEqual(ra.value().test.statistic, rb.value().test.statistic));
  EXPECT_EQ(ra.value().test.is_ood, rb.value().test.is_ood);
  EXPECT_EQ(ra.value().action, rb.value().action);
  std::remove(model_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddup
