// Checkpoint subsystem tests (src/io + model Save/Load, DESIGN.md §9):
// byte-level serializer round trips, container integrity (magic / version /
// CRC / truncation), per-model save→load→predict bit-identity, RNG stream
// continuation, and detector/controller snapshot resume.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "gtest/gtest.h"
#include "io/checkpoint.h"
#include "io/serializer.h"
#include "models/darn.h"
#include "models/gbdt.h"
#include "models/mdn.h"
#include "models/spn.h"
#include "models/tvae.h"
#include "workload/generator.h"

namespace ddup {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

storage::Table SmallCensus() { return datagen::CensusLike(500, 14); }

// Bitwise double equality: the round-trip contract is exact, not approximate.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in their bit patterns";
}

// ---------------------------------------------------------------------------
// Serializer layer
// ---------------------------------------------------------------------------

TEST(SerializerTest, PrimitiveRoundTrip) {
  io::Serializer out;
  out.WriteU8(0xAB);
  out.WriteU32(0xDEADBEEFu);
  out.WriteU64(0x0123456789ABCDEFull);
  out.WriteI32(-42);
  out.WriteI64(-1234567890123ll);
  out.WriteBool(true);
  out.WriteDouble(-0.0);
  out.WriteDouble(1.0 / 3.0);
  out.WriteString("ddup");
  out.WriteDoubleVec({1.5, -2.5});
  out.WriteIntVec({3, -4, 5});

  io::Deserializer in(out.Take());
  EXPECT_EQ(in.ReadU8(), 0xAB);
  EXPECT_EQ(in.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(in.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.ReadI32(), -42);
  EXPECT_EQ(in.ReadI64(), -1234567890123ll);
  EXPECT_TRUE(in.ReadBool());
  EXPECT_TRUE(BitEqual(in.ReadDouble(), -0.0));
  EXPECT_TRUE(BitEqual(in.ReadDouble(), 1.0 / 3.0));
  EXPECT_EQ(in.ReadString(), "ddup");
  EXPECT_EQ(in.ReadDoubleVec(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(in.ReadIntVec(), (std::vector<int>{3, -4, 5}));
  EXPECT_TRUE(in.Finish().ok());
}

TEST(SerializerTest, LittleEndianLayout) {
  io::Serializer out;
  out.WriteU32(0x01020304u);
  const std::string& buf = out.buffer();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(SerializerTest, TruncatedReadSetsStickyError) {
  io::Serializer out;
  out.WriteU32(7);
  io::Deserializer in(out.Take());
  (void)in.ReadU64();  // asks for more than is there
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.ReadU32(), 0u);  // later reads are inert
  EXPECT_FALSE(in.Finish().ok());
}

TEST(SerializerTest, CorruptVectorLengthRejectedBeforeAllocation) {
  io::Serializer out;
  out.WriteU64(static_cast<uint64_t>(1) << 60);  // absurd element count
  io::Deserializer in(out.Take());
  EXPECT_TRUE(in.ReadDoubleVec().empty());
  EXPECT_FALSE(in.ok());
}

TEST(SerializerTest, RngStateContinuesIdentically) {
  Rng a(123);
  (void)a.Uniform();  // advance past the seed state
  io::Serializer out;
  out.WriteRng(a);
  Rng b(999);
  io::Deserializer in(out.Take());
  in.ReadRng(&b);
  ASSERT_TRUE(in.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BitEqual(a.Normal(), b.Normal()));
  }
}

TEST(SerializerTest, TableRoundTrip) {
  storage::Table t = SmallCensus();
  io::Serializer out;
  out.WriteTable(t);
  io::Deserializer in(out.Take());
  storage::Table restored = in.ReadTable();
  ASSERT_TRUE(in.Finish().ok());
  ASSERT_TRUE(restored.SchemaEquals(t));
  ASSERT_EQ(restored.num_rows(), t.num_rows());
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_TRUE(BitEqual(restored.column(c).AsDouble(r),
                           t.column(c).AsDouble(r)));
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint container integrity
// ---------------------------------------------------------------------------

TEST(CheckpointContainerTest, SectionRoundTrip) {
  io::CheckpointWriter writer;
  writer.AddSection("alpha", "payload-a");
  writer.AddSection("beta", std::string("\x00\x01\x02", 3));
  std::string path = TempPath("container.ckpt");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto reader = io::CheckpointReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().Has("alpha"));
  EXPECT_FALSE(reader.value().Has("gamma"));
  EXPECT_EQ(reader.value().Section("alpha").value(), "payload-a");
  EXPECT_EQ(reader.value().Section("beta").value().size(), 3u);
  std::remove(path.c_str());
}

TEST(CheckpointContainerTest, RejectsBadMagic) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "x");
  std::string image = writer.Encode();
  image[0] ^= 0x5A;
  EXPECT_FALSE(io::CheckpointReader::FromBuffer(image).ok());
}

TEST(CheckpointContainerTest, RejectsUnknownFormatVersion) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "x");
  std::string image = writer.Encode();
  image[8] = 99;  // format version is the u32 after the 8-byte magic
  EXPECT_FALSE(io::CheckpointReader::FromBuffer(image).ok());
}

TEST(CheckpointContainerTest, RejectsPayloadCorruption) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "the payload bytes");
  std::string image = writer.Encode();
  image[image.size() - 3] ^= 0x01;  // flip one payload bit
  auto reader = io::CheckpointReader::FromBuffer(image);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsTruncation) {
  io::CheckpointWriter writer;
  writer.AddSection("s", "the payload bytes");
  std::string image = writer.Encode();
  for (size_t cut : {image.size() - 1, image.size() / 2, size_t{5}}) {
    EXPECT_FALSE(io::CheckpointReader::FromBuffer(image.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(CheckpointContainerTest, KindMismatchRejected) {
  std::string path = TempPath("kind.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "mdn", "payload").ok());
  EXPECT_FALSE(io::ReadSectionFile(path, "darn").ok());
  EXPECT_TRUE(io::ReadSectionFile(path, "mdn").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Model round trips: save → load must be bit-identical, and the restored
// RNG stream must continue exactly (so later updates reproduce cold runs).
// ---------------------------------------------------------------------------

TEST(ModelCheckpointTest, MdnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::MdnConfig config;
  config.epochs = 3;
  models::Mdn model(base, "education", "hours_per_week", config);
  std::string path = TempPath("mdn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Mdn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  for (int cat = 0; cat < 5; ++cat) {
    EXPECT_EQ(loaded.value()->frequency(cat), model.frequency(cat));
    for (double y : {5.0, 20.0, 40.0, 60.0}) {
      EXPECT_TRUE(BitEqual(loaded.value()->ConditionalDensity(cat, y),
                           model.ConditionalDensity(cat, y)));
    }
  }

  // The RNG stream continues identically: a post-load fine-tune reproduces
  // the live model's fine-tune bit for bit.
  model.FineTune(base, 1e-3, 1);
  loaded.value()->FineTune(base, 1e-3, 1);
  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, DarnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::DarnConfig config;
  config.epochs = 2;
  models::Darn model(base, config);
  std::string path = TempPath("darn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Darn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  EXPECT_TRUE(BitEqual(loaded.value()->AverageLoss(base),
                       model.AverageLoss(base)));
  Rng qrng(7);
  workload::NaruWorkloadConfig wconfig;
  wconfig.max_filters = 3;
  auto queries = workload::GenerateNonEmptyNaruQueries(base, wconfig, 10, qrng);
  for (const auto& q : queries) {
    // Progressive-sample streams are derived per query from (config seed,
    // query fingerprint), so a weight-identical reload answers identically
    // regardless of estimate call history on either model.
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, TvaeRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::TvaeConfig config;
  config.epochs = 2;
  models::Tvae model(base, config);
  std::string path = TempPath("tvae.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Tvae::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(BitEqual(loaded.value()->Elbo(base), model.Elbo(base)));
  // Synthesis through an external RNG must match row for row.
  Rng ra(5), rb(5);
  storage::Table sa = model.Sample(50, ra);
  storage::Table sb = loaded.value()->Sample(50, rb);
  ASSERT_TRUE(sa.SchemaEquals(sb));
  for (int c = 0; c < sa.num_columns(); ++c) {
    for (int64_t r = 0; r < sa.num_rows(); ++r) {
      EXPECT_TRUE(BitEqual(sa.column(c).AsDouble(r), sb.column(c).AsDouble(r)));
    }
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, SpnRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::Spn model(base, {});
  std::string path = TempPath("spn.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Spn::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->NodeCount(), model.NodeCount());
  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  Rng qrng(9);
  workload::NaruWorkloadConfig wconfig;
  wconfig.max_filters = 3;
  auto queries = workload::GenerateNonEmptyNaruQueries(base, wconfig, 10, qrng);
  for (const auto& q : queries) {
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  // Incremental updates route identically through the restored structure.
  storage::Table more = datagen::CensusLike(100, 15);
  model.Update(more);
  loaded.value()->Update(more);
  EXPECT_EQ(loaded.value()->total_rows(), model.total_rows());
  for (const auto& q : queries) {
    EXPECT_TRUE(BitEqual(loaded.value()->EstimateCardinality(q),
                         model.EstimateCardinality(q)));
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, GbdtRoundTripBitIdentical) {
  storage::Table base = SmallCensus();
  models::GbdtConfig config;
  config.num_rounds = 5;
  models::Gbdt model(config);
  model.Train(base, datagen::ClassColumnFor("census"));
  std::string path = TempPath("gbdt.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded = models::Gbdt::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value()->num_classes(), model.num_classes());
  EXPECT_EQ(loaded.value()->Predict(base), model.Predict(base));
  EXPECT_TRUE(BitEqual(loaded.value()->MicroF1(base), model.MicroF1(base)));
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, WrongKindAndCorruptionRejected) {
  storage::Table base = SmallCensus();
  models::MdnConfig config;
  config.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", config);
  std::string path = TempPath("cross.ckpt");
  ASSERT_TRUE(model.SaveToFile(path).ok());

  // A DARN refuses an MDN checkpoint outright (kind tag mismatch).
  EXPECT_FALSE(models::Darn::LoadFromFile(path).ok());

  // A flipped payload byte is caught by the section CRC.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -9, SEEK_END);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  auto corrupt = models::Mdn::LoadFromFile(path);
  EXPECT_FALSE(corrupt.ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Detector / controller snapshots
// ---------------------------------------------------------------------------

TEST(SnapshotResumeTest, DetectorResumesIdenticalDecisions) {
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  models::Mdn model(base, "education", "hours_per_week", mconfig);

  core::DetectorConfig dconfig;
  dconfig.bootstrap_iterations = 32;
  core::OodDetector detector(dconfig);
  detector.Fit(model, base);

  std::string path = TempPath("detector.ckpt");
  ASSERT_TRUE(detector.SaveToFile(path).ok());
  auto restored = core::OodDetector::LoadFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_TRUE(restored.value().fitted());
  EXPECT_TRUE(BitEqual(restored.value().bootstrap_mean(),
                       detector.bootstrap_mean()));
  EXPECT_TRUE(BitEqual(restored.value().bootstrap_std(),
                       detector.bootstrap_std()));

  // Test() samples through the detector RNG — a restored detector must issue
  // the same decision sequence as the live one.
  storage::Table batch = datagen::CensusLike(200, 21);
  for (int i = 0; i < 3; ++i) {
    auto a = detector.Test(model, batch);
    auto b = restored.value().Test(model, batch);
    EXPECT_TRUE(BitEqual(a.new_loss, b.new_loss));
    EXPECT_TRUE(BitEqual(a.statistic, b.statistic));
    EXPECT_EQ(a.is_ood, b.is_ood);
  }
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ControllerResumesMidStream) {
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  // Two identical models via the checkpoint path itself.
  models::Mdn live(base, "education", "hours_per_week", mconfig);
  std::string model_path = TempPath("resume_model.ckpt");
  ASSERT_TRUE(live.SaveToFile(model_path).ok());
  auto twin = models::Mdn::LoadFromFile(model_path);
  ASSERT_TRUE(twin.ok());

  core::ControllerConfig cconfig;
  cconfig.detector.bootstrap_iterations = 16;
  cconfig.policy.distill.epochs = 1;
  cconfig.policy.finetune_epochs = 1;
  core::DdupController controller(&live, base, cconfig);

  std::string path = TempPath("controller.ckpt");
  ASSERT_TRUE(controller.SaveSnapshot(path).ok());
  auto resumed = core::DdupController::Resume(twin.value().get(), cconfig, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value()->data().num_rows(), base.num_rows());

  // The resumed loop handles the next insertion exactly like the live one:
  // same detector decision, same action, same post-update model state.
  storage::Table batch = datagen::CensusLike(150, 33);
  auto ra = controller.HandleInsertion(batch);
  auto rb = resumed.value()->HandleInsertion(batch);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(BitEqual(ra.value().test.statistic, rb.value().test.statistic));
  EXPECT_EQ(ra.value().test.is_ood, rb.value().test.is_ood);
  EXPECT_EQ(ra.value().action, rb.value().action);
  EXPECT_TRUE(BitEqual(live.AverageLoss(base),
                       twin.value()->AverageLoss(base)));
  EXPECT_TRUE(BitEqual(controller.detector().bootstrap_mean(),
                       resumed.value()->detector().bootstrap_mean()));
  std::remove(model_path.c_str());
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ResumeRejectsUnfittedSnapshot) {
  // A snapshot whose payload is valid container-wise but not resumable.
  core::OodDetector unfitted;
  io::Serializer state;
  state.WriteU32(2);  // controller state version
  state.WriteString("bootstrap");
  ASSERT_TRUE(unfitted.SaveState(&state).ok());
  Rng rng(1);
  state.WriteRng(rng);
  state.WriteTable(storage::Table("empty"));
  std::string path = TempPath("unfitted.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "controller", state.Take()).ok());

  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", mconfig);
  EXPECT_FALSE(core::DdupController::Resume(&model, {}, path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, ResumeRejectsUnknownDetectorKind) {
  io::Serializer state;
  state.WriteU32(2);
  state.WriteString("not_a_detector");
  std::string path = TempPath("unknown_kind.ckpt");
  ASSERT_TRUE(io::WriteSectionFile(path, "controller", state.Take()).ok());

  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 1;
  models::Mdn model(base, "education", "hours_per_week", mconfig);
  auto resumed = core::DdupController::Resume(&model, {}, path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("detector kind"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotResumeTest, SnapshotDetectorKindWinsOverResumeConfig) {
  // A controller built with a named zoo detector snapshots the kind (v2
  // format); Resume with a config that names a DIFFERENT kind must restore
  // the snapshot's detector — state bytes only make sense for the kind that
  // wrote them.
  storage::Table base = SmallCensus();
  models::MdnConfig mconfig;
  mconfig.epochs = 2;
  models::Mdn live(base, "education", "hours_per_week", mconfig);
  std::string model_path = TempPath("kind_model.ckpt");
  ASSERT_TRUE(live.SaveToFile(model_path).ok());
  auto twin = models::Mdn::LoadFromFile(model_path);
  ASSERT_TRUE(twin.ok());

  core::ControllerConfig cconfig;
  cconfig.detector.kind = "cusum";
  cconfig.detector.bootstrap_iterations = 16;
  cconfig.policy.distill.epochs = 1;
  cconfig.policy.finetune_epochs = 1;
  core::DdupController controller(&live, base, cconfig);
  EXPECT_STREQ(controller.detector().kind(), "cusum");

  std::string path = TempPath("kind_controller.ckpt");
  ASSERT_TRUE(controller.SaveSnapshot(path).ok());
  core::ControllerConfig other = cconfig;
  other.detector.kind = "bootstrap";
  auto resumed = core::DdupController::Resume(twin.value().get(), other, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_STREQ(resumed.value()->detector().kind(), "cusum");

  // And the restored CUSUM issues the same decision as the live one.
  storage::Table batch = datagen::CensusLike(150, 34);
  auto ra = controller.HandleInsertion(batch);
  auto rb = resumed.value()->HandleInsertion(batch);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(BitEqual(ra.value().test.statistic, rb.value().test.statistic));
  EXPECT_EQ(ra.value().test.is_ood, rb.value().test.is_ood);
  EXPECT_EQ(ra.value().action, rb.value().action);
  std::remove(model_path.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddup
