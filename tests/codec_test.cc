// Codec layer tests (src/io/codec, DESIGN.md §16): bit-exact round trips for
// every registered codec over adversarially chosen payloads, compression on
// payloads that should compress, and bounds-checked rejection of hostile
// encoded inputs (a decoder must never read or write out of range, whatever
// the bytes say).
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "io/codec.h"

namespace ddup {
namespace {

std::string RoundTrip(const io::Codec& codec, const std::string& input) {
  std::string encoded;
  codec.Compress(input, &encoded);
  std::string decoded;
  Status status = codec.Decompress(encoded, input.size(), &decoded);
  EXPECT_TRUE(status.ok()) << codec.name() << ": " << status.ToString();
  return decoded;
}

std::string DoubleBytes(const std::vector<double>& values) {
  std::string out(values.size() * sizeof(double), '\0');
  if (!values.empty()) std::memcpy(out.data(), values.data(), out.size());
  return out;
}

// Payload corpus: empty, sub-8-byte tails, text, runs, random bytes, integer
// lanes, and real-looking doubles — every branch of every codec.
std::vector<std::string> Corpus() {
  std::vector<std::string> corpus;
  corpus.push_back("");
  corpus.push_back("a");
  corpus.push_back("abcdefg");  // below one u64 lane
  corpus.push_back("the quick brown fox jumps over the lazy dog");
  corpus.push_back(std::string(4096, 'x'));  // long single-byte run
  std::string cycle;
  for (int i = 0; i < 1000; ++i) cycle += "abcd";
  corpus.push_back(cycle);
  Rng rng(42);
  std::string random_bytes(2000, '\0');
  for (char& c : random_bytes) {
    c = static_cast<char>(rng.UniformInt(0, 255));
  }
  corpus.push_back(random_bytes);  // incompressible
  std::vector<double> counters;
  for (int i = 0; i < 500; ++i) counters.push_back(static_cast<double>(i * 3));
  corpus.push_back(DoubleBytes(counters));  // integer-ish lanes
  std::vector<double> gaussians;
  for (int i = 0; i < 500; ++i) gaussians.push_back(rng.Normal(0.0, 1.0));
  corpus.push_back(DoubleBytes(gaussians));  // full-entropy mantissas
  corpus.push_back(DoubleBytes({-0.0, 0.0,
                                std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::infinity()}));
  return corpus;
}

TEST(CodecTest, RegistryExposesTheFourBuiltins) {
  EXPECT_EQ(io::RegisteredCodecNames(),
            (std::vector<std::string>{"raw", "lz", "shuffle", "delta"}));
  for (uint8_t id : {io::kCodecRaw, io::kCodecLz, io::kCodecShuffle,
                     io::kCodecDelta}) {
    const io::Codec* codec = io::FindCodec(id);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->id(), id);
    EXPECT_EQ(io::FindCodecByName(codec->name()), codec);
  }
  EXPECT_EQ(io::FindCodec(200), nullptr);
  EXPECT_EQ(io::FindCodecByName("zstd"), nullptr);
  ASSERT_NE(io::FindCodecByName(io::kDefaultCheckpointCodec), nullptr);
}

TEST(CodecTest, EveryCodecRoundTripsEveryPayloadBitExactly) {
  for (const std::string& name : io::RegisteredCodecNames()) {
    const io::Codec* codec = io::FindCodecByName(name);
    ASSERT_NE(codec, nullptr);
    int index = 0;
    for (const std::string& payload : Corpus()) {
      EXPECT_EQ(RoundTrip(*codec, payload), payload)
          << name << " corpus entry " << index;
      ++index;
    }
  }
}

TEST(CodecTest, LzCompressesRepetitiveInputAtLeastTwofold) {
  std::string repetitive;
  for (int i = 0; i < 500; ++i) repetitive += "checkpoint section payload ";
  std::string encoded;
  io::FindCodecByName("lz")->Compress(repetitive, &encoded);
  EXPECT_LE(encoded.size() * 2, repetitive.size())
      << "lz ratio " << static_cast<double>(repetitive.size()) /
                            static_cast<double>(encoded.size());
}

TEST(CodecTest, DeltaCompressesIntegerLanes) {
  // Delta operates on raw u64 lanes, so its sweet spot is integer-valued
  // lanes with small steps (row counters, offsets, dictionary codes) —
  // not IEEE doubles, whose exponent bits make consecutive values far
  // apart bitwise.
  std::vector<uint64_t> counters;
  for (uint64_t i = 0; i < 1000; ++i) counters.push_back(1000000 + i * 3);
  std::string payload(counters.size() * sizeof(uint64_t), '\0');
  std::memcpy(payload.data(), counters.data(), payload.size());
  std::string encoded;
  io::FindCodecByName("delta")->Compress(payload, &encoded);
  // Small constant deltas varint-encode to ~1 byte per 8-byte lane.
  EXPECT_LE(encoded.size() * 4, payload.size());
}

TEST(CodecTest, HostileEncodedInputsAreRejectedNotCrashed) {
  // Random byte strings fed to every decoder with every plausible expected
  // size: decoders are fully bounds-checked, so the only outcomes are a
  // clean error or a correctly-sized (garbage-free) success.
  Rng rng(7);
  for (const std::string name : {"lz", "shuffle", "delta"}) {
    const io::Codec* codec = io::FindCodecByName(name);
    for (int trial = 0; trial < 200; ++trial) {
      std::string hostile(static_cast<size_t>(rng.UniformInt(0, 64)), '\0');
      for (char& c : hostile) {
        c = static_cast<char>(rng.UniformInt(0, 255));
      }
      const size_t expected = static_cast<size_t>(rng.UniformInt(0, 256));
      std::string out;
      Status status = codec->Decompress(hostile, expected, &out);
      if (status.ok()) {
        EXPECT_EQ(out.size(), expected) << name << " trial " << trial;
      }
    }
  }
}

TEST(CodecTest, TruncatedEncodingsFail) {
  std::string payload;
  for (int i = 0; i < 200; ++i) payload += "abcdefgh";
  for (const std::string name : {"lz", "shuffle", "delta"}) {
    const io::Codec* codec = io::FindCodecByName(name);
    std::string encoded;
    codec->Compress(payload, &encoded);
    ASSERT_GT(encoded.size(), 2u);
    std::string out;
    EXPECT_FALSE(
        codec->Decompress(encoded.substr(0, encoded.size() / 2), payload.size(),
                          &out)
            .ok())
        << name;
  }
}

TEST(CodecTest, VarintRoundTripsAndRejectsOverlongEncodings) {
  std::string buffer;
  const std::vector<uint64_t> values = {
      0,  1,   127,  128,  16383, 16384, (uint64_t{1} << 32) - 1,
      uint64_t{1} << 63, ~uint64_t{0}};
  for (uint64_t v : values) io::PutVarint64(v, &buffer);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(io::GetVarint64(buffer, &pos, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(pos, buffer.size());

  uint64_t decoded = 0;
  size_t bad_pos = 0;
  EXPECT_FALSE(io::GetVarint64("", &bad_pos, &decoded));  // truncated
  bad_pos = 0;
  EXPECT_FALSE(io::GetVarint64(std::string(11, '\x80'), &bad_pos, &decoded))
      << "over-long encoding must be rejected";
}

TEST(CodecTest, ZigZagIsAnInvolutionOnExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(io::ZigZagDecode(io::ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes (the property delta packing uses).
  EXPECT_EQ(io::ZigZagEncode(0), 0u);
  EXPECT_EQ(io::ZigZagEncode(-1), 1u);
  EXPECT_EQ(io::ZigZagEncode(1), 2u);
}

}  // namespace
}  // namespace ddup
