#include <atomic>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace ddup {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad column");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  StatusOr<int> err(Status::NotFound("x"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  double va = a.Uniform(), vb = b.Uniform(), vc = c.Uniform();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(Mean(xs), 3.0, 0.1);
  EXPECT_NEAR(StdDev(xs), 2.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) ones += rng.Categorical(w);
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 0.75, 0.02);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[static_cast<size_t>(rng.Zipf(5, 1.2))];
  EXPECT_GT(counts[0], counts[4]);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  auto idx = rng.SampleWithoutReplacement(100, 40);
  std::set<int64_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 40u);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPermutation) {
  Rng rng(6);
  auto idx = rng.SampleWithoutReplacement(10, 10);
  std::set<int64_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithReplacementCovers) {
  Rng rng(7);
  auto idx = rng.SampleWithReplacement(3, 1000);
  EXPECT_EQ(idx.size(), 1000u);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 3);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The fork consumed state; both streams still work and differ.
  EXPECT_NE(a.Uniform(), child.Uniform());
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(StdDev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(Median(xs), 25);
}

TEST(StatsTest, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 99), 5.0);
}

TEST(StatsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(5.0, 5.0, 2.0), 0.5, 1e-12);
}

TEST(StatsTest, NormalPdfPeak) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(1.0));
}

TEST(StatsTest, TruncatedExpectationFullRange) {
  // Over (-inf, inf) the partial expectation is the mean.
  double v = TruncatedNormalPartialExpectation(2.0, 1.0, -100, 100);
  EXPECT_NEAR(v, 2.0, 1e-6);
}

TEST(StatsTest, TruncatedExpectationMatchesMonteCarlo) {
  Rng rng(8);
  double mean = 1.0, sd = 2.0, lo = 0.0, hi = 3.0;
  double acc = 0.0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    double y = rng.Normal(mean, sd);
    if (y >= lo && y <= hi) acc += y;
  }
  double mc = acc / kTrials;
  double analytic = TruncatedNormalPartialExpectation(mean, sd, lo, hi);
  EXPECT_NEAR(analytic, mc, 0.02);
}

TEST(StatsTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  // Would overflow naive exp.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> flat = {1, 1, 1, 1, 1};
  EXPECT_EQ(PearsonCorrelation(a, flat), 0.0);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace

TEST(StatsTest, SampleStdDevUsesUnbiasedDenominator) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // Population: sqrt(5/4); sample: sqrt(5/3).
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(5.0 / 4.0));
  EXPECT_DOUBLE_EQ(SampleStdDev(xs), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(SampleStdDev({1.0, 3.0}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, 37, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SinglethreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.ParallelFor(0, 10, 3, [&](int64_t lo, int64_t hi) {
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(0, 4, 1, [&](int64_t, int64_t) {
    // Nested fan-out must degrade to a serial loop, not deadlock.
    pool.ParallelFor(0, 8, 2, [&](int64_t lo, int64_t hi) {
      total += static_cast<int>(hi - lo);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ParallelChunkMeanMatchesSerialMean) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  double expect = 0.0;
  for (int64_t i = 0; i < kN; ++i) expect += std::sin(static_cast<double>(i));
  expect /= static_cast<double>(kN);
  double got = ParallelChunkMean(pool, kN, 128, [](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += std::sin(static_cast<double>(i));
    return acc / static_cast<double>(hi - lo);
  });
  EXPECT_NEAR(got, expect, 1e-12);
}

TEST(ThreadPoolTest, ParallelChunkMeanBitIdenticalAcrossPoolSizes) {
  // The determinism contract the models' AverageLoss paths rely on: chunk
  // bounds and the weighted combine are independent of the pool size.
  auto chunk_mean = [](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      acc += std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + i);
    }
    return acc / static_cast<double>(hi - lo);
  };
  ThreadPool p1(1), p3(3), p7(7);
  double r1 = ParallelChunkMean(p1, 5000, 256, chunk_mean);
  double r3 = ParallelChunkMean(p3, 5000, 256, chunk_mean);
  double r7 = ParallelChunkMean(p7, 5000, 256, chunk_mean);
  EXPECT_DOUBLE_EQ(r1, r3);
  EXPECT_DOUBLE_EQ(r1, r7);
}

TEST(TaskExecutorTest, StrandTasksRunFifoAndNeverOverlap) {
  // 200 tasks on one key, each recording its sequence number and checking
  // it is alone in the critical section: any reorder or overlap fails.
  TaskExecutor executor(4);
  std::vector<int> order;
  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 200; ++i) {
    executor.Submit("k", [i, &order, &in_flight, &overlapped] {
      if (in_flight.fetch_add(1) != 0) overlapped.store(true);
      order.push_back(i);
      in_flight.fetch_sub(1);
    });
  }
  executor.Drain();
  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(TaskExecutorTest, DistinctKeysRunConcurrently) {
  // Task A (key "a") blocks until task B (key "b") runs. If keys were
  // serialized onto one strand this would deadlock; the 10 s timeout turns
  // that into a failure instead of a hang.
  TaskExecutor executor(2);
  std::promise<void> b_ran;
  std::shared_future<void> b_done = b_ran.get_future().share();
  std::atomic<bool> a_saw_b{false};
  executor.Submit("a", [&a_saw_b, b_done] {
    if (b_done.wait_for(std::chrono::seconds(10)) ==
        std::future_status::ready) {
      a_saw_b.store(true);
    }
  });
  executor.Submit("b", [&b_ran] { b_ran.set_value(); });
  executor.Drain();
  EXPECT_TRUE(a_saw_b.load());
}

TEST(TaskExecutorTest, FuturesBacklogAndDrainKey) {
  TaskExecutor executor(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> first =
      executor.Submit("a", [gate] { gate.wait(); });
  executor.Submit("a", [] {});
  executor.Submit("b", [gate] { gate.wait(); });
  // "a" has one running/queued pair, "b" one queued behind the 1 worker.
  EXPECT_EQ(executor.backlog(), 3);
  EXPECT_EQ(executor.backlog("a"), 2);
  EXPECT_EQ(executor.backlog("b"), 1);
  EXPECT_EQ(executor.backlog("nope"), 0);
  release.set_value();
  executor.DrainKey("a");
  EXPECT_EQ(executor.backlog("a"), 0);
  EXPECT_TRUE(first.valid());
  EXPECT_EQ(first.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  executor.Drain();
  EXPECT_EQ(executor.backlog(), 0);
}

TEST(TaskExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    TaskExecutor executor(2);
    for (int i = 0; i < 50; ++i) {
      executor.Submit(i % 2 == 0 ? "even" : "odd", [&ran] {
        ran.fetch_add(1);
      });
    }
    // No Drain: the destructor must finish all 50 before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace ddup
